"""Unit tests for reduction-tree extraction (Section 4.4)."""

from fractions import Fraction


from repro.core import intervals as iv
from repro.core.reduce_op import ReduceProblem, solve_reduce
from repro.core.trees import (ReductionTree, TreeTask, TreeTransfer, extract_trees, find_tree, incidence, solution_op_values, trees_weight_sum)
from repro.platform.generators import complete
from repro.platform.graph import PlatformGraph


class TestFigure6Trees:
    def test_weights_sum_to_tp(self, fig6_solution):
        trees = extract_trees(fig6_solution)
        assert trees_weight_sum(trees) == fig6_solution.throughput

    def test_incidence_reconstructs_solution(self, fig6_solution):
        trees = extract_trees(fig6_solution)
        inc = incidence(trees)
        a = solution_op_values(fig6_solution)
        assert inc == {k: v for k, v in a.items() if v != 0}

    def test_tree_count_within_theorem1_bound(self, fig6_solution):
        trees = extract_trees(fig6_solution)
        n = len(fig6_solution.problem.platform.nodes())
        assert 1 <= len(trees) <= 2 * n ** 4

    def test_leaves_tile_the_full_interval(self, fig6_solution):
        for tree in extract_trees(fig6_solution):
            assert iv.validate_tree_intervals(
                tree.leaf_intervals(), fig6_solution.problem.n_values)

    def test_each_tree_has_enough_tasks(self, fig6_solution):
        # a reduction of n values needs exactly n-1 merges
        n = fig6_solution.problem.n_values
        for tree in extract_trees(fig6_solution):
            assert len(tree.tasks) == n - 1

    def test_describe_mentions_ops(self, fig6_solution):
        text = extract_trees(fig6_solution)[0].describe()
        assert "cons" in text and "weight" in text


class TestFigure5Tree:
    """The paper's Figure 5 tree, built by hand and checked structurally."""

    def test_figure5_structure(self):
        tree = ReductionTree(
            weight=1,
            transfers=(TreeTransfer(2, 1, (2, 2)),
                       TreeTransfer(0, 1, (0, 0)),
                       TreeTransfer(1, 0, (0, 2))),
            tasks=(TreeTask(1, (1, 1, 2)), TreeTask(1, (0, 0, 2))),
        )
        assert iv.validate_tree_intervals(tree.leaf_intervals(), 3)
        assert len(tree.tasks) == 2
        # the final result transfers back to the target P0
        assert tree.transfers[-1].interval == (0, 2)


class TestFindTree:
    def test_empty_solution_has_no_tree(self, fig6_problem):
        assert find_tree({}, fig6_problem) is None

    def test_partial_solution_stuck_returns_none(self, fig6_problem):
        # only the final transfer exists; its inputs can't be resolved
        a = {("send", 1, 0, (0, 2)): 1}
        assert find_tree(a, fig6_problem) is None

    def test_single_tree_found_and_weighted(self, fig6_problem):
        a = {
            ("send", 2, 1, (2, 2)): Fraction(1, 2),
            ("cons", 1, (1, 1, 2)): Fraction(1, 3),
            ("send", 1, 0, (1, 2)): Fraction(1, 2),
            ("cons", 0, (0, 0, 2)): Fraction(1, 2),
        }
        tree = find_tree(a, fig6_problem)
        assert tree is not None
        assert tree.weight == Fraction(1, 3)  # min over used ops

    def test_cyclic_flow_terminates_without_tree(self):
        # an adversarial A that is nothing but a transfer cycle: the walk
        # must terminate (each op key is used at most once) and find no tree
        g = PlatformGraph()
        g.add_node("a", 1)
        g.add_node("b", 1)
        g.add_link("a", "b", 1)
        problem = ReduceProblem(g, ["a", "b"], "a")
        a = {
            ("send", "a", "b", (0, 1)): 1,
            ("send", "b", "a", (0, 1)): 1,
        }
        assert find_tree(a, problem) is None


class TestExtractProperties:
    def test_multiple_trees_on_symmetric_platform(self):
        # equal speeds and symmetric links often force mixing trees
        g = complete(4, cost=1)
        nodes = g.nodes()
        problem = ReduceProblem(g, nodes, nodes[0])
        sol = solve_reduce(problem, backend="exact")
        trees = extract_trees(sol)
        assert trees_weight_sum(trees) == sol.throughput
        inc = incidence(trees)
        a = solution_op_values(sol)
        assert inc == {k: v for k, v in a.items() if v != 0}

    def test_extraction_does_not_mutate_solution(self, fig6_solution):
        before = dict(fig6_solution.send), dict(fig6_solution.cons)
        extract_trees(fig6_solution)
        assert (fig6_solution.send, fig6_solution.cons) == before

    def test_extract_caches_on_solution(self, fig6_problem):
        sol = solve_reduce(fig6_problem, backend="exact")
        t1 = sol.extract()
        assert sol.extract() is t1
