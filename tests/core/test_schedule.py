"""Unit tests for periodic schedule construction."""

from fractions import Fraction

import pytest

from repro.core.schedule import (
    PeriodicSchedule, Slot, Transfer, build_reduce_schedule, lcm_period,
    schedule_from_rates,
)


class TestLcmPeriod:
    def test_integers_need_period_one(self):
        assert lcm_period([1, 2, 3]) == 1

    def test_fractions(self):
        assert lcm_period([Fraction(1, 4), Fraction(1, 6)]) == 12

    def test_floats_rejected(self):
        with pytest.raises(TypeError):
            lcm_period([0.5])


class TestScheduleFromRates:
    def simple_rates(self):
        # one edge, one item, rate 1/2, unit time 1
        return {("a", "b", "m"): (Fraction(1, 2), 1)}

    def test_counts_integral(self):
        sched = schedule_from_rates(self.simple_rates(), Fraction(1, 2),
                                    {"m": "b"})
        assert sched.per_period == {"m": 1}
        assert sched.period == 2

    def test_period_override(self):
        sched = schedule_from_rates(self.simple_rates(), Fraction(1, 2),
                                    {"m": "b"}, period=4)
        assert sched.period == 4 and sched.per_period == {"m": 2}

    def test_bad_override_rejected(self):
        with pytest.raises(ValueError):
            schedule_from_rates(self.simple_rates(), Fraction(1, 2),
                                {"m": "b"}, period=3)

    def test_overload_rejected(self):
        rates = {("a", "b", "m"): (2, 1)}  # rate 2 at unit time 1 -> load 2
        with pytest.raises(ValueError):
            schedule_from_rates(rates, 2, {"m": "b"})

    def test_port_conflict_detected(self):
        # two outgoing edges each loaded 3/4: port load 3/2 > 1
        rates = {("a", "b", "m1"): (Fraction(3, 4), 1),
                 ("a", "c", "m2"): (Fraction(3, 4), 1)}
        with pytest.raises(ValueError):
            schedule_from_rates(rates, Fraction(3, 4),
                                {"m1": "b", "m2": "c"})

    def test_integral_times_auto_caps_period(self):
        # coprime unit times would explode the period; auto falls back
        rates = {("a", "b", "m"): (Fraction(1, 2), Fraction(1, 999983)),
                 ("a", "c", "m2"): (Fraction(1, 3), Fraction(1, 999979))}
        sched = schedule_from_rates(rates, Fraction(1, 3),
                                    {"m": "b", "m2": "c"})
        assert sched.period == 6

    def test_integral_times_never(self):
        rates = {("a", "b", "m"): (Fraction(1, 2), Fraction(2, 3))}
        sched = schedule_from_rates(rates, Fraction(1, 2), {"m": "b"},
                                    integral_times="never")
        assert sched.period == 2

    def test_slot_durations_sum_to_period(self):
        sched = schedule_from_rates(self.simple_rates(), Fraction(1, 2),
                                    {"m": "b"})
        assert sum((s.duration for s in sched.slots), 0) == sched.period

    def test_compute_rates_packed(self):
        rates = {("a", "b", "x"): (1, Fraction(1, 2))}
        compute = {("b", "y"): (1, ("x", "x2"), Fraction(1, 3))}
        sched = schedule_from_rates(rates, 1, {"y": "b"},
                                    compute_rates=compute)
        # rate 1 task/time-unit at 1/3 time each -> busy T/3 per period
        assert sched.compute_time("b") == sched.period * Fraction(1, 3)
        assert sched.validate() == []

    def test_compute_overload_rejected(self):
        rates = {("a", "b", "x"): (1, Fraction(1, 2))}
        compute = {("b", "y"): (3, ("x", "x2"), Fraction(1, 2))}  # load 3/2
        with pytest.raises(ValueError):
            schedule_from_rates(rates, 1, {"y": "b"}, compute_rates=compute)


class TestValidate:
    def test_detects_double_send(self):
        sched = PeriodicSchedule(
            name="bad", period=2, throughput=1,
            slots=[Slot(duration=2, transfers=[
                Transfer("a", "b", "m", 1, 1),
                Transfer("a", "c", "m2", 1, 1),
            ])],
            per_period={"m": 1, "m2": 1}, deliveries={})
        bad = sched.validate()
        assert any("two receivers" in b for b in bad)

    def test_detects_pair_overrun(self):
        sched = PeriodicSchedule(
            name="bad", period=2, throughput=1,
            slots=[Slot(duration=1, transfers=[
                Transfer("a", "b", "m", 2, 2)])],
            per_period={"m": 2}, deliveries={})
        assert any("exceeds slot" in b for b in sched.validate())

    def test_detects_period_overrun(self):
        sched = PeriodicSchedule(
            name="bad", period=1, throughput=1,
            slots=[Slot(duration=2, transfers=[])],
            per_period={}, deliveries={})
        assert any("exceed period" in b for b in sched.validate())


class TestScaled:
    def test_scaled_doubles_everything(self, fig6_solution):
        sched = build_reduce_schedule(fig6_solution)
        double = sched.scaled(2)
        assert double.period == 2 * sched.period
        assert double.ops_per_period() == 2 * sched.ops_per_period()
        assert double.validate() == []

    def test_busy_time_monotone_under_scaling(self, fig6_solution):
        sched = build_reduce_schedule(fig6_solution)
        double = sched.scaled(2)
        for node in (0, 1, 2):
            s1, r1 = sched.busy_time(node)
            s2, r2 = double.busy_time(node)
            assert s2 == 2 * s1 and r2 == 2 * r1


class TestBuildReduceSchedule:
    def test_fig6_schedule_consistent(self, fig6_solution):
        sched = build_reduce_schedule(fig6_solution)
        assert sched.validate() == []
        assert sched.ops_per_period() == sched.throughput * sched.period
        assert sched.throughput == fig6_solution.throughput

    def test_compute_loads_respect_alpha(self, fig6_solution):
        sched = build_reduce_schedule(fig6_solution)
        for node in (0, 1, 2):
            assert sched.compute_time(node) <= sched.period
