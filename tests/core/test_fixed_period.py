"""Unit tests for the Section 4.6 fixed-period approximation."""

from fractions import Fraction

import pytest

from repro.core.fixed_period import (
    fixed_period_approximation, fixed_period_paths,
)
from repro.core.trees import ReductionTree


def mk_tree(w):
    return ReductionTree(weight=w, transfers=(), tasks=())


class TestTreeRounding:
    def test_exact_weights_survive_matching_period(self):
        trees = [mk_tree(Fraction(1, 9)), mk_tree(Fraction(1, 9))]
        fp = fixed_period_approximation(trees, period=9)
        assert fp.throughput == Fraction(2, 9)
        assert fp.loss == 0

    def test_rounding_down(self):
        trees = [mk_tree(Fraction(1, 3))]
        fp = fixed_period_approximation(trees, period=2)
        # floor(2/3) = 0 -> tree dropped
        assert fp.throughput == 0
        assert fp.loss == Fraction(1, 3)

    def test_loss_within_prop4_bound(self):
        trees = [mk_tree(Fraction(2, 7)), mk_tree(Fraction(3, 11)),
                 mk_tree(Fraction(1, 13))]
        for period in (5, 10, 50, 100, 1000):
            fp = fixed_period_approximation(trees, period=period)
            assert fp.loss_within_bound(), (period, fp.loss, fp.bound)

    def test_convergence_with_period(self):
        trees = [mk_tree(Fraction(2, 7)), mk_tree(Fraction(3, 11))]
        losses = [fixed_period_approximation(trees, period=p).loss
                  for p in (10, 100, 1000, 10000)]
        assert all(float(a) >= float(b) - 1e-12 for a, b in zip(losses, losses[1:]))
        assert float(losses[-1]) < 1e-3

    def test_float_weights_accepted(self):
        trees = [mk_tree(0.3333), mk_tree(0.1111)]
        fp = fixed_period_approximation(trees, period=100,
                                        original_throughput=0.4444)
        assert fp.throughput == Fraction(33, 100) + Fraction(11, 100)

    def test_bad_period_rejected(self):
        with pytest.raises(ValueError):
            fixed_period_approximation([mk_tree(1)], period=0)

    def test_rounded_rates_are_exact(self):
        fp = fixed_period_approximation([mk_tree(0.123456)], period=360)
        for t in fp.items:
            assert isinstance(t.weight, Fraction)
            assert t.weight.denominator <= 360


class TestPathRounding:
    def test_common_throughput_is_min(self):
        paths = {
            "k1": [(["s", "a", "k1"], Fraction(1, 2))],
            "k2": [(["s", "k2"], Fraction(1, 3))],
        }
        fp = fixed_period_paths(paths, period=6)
        assert fp.throughput == Fraction(1, 3)

    def test_surplus_trimmed(self):
        paths = {
            "k1": [(["s", "k1"], Fraction(1, 2)), (["s", "a", "k1"], Fraction(1, 4))],
            "k2": [(["s", "k2"], Fraction(1, 4))],
        }
        fp = fixed_period_paths(paths, period=4)
        per_type = {}
        for (key, _p, w) in fp.items:
            per_type[key] = per_type.get(key, 0) + w
        assert per_type["k1"] == per_type["k2"] == Fraction(1, 4)

    def test_rounded_weights_multiples_of_inverse_period(self):
        paths = {"k": [(["s", "k"], 0.777)]}
        fp = fixed_period_paths(paths, period=9)
        for (_k, _p, w) in fp.items:
            assert (w * 9).denominator == 1
