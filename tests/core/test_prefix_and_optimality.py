"""Unit tests for the prefix extension and optimality bookkeeping."""

from fractions import Fraction

import pytest

from repro.core.optimality import (is_monotone_nondecreasing, ratio_curve, steady_state_lower_bound, upper_bound_ops)
from repro.core.prefix import solve_prefix
from repro.core.reduce_op import ReduceProblem, solve_reduce


class TestPrefix:
    def test_prefix_lp_solves_on_triangle(self, fig6):
        problem = ReduceProblem(fig6, participants=[0, 1, 2], target=0)
        sol = solve_prefix(problem, backend="exact")
        assert sol.throughput > 0
        assert sol.exact

    def test_prefix_throughput_at_most_reduce(self, fig6):
        # prefix must also deliver v[0,1] to rank 1's owner and v[0,2] to
        # rank 2's owner: strictly more work than one reduce
        problem = ReduceProblem(fig6, participants=[0, 1, 2], target=2)
        reduce_tp = solve_reduce(problem, backend="exact").throughput
        prefix_tp = solve_prefix(problem, backend="exact").throughput
        assert prefix_tp <= reduce_tp

    def test_prefix_needs_transfers(self, fig6):
        problem = ReduceProblem(fig6, participants=[0, 1, 2], target=0)
        sol = solve_prefix(problem, backend="exact")
        assert sol.send  # some communication is unavoidable

    def test_two_nodes_prefix(self):
        from repro.platform.graph import PlatformGraph

        g = PlatformGraph()
        g.add_node("a", 1)
        g.add_node("b", 1)
        g.add_link("a", "b", 1)
        problem = ReduceProblem(g, ["a", "b"], "a")
        sol = solve_prefix(problem, backend="exact")
        # v[0,1] must be delivered at b: one transfer + one merge per op
        assert sol.throughput == 1


class TestOptimalityHelpers:
    def test_upper_bound(self):
        assert upper_bound_ops(Fraction(1, 2), 100) == 50.0

    def test_steady_lower_bound_formula(self):
        # K=100, T=10, I=20 -> r = floor((100-40-10)/10) = 5 -> 5*10*TP
        assert steady_state_lower_bound(Fraction(1, 2), 10, 20, 100) == 25.0

    def test_steady_lower_bound_clamped_at_zero(self):
        assert steady_state_lower_bound(1, 10, 50, 20) == 0.0

    def test_ratio_curve(self):
        pts = ratio_curve(Fraction(1, 2), [10, 20], [4, 9])
        assert [round(p.ratio, 3) for p in pts] == [0.8, 0.9]

    def test_ratio_curve_length_mismatch(self):
        with pytest.raises(ValueError):
            ratio_curve(1, [1, 2], [1])

    def test_monotone_check(self):
        assert is_monotone_nondecreasing([0.5, 0.7, 0.7, 0.9])
        assert not is_monotone_nondecreasing([0.5, 0.3])

    def test_lower_bound_below_upper_bound(self):
        for k in (50, 100, 1000):
            lo = steady_state_lower_bound(Fraction(1, 3), 6, 12, k)
            hi = upper_bound_ops(Fraction(1, 3), k)
            assert lo <= hi
