"""Unit tests for the Series-of-Gossips pipeline (Section 3.5)."""

from fractions import Fraction

import pytest

from repro.core.gossip import (GossipProblem, build_gossip_schedule, solve_gossip)
from repro.platform.generators import complete, ring


class TestProblem:
    def test_pairs_skip_diagonal(self, ring6):
        nodes = ring6.nodes()[:3]
        problem = GossipProblem(ring6, nodes, nodes)
        assert len(problem.pairs()) == 6

    def test_duplicate_source_rejected(self, ring6):
        nodes = ring6.nodes()
        with pytest.raises(ValueError):
            GossipProblem(ring6, [nodes[0], nodes[0]], nodes[:2])

    def test_needs_nontrivial_pair(self, ring6):
        n = ring6.nodes()[0]
        with pytest.raises(ValueError):
            GossipProblem(ring6, [n], [n])

    def test_unknown_node_rejected(self, ring6):
        with pytest.raises(ValueError):
            GossipProblem(ring6, ["nope"], ring6.nodes()[:1])


class TestSolve:
    def test_complete_graph_all_to_all(self):
        g = complete(3, cost=1)
        nodes = g.nodes()
        problem = GossipProblem(g, nodes, nodes)
        sol = solve_gossip(problem, backend="exact")
        # each node must send 2 and receive 2 unit messages per op
        assert sol.throughput == Fraction(1, 2)
        assert sol.verify() == []

    def test_ring_gossip(self):
        g = ring(4, cost=1)
        nodes = g.nodes()
        problem = GossipProblem(g, nodes, nodes)
        sol = solve_gossip(problem, backend="exact")
        assert sol.throughput > 0
        assert sol.verify() == []

    def test_scatter_as_degenerate_gossip(self, fig2):
        # one source, the scatter targets: gossip == scatter
        problem = GossipProblem(fig2, ["Ps"], ["Ps", "P0", "P1"])
        sol = solve_gossip(problem, backend="exact")
        assert sol.throughput == Fraction(1, 2)

    def test_gather_as_reverse_gossip(self):
        # many sources, one target: the symmetric counterpart
        g = complete(3, cost=1)
        nodes = g.nodes()
        problem = GossipProblem(g, nodes, [nodes[0]])
        sol = solve_gossip(problem, backend="exact")
        # p0 receives 2 unit messages per op through one port
        assert sol.throughput == Fraction(1, 2)

    def test_paths_cover_demand(self):
        g = complete(3, cost=1)
        nodes = g.nodes()
        sol = solve_gossip(GossipProblem(g, nodes, nodes), backend="exact")
        for (k, l), paths in sol.paths.items():
            assert sum(w for _, w in paths) == sol.throughput


class TestSchedule:
    def test_schedule_valid_and_consistent(self):
        g = complete(3, cost=1)
        nodes = g.nodes()
        sol = solve_gossip(GossipProblem(g, nodes, nodes), backend="exact")
        sched = build_gossip_schedule(sol)
        assert sched.validate() == []
        assert sched.ops_per_period() == sched.throughput * sched.period

    def test_simulation_delivers_and_validates(self):
        from repro.sim.executor import simulate_gossip

        g = complete(3, cost=1)
        nodes = g.nodes()
        problem = GossipProblem(g, nodes, nodes)
        sol = solve_gossip(problem, backend="exact")
        sched = build_gossip_schedule(sol)
        res = simulate_gossip(sched, problem, n_periods=30)
        assert res.correct
        bound = float(sol.throughput) * float(res.horizon)
        assert res.completed_ops() >= 0.7 * bound
