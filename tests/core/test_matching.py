"""Unit tests for the bipartite matching decomposition."""

from fractions import Fraction

import pytest

from repro.core.matching import decompose_matchings, weighted_degrees


def check_decomposition(edges, matchings, cap):
    """Common invariants of any valid decomposition."""
    # 1. durations sum to exactly cap
    assert sum((m.duration for m in matchings), 0) == cap
    # 2. every matching is node-disjoint
    for m in matchings:
        snd = [u for u, _ in m.pairs]
        rcv = [v for _, v in m.pairs]
        assert len(snd) == len(set(snd))
        assert len(rcv) == len(set(rcv))
    # 3. total time per edge is reproduced exactly
    shipped = {}
    for m in matchings:
        for (u, v) in m.pairs:
            shipped[(u, v)] = shipped.get((u, v), 0) + m.duration
    want = {}
    for (u, v, w) in edges:
        want[(u, v)] = want.get((u, v), 0) + w
    assert shipped == want


class TestDecompose:
    def test_single_edge(self):
        edges = [("s1", "r1", 3)]
        ms = decompose_matchings(edges)
        check_decomposition(edges, ms, 3)

    def test_two_disjoint_edges_run_together(self):
        edges = [("s1", "r1", 2), ("s2", "r2", 2)]
        ms = decompose_matchings(edges)
        real = [m for m in ms if m.pairs]
        assert len(real) == 1 and len(real[0].pairs) == 2
        check_decomposition(edges, ms, 2)

    def test_conflicting_edges_serialize(self):
        edges = [("s1", "r1", 1), ("s1", "r2", 1)]
        ms = decompose_matchings(edges)
        check_decomposition(edges, ms, 2)

    def test_fraction_weights(self):
        edges = [("a", "x", Fraction(1, 3)), ("a", "y", Fraction(1, 6)),
                 ("b", "x", Fraction(1, 6))]
        ms = decompose_matchings(edges)
        check_decomposition(edges, ms, Fraction(1, 2))

    def test_cap_above_max_degree_pads_idle(self):
        edges = [("s", "r", 1)]
        ms = decompose_matchings(edges, cap=5)
        check_decomposition(edges, ms, 5)

    def test_cap_below_degree_rejected(self):
        with pytest.raises(ValueError):
            decompose_matchings([("s", "r", 3)], cap=2)

    def test_empty_input(self):
        assert decompose_matchings([]) == []

    def test_zero_weight_edges_dropped(self):
        ms = decompose_matchings([("s", "r", 0), ("s", "q", 2)])
        check_decomposition([("s", "q", 2)], ms, 2)

    def test_polynomial_matching_count(self):
        # count is bounded by edges + padding, never explodes
        edges = [(f"s{i}", f"r{j}", 1) for i in range(4) for j in range(4)]
        ms = decompose_matchings(edges)
        assert len(ms) <= len(edges) + 9
        check_decomposition(edges, ms, 4)

    def test_figure3_instance(self):
        """The paper's Figure 3: the Fig-2 LP communication graph decomposes
        into matchings of total weight 12 (four in the paper's solution)."""
        edges = [("Ps", "rPa", 3), ("Ps", "rPb", 9),
                 ("Pa", "rP0", 2), ("Pb", "rP0", 4), ("Pb", "rP1", 8)]
        ms = decompose_matchings(edges, cap=12)
        check_decomposition(edges, ms, 12)
        real = [m for m in ms if m.pairs]
        assert len(real) <= 5  # paper exhibits 4; any small count is valid

    def test_unbalanced_sides(self):
        edges = [("s1", "r1", 1), ("s2", "r1", 1), ("s3", "r1", 1)]
        ms = decompose_matchings(edges)
        check_decomposition(edges, ms, 3)

    def test_regular_graph_perfect_matchings(self):
        # 2-regular bipartite graph: every matching should be perfect
        edges = [("a", "x", 1), ("a", "y", 1), ("b", "x", 1), ("b", "y", 1)]
        ms = decompose_matchings(edges)
        for m in ms:
            assert len(m.pairs) == 2
        check_decomposition(edges, ms, 2)


class TestWeightedDegrees:
    def test_degrees(self):
        du, dv = weighted_degrees([("a", "x", 2), ("a", "y", 3), ("b", "x", 4)])
        assert du == {"a": 5, "b": 4}
        assert dv == {"x": 6, "y": 3}
