"""The float -> exact bridge for scatter: rounded path flows to schedules."""

from fractions import Fraction


from repro.core.scatter import (
    ScatterProblem, build_scatter_schedule_fixed_period, solve_scatter,
)
from repro.platform.examples import figure2_platform, figure2_targets
from repro.platform.generators import clustered
from repro.sim.executor import simulate_scatter


class TestScatterFixedPeriod:
    def test_float_solution_yields_exact_schedule(self):
        problem = ScatterProblem(figure2_platform(), "Ps", figure2_targets())
        sol = solve_scatter(problem, backend="highs", eps=1e-9)
        # force a genuinely float pipeline by dropping exactness markers
        sol.exact = False
        sched, fp = build_scatter_schedule_fixed_period(sol, period=60)
        assert sched.validate() == []
        assert isinstance(sched.throughput, Fraction)
        assert fp.loss_within_bound()

    def test_throughput_loss_bounded(self):
        problem = ScatterProblem(figure2_platform(), "Ps", figure2_targets())
        sol = solve_scatter(problem, backend="highs")
        for period in (10, 100, 1000):
            _sched, fp = build_scatter_schedule_fixed_period(sol, period)
            assert float(fp.loss) <= float(fp.bound) + 1e-12

    def test_simulation_achieves_rounded_rate(self):
        problem = ScatterProblem(figure2_platform(), "Ps", figure2_targets())
        sol = solve_scatter(problem, backend="exact")
        sched, fp = build_scatter_schedule_fixed_period(sol, period=12)
        res = simulate_scatter(sched, problem, n_periods=40)
        assert res.correct
        bound = float(fp.throughput) * float(res.horizon)
        assert res.completed_ops() >= 0.85 * bound
        assert res.completed_ops() <= bound + 1e-9

    def test_every_target_served_equally(self):
        g = clustered(3, 2, seed=4)
        hosts = g.compute_nodes()
        problem = ScatterProblem(g, hosts[0], hosts[1:5])
        sol = solve_scatter(problem, backend="highs")
        sched, fp = build_scatter_schedule_fixed_period(sol, period=300)
        assert sched.validate() == []
        # delivered counts per target must be identical (common throughput)
        delivered = {}
        for (k, path, w) in fp.items:
            delivered[k] = delivered.get(k, 0) + w
        assert len(set(delivered.values())) == 1

    def test_tiny_period_drops_paths(self):
        problem = ScatterProblem(figure2_platform(), "Ps", figure2_targets())
        sol = solve_scatter(problem, backend="exact")
        # period 1 floors 1/2 rates to 0 -> empty schedule is legitimate
        _sched, fp = build_scatter_schedule_fixed_period(sol, period=1)
        assert fp.throughput == 0
