"""Broadcast LP (content-divisible flows) and arborescence packing."""

from fractions import Fraction

import pytest

from repro.core.arborescence import (
    Arborescence,
    ArborescencePackingError,
    max_flow,
    pack_arborescences,
)
from repro.core.broadcast import (
    BroadcastProblem,
    build_broadcast_lp,
    build_broadcast_schedule,
    solve_broadcast,
)
from repro.core.scatter import ScatterProblem, solve_scatter
from repro.platform.examples import (
    figure2_platform,
    figure2_targets,
    figure6_platform,
)
from repro.platform.generators import complete
from repro.sim.executor import simulate_collective


class TestProblemValidation:
    def test_source_cannot_be_target(self):
        with pytest.raises(ValueError, match="source holds the message"):
            BroadcastProblem(figure6_platform(), 0, [0, 1])

    def test_duplicate_target(self):
        with pytest.raises(ValueError, match="duplicate"):
            BroadcastProblem(figure6_platform(), 0, [1, 1])

    def test_unknown_node(self):
        with pytest.raises(ValueError, match="not in platform"):
            BroadcastProblem(figure6_platform(), 0, [1, 99])


class TestBroadcastLP:
    def test_fig2_optimum_beats_scatter(self):
        """Content sharing strictly beats scatter on the fig2 relay
        platform: 7/12 > 1/2 (hand-derivable from the out[Ps] and
        out[Pb] budgets)."""
        p = BroadcastProblem(figure2_platform(), "Ps", figure2_targets())
        sol = solve_broadcast(p, backend="exact")
        assert sol.throughput == Fraction(7, 12)
        scat = solve_scatter(
            ScatterProblem(figure2_platform(), "Ps", figure2_targets()),
            backend="exact")
        assert sol.throughput > scat.throughput
        assert sol.verify() == []

    def test_fig6_spanning_broadcast_is_rate_one(self):
        """On the unit triangle a relay chain 0 -> 1 -> 2 streams one
        message per time-unit."""
        p = BroadcastProblem(figure6_platform(), 0, [1, 2])
        sol = solve_broadcast(p, backend="exact")
        assert sol.throughput == 1
        assert sol.verify() == []

    def test_content_dominates_every_flow(self):
        p = BroadcastProblem(figure2_platform(), "Ps", figure2_targets())
        sol = solve_broadcast(p, backend="exact")
        for t, flow in sol.flows.items():
            for e, f in flow.items():
                assert f <= sol.send[e]
            delivered = sum(f for (i, j), f in flow.items() if j == t)
            assert delivered == sol.throughput

    def test_lp_shape(self):
        p = BroadcastProblem(figure6_platform(), 0, [1, 2])
        lp = build_broadcast_lp(p)
        names = {v.name for v in lp.variables}
        assert "content[0->1]" in names
        assert "send[0->1,m1]" in names
        # targets never re-emit their own flow
        assert "send[1->2,m1]" not in names


class TestArborescencePacking:
    def test_weights_sum_to_demand_and_respect_caps(self):
        p = BroadcastProblem(figure2_platform(), "Ps", figure2_targets())
        sol = solve_broadcast(p, backend="exact")
        arbs = sol.arborescences()
        assert sum(a.weight for a in arbs) == sol.throughput
        usage = {}
        for a in arbs:
            for e in a.edges:
                usage[e] = usage.get(e, 0) + a.weight
        for e, u in usage.items():
            assert u <= sol.send[e]

    def test_every_arborescence_covers_all_targets(self):
        p = BroadcastProblem(figure2_platform(), "Ps", figure2_targets())
        sol = solve_broadcast(p, backend="exact")
        for a in sol.arborescences():
            children = a.children()
            # walk from the source: every target must be reachable
            seen, frontier = {"Ps"}, ["Ps"]
            while frontier:
                for c in children.get(frontier.pop(), ()):
                    seen.add(c)
                    frontier.append(c)
            assert set(figure2_targets()) <= seen
            # tree shape: every non-root node has exactly one parent
            dsts = [j for (_i, j) in a.edges]
            assert len(dsts) == len(set(dsts))

    def test_diamond_needs_two_arborescences(self):
        """cap supports flow 2 to both sinks only by splitting content."""
        cap = {("s", "a"): 1, ("s", "b"): 1,
               ("a", "x"): 1, ("b", "x"): 1,
               ("a", "y"): 1, ("b", "y"): 1}
        arbs = pack_arborescences(cap, "s", ["x", "y"], 2)
        assert sum(a.weight for a in arbs) == 2
        assert len(arbs) >= 2

    def test_insufficient_capacity_raises(self):
        cap = {("s", "a"): Fraction(1, 2), ("a", "t"): Fraction(1, 2)}
        with pytest.raises(ArborescencePackingError, match="carry only"):
            pack_arborescences(cap, "s", ["t"], 1)

    def test_unreachable_target_raises(self):
        with pytest.raises(ArborescencePackingError):
            pack_arborescences({("s", "a"): 1}, "s", ["t"], 1)

    def test_children_map(self):
        a = Arborescence(weight=1, edges=(("s", "a"), ("s", "b"),
                                          ("a", "c")))
        assert a.children() == {"s": ("a", "b"), "a": ("c",)}
        assert a.nodes() == {"s", "a", "b", "c"}


class TestMaxFlow:
    def test_value_and_cut(self):
        cap = {("s", "a"): 3, ("a", "t"): 2, ("s", "t"): 1}
        val, cut = max_flow(cap, "s", "t")
        assert val == 3
        assert "s" in cut and "t" not in cut

    def test_early_exit_with_need(self):
        cap = {("s", "t"): 5}
        val, cut = max_flow(cap, "s", "t", need=2)
        assert val == 2 and cut is None

    def test_infeasible_need_returns_cut(self):
        cap = {("s", "t"): 1}
        val, cut = max_flow(cap, "s", "t", need=2)
        assert val == 1 and cut == {"s"}


class TestBroadcastSchedule:
    def test_fig2_schedule_and_replicated_simulation(self):
        p = BroadcastProblem(figure2_platform(), "Ps", figure2_targets())
        sol = solve_broadcast(p, backend="exact")
        sched = build_broadcast_schedule(sol)
        assert sched.validate() == []
        assert sched.delivery_mode == "sum"
        assert sched.replicas  # fan-out rules present
        res = simulate_collective(sched, p, n_periods=30)
        assert res.correct
        streams = len(p.targets)
        bound = float(sol.throughput) * float(res.horizon) * streams
        assert 0 < res.completed_ops() <= bound + 1e-9

    def test_complete5_spanning_broadcast(self):
        g = complete(5, cost=1)
        nodes = g.nodes()
        p = BroadcastProblem(g, nodes[0], nodes[1:])
        sol = solve_broadcast(p, backend="exact")
        assert sol.throughput == 1  # relay chain saturates every in-port
        sched = build_broadcast_schedule(sol)
        assert sched.validate() == []
        res = simulate_collective(sched, p, n_periods=25)
        assert res.correct and res.completed_ops() > 0
