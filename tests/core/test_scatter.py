"""Unit tests for the Series-of-Scatters pipeline (Section 3)."""

from fractions import Fraction

import pytest

from repro.core.scatter import (
    ScatterProblem, build_scatter_lp, build_scatter_schedule, solve_scatter,
)
from repro.platform.generators import chain, random_connected, star
from repro.platform.graph import PlatformGraph


class TestProblemValidation:
    def test_source_must_exist(self, fig2):
        with pytest.raises(ValueError):
            ScatterProblem(fig2, "nope", ["P0"])

    def test_target_must_exist(self, fig2):
        with pytest.raises(ValueError):
            ScatterProblem(fig2, "Ps", ["nope"])

    def test_source_as_target_rejected(self, fig2):
        with pytest.raises(ValueError):
            ScatterProblem(fig2, "Ps", ["Ps", "P0"])

    def test_duplicate_target_rejected(self, fig2):
        with pytest.raises(ValueError):
            ScatterProblem(fig2, "Ps", ["P0", "P0"])

    def test_empty_targets_rejected(self, fig2):
        with pytest.raises(ValueError):
            ScatterProblem(fig2, "Ps", [])


class TestLPStructure:
    def test_no_reemission_variables(self, fig2_problem):
        lp = build_scatter_lp(fig2_problem)
        names = {v.name for v in lp.variables}
        # P0 never re-emits its own messages
        assert not any(n.startswith("send[P0->") and n.endswith("mP0]")
                       for n in names)

    def test_variable_count(self, fig2_problem):
        lp = build_scatter_lp(fig2_problem)
        # 5 edges x 2 types = 10, none excluded (targets have no out-edges
        # in fig2), plus TP
        assert lp.num_vars() == 11

    def test_tp_variable_exists(self, fig2_problem):
        lp = build_scatter_lp(fig2_problem)
        assert lp.get("TP") is not None


class TestFigure2:
    def test_throughput_matches_paper(self, fig2_solution):
        assert fig2_solution.throughput == Fraction(1, 2)

    def test_exact(self, fig2_solution):
        assert fig2_solution.exact

    def test_verify_clean(self, fig2_solution):
        assert fig2_solution.verify() == []

    def test_deliveries_equal_tp(self, fig2_solution):
        for k in ("P0", "P1"):
            delivered = sum(f for (i, j, kk), f in fig2_solution.send.items()
                            if j == k and kk == k)
            assert delivered == Fraction(1, 2)

    def test_m1_forced_through_pb(self, fig2_solution):
        # the only route to P1 goes through Pb
        for (path, w) in fig2_solution.paths["P1"]:
            assert path == ["Ps", "Pb", "P1"]

    def test_edge_occupation_within_one(self, fig2_solution):
        for (i, j), occ in fig2_solution.edge_occupation().items():
            assert 0 < occ <= 1

    def test_highs_backend_agrees(self, fig2_problem):
        sol = solve_scatter(fig2_problem, backend="highs")
        assert abs(float(sol.throughput) - 0.5) < 1e-9


class TestSchedule:
    def test_schedule_valid(self, fig2_solution):
        sched = build_scatter_schedule(fig2_solution)
        assert sched.validate() == []

    def test_ops_per_period_integral(self, fig2_solution):
        sched = build_scatter_schedule(fig2_solution)
        opp = sched.ops_per_period()
        assert opp == int(opp) and opp >= 1

    def test_per_period_counts_match_tp(self, fig2_solution):
        sched = build_scatter_schedule(fig2_solution)
        for item, count in sched.per_period.items():
            # each target receives TP * T messages per period, and relays
            # may add transit counts; delivery items match exactly
            assert count >= sched.ops_per_period()

    def test_one_port_within_period(self, fig2_solution):
        sched = build_scatter_schedule(fig2_solution)
        for node in ("Ps", "Pa", "Pb", "P0", "P1"):
            snd, rcv = sched.busy_time(node)
            assert snd <= sched.period and rcv <= sched.period

    def test_without_splits_scales_period(self, fig2_solution):
        sched = build_scatter_schedule(fig2_solution)
        ns = sched.without_splits()
        assert ns.period % sched.period == 0
        assert ns.validate() == []
        for slot in ns.slots:
            for t in slot.transfers:
                assert t.units == int(t.units)


class TestOtherPlatforms:
    def test_star_throughput_limited_by_source_port(self):
        g = star(3, cost=1)
        problem = ScatterProblem(g, "c", [f"l{i}" for i in range(3)])
        sol = solve_scatter(problem, backend="exact")
        # source must push 3 unit messages per op through one port
        assert sol.throughput == Fraction(1, 3)

    def test_chain_bottleneck_is_first_link(self):
        g = chain(4, cost=2)
        problem = ScatterProblem(g, "p0", ["p1", "p2", "p3"])
        sol = solve_scatter(problem, backend="exact")
        # all three messages cross p0->p1 at cost 2 each
        assert sol.throughput == Fraction(1, 6)

    def test_wider_pipe_helps(self):
        # doubling routes via an extra relay raises throughput
        g = PlatformGraph()
        for n in ("s", "a", "b", "t"):
            g.add_node(n, 1)
        g.add_edge("s", "a", 1)
        g.add_edge("a", "t", 1)
        sol1 = solve_scatter(ScatterProblem(g, "s", ["t"]), backend="exact")
        g2 = g.copy()
        g2.add_edge("s", "b", 1)
        g2.add_edge("b", "t", 1)
        sol2 = solve_scatter(ScatterProblem(g2, "s", ["t"]), backend="exact")
        assert sol1.throughput == Fraction(1, 1)
        assert sol2.throughput == Fraction(1, 1)  # recv port of t caps at 1

    def test_multi_route_strictly_beats_single_route(self):
        # s has two length-2 routes to t with slow links: splitting wins
        g = PlatformGraph()
        for n in ("s", "a", "b", "t"):
            g.add_node(n, 1)
        g.add_edge("s", "a", 2)
        g.add_edge("a", "t", 2)
        g.add_edge("s", "b", 2)
        g.add_edge("b", "t", 2)
        sol = solve_scatter(ScatterProblem(g, "s", ["t"]), backend="exact")
        # single route: 1/2; split across both: out-port of s allows 1/2 too;
        # but each edge carries half the traffic -> edge occupation 1/2
        assert sol.throughput == Fraction(1, 2)
        occ = sol.edge_occupation()
        assert all(o <= 1 for o in occ.values())

    def test_random_platform_solves_and_verifies(self):
        g = random_connected(8, extra_edges=4, seed=13)
        nodes = g.nodes()
        problem = ScatterProblem(g, nodes[0], nodes[1:5])
        sol = solve_scatter(problem)
        assert sol.throughput > 0
        assert sol.verify(tol=0 if sol.exact else 1e-9) == []

    def test_unreachable_target_gives_zero_throughput(self):
        g = PlatformGraph()
        g.add_node("s", 1)
        g.add_node("t", 1)
        g.add_edge("t", "s", 1)  # wrong direction only
        sol = solve_scatter(ScatterProblem(g, "s", ["t"]), backend="exact")
        assert sol.throughput == 0 and sol.send == {}
