"""Schedule superposition, concatenation, stage tagging and replicas —
the shared machinery behind composed collectives."""

from fractions import Fraction

import pytest

from repro.core.reduce_op import ReduceProblem, solve_reduce
from repro.core.reduce_scatter import (
    ReduceScatterProblem,
    build_reduce_scatter_schedule,
    solve_reduce_scatter,
)
from repro.core.schedule import (
    RateBundle,
    concatenate_schedules,
    retag_schedule,
    schedule_from_rates,
    stage_view,
    superpose_schedules,
    tag_item,
    tree_rate_bundle,
    untag_item,
)
from repro.platform.examples import figure6_platform
from repro.sim.executor import simulate_schedule


def _line_bundle(item, rate=Fraction(1, 2)):
    return RateBundle(rates={("a", "b", item): (rate, 1)},
                      deliveries={item: "b"})


class TestTagging:
    def test_tag_untag_roundtrip(self):
        it = ("msg", 3)
        assert untag_item(tag_item(7, it)) == (7, it)
        assert untag_item(("msg", 3)) is None

    def test_retag_then_stage_view_roundtrip(self):
        sched = schedule_from_rates({("a", "b", "m"): (Fraction(1, 2), 1)},
                                    throughput=Fraction(1, 2),
                                    deliveries={"m": "b"})
        tagged = retag_schedule(sched, 0)
        assert list(tagged.deliveries) == [tag_item(0, "m")]
        back = stage_view(tagged, 0)
        assert list(back.deliveries) == ["m"]
        assert [t.item for s in back.slots for t in s.transfers] == ["m"]


class TestSuperpose:
    def test_two_bundles_share_one_period(self):
        sched = superpose_schedules(
            [_line_bundle(("m", 0)), _line_bundle(("m", 1))],
            throughput=Fraction(1, 2), name="two-lines")
        assert sched.validate() == []
        assert sched.per_period[("m", 0)] == sched.per_period[("m", 1)] == 1
        # both streams serialize on the single a->b edge: fully busy
        total = sum(t.time for s in sched.slots for t in s.transfers)
        assert total == sched.period

    def test_item_collisions_are_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            superpose_schedules([_line_bundle("m"), _line_bundle("m")],
                                throughput=1)

    def test_reduce_scatter_schedule_equals_superposed_block_bundles(self):
        """Satellite check: the hoisted machinery reproduces the schedule
        the private reduce-scatter loop used to build."""
        problem = ReduceScatterProblem(figure6_platform(), [0, 1, 2])
        sol = solve_reduce_scatter(problem, backend="exact")
        via_module = build_reduce_scatter_schedule(sol)
        bundles = [tree_rate_bundle(problem, trees,
                                    target=problem.block_target(b),
                                    stream=lambda r, b=b: (b, r))
                   for b, trees in sol.extract().items()]
        via_shared = superpose_schedules(
            bundles, throughput=sol.throughput,
            name=via_module.name)
        assert via_shared == via_module

    def test_tree_rate_bundle_matches_reduce_schedule(self):
        problem = ReduceProblem(figure6_platform(), [0, 1, 2], target=0)
        sol = solve_reduce(problem, backend="exact")
        trees = sol.extract()
        bundle = tree_rate_bundle(problem, trees, target=0)
        assert set(bundle.deliveries.values()) == {0}
        total = sum(r for (r, _u) in bundle.rates.values())
        transfers = sum(len(t.transfers) for t in trees)
        assert transfers == 0 or total > 0


class TestConcatenate:
    def test_periods_chain_and_throughput_is_harmonic(self):
        s1 = schedule_from_rates({("a", "b", "x"): (Fraction(1, 2), 1)},
                                 throughput=Fraction(1, 2),
                                 deliveries={"x": "b"}, name="s1")
        s2 = schedule_from_rates({("b", "c", "y"): (Fraction(1, 4), 1)},
                                 throughput=Fraction(1, 4),
                                 deliveries={"y": "c"}, name="s2")
        seq = concatenate_schedules([retag_schedule(s1, 0),
                                     retag_schedule(s2, 1)])
        # stage 1: 1 op / 2 units; stage 2: 1 op / 4 units -> 1 op / 6
        assert seq.throughput == Fraction(1, 6)
        assert seq.period == 6
        assert seq.validate() == []
        assert seq.delivery_mode == "sum"

    def test_ops_per_period_must_be_integral(self):
        s = schedule_from_rates({("a", "b", "x"): (Fraction(1, 2), 1)},
                                throughput=Fraction(1, 2),
                                deliveries={"x": "b"})
        s.throughput = Fraction(1, 3)  # corrupt: 2/3 ops per period
        with pytest.raises(ValueError, match="not a positive"):
            concatenate_schedules([s])

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            concatenate_schedules([])


class TestReplicas:
    def test_landing_fans_out_and_delivers(self):
        """One a->b stream; at b each instance replicates into a delivery
        token and a forwarded copy for c."""
        rates = {("a", "b", "x"): (1, 1),
                 ("b", "c", "fwd"): (1, 1)}
        sched = schedule_from_rates(
            rates, throughput=1,
            deliveries={"dlv-b": "b", "fwd": "c"},
            replicas={("b", "x"): ("dlv-b", "fwd")},
            delivery_mode="sum")
        supplies = {("a", "x"): lambda seq: ("payload", seq)}
        res = simulate_schedule(sched, supplies, 10,
                                expected=lambda item, seq: ("payload", seq))
        assert res.correct
        # both streams deliver (modulo one warm-up period for the hop)
        assert len(res.delivery_times["dlv-b"]) == 10
        assert len(res.delivery_times["fwd"]) == 9

    def test_replica_at_other_node_is_left_alone(self):
        """The fan-out rule is node-keyed: an identical item landing at a
        different node must not replicate."""
        rates = {("a", "b", "x"): (1, 1),
                 ("b", "c", "x"): (1, 1)}
        sched = schedule_from_rates(
            rates, throughput=1, deliveries={"dlv": "c"},
            replicas={("c", "x"): ("dlv",)}, delivery_mode="sum")
        supplies = {("a", "x"): lambda seq: seq}
        res = simulate_schedule(sched, supplies, 10)
        assert res.correct
        assert len(res.delivery_times["dlv"]) == 9

    def test_empty_replica_absorbs(self):
        rates = {("a", "b", "x"): (1, Fraction(1, 2))}
        sched = schedule_from_rates(
            rates, throughput=1, deliveries={"never": "z"},
            replicas={("b", "x"): ()}, delivery_mode="sum")
        supplies = {("a", "x"): lambda seq: seq}
        res = simulate_schedule(sched, supplies, 5)
        assert res.one_port_violations == []
        assert res.delivery_times["never"] == []

    def test_scaled_keeps_replicas_and_mode(self):
        rates = {("a", "b", "x"): (Fraction(1, 2), 1)}
        sched = schedule_from_rates(
            rates, throughput=Fraction(1, 2), deliveries={"x": "b"},
            replicas={("b", "q"): ("r",)}, delivery_mode="sum")
        doubled = sched.scaled(2)
        assert doubled.replicas == sched.replicas
        assert doubled.delivery_mode == "sum"
