"""Arborescence packing: negative paths and the tight-cut regrowth branch.

The happy path (every shipped tier and the random-platform sweeps) never
leaves the greedy's fast lane; these tests pin the defensive machinery:

- a *genuine multicast gap* — per-target max-flows carry the demand but
  no arborescence packing can (the directed Steiner gap) — must raise
  :class:`ArborescencePackingError` rather than loop or underfill,
- insufficient capacities are rejected before any packing starts,
- the parametric cut bound's zero-weight answer (an arborescence
  double-crossing an already-tight cut) must trigger the Lovász regrowth
  branch and still pack the full demand.
"""

from fractions import Fraction

import pytest

import repro.core.arborescence as arb_mod
from repro.core.arborescence import (
    Arborescence,
    ArborescencePackingError,
    max_flow,
    pack_arborescences,
)

H = Fraction(1, 2)


def _steiner_gap_caps():
    """The classic directed Steiner packing gap gadget.

    Source ``s``, relay-only nodes ``u1..u3``, targets ``t1..t3``; every
    ``s->ui`` and every ``ui->tj`` (i != j) carries 1/2.  Each target has
    max-flow 1 (two disjoint relay routes), but every arborescence
    covering all three targets needs at least two relays, i.e. two of
    the three ``s->ui`` edges: total s-layer capacity 3/2 caps any
    packing at 3/4 < 1.
    """
    caps = {}
    for i in (1, 2, 3):
        caps[("s", f"u{i}")] = H
        for j in (1, 2, 3):
            if i != j:
                caps[(f"u{i}", f"t{j}")] = H
    return caps


class TestMulticastGap:
    def test_per_target_flows_carry_the_demand(self):
        caps = _steiner_gap_caps()
        for t in ("t1", "t2", "t3"):
            val, _cut = max_flow(caps, "s", t)
            assert val == 1

    def test_gap_instance_raises_instead_of_underfilling(self):
        caps = _steiner_gap_caps()
        with pytest.raises(ArborescencePackingError):
            pack_arborescences(caps, "s", ["t1", "t2", "t3"], total=1)

    def test_achievable_fraction_of_the_gap_instance_packs(self):
        """3/4 — the true packing optimum of the gadget — still packs."""
        caps = _steiner_gap_caps()
        packed = pack_arborescences(caps, "s", ["t1", "t2", "t3"],
                                    total=Fraction(3, 4))
        assert sum(a.weight for a in packed) == Fraction(3, 4)
        used = {}
        for a in packed:
            for e in a.edges:
                used[e] = used.get(e, 0) + a.weight
        assert all(w <= caps[e] for e, w in used.items())

    def test_insufficient_capacity_is_rejected_up_front(self):
        caps = {("s", "a"): H}
        with pytest.raises(ArborescencePackingError, match="carry only"):
            pack_arborescences(caps, "s", ["a"], total=1)


class TestTightCutRegrowth:
    def _caps(self):
        """Both targets reachable at flow 2, but the source cut is tight:
        the greedy's first tree (both ``s`` edges) double-crosses it."""
        return {("s", "a"): 1, ("s", "b"): 1,
                ("a", "b"): 1, ("b", "a"): 1}

    def test_packs_fully_through_the_regrowth_branch(self, monkeypatch):
        caps = self._caps()
        calls = []
        original = arb_mod._find_arborescence

        def spy(cap, source, targets, tight_cuts=()):
            calls.append(tuple(frozenset(c) for c in tight_cuts))
            return original(cap, source, targets, tight_cuts)

        monkeypatch.setattr(arb_mod, "_find_arborescence", spy)
        packed = pack_arborescences(caps, "s", ["a", "b"], total=2)
        assert sum(a.weight for a in packed) == 2
        # the zero-weight answer pinned the tight source cut and the
        # packing regrew around it (second call sees the recorded cut)
        assert any(cuts and frozenset({"s"}) in cuts for cuts in calls)
        # regrown trees cross the tight cut exactly once
        for a in packed:
            assert sum(1 for (i, _j) in a.edges if i == "s") == 1

    def test_packed_weights_respect_capacities(self):
        packed = pack_arborescences(self._caps(), "s", ["a", "b"], total=2)
        used = {}
        for a in packed:
            assert isinstance(a, Arborescence)
            for e in a.edges:
                used[e] = used.get(e, 0) + a.weight
        caps = self._caps()
        assert all(w <= caps[e] for e, w in used.items())
