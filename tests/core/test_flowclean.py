"""Unit tests for flow cleaning (cycle removal / path decomposition)."""

from fractions import Fraction

import pytest

from repro.core.flowclean import (
    clean_commodity, decompose_paths, divergence, paths_to_flow, remove_cycles,
)


class TestRemoveCycles:
    def test_pure_cycle_vanishes(self):
        flow = {("a", "b"): 2, ("b", "c"): 2, ("c", "a"): 2}
        assert remove_cycles(flow) == {}

    def test_acyclic_flow_unchanged(self):
        flow = {("s", "a"): 3, ("a", "t"): 3}
        assert remove_cycles(flow) == flow

    def test_partial_cycle_cancelled(self):
        # path s->a->t of value 1 superposed with cycle a->b->a of value 2
        flow = {("s", "a"): 1, ("a", "t"): 1, ("a", "b"): 2, ("b", "a"): 2}
        out = remove_cycles(flow)
        assert out == {("s", "a"): 1, ("a", "t"): 1}

    def test_divergence_preserved(self):
        flow = {("s", "a"): 5, ("a", "t"): 3, ("a", "b"): 2,
                ("b", "a"): 0, ("b", "t"): 2}
        flow = {k: v for k, v in flow.items() if v}
        before = divergence(flow)
        after = divergence(remove_cycles(flow))
        for node in set(before) | set(after):
            assert before.get(node, 0) == after.get(node, 0)

    def test_two_node_cycle(self):
        flow = {("a", "b"): Fraction(1, 3), ("b", "a"): Fraction(1, 3)}
        assert remove_cycles(flow) == {}

    def test_nested_cycles(self):
        flow = {("a", "b"): 2, ("b", "a"): 1, ("b", "c"): 1, ("c", "a"): 1}
        out = remove_cycles(flow)
        assert out == {}


class TestDecomposePaths:
    def test_single_path(self):
        flow = {("s", "a"): 2, ("a", "t"): 2}
        paths = decompose_paths(flow, "s", "t")
        assert paths == [(["s", "a", "t"], 2)]

    def test_two_route_split(self):
        flow = {("s", "a"): 1, ("a", "t"): 1, ("s", "b"): 2, ("b", "t"): 2}
        paths = decompose_paths(flow, "s", "t")
        assert sum(w for _, w in paths) == 3
        assert {tuple(p) for p, _ in paths} == {("s", "a", "t"), ("s", "b", "t")}

    def test_demand_caps_extraction(self):
        flow = {("s", "t"): 5}
        paths = decompose_paths(flow, "s", "t", demand=2)
        assert paths == [(["s", "t"], 2)]

    def test_junk_flow_ignored(self):
        # genuine path s->t plus junk t->x
        flow = {("s", "t"): 1, ("t", "x"): 7}
        paths = decompose_paths(flow, "s", "t")
        assert paths == [(["s", "t"], 1)]

    def test_paths_to_flow_roundtrip(self):
        paths = [(["s", "a", "t"], Fraction(1, 2)), (["s", "t"], Fraction(1, 3))]
        flow = paths_to_flow(paths)
        assert flow[("s", "a")] == Fraction(1, 2)
        assert flow[("s", "t")] == Fraction(1, 3)
        back = decompose_paths(flow, "s", "t")
        assert sum(w for _, w in back) == Fraction(5, 6)


class TestCleanCommodity:
    def test_drops_cycles_and_junk(self):
        flow = {("s", "a"): 1, ("a", "t"): 1,       # genuine
                ("x", "y"): 3, ("y", "x"): 3,       # cycle
                ("t", "z"): 2, ("z", "s"): 2}       # junk return path
        cleaned, paths = clean_commodity(flow, "s", "t", demand=1)
        assert cleaned == {("s", "a"): 1, ("a", "t"): 1}
        assert len(paths) == 1

    def test_insufficient_flow_raises(self):
        with pytest.raises(ValueError):
            clean_commodity({("s", "t"): 1}, "s", "t", demand=2)

    def test_exact_fractions_survive(self):
        flow = {("s", "t"): Fraction(2, 9)}
        cleaned, _ = clean_commodity(flow, "s", "t", demand=Fraction(2, 9))
        assert cleaned[("s", "t")] == Fraction(2, 9)

    def test_float_eps_tolerance(self):
        flow = {("s", "t"): 0.5, ("t", "s"): 1e-15}
        cleaned, _ = clean_commodity(flow, "s", "t", demand=0.5 - 1e-12,
                                     eps=1e-12)
        assert ("t", "s") not in cleaned


class TestDivergence:
    def test_divergence_signs(self):
        flow = {("s", "a"): 2, ("a", "t"): 2}
        d = divergence(flow)
        assert d["s"] == 2 and d["t"] == -2 and d["a"] == 0
