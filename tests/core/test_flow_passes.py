"""The FlowPass pipeline: individual passes and composition rules."""

from fractions import Fraction

import pytest

from repro.core.flowclean import (
    CleanCommodityPass,
    FlowContext,
    FlowPass,
    PruneEpsilonRatesPass,
    RemoveCyclesPass,
    prune_epsilon_rates,
    run_passes,
)


class TestPruneEpsilonRates:
    def test_drops_small_and_negative(self):
        flow = {("a", "b"): 1e-12, ("b", "c"): -1e-12, ("c", "d"): 0.5}
        assert prune_epsilon_rates(flow, eps=1e-9) == {("c", "d"): 0.5}

    def test_exact_mode_drops_only_nonpositive(self):
        flow = {("a", "b"): Fraction(1, 10**9), ("b", "c"): 0}
        assert prune_epsilon_rates(flow, eps=0) == \
            {("a", "b"): Fraction(1, 10**9)}

    def test_pass_object(self):
        ctx = FlowContext(commodity="x", flow={("a", "b"): 1e-12}, eps=1e-9)
        PruneEpsilonRatesPass().run(ctx)
        assert ctx.flow == {}


class TestRemoveCyclesPass:
    def test_cancels_cycle_keeps_path(self):
        flow = {("s", "a"): 1, ("a", "t"): 1,
                ("a", "b"): Fraction(1, 2), ("b", "a"): Fraction(1, 2)}
        ctx = FlowContext(commodity="x", flow=flow)
        RemoveCyclesPass().run(ctx)
        assert ctx.flow == {("s", "a"): 1, ("a", "t"): 1}


class TestCleanCommodityPass:
    def test_produces_paths(self):
        ctx = FlowContext(commodity="x",
                          flow={("s", "a"): 1, ("a", "t"): 1},
                          source="s", sink="t", demand=1)
        CleanCommodityPass().run(ctx)
        assert ctx.paths == [(["s", "a", "t"], 1)]

    def test_requires_endpoints_flag_skips_in_pipeline(self):
        ctx = FlowContext(commodity=(0, 1), flow={("s", "a"): 1})
        out = run_passes([CleanCommodityPass()], ctx)
        assert out.paths is None  # skipped: no endpoints
        assert out.flow == {("s", "a"): 1}


class TestRunPasses:
    def test_order_matters_prune_then_clean(self):
        flow = {("s", "a"): 1.0, ("a", "t"): 1.0, ("a", "x"): 1e-13}
        ctx = FlowContext(commodity="m", flow=dict(flow), source="s",
                          sink="t", demand=1.0, eps=1e-9)
        run_passes([PruneEpsilonRatesPass(), CleanCommodityPass()], ctx)
        assert ("a", "x") not in ctx.flow
        assert sum(w for _, w in ctx.paths) == pytest.approx(1.0)

    def test_custom_pass_composes(self):
        class DoublePass(FlowPass):
            name = "double"

            def run(self, ctx):
                ctx.flow = {e: 2 * f for e, f in ctx.flow.items()}

        ctx = FlowContext(commodity="m", flow={("a", "b"): 3})
        run_passes([DoublePass(), DoublePass()], ctx)
        assert ctx.flow == {("a", "b"): 12}

    def test_base_pass_is_abstract(self):
        with pytest.raises(NotImplementedError):
            FlowPass().run(FlowContext(commodity="m", flow={}))
