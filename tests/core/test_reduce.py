"""Unit tests for the Series-of-Reduces pipeline (Section 4)."""

from fractions import Fraction

import pytest

from repro.core.reduce_op import ReduceProblem, build_reduce_lp, solve_reduce
from repro.platform.examples import triangle_platform
from repro.platform.generators import chain, clustered
from repro.platform.graph import PlatformGraph


class TestProblemValidation:
    def test_needs_two_participants(self, fig6):
        with pytest.raises(ValueError):
            ReduceProblem(fig6, participants=[0], target=0)

    def test_duplicate_participant_rejected(self, fig6):
        with pytest.raises(ValueError):
            ReduceProblem(fig6, participants=[0, 0, 1], target=0)

    def test_router_participant_rejected(self):
        g = clustered(2, 2, seed=0)
        hosts = g.compute_nodes()
        with pytest.raises(ValueError):
            ReduceProblem(g, participants=[hosts[0], "r0"], target=hosts[0])

    def test_owner_and_logical_index(self, fig6_problem):
        assert fig6_problem.owner(1) == 1
        assert fig6_problem.logical_index(2) == 2
        assert fig6_problem.logical_index("nope") is None

    def test_size_constant_and_callable(self, fig6):
        p1 = ReduceProblem(fig6, [0, 1, 2], 0, msg_size=10)
        assert p1.size((0, 1)) == 10
        p2 = ReduceProblem(fig6, [0, 1, 2], 0,
                           msg_size=lambda k, m: m - k + 1)
        assert p2.size((0, 2)) == 3

    def test_task_time_from_speed(self, fig6_problem):
        # node 0 has speed 2 -> tasks take 1/2
        assert fig6_problem.task_time(0, (0, 0, 1)) == Fraction(1, 2)
        assert fig6_problem.task_time(1, (0, 0, 1)) == 1

    def test_task_time_override(self, fig6):
        p = ReduceProblem(fig6, [0, 1, 2], 0,
                          task_time_fn=lambda node, task: 7)
        assert p.task_time(2, (0, 1, 2)) == 7


class TestLPStructure:
    def test_target_never_reemits_final(self, fig6_problem):
        lp = build_reduce_lp(fig6_problem)
        names = {v.name for v in lp.variables}
        assert "send[0->1,v[0,2]]" not in names
        assert "send[1->0,v[0,2]]" in names

    def test_routers_have_no_cons_variables(self):
        g = clustered(2, 1, seed=0)
        hosts = g.compute_nodes()
        problem = ReduceProblem(g, hosts, hosts[0])
        lp = build_reduce_lp(problem)
        assert not any(v.name.startswith("cons[r") for v in lp.variables)

    def test_lp_size_formula(self, fig6_problem):
        lp = build_reduce_lp(fig6_problem)
        # 6 directed edges x 6 intervals - 2 excluded (target final reemit
        # on its 2 out-edges) + 3 hosts x 4 tasks + TP
        assert lp.num_vars() == 6 * 6 - 2 + 12 + 1


class TestFigure6:
    def test_throughput_matches_paper(self, fig6_solution):
        assert fig6_solution.throughput == 1

    def test_exact_and_verified(self, fig6_solution):
        assert fig6_solution.exact
        assert fig6_solution.verify() == []

    def test_alpha_within_bounds(self, fig6_solution):
        for node in (0, 1, 2):
            assert 0 <= fig6_solution.alpha(node) <= 1

    def test_highs_agrees(self, fig6_problem):
        sol = solve_reduce(fig6_problem, backend="highs")
        assert abs(float(sol.throughput) - 1.0) < 1e-9

    def test_target_receives_exactly_tp(self, fig6_solution):
        full = (0, 2)
        arrived = sum(f for (i, j, vv), f in fig6_solution.send.items()
                      if j == 0 and vv == full)
        local = sum(r for (h, t), r in fig6_solution.cons.items()
                    if h == 0 and (t[0], t[2]) == full)
        assert arrived + local == 1


class TestOtherInstances:
    def test_two_node_reduce(self):
        g = PlatformGraph()
        g.add_node("a", 1)
        g.add_node("b", 1)
        g.add_link("a", "b", 1)
        sol = solve_reduce(ReduceProblem(g, ["a", "b"], "a"), backend="exact")
        # b sends v1 to a (1 time-unit), a merges (1 time-unit, overlapped)
        assert sol.throughput == 1

    def test_slow_link_bottleneck(self):
        g = PlatformGraph()
        g.add_node("a", 100)
        g.add_node("b", 100)
        g.add_link("a", "b", 4)
        sol = solve_reduce(ReduceProblem(g, ["a", "b"], "a"), backend="exact")
        assert sol.throughput == Fraction(1, 4)

    def test_slow_cpu_bottleneck(self):
        g = triangle_platform(speeds=(Fraction(1, 4), Fraction(1, 4), Fraction(1, 4)),
                              cost=Fraction(1, 100))
        sol = solve_reduce(ReduceProblem(g, [0, 1, 2], 0), backend="exact")
        # 2 merges per reduce, each takes 4 time-units, 3 CPUs available:
        # TP <= 3/8 from compute; communication is nearly free
        assert sol.throughput == Fraction(3, 8)

    def test_chain_reduce(self):
        g = chain(3, cost=1)
        sol = solve_reduce(ReduceProblem(g, ["p0", "p1", "p2"], "p0"),
                           backend="exact")
        assert sol.throughput > 0
        assert sol.verify() == []

    def test_target_may_be_router(self):
        g = clustered(2, 1, seed=0)
        hosts = g.compute_nodes()
        problem = ReduceProblem(g, hosts, "r0")
        sol = solve_reduce(problem, backend="exact")
        assert sol.throughput > 0

    def test_logical_order_matters(self):
        # a fast pair adjacent in logical order merges cheaply; reversing
        # the order across a slow cut cannot increase throughput
        g = PlatformGraph()
        g.add_node("a1", 10)
        g.add_node("a2", 10)
        g.add_node("b1", 10)
        g.add_link("a1", "a2", Fraction(1, 10))
        g.add_link("a1", "b1", 5)
        g.add_link("a2", "b1", 5)
        fast_adjacent = solve_reduce(
            ReduceProblem(g, ["a1", "a2", "b1"], "a1"), backend="exact")
        split_order = solve_reduce(
            ReduceProblem(g, ["a1", "b1", "a2"], "a1"), backend="exact")
        assert fast_adjacent.throughput >= split_order.throughput
