"""Unit tests for the interval/task algebra."""

import pytest

from repro.core import intervals as iv


class TestEnumeration:
    def test_interval_count_formula(self):
        for n in range(1, 8):
            assert len(iv.all_intervals(n)) == iv.interval_count(n)

    def test_task_count_formula(self):
        for n in range(2, 8):
            assert len(iv.all_tasks(n)) == iv.task_count(n)

    def test_n3_tasks_explicit(self):
        assert set(iv.all_tasks(3)) == {(0, 0, 1), (0, 0, 2), (0, 1, 2), (1, 1, 2)}

    def test_zero_values_rejected(self):
        with pytest.raises(ValueError):
            iv.all_intervals(0)

    def test_task_ordering_invariants(self):
        for (k, l, m) in iv.all_tasks(6):
            assert 0 <= k <= l < m <= 5


class TestIncidence:
    def test_task_output_and_inputs(self):
        assert iv.task_output((1, 2, 4)) == (1, 4)
        assert iv.task_inputs((1, 2, 4)) == ((1, 2), (3, 4))

    def test_producers_of_interval(self):
        assert iv.tasks_producing((1, 3)) == [(1, 1, 3), (1, 2, 3)]
        assert iv.tasks_producing((2, 2)) == []

    def test_left_consumers(self):
        assert iv.tasks_consuming_left((1, 2), 5) == [(1, 2, 3), (1, 2, 4)]

    def test_right_consumers(self):
        assert iv.tasks_consuming_right((2, 4)) == [(0, 1, 4), (1, 1, 4)]

    def test_full_interval_has_no_consumers(self):
        n = 5
        assert iv.tasks_consuming(iv.full_interval(n), n) == []

    def test_consumers_and_producers_are_consistent(self):
        # if T consumes I on the left, I is T's left input
        n = 6
        for interval in iv.all_intervals(n):
            for t in iv.tasks_consuming_left(interval, n):
                assert iv.task_inputs(t)[0] == interval
            for t in iv.tasks_consuming_right(interval):
                assert iv.task_inputs(t)[1] == interval

    def test_every_task_appears_in_its_inputs_consumer_lists(self):
        n = 5
        for t in iv.all_tasks(n):
            left, right = iv.task_inputs(t)
            assert t in iv.tasks_consuming_left(left, n)
            assert t in iv.tasks_consuming_right(right)


class TestPredicates:
    def test_is_leaf(self):
        assert iv.is_leaf((3, 3)) and not iv.is_leaf((3, 4))

    def test_full_interval(self):
        assert iv.full_interval(4) == (0, 3)

    def test_subdivides(self):
        assert iv.subdivides((0, 5), (2, 3))
        assert not iv.subdivides((2, 3), (0, 5))
        assert iv.subdivides((1, 4), (1, 4))

    def test_validate_tree_intervals_tiling(self):
        assert iv.validate_tree_intervals([(0, 1), (2, 2), (3, 4)], 5)
        assert not iv.validate_tree_intervals([(0, 1), (1, 2)], 3)  # overlap
        assert not iv.validate_tree_intervals([(0, 0)], 2)  # gap
