"""Property-based tests for the exact simplex.

Core invariant: for any randomly generated feasible-bounded LP, the exact
solver's answer (a) is feasible bit-exactly, (b) matches HiGHS's float
optimum, and (c) is reproducible.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.lp.exact_simplex import ExactSimplexSolver
from repro.lp.highs import HighsSolver
from repro.lp.model import LinearProgram
from repro.lp.solution import SolveStatus

coef = st.integers(min_value=0, max_value=6)
obj_coef = st.integers(min_value=1, max_value=5)
rhs = st.integers(min_value=1, max_value=20)


@st.composite
def bounded_lps(draw):
    """Random max-LPs of the packing form c.x s.t. Ax <= b, 0 <= x <= 10:
    always feasible (x = 0) and always bounded (upper bounds)."""
    n = draw(st.integers(min_value=1, max_value=5))
    m = draw(st.integers(min_value=1, max_value=6))
    lp = LinearProgram("prop")
    xs = [lp.var(f"x{i}", ub=10) for i in range(n)]
    for j in range(m):
        row = [draw(coef) for _ in range(n)]
        b = draw(rhs)
        lp.add(sum(c * x for c, x in zip(row, xs)) <= b, name=f"r{j}")
    lp.maximize(sum(draw(obj_coef) * x for x in xs))
    return lp


class TestSimplexProperties:
    @given(bounded_lps())
    @settings(max_examples=40, deadline=None)
    def test_optimal_and_exactly_feasible(self, lp):
        s = ExactSimplexSolver().solve(lp)
        assert s.status is SolveStatus.OPTIMAL
        assert lp.check_feasible(s.values, tol=0) == []
        assert all(isinstance(v, (int, Fraction)) for v in s.values.values())

    @given(bounded_lps())
    @settings(max_examples=30, deadline=None)
    def test_matches_highs_objective(self, lp):
        exact = ExactSimplexSolver().solve(lp)
        approx = HighsSolver().solve(lp)
        assert approx.status is SolveStatus.OPTIMAL
        assert float(exact.objective) == pytest.approx(float(approx.objective),
                                                       rel=1e-7, abs=1e-7)

    @given(bounded_lps())
    @settings(max_examples=15, deadline=None)
    def test_deterministic(self, lp):
        s1 = ExactSimplexSolver().solve(lp)
        s2 = ExactSimplexSolver().solve(lp)
        assert s1.objective == s2.objective and s1.values == s2.values

    @given(bounded_lps(), st.integers(min_value=1, max_value=5))
    @settings(max_examples=20, deadline=None)
    def test_scaling_objective_scales_optimum(self, lp, k):
        s1 = ExactSimplexSolver().solve(lp)
        lp2 = LinearProgram()
        xs = [lp2.var(v.name, lb=v.lb, ub=v.ub) for v in lp.variables]
        for c in lp.constraints:
            expr = sum((coef * xs[i] for i, coef in c.expr.coefs.items()),
                       c.expr.constant)
            lp2.add(expr <= 0 if c.sense == "<=" else expr >= 0)
        lp2.maximize(sum(k * coef * xs[i]
                         for i, coef in lp.objective.coefs.items()))
        s2 = ExactSimplexSolver().solve(lp2)
        assert s2.objective == k * s1.objective
