"""Property-based tests for flow cleaning and matching decomposition."""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.core.flowclean import (
    decompose_paths, divergence, paths_to_flow, remove_cycles,
)
from repro.core.matching import decompose_matchings

weight = st.fractions(min_value=Fraction(1, 12), max_value=Fraction(4),
                      max_denominator=12)


@st.composite
def random_flows(draw):
    """Random flows on a small node set (arbitrary divergence)."""
    n = draw(st.integers(min_value=2, max_value=6))
    nodes = [f"n{i}" for i in range(n)]
    m = draw(st.integers(min_value=1, max_value=12))
    flow = {}
    for _ in range(m):
        u = draw(st.sampled_from(nodes))
        v = draw(st.sampled_from([x for x in nodes if x != u]))
        flow[(u, v)] = flow.get((u, v), 0) + draw(weight)
    return flow


@st.composite
def path_flows(draw):
    """Superpositions of s->t paths (guaranteed decomposable demand)."""
    n = draw(st.integers(min_value=2, max_value=5))
    inner = [f"m{i}" for i in range(n)]
    k = draw(st.integers(min_value=1, max_value=5))
    paths = []
    for _ in range(k):
        hops = draw(st.lists(st.sampled_from(inner), min_size=0, max_size=3,
                             unique=True))
        paths.append((["s"] + hops + ["t"], draw(weight)))
    return paths


class TestCycleRemoval:
    @given(random_flows())
    @settings(max_examples=50, deadline=None)
    def test_divergence_preserved_and_acyclic(self, flow):
        out = remove_cycles(flow)
        d_in, d_out = divergence(flow), divergence(out)
        for node in set(d_in) | set(d_out):
            assert d_in.get(node, 0) == d_out.get(node, 0)
        # re-running finds nothing more to cancel
        assert remove_cycles(out) == out

    @given(random_flows())
    @settings(max_examples=50, deadline=None)
    def test_never_increases_flow(self, flow):
        out = remove_cycles(flow)
        for e, f in out.items():
            assert f <= flow[e]


class TestPathDecomposition:
    @given(path_flows())
    @settings(max_examples=50, deadline=None)
    def test_full_demand_recovered(self, paths):
        demand = sum(w for _, w in paths)
        flow = paths_to_flow(paths)
        got = decompose_paths(flow, "s", "t", demand=demand)
        assert sum(w for _, w in got) == demand

    @given(path_flows())
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_dominated_and_demand_preserved(self, paths):
        # Superposing s->t paths may create incidental cycles (two paths
        # crossing in opposite directions); decomposition drops those, so
        # the roundtrip is edgewise dominated but demand-lossless.
        flow = paths_to_flow(paths)
        got = decompose_paths(flow, "s", "t")
        back = paths_to_flow(got)
        for e, f in back.items():
            assert f <= flow[e]
        assert sum(w for _, w in got) == sum(w for _, w in paths)


@st.composite
def bipartite_weights(draw):
    ns = draw(st.integers(min_value=1, max_value=5))
    nr = draw(st.integers(min_value=1, max_value=5))
    m = draw(st.integers(min_value=1, max_value=10))
    seen = {}
    for _ in range(m):
        u = draw(st.integers(min_value=0, max_value=ns - 1))
        v = draw(st.integers(min_value=0, max_value=nr - 1))
        seen[(f"s{u}", f"r{v}")] = seen.get((f"s{u}", f"r{v}"), 0) + draw(weight)
    return [(u, v, w) for (u, v), w in seen.items()]


class TestMatchingProperties:
    @given(bipartite_weights())
    @settings(max_examples=50, deadline=None)
    def test_decomposition_exact_and_disjoint(self, edges):
        ms = decompose_matchings(edges)
        # every matching node-disjoint
        for m in ms:
            snd = [u for u, _ in m.pairs]
            rcv = [v for _, v in m.pairs]
            assert len(snd) == len(set(snd))
            assert len(rcv) == len(set(rcv))
        # weights reproduced exactly
        shipped = {}
        for m in ms:
            for pair in m.pairs:
                shipped[pair] = shipped.get(pair, 0) + m.duration
        assert shipped == {(u, v): w for (u, v, w) in edges}

    @given(bipartite_weights())
    @settings(max_examples=50, deadline=None)
    def test_total_duration_equals_max_degree(self, edges):
        du = {}
        dv = {}
        for (u, v, w) in edges:
            du[u] = du.get(u, 0) + w
            dv[v] = dv.get(v, 0) + w
        cap = max(list(du.values()) + list(dv.values()))
        ms = decompose_matchings(edges)
        assert sum((m.duration for m in ms), 0) == cap

    @given(bipartite_weights())
    @settings(max_examples=30, deadline=None)
    def test_matching_count_polynomial(self, edges):
        ms = decompose_matchings(edges)
        nodes = {u for u, _, _ in edges} | {v for _, v, _ in edges}
        assert len(ms) <= len(edges) + len(nodes) + 2
