"""Property-based tests of the whole scatter/reduce pipelines on random
platforms: LP invariants, schedule invariants, simulation invariants.

These are the reproduction's load-bearing guarantees:

- the LP solution always satisfies the one-port and conservation laws,
- the schedule never violates one-port (checked two ways: statically and on
  the simulated trace) and achieves the LP throughput up to warm-up,
- reduce trees always re-compose to the LP solution (Lemma 2) and the
  simulated reduction values equal the non-commutative reference.
"""


from hypothesis import given, settings, strategies as st

from repro.core.reduce_op import ReduceProblem, solve_reduce
from repro.core.scatter import ScatterProblem, build_scatter_schedule, solve_scatter
from repro.core.schedule import build_reduce_schedule
from repro.core.trees import incidence, solution_op_values, trees_weight_sum
from repro.platform.generators import random_connected
from repro.sim.executor import simulate_reduce, simulate_scatter
from repro.sim.operators import MatMul2x2Mod


@st.composite
def scatter_instances(draw):
    n = draw(st.integers(min_value=3, max_value=7))
    extra = draw(st.integers(min_value=0, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    g = random_connected(n, extra_edges=extra, seed=seed)
    nodes = g.nodes()
    n_targets = draw(st.integers(min_value=1, max_value=min(3, n - 1)))
    return ScatterProblem(g, nodes[0], nodes[1:1 + n_targets])


@st.composite
def reduce_instances(draw):
    n = draw(st.integers(min_value=3, max_value=5))
    extra = draw(st.integers(min_value=0, max_value=2))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    g = random_connected(n, extra_edges=extra, seed=seed)
    nodes = g.nodes()
    n_parts = draw(st.integers(min_value=2, max_value=min(4, n)))
    participants = nodes[:n_parts]
    target = draw(st.sampled_from(participants))
    return ReduceProblem(g, participants, target)


class TestScatterPipelineProperties:
    @given(scatter_instances())
    @settings(max_examples=12, deadline=None)
    def test_lp_invariants(self, problem):
        sol = solve_scatter(problem, backend="exact")
        assert sol.throughput > 0
        assert sol.verify() == []

    @given(scatter_instances())
    @settings(max_examples=8, deadline=None)
    def test_schedule_and_simulation(self, problem):
        sol = solve_scatter(problem, backend="exact")
        sched = build_scatter_schedule(sol)
        assert sched.validate() == []
        res = simulate_scatter(sched, problem, n_periods=20)
        assert res.errors == []
        assert res.one_port_violations == []
        bound = float(sol.throughput) * float(res.horizon)
        assert res.completed_ops() <= bound + 1e-9


class TestReducePipelineProperties:
    @given(reduce_instances())
    @settings(max_examples=8, deadline=None)
    def test_lp_and_tree_invariants(self, problem):
        sol = solve_reduce(problem, backend="exact")
        assert sol.throughput > 0
        assert sol.verify() == []
        trees = sol.extract()
        assert trees_weight_sum(trees) == sol.throughput
        inc = incidence(trees)
        a = solution_op_values(sol)
        assert inc == {k: v for k, v in a.items() if v != 0}

    @given(reduce_instances())
    @settings(max_examples=6, deadline=None)
    def test_schedule_and_noncommutative_simulation(self, problem):
        sol = solve_reduce(problem, backend="exact")
        sched = build_reduce_schedule(sol)
        assert sched.validate() == []
        res = simulate_reduce(sched, problem, n_periods=25, op=MatMul2x2Mod)
        assert res.errors == []
        assert res.one_port_violations == []
        bound = float(sol.throughput) * float(res.horizon)
        assert res.completed_ops() <= bound + 1e-9
