"""Property-based tests for broadcast and the composed collectives on
random heterogeneous platforms.

Load-bearing guarantees of the composition layer:

- the broadcast LP dominates scatter (content sharing never hurts) and
  its arborescence packing always reconstructs the full throughput with
  edge usage inside the content rates,
- composite schedules never violate one-port (statically and on the
  simulated trace) and respect the LP bound,
- the sequential all-reduce throughput is exactly the harmonic
  composition of its stage throughputs on every instance.
"""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.collectives import schedule_collective, solve_collective
from repro.core.allreduce import AllReduceProblem
from repro.core.broadcast import BroadcastProblem, solve_broadcast
from repro.core.scatter import ScatterProblem, solve_scatter
from repro.platform.generators import heterogenize, random_connected
from repro.sim.executor import simulate_collective


@st.composite
def broadcast_instances(draw):
    n = draw(st.integers(min_value=3, max_value=7))
    extra = draw(st.integers(min_value=0, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    g = random_connected(n, extra_edges=extra, seed=seed)
    if draw(st.booleans()):
        g = heterogenize(g, seed=seed, cost_choices=(1, 2, 3),
                         speed_choices=(1,))
    nodes = g.nodes()
    n_targets = draw(st.integers(min_value=1, max_value=min(3, n - 1)))
    return BroadcastProblem(g, nodes[0], nodes[1:1 + n_targets])


@st.composite
def allreduce_instances(draw):
    n = draw(st.integers(min_value=3, max_value=5))
    extra = draw(st.integers(min_value=0, max_value=2))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    g = heterogenize(random_connected(n, extra_edges=extra, seed=seed),
                     seed=seed, cost_choices=(1, 2), speed_choices=(1, 2))
    nodes = g.nodes()
    n_parts = draw(st.integers(min_value=2, max_value=min(3, n)))
    return AllReduceProblem(g, nodes[:n_parts])


class TestBroadcastProperties:
    @given(broadcast_instances())
    @settings(max_examples=10, deadline=None)
    def test_content_sharing_dominates_scatter(self, problem):
        bc = solve_broadcast(problem, backend="exact")
        sc = solve_scatter(ScatterProblem(problem.platform, problem.source,
                                          problem.targets), backend="exact")
        assert bc.throughput >= sc.throughput
        assert bc.verify() == []

    @given(broadcast_instances())
    @settings(max_examples=8, deadline=None)
    def test_packing_reconstructs_throughput_within_content(self, problem):
        sol = solve_broadcast(problem, backend="exact")
        arbs = sol.arborescences()
        assert sum(a.weight for a in arbs) == sol.throughput
        usage = {}
        for a in arbs:
            for e in a.edges:
                usage[e] = usage.get(e, 0) + a.weight
        assert all(u <= sol.send[e] for e, u in usage.items())

    @given(broadcast_instances())
    @settings(max_examples=6, deadline=None)
    def test_schedule_and_replicated_simulation(self, problem):
        sol = solve_broadcast(problem, backend="exact")
        sched = schedule_collective(sol)
        assert sched.validate() == []
        res = simulate_collective(sched, problem, n_periods=15,
                                  collective="broadcast")
        assert res.errors == []
        assert res.one_port_violations == []
        bound = float(sol.throughput) * float(res.horizon) \
            * len(problem.targets)
        assert res.completed_ops() <= bound + 1e-9


class TestAllReduceProperties:
    @given(allreduce_instances())
    @settings(max_examples=6, deadline=None)
    def test_harmonic_composition_holds_everywhere(self, problem):
        sol = solve_collective(problem, collective="all-reduce",
                               backend="exact")
        rs, ag = sol.stage_solutions
        assert sol.throughput == \
            1 / (1 / Fraction(rs.throughput) + 1 / Fraction(ag.throughput))
        assert sol.verify() == []
        assert all(0 < o <= 1 for o in sol.edge_occupation().values())

    @given(allreduce_instances())
    @settings(max_examples=4, deadline=None)
    def test_composed_schedule_simulates_correctly(self, problem):
        sol = solve_collective(problem, collective="all-reduce",
                               backend="exact")
        sched = schedule_collective(sol)
        assert sched.validate() == []
        res = simulate_collective(sched, problem, n_periods=10)
        assert res.errors == []
        assert res.one_port_violations == []
