"""Property tests for the schedule algebra: superposition, concatenation
and the pipelined retiming path on randomized rate bundles.

Invariants under test:

- **Superposition**: the merged schedule's period makes every rate
  integral (lcm rescale), per-port busy time equals the sum of the
  bundles' ``rate * unit_time * T`` loads exactly, and item collisions
  across bundles are rejected rather than silently merged.
- **Concatenation**: the super-period is the sum of the rescaled stage
  periods (lcm of the per-period op counts) and the throughput is the
  harmonic composition.
- **Retiming** (:func:`repro.core.schedule.retime_for_chaining`): a pure
  slot permutation — period, per-period counts, per-port busy times and
  the multiset of slots are all preserved, ``validate()`` stays clean,
  and the class ordering (produce-only slots before chained departures)
  holds.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.schedule import (
    ChainLink,
    RateBundle,
    concatenate_schedules,
    retag_schedule,
    retime_for_chaining,
    schedule_from_rates,
    superpose_schedules,
)

NODES = ["a", "b", "c", "d"]


@st.composite
def rate_bundles(draw, stage: int, max_edges: int = 4):
    """A feasible random bundle: rates scaled so every port load < 1."""
    n_edges = draw(st.integers(min_value=1, max_value=max_edges))
    entries = {}
    for e in range(n_edges):
        src = draw(st.sampled_from(NODES))
        dst = draw(st.sampled_from([n for n in NODES if n != src]))
        num = draw(st.integers(min_value=1, max_value=4))
        den = draw(st.sampled_from([2, 3, 4, 6]))
        unit = draw(st.sampled_from([1, 2, Fraction(1, 2)]))
        entries[(src, dst, ("it", stage, e))] = (Fraction(num, den), unit)
    # normalize: divide every rate by (2 * worst port load) so the union
    # of several bundles still fits the one-port budget
    load = {}
    for (i, j, _it), (r, u) in entries.items():
        load[i] = load.get(i, 0) + r * u
        load[j] = load.get(j, 0) + r * u
    scale = Fraction(1, 2) / max(load.values())
    rates = {k: (r * scale, u) for k, (r, u) in entries.items()}
    deliveries = {it: j for (_i, j, it) in rates}
    return RateBundle(rates=rates, deliveries=deliveries)


def _port_busy_from_rates(rates, T):
    snd, rcv = {}, {}
    for (i, j, _it), (r, u) in rates.items():
        snd[i] = snd.get(i, 0) + r * u * T
        rcv[j] = rcv.get(j, 0) + r * u * T
    return snd, rcv


class TestSuperposeProperties:
    @given(rate_bundles(stage=0), rate_bundles(stage=1))
    @settings(max_examples=25, deadline=None)
    def test_period_rescale_and_busy_time_conservation(self, b0, b1):
        tp = Fraction(1, 2)
        sched = superpose_schedules([b0, b1], throughput=tp)
        assert sched.validate() == []
        merged = dict(b0.rates)
        merged.update(b1.rates)
        # lcm rescale: every per-period count is a positive integer
        for (i, j, it), (r, _u) in merged.items():
            n = r * sched.period
            assert n == int(n) and n >= 1
        # busy-time conservation: schedule port busy == sum of rate loads
        snd, rcv = _port_busy_from_rates(merged, sched.period)
        for node in NODES:
            s, r = sched.busy_time(node)
            assert s == snd.get(node, 0)
            assert r == rcv.get(node, 0)

    @given(rate_bundles(stage=0))
    @settings(max_examples=10, deadline=None)
    def test_item_collisions_are_rejected(self, b0):
        with pytest.raises(ValueError, match="duplicate"):
            superpose_schedules([b0, b0], throughput=1)

    @given(rate_bundles(stage=0), rate_bundles(stage=1))
    @settings(max_examples=15, deadline=None)
    def test_tagged_bundles_never_collide(self, b0, b1):
        sched = superpose_schedules([b0.tagged(0), b1.tagged(1)],
                                    throughput=Fraction(1, 2))
        assert sched.validate() == []


class TestConcatenateProperties:
    @given(rate_bundles(stage=0), rate_bundles(stage=1))
    @settings(max_examples=20, deadline=None)
    def test_period_is_lcm_rescaled_sum_and_throughput_harmonic(self, b0, b1):
        tps = [Fraction(1, 3), Fraction(1, 4)]
        scheds = []
        for k, (b, tp) in enumerate(zip([b0, b1], tps)):
            s = schedule_from_rates(b.rates, throughput=tp,
                                    deliveries=b.deliveries, name=f"s{k}")
            scheds.append(retag_schedule(s, k))
        seq = concatenate_schedules(scheds)
        assert seq.validate() == []
        ops = [s.throughput * s.period for s in scheds]
        n_ops = seq.throughput * seq.period
        assert n_ops == int(n_ops)
        assert seq.period == sum((n_ops / o) * s.period
                                 for o, s in zip(ops, scheds))
        assert seq.throughput == 1 / (1 / tps[0] + 1 / tps[1])
        # per-port busy conserved across the chaining
        for node in NODES:
            assert seq.busy_time(node) == tuple(
                sum(x) for x in zip(*[
                    tuple(v * (n_ops / o) for v in s.busy_time(node))
                    for o, s in zip(ops, scheds)]))


class TestRetimingProperties:
    @given(rate_bundles(stage=0), rate_bundles(stage=1),
           st.randoms(use_true_random=False))
    @settings(max_examples=25, deadline=None)
    def test_retiming_is_a_pure_slot_permutation(self, b0, b1, rng):
        tp = Fraction(1, 2)
        base = superpose_schedules([b0, b1], throughput=tp)
        # chain a random produced delivery to a random consumed departure
        produced = rng.choice(sorted(b0.deliveries, key=str))
        (ci, _cj, citem) = rng.choice(sorted(b1.rates, key=str))
        link = ChainLink(label="ln", produced=(produced,), consumer=ci,
                         consumed=((citem, "s"),))
        ret = retime_for_chaining(base, (link,))
        assert ret.chain_links == (link,)
        assert ret.period == base.period
        assert ret.per_period == base.per_period
        assert ret.deliveries == base.deliveries
        assert ret.validate() == []
        # the slot multiset is untouched (permutation only)
        key = lambda s: (str(s.duration),  # noqa: E731
                         tuple(sorted((str(t.src), str(t.dst), str(t.item),
                                       str(t.units)) for t in s.transfers)))
        assert sorted(map(key, ret.slots)) == sorted(map(key, base.slots))
        # per-port busy times conserved
        for node in NODES:
            assert ret.busy_time(node) == base.busy_time(node)
        # class ordering: produce-only slots precede chained departures
        def klass(slot):
            if any((t.src, t.item) == (ci, citem) for t in slot.transfers):
                return 2
            return 0 if any(t.item == produced for t in slot.transfers) else 1
        ks = [klass(s) for s in ret.slots]
        assert ks == sorted(ks)

    @given(rate_bundles(stage=0))
    @settings(max_examples=10, deadline=None)
    def test_retiming_without_links_is_identity_modulo_field(self, b0):
        base = superpose_schedules([b0], throughput=Fraction(1, 2))
        ret = retime_for_chaining(base, ())
        assert ret.slots == base.slots
        assert ret.chain_links == ()
