"""Unit tests for the HiGHS backend, rationalization and dispatch."""

from fractions import Fraction

import pytest

from repro.lp.dispatch import solve
from repro.lp.highs import HighsSolver
from repro.lp.model import LinearProgram
from repro.lp.rationalize import rationalize_solution, snap_to_denominator
from repro.lp.solution import SolveStatus


def make_lp():
    lp = LinearProgram()
    u, v = lp.var("u"), lp.var("v")
    lp.add(u + v == Fraction(1, 2))
    lp.add(u - v <= Fraction(1, 6))
    lp.maximize(u)
    return lp, u, v


class TestHighs:
    def test_optimal_value(self):
        lp, u, v = make_lp()
        s = HighsSolver().solve(lp)
        assert s.status is SolveStatus.OPTIMAL
        assert abs(float(s.objective) - 1 / 3) < 1e-9
        assert not s.exact

    def test_infeasible(self):
        lp = LinearProgram()
        x = lp.var("x", ub=1)
        lp.add(x >= 2)
        lp.maximize(x)
        assert HighsSolver().solve(lp).status is SolveStatus.INFEASIBLE

    def test_unbounded(self):
        lp = LinearProgram()
        x = lp.var("x")
        lp.maximize(x)
        assert HighsSolver().solve(lp).status is SolveStatus.UNBOUNDED

    def test_minimize(self):
        lp = LinearProgram()
        x = lp.var("x", lb=Fraction(1, 4))
        lp.minimize(x)
        s = HighsSolver().solve(lp)
        assert abs(float(s.objective) - 0.25) < 1e-9

    def test_accepts_float_data(self):
        lp = LinearProgram()
        x = lp.var("x")
        lp.add(0.5 * x <= 1.0)
        lp.maximize(x)
        s = HighsSolver().solve(lp)
        assert abs(float(s.objective) - 2.0) < 1e-9


class TestSnap:
    def test_snap_to_denominator(self):
        assert snap_to_denominator(0.3333333, 3) == Fraction(1, 3)
        assert snap_to_denominator(0.24999999, 4) == Fraction(1, 4)

    def test_rationalize_recovers_exact_optimum(self):
        lp, u, v = make_lp()
        s = HighsSolver().solve(lp)
        r = rationalize_solution(s)
        assert r is not None and r.exact
        assert r.objective == Fraction(1, 3)
        assert lp.check_feasible(r.values) == []

    def test_rationalize_passthrough_for_exact(self):
        lp, *_ = make_lp()
        s = solve(lp, backend="exact")
        assert rationalize_solution(s) is s

    def test_rationalize_returns_none_for_float_lp(self):
        lp = LinearProgram()
        x = lp.var("x")
        lp.add(0.5 * x <= 1.0)
        lp.maximize(x)
        s = HighsSolver().solve(lp)
        assert rationalize_solution(s) is None

    def test_rationalize_none_for_failed_solve(self):
        lp = LinearProgram()
        x = lp.var("x", ub=1)
        lp.add(x >= 2)
        lp.maximize(x)
        s = HighsSolver().solve(lp)
        assert rationalize_solution(s) is None


class TestDispatch:
    def test_auto_uses_exact_for_small_rational(self):
        lp, *_ = make_lp()
        s = solve(lp, backend="auto")
        assert s.backend == "exact-simplex" and s.exact

    def test_auto_uses_highs_beyond_limit(self):
        lp, *_ = make_lp()
        s = solve(lp, backend="auto", exact_var_limit=1)
        assert s.backend.startswith("highs")
        assert s.exact  # rationalization succeeded

    def test_explicit_backends(self):
        lp, *_ = make_lp()
        assert solve(lp, backend="exact").backend == "exact-simplex"
        assert solve(lp, backend="highs", rationalize=False).backend == "highs"

    def test_unknown_backend_rejected(self):
        lp, *_ = make_lp()
        with pytest.raises(ValueError):
            solve(lp, backend="cplex")

    def test_solution_named_values(self):
        lp, u, v = make_lp()
        s = solve(lp, backend="exact")
        named = s.named_values()
        assert named["u"] == Fraction(1, 3) and named["v"] == Fraction(1, 6)

    def test_by_name(self):
        lp, u, v = make_lp()
        s = solve(lp)
        assert s.by_name("u") == s.value(u)
