"""Warm-started incremental re-solve (PR 6).

Two layers are pinned here:

- :func:`repro.lp.resolve.apply_delta` must be *exactly* equivalent to
  rebuilding the LP from the perturbed problem — checked by comparing
  canonical keys, the strongest equality the LP layer offers;
- :func:`repro.lp.resolve.replan` must return a bit-identical rational
  optimum to a cold solve of the perturbed problem, whatever the event
  mix (degradation, failure, node loss with graceful shrinking).

The warm-vs-cold *speed* claim lives in ``tests/perf/test_perf_smoke.py``
(the ``x20_scatter_replan`` tier, where the basis is large enough for
the crash to win); paper-figure LPs are millisecond-scale and assert
correctness only.
"""

from fractions import Fraction

import pytest

from repro.collectives import solve_collective
from repro.collectives.degrade import DegradationError
from repro.core.scatter import ScatterProblem, build_scatter_lp
from repro.lp.dispatch import canonical_key
from repro.lp.resolve import WARM_BASIS_MIN_LABELS, apply_delta, replan
from repro.platform.examples import (figure9_participants, figure9_platform,
                                     figure9_target)
from repro.platform.generators import (complete, heterogenize,
                                       random_connected, ring)
from repro.platform.perturb import (LinkDegradation, LinkFailure, NodeFailure,
                                    NodeJoin, perturb)


def _fig9_scatter():
    g = figure9_platform()
    src = figure9_target()
    return ScatterProblem(g, src,
                          [p for p in figure9_participants() if p != src])


class TestApplyDelta:
    """Row-editing a solved LP == rebuilding it from the perturbed problem."""

    @pytest.mark.parametrize("events", [
        (LinkDegradation(2, 8, factor=2),),
        (LinkDegradation(0, 1, factor=Fraction(3, 2)),),
        (LinkDegradation(2, 8, factor=2), LinkDegradation(0, 5, factor=3)),
    ], ids=["slow", "slow-frac", "slow-slow"])
    def test_scale_matches_rebuilt_lp_canonically(self, events):
        # degradations keep the variable set: the edited model must hash
        # identically to one rebuilt from scratch on the perturbed platform
        problem = _fig9_scatter()
        lp = build_scatter_lp(problem)
        g2, delta = perturb(problem.platform, events)
        edited = apply_delta(lp, delta)
        assert edited is not None
        rebuilt = build_scatter_lp(
            ScatterProblem(g2, problem.source, problem.targets))
        assert canonical_key(edited) == canonical_key(rebuilt)

    @pytest.mark.parametrize("events", [
        (LinkFailure(2, 8),),
        (LinkFailure(2, 8), LinkDegradation(0, 5, factor=3)),
    ], ids=["fail", "mixed"])
    def test_drop_matches_rebuilt_optimum(self, events):
        # a failure pins the dead link's variables at 0 instead of deleting
        # them (stable indexing for the warm basis), so the models are not
        # canonically identical — but their exact optima must coincide
        from repro.lp import solve as lp_solve

        problem = _fig9_scatter()
        lp = build_scatter_lp(problem)
        g2, delta = perturb(problem.platform, events)
        edited = apply_delta(lp, delta)
        assert edited is not None
        rebuilt = build_scatter_lp(
            ScatterProblem(g2, problem.source, problem.targets))
        a = lp_solve(edited, backend="exact", cache=False)
        b = lp_solve(rebuilt, backend="exact", cache=False)
        assert a.optimal and b.optimal
        assert a.objective == b.objective
        dead = {v.name for v in edited.variables if v.ub == 0}
        assert dead and all(a.by_name(n) == 0 for n in dead)

    def test_input_lp_untouched(self):
        problem = _fig9_scatter()
        lp = build_scatter_lp(problem)
        before = canonical_key(lp)
        _, delta = perturb(problem.platform, [LinkFailure(2, 8)])
        apply_delta(lp, delta)
        assert canonical_key(lp) == before

    def test_node_events_refuse(self):
        problem = _fig9_scatter()
        lp = build_scatter_lp(problem)
        _, d_down = perturb(problem.platform, [NodeFailure(8)])
        assert apply_delta(lp, d_down) is None
        _, d_join = perturb(problem.platform,
                            [NodeJoin("px", links=((0, 1),))])
        assert apply_delta(lp, d_join) is None

    def test_structure_mismatch_refuses(self):
        # a delta for a different platform names rows the LP lacks
        other = ring(4)
        _, delta = perturb(other, [LinkFailure("p0", "p1")])
        lp = build_scatter_lp(_fig9_scatter())
        assert apply_delta(lp, delta) is None


class TestReplan:
    def test_degradation_warm_equals_cold(self):
        sol = solve_collective(_fig9_scatter(), backend="exact", cache=False)
        report = replan(sol, (LinkDegradation(2, 8, factor=2),),
                        compare=True)
        assert report.warm
        assert not report.sacrificed
        assert report.solution.exact
        assert report.throughput == report.cold_solution.throughput
        assert report.solution.verify() == []

    def test_link_failure_warm_equals_cold(self):
        sol = solve_collective(_fig9_scatter(), backend="exact", cache=False)
        report = replan(sol, (LinkFailure(2, 8),), compare=True)
        assert report.throughput == report.cold_solution.throughput
        assert report.base_throughput == sol.throughput
        assert report.solution.verify() == []

    def test_speedup_property(self):
        sol = solve_collective(_fig9_scatter(), backend="exact", cache=False)
        report = replan(sol, (LinkDegradation(2, 8, factor=2),),
                        compare=True)
        assert report.speedup is not None and report.speedup > 0
        assert "warm" in report.describe()

    def test_node_failure_degrades_gracefully(self):
        g = complete(4)
        nodes = g.nodes()
        problem = ScatterProblem(g, nodes[0], nodes[1:])
        sol = solve_collective(problem, backend="exact", cache=False)
        report = replan(sol, (NodeFailure(nodes[-1]),), compare=True)
        assert tuple(report.sacrificed) == (nodes[-1],)
        assert report.solution.sacrificed == report.sacrificed
        assert nodes[-1] not in report.problem.targets
        assert report.throughput == report.cold_solution.throughput
        # fewer targets to serve: throughput cannot get worse
        assert report.throughput >= sol.throughput

    def test_node_failure_with_error_policy_raises(self):
        g = complete(4)
        nodes = g.nodes()
        problem = ScatterProblem(g, nodes[0], nodes[1:])
        sol = solve_collective(problem, backend="exact", cache=False)
        with pytest.raises(DegradationError):
            replan(sol, (NodeFailure(nodes[-1]),), on_infeasible="error")

    def test_loosening_join_rebuilds_and_matches_cold(self):
        g = ring(4)
        nodes = g.nodes()
        problem = ScatterProblem(g, nodes[0], nodes[1:])
        sol = solve_collective(problem, backend="exact", cache=False)
        ev = NodeJoin("px", links=((nodes[0], 1), (nodes[2], 1)))
        report = replan(sol, (ev,), compare=True)
        assert report.throughput == report.cold_solution.throughput
        assert report.throughput >= sol.throughput

    def test_composite_pipelined_replan(self):
        from repro.core.allreduce import AllReduceProblem
        from repro.platform.examples import figure6_platform

        problem = AllReduceProblem(figure6_platform(), [0, 1, 2], task_work=2)
        sol = solve_collective(problem, collective="all-reduce",
                               backend="exact", mode="pipelined", cache=False)
        report = replan(sol, (LinkDegradation(1, 2, factor=2),), compare=True)
        assert report.solution.mode == "pipelined"
        assert report.throughput == report.cold_solution.throughput
        assert report.solution.verify() == []


class TestDualResolve:
    def test_tightening_enters_the_dual_simplex(self):
        # above the crash threshold a tightening delta must re-solve via
        # dual pivots from the old basis (revised engine), not a phase-1
        # repair — and still match the cold optimum bit-exactly
        g = ring(24, cost=1)
        nodes = g.compute_nodes()
        problem = ScatterProblem(g, nodes[0], nodes[1:])
        sol = solve_collective(problem, backend="exact", cache=False)
        assert len(sol.lp_solution.basis_labels) >= WARM_BASIS_MIN_LABELS
        report = replan(sol, (LinkDegradation(nodes[1], nodes[2], factor=2),),
                        compare=True)
        assert report.warm
        stats = report.solution.lp_solution.stats
        assert stats is not None and stats["path"] == "warm-dual"
        assert report.throughput == report.cold_solution.throughput
        assert report.solution.verify() == []

    def test_loosening_stays_primal(self):
        # a speed-up keeps the old vertex primal feasible: no dual entry
        g = ring(24, cost=1)
        nodes = g.compute_nodes()
        problem = ScatterProblem(g, nodes[0], nodes[1:])
        sol = solve_collective(problem, backend="exact", cache=False)
        report = replan(sol, (LinkDegradation(nodes[1], nodes[2],
                                              factor=Fraction(1, 2)),),
                        compare=True)
        stats = report.solution.lp_solution.stats
        if stats is not None:  # tableau engine reports no stats
            assert not stats["path"].endswith("-dual")
        assert report.throughput == report.cold_solution.throughput


class TestWarmThreshold:
    def test_toy_platforms_sit_below_the_crash_threshold(self):
        # a 4-node scatter basis is a couple dozen labels: the exact-LU
        # crash setup would cost more than the cold tableau solve, so
        # replan takes the incremental-LP path without it
        g = complete(4)
        nodes = g.nodes()
        sol = solve_collective(ScatterProblem(g, nodes[0], nodes[1:]),
                               backend="exact", cache=False)
        basis = sol.lp_solution.basis_labels
        assert basis is not None
        assert len(basis) < WARM_BASIS_MIN_LABELS

    def test_fig9_sits_above(self):
        # fig9 scatter (~108 labels) clears the re-measured floor: its
        # tightening replans crash the old basis into the dual simplex
        sol = solve_collective(_fig9_scatter(), backend="exact", cache=False)
        assert len(sol.lp_solution.basis_labels) >= WARM_BASIS_MIN_LABELS

    def test_x20_tier_sits_above(self):
        g = heterogenize(random_connected(20, extra_edges=24, seed=5), 9)
        nodes = g.compute_nodes()
        problem = ScatterProblem(g, nodes[0], nodes[1:])
        sol = solve_collective(problem, backend="exact", cache=False)
        assert len(sol.lp_solution.basis_labels) >= WARM_BASIS_MIN_LABELS
