"""Lexicographic tie-breaking (``canonical=True``) in the exact simplex."""

from fractions import Fraction

import pytest

from repro.core.reduce_op import ReduceProblem, build_reduce_lp
from repro.lp import ExactSimplexSolver, LinearProgram, solve
from repro.lp.dispatch import clear_cache
from repro.platform.examples import figure6_platform


def _tie_lp():
    """max x + y s.t. x + y <= 1: every point of the segment is optimal;
    the lex-smallest vertex is (0, 1)."""
    lp = LinearProgram("tie")
    x = lp.var("x")
    y = lp.var("y")
    lp.add(x + y <= 1)
    lp.maximize(x + y)
    return lp


class TestCanonicalVertex:
    @pytest.mark.parametrize("pricing", ["dantzig", "devex", "bland"])
    def test_lex_smallest_vertex_regardless_of_pricing(self, pricing):
        sol = ExactSimplexSolver(pricing=pricing).solve(_tie_lp(),
                                                        canonical=True)
        assert sol.optimal and sol.objective == 1
        assert sol.by_name("x") == 0
        assert sol.by_name("y") == 1

    def test_without_canonical_dantzig_picks_other_vertex(self):
        # documents the sensitivity canonical mode removes: plain Dantzig
        # enters x first and stays there
        sol = ExactSimplexSolver().solve(_tie_lp())
        assert sol.objective == 1
        assert sol.by_name("x") == 1

    def test_objective_never_changes(self):
        lp = LinearProgram("deg")
        v = [lp.var(f"x{i}") for i in range(4)]
        lp.add(v[0] + v[1] <= Fraction(3, 2))
        lp.add(v[1] + v[2] <= Fraction(3, 2))
        lp.add(v[2] + v[3] <= Fraction(3, 2))
        lp.maximize(v[0] + v[1] + v[2] + v[3])
        plain = ExactSimplexSolver().solve(lp)
        canon = ExactSimplexSolver().solve(lp, canonical=True)
        assert plain.objective == canon.objective

    def test_canonical_vertex_is_feasible_optimum_on_paper_lp(self):
        problem = ReduceProblem(figure6_platform(), [0, 1, 2], target=0)
        a = ExactSimplexSolver(pricing="dantzig").solve(
            build_reduce_lp(problem), canonical=True)
        b = ExactSimplexSolver(pricing="bland").solve(
            build_reduce_lp(problem), canonical=True)
        assert a.objective == b.objective == 1
        assert a.named_values() == b.named_values()

    def test_plain_pricings_differ(self):
        # the alternate-optimum sensitivity this feature addresses: on
        # max x + 2w s.t. x + 2w <= 1 the whole segment is optimal;
        # Dantzig enters w (reduced cost -2), Bland enters x (lowest index)
        lp = LinearProgram("tie-scaled")
        x = lp.var("x")
        w = lp.var("w")
        lp.add(x + 2 * w <= 1)
        lp.maximize(x + 2 * w)
        a = ExactSimplexSolver(pricing="dantzig").solve(lp)
        b = ExactSimplexSolver(pricing="bland").solve(lp)
        assert a.objective == b.objective == 1
        assert a.named_values() == {"w": Fraction(1, 2)}
        assert b.named_values() == {"x": 1}

    @pytest.mark.parametrize("pricing", ["dantzig", "devex", "bland"])
    def test_canonical_removes_the_sensitivity(self, pricing):
        lp = LinearProgram("tie-scaled")
        x = lp.var("x")
        w = lp.var("w")
        lp.add(x + 2 * w <= 1)
        lp.maximize(x + 2 * w)
        sol = ExactSimplexSolver(pricing=pricing).solve(lp, canonical=True)
        assert sol.named_values() == {"w": Fraction(1, 2)}


class TestBudget:
    def _tie3_lp(self):
        """max x+y+z s.t. x+y+z <= 1: canonicalization needs two pivots
        (walk x -> y -> z) after a one-pivot phase 2."""
        lp = LinearProgram("tie3")
        x, y, z = lp.var("x"), lp.var("y"), lp.var("z")
        lp.add(x + y + z <= 1)
        lp.maximize(x + y + z)
        return lp

    def test_exhausted_budget_is_an_error_not_a_stale_vertex(self):
        # max_iterations=2: phase 2 spends 1 pivot, leaving 1 for phase 3,
        # which needs 2 — a half-canonicalized vertex must not be reported
        # (and cached) as canonical
        sol = ExactSimplexSolver(max_iterations=2).solve(self._tie3_lp(),
                                                         canonical=True)
        assert not sol.optimal
        assert "canonicalization" in sol.message

    def test_plain_solve_unaffected_by_budget_interplay(self):
        sol = ExactSimplexSolver(max_iterations=2).solve(self._tie3_lp())
        assert sol.optimal  # 1 pivot suffices without phase 3

    def test_sufficient_budget_canonicalizes(self):
        sol = ExactSimplexSolver(max_iterations=4).solve(self._tie3_lp(),
                                                         canonical=True)
        assert sol.optimal
        assert sol.by_name("z") == 1 and sol.by_name("x") == 0


class TestDispatchPlumbing:
    def test_solve_canonical_flag(self):
        clear_cache()
        sol = solve(_tie_lp(), backend="exact", canonical=True)
        assert sol.by_name("y") == 1

    def test_cache_keys_distinguish_canonical(self):
        clear_cache()
        plain = solve(_tie_lp(), backend="exact")
        canon = solve(_tie_lp(), backend="exact", canonical=True)
        # a shared key would have returned the memoized plain vertex
        assert plain.by_name("x") == 1
        assert canon.by_name("x") == 0
