"""Correctness of the sparse fraction-free simplex under the new arithmetic.

The sparse solver (`repro.lp.exact_simplex`) replaced the dense Fraction
tableau; the original implementation survives as
:class:`repro.lp.dense_simplex.DenseSimplexSolver` and serves as the oracle
here: same statuses on pathological LPs, bit-identical objectives on
randomized rational LPs.  Also covers the dispatch-layer additions (memo
cache, warm starts, ERROR-with-diagnostics on iteration overrun).
"""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.lp import dispatch
from repro.lp.dense_simplex import DenseSimplexSolver
from repro.lp.exact_simplex import ExactSimplexSolver
from repro.lp.model import LinearProgram
from repro.lp.solution import SolveStatus


def sparse(lp, **kw):
    return ExactSimplexSolver().solve(lp, **kw)


def dense(lp):
    return DenseSimplexSolver().solve(lp)


class TestPathologies:
    def test_degenerate_vertex_many_tight_rows(self):
        # many constraints meet at the optimum; Dantzig must not cycle
        lp = LinearProgram()
        x, y, z = lp.var("x"), lp.var("y"), lp.var("z")
        lp.add(x + y + z <= 1)
        lp.add(x + y <= 1)
        lp.add(y + z <= 1)
        lp.add(x + z <= 1)
        lp.add(2 * x + 2 * y + 2 * z <= 2)
        lp.maximize(x + y + z)
        s = sparse(lp)
        assert s.status is SolveStatus.OPTIMAL and s.objective == 1
        assert lp.check_feasible(s.values, tol=0) == []

    def test_beale_cycling_instance(self):
        # classical cycling example — degeneracy fallback must terminate
        lp = LinearProgram()
        x1, x2, x3, x4 = (lp.var(f"x{i}") for i in range(1, 5))
        lp.add(Fraction(1, 4) * x1 - 60 * x2 - Fraction(1, 25) * x3 + 9 * x4 <= 0)
        lp.add(Fraction(1, 2) * x1 - 90 * x2 - Fraction(1, 50) * x3 + 3 * x4 <= 0)
        lp.add(x3 <= 1)
        lp.maximize(Fraction(3, 4) * x1 - 150 * x2 + Fraction(1, 50) * x3 - 6 * x4)
        s = sparse(lp)
        assert s.status is SolveStatus.OPTIMAL
        assert s.objective == Fraction(1, 20)

    def test_redundant_rows_dropped(self):
        lp = LinearProgram()
        x, y = lp.var("x"), lp.var("y")
        lp.add(x + y == 1)
        lp.add(2 * x + 2 * y == 2)    # redundant multiple
        lp.add(3 * x + 3 * y == 3)    # and another
        lp.maximize(x)
        s = sparse(lp)
        assert s.status is SolveStatus.OPTIMAL and s.objective == 1

    def test_equality_only_system(self):
        # pure equality system: the optimum is the unique solution
        lp = LinearProgram()
        x, y, z = lp.var("x"), lp.var("y"), lp.var("z")
        lp.add(x + y + z == 6)
        lp.add(x - y == 1)
        lp.add(y - z == 1)
        lp.maximize(x)
        s = sparse(lp)
        assert s.status is SolveStatus.OPTIMAL
        assert (s.value(x), s.value(y), s.value(z)) == (3, 2, 1)

    def test_equality_only_infeasible(self):
        lp = LinearProgram()
        x, y = lp.var("x"), lp.var("y")
        lp.add(x + y == 1)
        lp.add(x + y == 2)
        lp.maximize(x)
        assert sparse(lp).status is SolveStatus.INFEASIBLE

    def test_infeasible_bounds(self):
        lp = LinearProgram()
        x = lp.var("x", ub=1)
        lp.add(x >= 2)
        lp.maximize(x)
        assert sparse(lp).status is SolveStatus.INFEASIBLE

    def test_unbounded(self):
        lp = LinearProgram()
        x, y = lp.var("x"), lp.var("y")
        lp.add(x - y <= 1)
        lp.maximize(x)
        assert sparse(lp).status is SolveStatus.UNBOUNDED

    def test_bounded_direction_in_unbounded_region(self):
        lp = LinearProgram()
        x, y = lp.var("x"), lp.var("y")
        lp.add(x - y <= 1)
        lp.maximize(x - y)
        assert sparse(lp).objective == 1

    def test_negative_lower_bound_basic_at_zero(self):
        # regression: a *basic* variable whose optimum is 0 must not be
        # overwritten by its nonzero lower bound during extraction
        lp = LinearProgram()
        x = lp.var("x", lb=-1)
        lp.add(x <= 0)
        lp.maximize(x)
        s = sparse(lp)
        assert s.status is SolveStatus.OPTIMAL
        assert s.objective == 0 and s.value(x) == 0
        assert dense(lp).objective == 0

    def test_negative_lower_bounds_mixed(self):
        lp = LinearProgram()
        x = lp.var("x", lb=-2, ub=3)
        y = lp.var("y", lb=-1)
        lp.add(x + y <= 1)
        lp.minimize(x + 2 * y)
        s = sparse(lp)
        assert s.status is SolveStatus.OPTIMAL
        assert s.objective == dense(lp).objective == -4
        assert s.value(x) == -2 and s.value(y) == -1

    def test_bland_pricing_mode(self):
        lp = LinearProgram()
        x, y = lp.var("x"), lp.var("y")
        lp.add(x + 2 * y <= 4)
        lp.add(3 * x + y <= 6)
        lp.maximize(x + y)
        s = ExactSimplexSolver(pricing="bland").solve(lp)
        assert s.objective == Fraction(14, 5)

    def test_unknown_pricing_rejected(self):
        with pytest.raises(ValueError):
            ExactSimplexSolver(pricing="steepest-edge-typo")


class TestIterationLimit:
    def test_overrun_returns_error_with_diagnostics(self):
        lp = LinearProgram()
        xs = [lp.var(f"x{i}") for i in range(6)]
        for j in range(6):
            lp.add(sum((i + j + 1) * x for i, x in enumerate(xs)) <= 10 + j)
        lp.maximize(sum(xs))
        s = ExactSimplexSolver(max_iterations=1).solve(lp)
        assert s.status is SolveStatus.ERROR
        assert "iterlimit" in s.message
        assert "vars" in s.message  # names the LP shape for debugging
        assert s.iterations >= 1

    def test_dense_reference_also_reports_error(self):
        lp = LinearProgram()
        x, y = lp.var("x"), lp.var("y")
        lp.add(x + y >= 3)
        lp.add(x - y == 1)
        lp.minimize(2 * x + y)
        s = DenseSimplexSolver(max_iterations=1).solve(lp)
        assert s.status is SolveStatus.ERROR
        assert s.message


class TestWarmStart:
    def _family_lp(self, n):
        """Growing LP family with stable variable/constraint names."""
        lp = LinearProgram(f"fam(size-{n})")
        xs = [lp.var(f"x{i}", ub=3) for i in range(n)]
        for i in range(n - 1):
            lp.add(xs[i] + xs[i + 1] <= 4, name=f"pair[{i}]")
        lp.maximize(sum((i % 3 + 1) * x for i, x in enumerate(xs)))
        return lp

    def test_warm_start_same_lp_skips_phase1(self):
        lp = self._family_lp(6)
        cold = sparse(lp)
        assert cold.status is SolveStatus.OPTIMAL
        warm = sparse(self._family_lp(6), warm_basis=cold.basis_labels)
        assert warm.objective == cold.objective
        assert warm.iterations <= cold.iterations

    def test_warm_start_transfers_across_family_sizes(self):
        small = sparse(self._family_lp(5))
        big_cold = sparse(self._family_lp(8))
        big_warm = sparse(self._family_lp(8), warm_basis=small.basis_labels)
        assert big_warm.objective == big_cold.objective

    def test_bogus_warm_basis_is_harmless(self):
        lp = self._family_lp(4)
        s = sparse(lp, warm_basis=(("v", "nope"), ("s", "missing")))
        assert s.objective == sparse(self._family_lp(4)).objective

    def test_warm_start_never_changes_objective_on_equalities(self):
        lp = LinearProgram("eqfam(a)")
        x, y = lp.var("x"), lp.var("y")
        lp.add(x + y == Fraction(1, 2), name="sum")
        lp.add(x - y <= Fraction(1, 6), name="gap")
        lp.maximize(x)
        cold = sparse(lp)
        lp2 = LinearProgram("eqfam(b)")
        x2, y2 = lp2.var("x"), lp2.var("y")
        lp2.add(x2 + y2 == Fraction(1, 2), name="sum")
        lp2.add(x2 - y2 <= Fraction(1, 6), name="gap")
        lp2.maximize(x2)
        warm = sparse(lp2, warm_basis=cold.basis_labels)
        assert warm.objective == cold.objective == Fraction(1, 3)


class TestDispatchCache:
    def setup_method(self):
        dispatch.clear_cache()

    def teardown_method(self):
        dispatch.clear_cache()

    def _lp(self):
        lp = LinearProgram("cached")
        x, y = lp.var("x"), lp.var("y")
        lp.add(x + 2 * y <= 4, name="a")
        lp.add(3 * x + y <= 6, name="b")
        lp.maximize(x + y)
        return lp

    def test_identical_models_hit_the_cache(self):
        s1 = dispatch.solve(self._lp())
        assert dispatch.cache_stats()["memo_entries"] == 1
        s2 = dispatch.solve(self._lp())
        assert s2.objective == s1.objective and s2.values == s1.values
        assert dispatch.cache_stats()["memo_entries"] == 1

    def test_cached_solution_reattaches_to_callers_lp(self):
        dispatch.solve(self._lp())
        lp2 = self._lp()
        s2 = dispatch.solve(lp2)
        assert s2.lp is lp2
        assert s2.by_name("x") == Fraction(8, 5)

    def test_canonical_key_ignores_names_and_coef_order(self):
        lp1 = self._lp()
        lp2 = LinearProgram("other-name")
        x, y = lp2.var("x"), lp2.var("y")
        lp2.add(2 * y + x <= 4, name="renamed")   # same rows, reordered terms
        lp2.add(y + 3 * x <= 6)
        lp2.maximize(y + x)
        assert dispatch.canonical_key(lp1) == dispatch.canonical_key(lp2)

    def test_canonical_key_distinguishes_different_models(self):
        lp2 = self._lp()
        lp2.add(lp2.get("x") <= 1, name="extra")
        assert dispatch.canonical_key(self._lp()) != dispatch.canonical_key(lp2)

    def test_explicit_backend_not_served_from_other_backends_cache(self):
        s_exact = dispatch.solve(self._lp(), backend="exact")
        s_highs = dispatch.solve(self._lp(), backend="highs", rationalize=False)
        assert s_exact.backend == "exact-simplex"
        assert s_highs.backend == "highs"

    def test_cache_can_be_disabled(self):
        dispatch.solve(self._lp(), cache=False)
        assert dispatch.cache_stats()["memo_entries"] == 0


def _random_rational_lp(rng):
    """Random rational LP: mixed senses, mixed Fraction/int data, some
    rows redundant, possibly infeasible or unbounded."""
    n = rng.randint(1, 6)
    m = rng.randint(1, 7)
    lp = LinearProgram("diff")
    xs = [lp.var(f"x{i}",
                 lb=rng.choice([0, 0, -1, Fraction(-3, 2), 1]),
                 ub=rng.choice([None, 5, Fraction(7, 2)]))
          for i in range(n)]
    for j in range(m):
        expr = 0
        for x in xs:
            c = Fraction(rng.randint(-3, 4), rng.choice([1, 1, 2, 3]))
            expr = expr + c * x
        b = Fraction(rng.randint(-4, 12), rng.choice([1, 2]))
        sense = rng.choice(["<=", "<=", ">=", "=="])
        if sense == "<=":
            lp.add(expr <= b)
        elif sense == ">=":
            lp.add(expr >= b)
        else:
            lp.add(expr == b)
    lp.maximize(sum(rng.randint(-2, 4) * x for x in xs))
    return lp


class TestDifferentialVsDenseOracle:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=60, deadline=None)
    def test_same_status_and_objective_as_dense(self, seed):
        lp = _random_rational_lp(random.Random(seed))
        fast = sparse(lp)
        slow = dense(lp)
        assert fast.status is slow.status
        if fast.status is SolveStatus.OPTIMAL:
            assert fast.objective == slow.objective  # bit-exact rationals
            assert lp.check_feasible(fast.values, tol=0) == []

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_warm_started_resolve_matches_dense(self, seed):
        lp = _random_rational_lp(random.Random(seed))
        cold = sparse(lp)
        if cold.status is not SolveStatus.OPTIMAL:
            return
        warm = sparse(_random_rational_lp(random.Random(seed)),
                      warm_basis=cold.basis_labels)
        assert warm.objective == dense(lp).objective
