"""Unit tests for the LP modeling layer."""

from fractions import Fraction

import pytest

from repro.lp.model import EQ, GE, LE, Constraint, LinearProgram, LinExpr, lin_sum


@pytest.fixture
def lp():
    return LinearProgram("t")


class TestVariables:
    def test_var_defaults_nonnegative(self, lp):
        x = lp.var("x")
        assert x.lb == 0 and x.ub is None

    def test_var_bounds(self, lp):
        x = lp.var("x", lb=1, ub=3)
        assert x.lb == 1 and x.ub == 3

    def test_var_same_name_returns_same_object(self, lp):
        assert lp.var("x") is lp.var("x")

    def test_get_unknown_raises(self, lp):
        with pytest.raises(KeyError):
            lp.get("nope")

    def test_indices_sequential(self, lp):
        a, b = lp.var("a"), lp.var("b")
        assert (a.index, b.index) == (0, 1)


class TestExpressions:
    def test_addition_merges_coefficients(self, lp):
        x, y = lp.var("x"), lp.var("y")
        e = x + y + x
        assert e.coefs[x.index] == 2 and e.coefs[y.index] == 1

    def test_scalar_multiplication(self, lp):
        x = lp.var("x")
        e = 3 * x * Fraction(1, 2)
        assert e.coefs[x.index] == Fraction(3, 2)

    def test_subtraction_and_negation(self, lp):
        x, y = lp.var("x"), lp.var("y")
        e = x - 2 * y
        assert e.coefs[y.index] == -2
        n = -e
        assert n.coefs[x.index] == -1

    def test_rsub(self, lp):
        x = lp.var("x")
        e = 5 - x
        assert e.constant == 5 and e.coefs[x.index] == -1

    def test_constants_accumulate(self, lp):
        x = lp.var("x")
        e = (x + 1) + 2
        assert e.constant == 3

    def test_lin_sum_empty_is_zero(self):
        e = lin_sum([])
        assert isinstance(e, LinExpr) and not e.coefs and e.constant == 0

    def test_lin_sum_mixed(self, lp):
        x, y = lp.var("x"), lp.var("y")
        e = lin_sum([x, 2 * y, 3])
        assert e.coefs[y.index] == 2 and e.constant == 3

    def test_evaluate(self, lp):
        x, y = lp.var("x"), lp.var("y")
        e = 2 * x + y + 1
        assert e.evaluate({x.index: 3, y.index: 4}) == 11

    def test_evaluate_missing_defaults_zero(self, lp):
        x = lp.var("x")
        assert (x + 5).evaluate({}) == 5

    def test_product_of_variables_rejected(self, lp):
        x, y = lp.var("x"), lp.var("y")
        with pytest.raises(TypeError):
            _ = (x + 0) * y

    def test_foreign_type_rejected(self, lp):
        x = lp.var("x")
        with pytest.raises(TypeError):
            _ = x + "str"


class TestConstraints:
    def test_le_builds_constraint(self, lp):
        x = lp.var("x")
        c = x <= 3
        assert isinstance(c, Constraint) and c.sense == LE
        assert c.expr.constant == -3

    def test_ge_and_eq(self, lp):
        x = lp.var("x")
        assert (x >= 1).sense == GE
        assert (x == 1).sense == EQ

    def test_add_rejects_non_constraint(self, lp):
        with pytest.raises(TypeError):
            lp.add(lp.var("x"))  # type: ignore[arg-type]

    def test_violation_le(self, lp):
        x = lp.var("x")
        c = lp.add(x <= 3)
        assert c.violation({x.index: 5}) == 2
        assert c.violation({x.index: 2}) == 0

    def test_violation_eq_symmetric(self, lp):
        x = lp.var("x")
        c = lp.add(x == 3)
        assert c.violation({x.index: 1}) == 2
        assert c.violation({x.index: 5}) == 2

    def test_named_constraints(self, lp):
        x = lp.var("x")
        c = lp.add(x <= 1, name="cap")
        assert c.name == "cap"


class TestProgram:
    def test_check_feasible_reports_bounds_and_constraints(self, lp):
        x = lp.var("x", ub=2)
        lp.add(x >= 1, name="low")
        assert lp.check_feasible({x.index: 3}) == ["ub:x"]
        assert lp.check_feasible({x.index: 0}) == ["low"]
        assert lp.check_feasible({x.index: 1}) == []

    def test_check_feasible_with_tolerance(self, lp):
        x = lp.var("x")
        lp.add(x <= 1, name="cap")
        assert lp.check_feasible({x.index: 1.0000001}, tol=1e-6) == []

    def test_is_rational_true_for_fractions(self, lp):
        x = lp.var("x")
        lp.add(Fraction(1, 3) * x <= 1)
        lp.maximize(x)
        assert lp.is_rational()

    def test_is_rational_false_for_floats(self, lp):
        x = lp.var("x")
        lp.add(0.5 * x <= 1)
        assert not lp.is_rational()

    def test_maximize_minimize_flags(self, lp):
        x = lp.var("x")
        lp.maximize(x)
        assert lp.sense_max
        lp.minimize(x)
        assert not lp.sense_max

    def test_counts(self, lp):
        lp.var("a")
        lp.var("b")
        lp.add(lp.get("a") <= 1)
        assert lp.num_vars() == 2 and lp.num_constraints() == 1
