"""Revised simplex (PR 7): differential, warm/dual restarts, LU updates.

Three layers are pinned here:

- **Differential.** The revised simplex must agree with the fraction-free
  tableau (:mod:`repro.lp.exact_simplex`) on *status and exact objective*
  for every shared-size case — randomized LPs spanning degenerate,
  unbounded, infeasible, equality-only and box-bounded shapes, plus the
  chained composite LPs with protected ``chain[..]`` rows.  Where scipy
  is available the float HiGHS optimum must also agree within tolerance.
- **Restart soundness.** Warm starts and dual re-solves from a recorded
  ``basis_labels`` tuple must reproduce the optimum bit-exactly, from
  either engine's basis.
- **LU maintenance.** Forcing tiny ``refactor_interval`` values exercises
  the product-form eta accumulation + refactorization path without
  changing any result; the stats counters must reflect it.
"""

import random
from fractions import Fraction

import pytest

from repro.core.allreduce import AllReduceProblem
from repro.lp.exact_simplex import ExactSimplexSolver
from repro.lp.model import LinearProgram
from repro.lp.revised_simplex import RevisedSimplexSolver
from repro.lp.solution import SolveStatus
from repro.platform.examples import figure6_platform

SEED = 20260808


def _random_lp(rng, trial, eq_only=False):
    n = rng.randint(2, 8)
    m = rng.randint(1, 8)
    lp = LinearProgram(name=f"rnd{trial}")
    xs = [lp.var(f"x{j}", 0, rng.choice([None, None, rng.randint(1, 6)]))
          for j in range(n)]
    for i in range(m):
        e = sum(rng.randint(-4, 4) * xs[j] for j in range(n))
        s = "==" if eq_only else rng.choice(["<=", ">=", "=="])
        b = rng.randint(-6, 10)
        lp.add(e <= b if s == "<=" else (e >= b if s == ">=" else e == b),
               name=f"c{i}")
    obj = sum(rng.randint(-5, 5) * xs[j] for j in range(n))
    (lp.maximize if rng.random() < 0.5 else lp.minimize)(obj)
    return lp


def _degenerate_lp(rng, trial):
    """Conservation-style rows (b = 0) — the massively degenerate shape
    the collective steady-state LPs take."""
    n = rng.randint(3, 7)
    lp = LinearProgram(name=f"deg{trial}")
    xs = [lp.var(f"x{j}", 0, rng.randint(1, 4)) for j in range(n)]
    for i in range(rng.randint(2, 5)):
        a, b = rng.sample(range(n), 2)
        lp.add(xs[a] - xs[b] == 0, name=f"cons{i}")
    lp.add(sum(xs) <= rng.randint(2, 8), name="cap")
    lp.maximize(sum(rng.randint(0, 3) * xs[j] for j in range(n)))
    return lp


class TestDifferentialRandom:
    def test_revised_matches_tableau_and_restarts(self):
        rng = random.Random(SEED)
        statuses = {s: 0 for s in SolveStatus}
        for trial in range(200):
            lp = _random_lp(rng, trial)
            rev = RevisedSimplexSolver().solve(lp)
            tab = ExactSimplexSolver().solve(lp)
            assert rev.status == tab.status, (trial, rev.status, tab.status)
            statuses[rev.status] += 1
            if not rev.optimal:
                continue
            assert rev.objective == tab.objective, trial
            assert rev.exact and isinstance(rev.objective, (int, Fraction))
            assert lp.check_feasible(rev.values, tol=0) == []
            # warm and dual restarts from the revised basis, and a warm
            # start from the *tableau's* basis, all reproduce the optimum
            for restart in (
                RevisedSimplexSolver().solve(lp, warm_basis=rev.basis_labels),
                RevisedSimplexSolver().solve(lp, warm_basis=rev.basis_labels,
                                             dual=True),
                RevisedSimplexSolver().solve(lp, warm_basis=tab.basis_labels),
            ):
                assert restart.optimal and restart.objective == rev.objective
        # the mix genuinely exercised every terminal status
        assert statuses[SolveStatus.OPTIMAL] > 20
        assert statuses[SolveStatus.INFEASIBLE] > 20
        assert statuses[SolveStatus.UNBOUNDED] > 5

    def test_cold_crash_axis_matches(self):
        # crash="cold" takes the pure exact path (triangular crash + two
        # phases) — same statuses and objectives, no scipy involved
        rng = random.Random(SEED + 1)
        for trial in range(60):
            lp = _random_lp(rng, trial)
            cold = RevisedSimplexSolver(crash="cold").solve(lp)
            tab = ExactSimplexSolver().solve(lp)
            assert cold.status == tab.status, trial
            if cold.optimal:
                assert cold.objective == tab.objective, trial
                assert lp.check_feasible(cold.values, tol=0) == []

    def test_equality_only_lps(self):
        rng = random.Random(SEED + 2)
        seen_optimal = 0
        for trial in range(150):
            lp = _random_lp(rng, trial, eq_only=True)
            rev = RevisedSimplexSolver().solve(lp)
            tab = ExactSimplexSolver().solve(lp)
            assert rev.status == tab.status, trial
            if rev.optimal:
                seen_optimal += 1
                assert rev.objective == tab.objective, trial
        assert seen_optimal > 5

    def test_degenerate_conservation_lps(self):
        rng = random.Random(SEED + 3)
        for trial in range(40):
            lp = _degenerate_lp(rng, trial)
            rev = RevisedSimplexSolver().solve(lp)
            tab = ExactSimplexSolver().solve(lp)
            assert rev.status == tab.status == SolveStatus.OPTIMAL, trial
            assert rev.objective == tab.objective, trial

    def test_highs_agrees_in_float(self):
        scipy = pytest.importorskip("scipy")  # noqa: F841
        from repro.lp.highs import HighsSolver

        rng = random.Random(SEED + 4)
        compared = 0
        for trial in range(60):
            lp = _random_lp(rng, trial)
            rev = RevisedSimplexSolver().solve(lp)
            hi = HighsSolver().solve(lp)
            if rev.optimal and hi.optimal:
                compared += 1
                assert abs(float(rev.objective) - hi.objective) < 1e-6, trial
        assert compared > 10

    def test_chain_rows_composite(self):
        # the pipelined composite LP: protected chain[..] rows joining
        # per-stage blocks — the structural case commodity-block pricing
        # and presolve interop must not break
        from repro.collectives import get_collective

        problem = AllReduceProblem(figure6_platform(), [0, 1, 2], task_work=2)
        lp = get_collective("all-reduce").build_lp(problem, mode="pipelined")
        assert any((c.name or "").startswith("chain[")
                   for c in lp.constraints)
        rev = RevisedSimplexSolver().solve(lp)
        tab = ExactSimplexSolver().solve(lp)
        assert rev.optimal and tab.optimal
        assert rev.objective == tab.objective == Fraction(1, 4)
        assert lp.check_feasible(rev.values, tol=0) == []
        # dual restart from the recorded basis stays bit-identical
        d = RevisedSimplexSolver().solve(lp, warm_basis=rev.basis_labels,
                                         dual=True)
        assert d.optimal and d.objective == rev.objective


class TestLUUpdates:
    @pytest.mark.parametrize("interval", [1, 2, 5, 64])
    def test_refactor_interval_is_result_invariant(self, interval):
        # crash="cold" forces real pivot sequences through the eta chain
        rng = random.Random(SEED + 5)
        forced_refactor = False
        for trial in range(25):
            lp = _random_lp(rng, trial)
            sol = RevisedSimplexSolver(crash="cold",
                                       refactor_interval=interval).solve(lp)
            ref = ExactSimplexSolver().solve(lp)
            assert sol.status == ref.status, (interval, trial)
            if sol.optimal:
                assert sol.objective == ref.objective, (interval, trial)
                assert lp.check_feasible(sol.values, tol=0) == []
                if (sol.stats["pivots"] > 1
                        and sol.stats["refactorizations"] > 1):
                    forced_refactor = True
        if interval == 1:
            # every pivot beyond the crash must have refactorized
            assert forced_refactor

    def test_eta_updates_between_refactorizations(self):
        # with a large interval a multi-pivot solve keeps one initial
        # factorization and rides product-form updates
        rng = random.Random(SEED + 6)
        for trial in range(40):
            lp = _random_lp(rng, trial)
            sol = RevisedSimplexSolver(crash="cold",
                                       refactor_interval=10_000).solve(lp)
            if sol.optimal and sol.stats["pivots"] >= 3:
                assert sol.stats["refactorizations"] <= 1 + sol.stats[
                    "pivots"] // 3  # fill-triggered ones stay rare
                return
        pytest.skip("no multi-pivot optimal instance drawn")

    def test_stats_surface(self):
        lp = LinearProgram(name="stats")
        x = lp.var("x", 0, 4)
        y = lp.var("y", 0, None)
        lp.add(x + 2 * y <= 10, name="c0")
        lp.add(3 * x + y <= 9, name="c1")
        lp.maximize(2 * x + 3 * y)
        sol = RevisedSimplexSolver().solve(lp)
        assert sol.optimal and sol.objective == Fraction(79, 5)
        for key in ("pivots", "phase1_pivots", "phase2_pivots",
                    "dual_pivots", "refactorizations", "ftran", "btran",
                    "factor_s", "phase1_s", "phase2_s", "dual_s",
                    "basis_m", "path"):
            assert key in sol.stats, key


class TestValidation:
    def test_rejects_float_lps(self):
        lp = LinearProgram(name="floaty")
        x = lp.var("x", 0, None)
        lp.add(0.5 * x <= 1, name="c")
        lp.maximize(x)
        with pytest.raises(ValueError, match="int/Fraction"):
            RevisedSimplexSolver().solve(lp)

    def test_rejects_bad_options(self):
        with pytest.raises(ValueError):
            RevisedSimplexSolver(pricing="steepest")
        with pytest.raises(ValueError):
            RevisedSimplexSolver(refactor_interval=0)
        with pytest.raises(ValueError):
            RevisedSimplexSolver(crash="warm")


class TestDispatchRouting:
    def test_backend_names(self):
        from repro.lp.dispatch import clear_cache, solve

        lp = LinearProgram(name="route")
        x = lp.var("x", 0, 4)
        lp.add(x <= 3, name="c")
        lp.maximize(x)
        for backend, expect in [("tableau", "exact-simplex"),
                                ("revised", "revised-simplex")]:
            clear_cache()
            sol = solve(lp, backend=backend, cache=False, presolve=False)
            assert sol.optimal and sol.objective == 3
            assert sol.backend == expect

    def test_dual_and_canonical_constraints(self):
        from repro.lp.dispatch import solve

        lp = LinearProgram(name="route2")
        x = lp.var("x", 0, 4)
        lp.add(x <= 3, name="c")
        lp.maximize(x)
        with pytest.raises(ValueError):
            solve(lp, backend="tableau", dual=True)
        with pytest.raises(ValueError):
            solve(lp, canonical=True, dual=True)
        with pytest.raises(ValueError):
            solve(lp, backend="revised", canonical=True)
        with pytest.raises(ValueError):
            solve(lp, backend="simplex")

    def test_size_routing_picks_the_engine(self):
        from repro.lp import dispatch

        lp = LinearProgram(name="size")
        xs = [lp.var(f"x{j}", 0, 1) for j in range(6)]
        lp.add(sum(xs) <= 3, name="c")
        lp.maximize(sum(xs))
        old = dispatch.TABLEAU_VAR_LIMIT
        try:
            sol = dispatch.solve(lp, backend="exact", cache=False)
            assert sol.backend == "exact-simplex"  # small -> tableau
            dispatch.TABLEAU_VAR_LIMIT = 2
            sol = dispatch.solve(lp, backend="exact", cache=False,
                                 presolve=False)
            assert sol.backend == "revised-simplex"
            assert sol.objective == 3
        finally:
            dispatch.TABLEAU_VAR_LIMIT = old

    def test_dual_solves_cache_separately(self):
        from repro.lp.dispatch import clear_cache, solve

        lp = LinearProgram(name="cachekey")
        x = lp.var("x", 0, 4)
        lp.add(x <= 3, name="c")
        lp.maximize(x)
        clear_cache()
        a = solve(lp, backend="revised")
        b = solve(lp, backend="revised", dual=True,
                  warm_basis=a.basis_labels, cache_tag="t")
        assert a.objective == b.objective == 3
        # the dual entry leaves its mark on the solve stats
        assert b.stats["path"].endswith("-dual") or b.stats["path"] == "cold"
