"""Persistent on-disk LP solve cache."""

import os
import pickle

import pytest

from repro.core.scatter import ScatterProblem, build_scatter_lp
from repro.lp import diskcache, solve
from repro.lp.dispatch import cache_stats, clear_cache
from repro.platform.examples import figure2_platform, figure2_targets


@pytest.fixture
def cache_dir(tmp_path):
    """Enable the disk store in a temp dir; restore the disabled state."""
    clear_cache()
    path = diskcache.set_cache_dir(str(tmp_path / "lpcache"))
    yield path
    diskcache.set_cache_dir(None)
    clear_cache()


def _fig2_lp():
    return build_scatter_lp(
        ScatterProblem(figure2_platform(), "Ps", figure2_targets()))


class TestStore:
    def test_disabled_by_default(self):
        diskcache.set_cache_dir(None)
        assert diskcache.get_cache_dir() is None
        assert diskcache.store("k", solve(_fig2_lp())) is False
        assert diskcache.load("k") is None
        assert diskcache.stats()["enabled"] is False

    def test_round_trip(self, cache_dir):
        sol = solve(_fig2_lp(), cache=False)
        assert diskcache.store("some-key", sol)
        loaded = diskcache.load("some-key")
        assert loaded is not None
        assert loaded.objective == sol.objective
        assert loaded.values == sol.values
        assert loaded.lp is None  # model stripped on disk

    def test_corrupt_entry_is_a_miss(self, cache_dir):
        sol = solve(_fig2_lp(), cache=False)
        diskcache.store("k", sol)
        (path,) = [os.path.join(cache_dir, f) for f in os.listdir(cache_dir)
                   if f.endswith(diskcache.SUFFIX)]
        with open(path, "wb") as fh:
            fh.write(b"not a pickle")
        assert diskcache.load("k") is None

    def test_truncated_entry_is_a_miss(self, cache_dir):
        """A crash mid-write leaves a syntactically-valid prefix of a
        pickle stream; loading it must be a miss, never a crash."""
        sol = solve(_fig2_lp(), cache=False)
        diskcache.store("k", sol)
        (path,) = [os.path.join(cache_dir, f) for f in os.listdir(cache_dir)
                   if f.endswith(diskcache.SUFFIX)]
        blob = open(path, "rb").read()
        assert len(blob) > 16
        with open(path, "wb") as fh:
            fh.write(blob[:len(blob) // 2])
        assert diskcache.load("k") is None

    def test_non_solution_pickle_rejected(self, cache_dir):
        path = diskcache._entry_path(cache_dir, "evil")
        with open(path, "wb") as fh:
            pickle.dump({"not": "a solution"}, fh)
        assert diskcache.load("evil") is None

    def test_stats_and_clear(self, cache_dir):
        sol = solve(_fig2_lp(), cache=False)
        diskcache.store("a", sol)
        diskcache.store("b", sol)
        st = diskcache.stats()
        assert st["entries"] == 2 and st["bytes"] > 0
        assert diskcache.clear() == 2
        assert diskcache.stats()["entries"] == 0


class TestLRUEviction:
    @pytest.fixture
    def small_limit(self, cache_dir):
        """Cap the store at roughly two fig2 entries."""
        sol = solve(_fig2_lp(), cache=False)
        assert diskcache.store("probe", sol)
        entry_bytes = diskcache.stats()["bytes"]
        diskcache.clear()
        diskcache.set_cache_limit(int(entry_bytes * 2.5))
        yield sol
        diskcache.set_cache_limit(None)

    def test_default_limit_active(self):
        assert diskcache.get_cache_limit() == diskcache.DEFAULT_MAX_BYTES

    def test_store_evicts_oldest_beyond_limit(self, small_limit):
        sol = small_limit
        for key in ("k1", "k2", "k3"):
            diskcache.store(key, sol)
            os.utime(diskcache._entry_path(diskcache.get_cache_dir(), key),
                     (1_000_000, 1_000_000 + int(key[1])))
        diskcache.evict()
        assert diskcache.load("k1") is None        # oldest: evicted
        assert diskcache.load("k3") is not None    # newest: kept
        assert diskcache.stats()["entries"] <= 2
        assert diskcache.stats()["evictions"] >= 1

    def test_load_refreshes_recency(self, small_limit):
        sol = small_limit
        root = diskcache.get_cache_dir()
        diskcache.store("old", sol)
        diskcache.store("new", sol)
        # force "old" older than "new", then touch it via a load hit
        os.utime(diskcache._entry_path(root, "old"), (1, 1))
        assert diskcache.load("old") is not None
        os.utime(diskcache._entry_path(root, "new"), (2, 2))
        diskcache.store("k3", sol)  # pushes past the limit, evicts LRU
        assert diskcache.load("old") is not None   # refreshed: survives
        assert diskcache.load("new") is None       # stale: evicted

    def test_zero_limit_disables_eviction(self, cache_dir):
        diskcache.set_cache_limit(0)
        try:
            sol = solve(_fig2_lp(), cache=False)
            for i in range(5):
                diskcache.store(f"k{i}", sol)
            assert diskcache.evict() == 0
            assert diskcache.stats()["entries"] == 5
        finally:
            diskcache.set_cache_limit(None)

    def test_env_var_limit(self, cache_dir, monkeypatch):
        monkeypatch.setenv(diskcache.CACHE_MAX_BYTES_ENV, "12345")
        diskcache.set_cache_limit(None)
        assert diskcache.get_cache_limit() == 12345


class TestDispatchIntegration:
    def test_cross_process_simulation(self, cache_dir):
        """Memory cache cleared between solves == a fresh process; the
        second solve must be served from disk."""
        lp = _fig2_lp()
        first = solve(lp)
        assert diskcache.stats()["entries"] == 1
        clear_cache()  # forget in-process state, keep the disk store
        before = cache_stats()["disk_hits"]
        second = solve(_fig2_lp())
        assert cache_stats()["disk_hits"] == before + 1
        assert second.objective == first.objective
        assert second.values == first.values
        assert second.lp is not None  # caller's model re-attached
        assert second.by_name("TP") == first.objective

    def test_memory_hit_shortcircuits_disk(self, cache_dir):
        solve(_fig2_lp())
        before = cache_stats()["disk_hits"]
        solve(_fig2_lp())  # memo hit; disk untouched
        assert cache_stats()["disk_hits"] == before

    def test_cache_tag_separates_entries(self, cache_dir):
        """Perturbed-platform re-solves tag their keys: the same model
        solved under a tag must not collide with the untagged entry (a
        warm solve can land on a different optimal vertex, and a stale
        pristine hit would fake a degraded result)."""
        solve(_fig2_lp())
        assert diskcache.stats()["entries"] == 1
        solve(_fig2_lp(), cache_tag="perturb:deadbeef")
        assert diskcache.stats()["entries"] == 2        # distinct key spaces
        before = cache_stats()["disk_hits"]
        clear_cache()
        solve(_fig2_lp(), cache_tag="perturb:deadbeef")  # tagged hit
        solve(_fig2_lp())                                # untagged hit
        assert cache_stats()["disk_hits"] == before + 2
        assert diskcache.stats()["entries"] == 2

    def test_warm_basis_implies_a_tag(self, cache_dir):
        """An explicit warm basis must never shadow the cold cache slot."""
        first = solve(_fig2_lp())
        warm = solve(_fig2_lp(), warm_basis=first.basis_labels)
        assert warm.objective == first.objective
        assert diskcache.stats()["entries"] == 2

    def test_env_var_enables_cache(self, tmp_path, monkeypatch):
        clear_cache()
        diskcache.set_cache_dir(None)
        target = str(tmp_path / "envcache")
        monkeypatch.setenv(diskcache.CACHE_DIR_ENV, target)
        # reset the lazy env check
        monkeypatch.setattr(diskcache, "_env_checked", False)
        monkeypatch.setattr(diskcache, "_cache_dir", None)
        try:
            solve(_fig2_lp())
            assert diskcache.stats()["entries"] == 1
            assert diskcache.get_cache_dir() == os.path.abspath(target)
        finally:
            diskcache.set_cache_dir(None)
            clear_cache()
