"""Presolve/postsolve roundtrip fuzz on composite LPs with cross-stage
coupling (``chain[..]``) rows.

Pipelined composites add coupling rows with mixed-sign coefficients
across stage variable blocks — exactly the shape the presolve reductions
were never exercised on before PR 5.  Two layers of defense:

- **Fuzz**: seeded random joint models (real stage builders on random
  platforms, composed by ``compose_joint_lp`` with randomized chain
  rows).  For each model the presolved-and-postsolved optimum must
  satisfy *every original row exactly* (``check_feasible`` at tol=0) and
  reproduce the no-presolve objective bit for bit.
- **Guard regression pins**: crafted minimal models where an unprotected
  reduction (singleton-row-to-bound, duplicate collapse, dominated drop,
  free-column-singleton elimination) *would* have removed the coupling
  row; the ``PROTECTED_ROW_PREFIXES`` guard must keep it as an explicit
  row in the reduced model.
"""

import random
from fractions import Fraction

import pytest

from repro.collectives import ChainRow, compose_joint_lp, get_collective
from repro.core.broadcast import BroadcastProblem
from repro.core.scatter import ScatterProblem
from repro.lp import LinearProgram
from repro.lp.exact_simplex import ExactSimplexSolver
from repro.lp.model import LE
from repro.lp.presolve import PROTECTED_ROW_PREFIXES, presolve
from repro.platform.generators import heterogenize, random_connected

SEED = 20260728


def _random_joint_model(rng: random.Random) -> LinearProgram:
    """A joint composite LP over a random platform with random chain rows."""
    n = rng.randint(3, 5)
    g = random_connected(n, extra_edges=rng.randint(0, 2),
                         seed=rng.randrange(10_000))
    if rng.random() < 0.5:
        g = heterogenize(g, seed=rng.randrange(10_000),
                         cost_choices=(1, 2), speed_choices=(1,))
    nodes = g.nodes()
    stages = []
    for _k in range(rng.randint(2, 3)):
        src = rng.choice(nodes)
        targets = [p for p in nodes if p != src][:rng.randint(1, 2)]
        if rng.random() < 0.5:
            spec = get_collective("scatter")
            stages.append(spec.build_lp(ScatterProblem(g, src, targets)))
        else:
            spec = get_collective("broadcast")
            stages.append(spec.build_lp(BroadcastProblem(g, src, targets)))

    # random coupling rows over existing stage variables; rhs >= 0 with
    # sense <= keeps the all-zero point feasible, so the joint LP always
    # has an optimum to roundtrip
    chain = []
    for c in range(rng.randint(1, 4)):
        terms = []
        for _t in range(rng.randint(1, 4)):
            k = rng.randrange(len(stages))
            var = rng.choice(stages[k].variables)
            coef = rng.choice([1, -1, 2, Fraction(1, 2), -Fraction(1, 3)])
            terms.append((k, var.name, coef))
        chain.append(ChainRow(name=f"chain[f{c}]", terms=tuple(terms),
                              sense=LE, rhs=rng.choice([0, 0, 1])))
    return compose_joint_lp("fuzz", stages, chain_rows=chain)


@pytest.mark.parametrize("case", range(30))
def test_roundtrip_satisfies_every_original_row_exactly(case):
    rng = random.Random(SEED + case)
    lp = _random_joint_model(rng)
    chain_names = {c.name for c in lp.constraints
                   if c.name.startswith("chain[")}
    assert chain_names

    pr = presolve(lp)
    assert not pr.infeasible  # the zero point is always feasible
    kept = {c.name for c in pr.lp.constraints if c.name.startswith("chain[")}
    # the guard: every coupling row survives into the reduced model
    # (unless it lost all its variables to exact fixings — then it is a
    # checked-feasible empty row and may go)
    alive = {c.name for c in lp.constraints
             if c.name in chain_names and any(
                 pr.lp.get(v.name) is not None
                 for v in c.expr.variables()
                 if _has(pr.lp, v.name))}
    assert alive <= kept

    sol = ExactSimplexSolver().solve(pr.lp)
    assert sol.optimal
    values = pr.postsolve.values(sol.values)
    # every original row — capacities, conservation, throughput AND the
    # coupling rows — holds exactly on the postsolved point
    assert lp.check_feasible(values, tol=0) == []
    # and the optimum is bit-identical to the no-presolve solve
    direct = ExactSimplexSolver().solve(lp)
    assert direct.optimal
    assert lp.objective.evaluate(values) == direct.objective


def _has(lp, name):
    try:
        return lp.get(name)
    except KeyError:
        return None


def _chain_rows_of(lp):
    return [c.name for c in lp.constraints if c.name.startswith("chain[")]


class TestGuardRegressionPins:
    """Each pin builds the minimal model where exactly one unprotected
    reduction used to fire; the protected prefix must suppress it."""

    def test_prefix_constant_matches_composition_contract(self):
        from repro.collectives.base import CHAIN_PREFIX

        assert CHAIN_PREFIX in PROTECTED_ROW_PREFIXES

    def test_singleton_chain_row_stays_a_row(self):
        lp = LinearProgram("pin")
        x = lp.var("x")
        lp.add(x <= Fraction(1, 2), name="chain[x]")  # singleton row
        lp.maximize(x)
        pr = presolve(lp)
        assert _chain_rows_of(pr.lp) == ["chain[x]"]
        # an identical unprotected row becomes a bound and vanishes
        lp2 = LinearProgram("pin2")
        y = lp2.var("y")
        lp2.add(y <= Fraction(1, 2), name="row[y]")
        lp2.maximize(y)
        assert presolve(lp2).lp.num_constraints() == 0

    def test_duplicate_of_a_chain_row_keeps_the_chain_row(self):
        lp = LinearProgram("pin")
        x, y = lp.var("x"), lp.var("y")
        lp.add(x + y <= 1, name="chain[xy]")
        lp.add(x + y <= 1, name="cap")
        lp.add(x + y <= 2, name="cap2")
        lp.maximize(x + y)
        pr = presolve(lp)
        names = [c.name for c in pr.lp.constraints]
        assert "chain[xy]" in names
        # the unprotected duplicates still collapse among themselves
        assert names.count("cap2") == 0

    def test_dominated_chain_row_is_not_dropped(self):
        lp = LinearProgram("pin")
        x, y = lp.var("x"), lp.var("y")
        lp.add(x + y <= 2, name="chain[weak]")   # dominated by out[0]
        lp.add(2 * x + 2 * y <= 1, name="out[0]")
        lp.maximize(x + y)
        pr = presolve(lp)
        assert _chain_rows_of(pr.lp) == ["chain[weak]"]

    def test_free_singleton_in_chain_row_is_not_eliminated(self):
        lp = LinearProgram("pin")
        x = lp.var("x")       # appears only in the chain row, zero cost
        y = lp.var("y", ub=1)
        lp.add(y - x <= 0, name="chain[c]")  # a<0, ub=None: droppable shape
        lp.maximize(y)
        pr = presolve(lp)
        assert _chain_rows_of(pr.lp) == ["chain[c]"]
        assert _has(pr.lp, "x") is not None

    def test_fixed_vars_still_substitute_into_chain_rows(self):
        """Protection keeps the ROW, not stale variables: exact value
        substitutions apply and an all-fixed chain row may disappear as a
        verified-feasible empty row."""
        lp = LinearProgram("pin")
        x = lp.var("x", lb=Fraction(1, 3), ub=Fraction(1, 3))
        y = lp.var("y", ub=1)
        lp.add(y + x <= 1, name="chain[c]")
        lp.maximize(y)
        pr = presolve(lp)
        assert _chain_rows_of(pr.lp) == ["chain[c]"]
        con = next(c for c in pr.lp.constraints if c.name == "chain[c]")
        # x substituted at 1/3: row is now y <= 2/3
        assert sorted(v.name for v in con.expr.variables()) == ["y"]
        sol = ExactSimplexSolver().solve(pr.lp)
        values = pr.postsolve.values(sol.values)
        assert lp.check_feasible(values, tol=0) == []
        assert lp.objective.evaluate(values) == Fraction(2, 3)

    def test_infeasible_chain_row_is_still_detected(self):
        lp = LinearProgram("pin")
        x = lp.var("x", lb=1, ub=1)
        lp.add(x <= Fraction(1, 2), name="chain[c]")  # 1 <= 1/2: infeasible
        lp.maximize(x)
        pr = presolve(lp)
        assert pr.infeasible
