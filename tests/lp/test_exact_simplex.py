"""Unit tests for the exact rational simplex."""

from fractions import Fraction

import pytest

from repro.lp.exact_simplex import ExactSimplexSolver
from repro.lp.model import LinearProgram
from repro.lp.solution import SolveStatus


def solve(lp):
    return ExactSimplexSolver().solve(lp)


class TestBasics:
    def test_two_variable_max(self):
        lp = LinearProgram()
        x, y = lp.var("x"), lp.var("y")
        lp.add(x + 2 * y <= 4)
        lp.add(3 * x + y <= 6)
        lp.maximize(x + y)
        s = solve(lp)
        assert s.status is SolveStatus.OPTIMAL
        assert s.objective == Fraction(14, 5)
        assert s.value(x) == Fraction(8, 5) and s.value(y) == Fraction(6, 5)

    def test_solution_is_exact_fractions(self):
        lp = LinearProgram()
        x = lp.var("x")
        lp.add(3 * x <= 1)
        lp.maximize(x)
        s = solve(lp)
        assert s.exact and s.value(x) == Fraction(1, 3)

    def test_minimization(self):
        lp = LinearProgram()
        p, q = lp.var("p"), lp.var("q")
        lp.add(p + q >= 3)
        lp.add(p - q == 1)
        lp.minimize(2 * p + q)
        s = solve(lp)
        assert s.objective == 5 and s.value(p) == 2 and s.value(q) == 1

    def test_equality_constraints(self):
        lp = LinearProgram()
        u, v = lp.var("u"), lp.var("v")
        lp.add(u + v == Fraction(1, 2))
        lp.add(u - v <= Fraction(1, 6))
        lp.maximize(u)
        s = solve(lp)
        assert s.objective == Fraction(1, 3)

    def test_upper_bounds_respected(self):
        lp = LinearProgram()
        x = lp.var("x", ub=Fraction(2, 7))
        lp.maximize(x)
        s = solve(lp)
        assert s.objective == Fraction(2, 7)

    def test_nonzero_lower_bounds(self):
        lp = LinearProgram()
        x = lp.var("x", lb=2, ub=5)
        y = lp.var("y")
        lp.add(x + y <= 6)
        lp.maximize(y)
        s = solve(lp)
        assert s.value(x) == 2 and s.value(y) == 4

    def test_objective_with_constant(self):
        lp = LinearProgram()
        x = lp.var("x", ub=1)
        lp.maximize(x + 10)
        assert solve(lp).objective == 11

    def test_trivial_lp_no_constraints(self):
        lp = LinearProgram()
        x = lp.var("x", ub=3)
        lp.maximize(2 * x)
        assert solve(lp).objective == 6


class TestStatuses:
    def test_infeasible(self):
        lp = LinearProgram()
        x = lp.var("x", ub=1)
        lp.add(x >= 2)
        lp.maximize(x)
        assert solve(lp).status is SolveStatus.INFEASIBLE

    def test_infeasible_equalities(self):
        lp = LinearProgram()
        x, y = lp.var("x"), lp.var("y")
        lp.add(x + y == 1)
        lp.add(x + y == 2)
        lp.maximize(x)
        assert solve(lp).status is SolveStatus.INFEASIBLE

    def test_unbounded(self):
        lp = LinearProgram()
        x = lp.var("x")
        lp.maximize(x)
        assert solve(lp).status is SolveStatus.UNBOUNDED

    def test_unbounded_with_constraint(self):
        lp = LinearProgram()
        x, y = lp.var("x"), lp.var("y")
        lp.add(x - y <= 1)
        lp.maximize(x)
        assert solve(lp).status is SolveStatus.UNBOUNDED

    def test_bounded_direction_not_unbounded(self):
        lp = LinearProgram()
        x, y = lp.var("x"), lp.var("y")
        lp.add(x - y <= 1)
        lp.maximize(x - y)  # bounded even though the region is unbounded
        assert solve(lp).objective == 1

    def test_floats_rejected(self):
        lp = LinearProgram()
        x = lp.var("x")
        lp.add(0.5 * x <= 1)
        lp.maximize(x)
        with pytest.raises(ValueError):
            solve(lp)


class TestRobustness:
    def test_huge_objective_coefficients_price_without_overflow(self):
        # Devex pricing scores are float-approximate; coefficients past
        # float range must collapse to inf (reference reset), not raise
        lp = LinearProgram()
        x, y = lp.var("x"), lp.var("y")
        lp.add(x + y <= 1)
        lp.maximize(10**160 * x + y)
        s = solve(lp)
        assert s.status is SolveStatus.OPTIMAL
        assert s.objective == 10**160

    def test_degenerate_lp_terminates(self):
        # classic degenerate vertex: several constraints meet at one point
        lp = LinearProgram()
        x, y = lp.var("x"), lp.var("y")
        lp.add(x + y <= 1)
        lp.add(x <= 1)
        lp.add(y <= 1)
        lp.add(2 * x + 2 * y <= 2)
        lp.maximize(x + y)
        assert solve(lp).objective == 1

    def test_redundant_equalities_handled(self):
        lp = LinearProgram()
        x, y = lp.var("x"), lp.var("y")
        lp.add(x + y == 1)
        lp.add(2 * x + 2 * y == 2)  # redundant
        lp.maximize(x)
        assert solve(lp).objective == 1

    def test_beale_cycling_instance_terminates(self):
        # Beale's classical cycling example — Bland's rule must terminate.
        lp = LinearProgram()
        x1, x2, x3, x4 = (lp.var(f"x{i}") for i in range(1, 5))
        lp.add(Fraction(1, 4) * x1 - 60 * x2 - Fraction(1, 25) * x3 + 9 * x4 <= 0)
        lp.add(Fraction(1, 2) * x1 - 90 * x2 - Fraction(1, 50) * x3 + 3 * x4 <= 0)
        lp.add(x3 <= 1)
        lp.maximize(Fraction(3, 4) * x1 - 150 * x2 + Fraction(1, 50) * x3 - 6 * x4)
        s = solve(lp)
        assert s.status is SolveStatus.OPTIMAL
        assert s.objective == Fraction(1, 20)

    def test_solution_feasibility_certificate(self):
        lp = LinearProgram()
        x, y, z = lp.var("x"), lp.var("y"), lp.var("z", ub=2)
        lp.add(x + y + z == 4)
        lp.add(x - y >= Fraction(1, 3))
        lp.maximize(y + z)
        s = solve(lp)
        assert s.status is SolveStatus.OPTIMAL
        assert lp.check_feasible(s.values) == []

    def test_larger_random_instance_matches_highs(self):
        import random

        from repro.lp.highs import HighsSolver

        rng = random.Random(11)
        lp = LinearProgram()
        xs = [lp.var(f"x{i}") for i in range(12)]
        for c in range(18):
            expr = sum(rng.randint(0, 4) * x for x in xs)
            lp.add(expr <= rng.randint(5, 30), name=f"c{c}")
        lp.maximize(sum(rng.randint(1, 5) * x for x in xs))
        exact = solve(lp)
        approx = HighsSolver().solve(lp)
        assert exact.status is SolveStatus.OPTIMAL
        assert abs(float(exact.objective) - float(approx.objective)) < 1e-6

    def test_iteration_counter_positive(self):
        lp = LinearProgram()
        x, y = lp.var("x"), lp.var("y")
        lp.add(x + y <= 2)
        lp.maximize(x + y)
        assert solve(lp).iterations >= 1
