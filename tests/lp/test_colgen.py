"""Dantzig-Wolfe column generation (PR 8): structure detection, pricing,
determinism, differential equivalence.

Four layers are pinned here:

- **Differential.** ``solve_colgen`` must reproduce the fraction-free
  tableau's exact rational optimum on randomized scatter/reduce
  instances and on hand-built block-angular LPs, and its expanded
  edge-flow solution must satisfy the *raw* LP exactly (``tol=0``).
  (The conformance suite extends this bit-identity to every registered
  collective on the platform fleet.)
- **Pricing.** Negative-reduced-cost detection is checked against
  hand-computed duals on a block small enough to solve by inspection,
  and the Dijkstra path pricer against an enumerable graph — including
  the preconditions under which it must decline (``None``) and leave
  the block to LP pricing.
- **Determinism.** ``jobs ∈ {1, 2, 4}`` must produce the identical
  solution *and* the identical admitted column set (``columns_digest``),
  per the contract in :mod:`repro.lp.colgen`'s docstring.
- **Routing.** ``backend="colgen"`` through dispatch, auto-routing above
  ``COLGEN_VAR_LIMIT``, the incompatible-flag errors, and the fallback
  paths (minimization, no blocks, infeasible seed master).
"""

import random
from fractions import Fraction

import pytest

from repro.collectives import get_collective
from repro.core.scatter import ScatterProblem, build_scatter_lp
from repro.lp import dispatch
from repro.lp.colgen import (_BlockPricer, _dijkstra_price, detect,
                             resolve_jobs, solve_colgen)
from repro.lp.exact_simplex import ExactSimplexSolver
from repro.lp.model import LinearProgram
from repro.lp.revised_simplex import (IncrementalColumnMaster,
                                      RevisedSimplexSolver)
from repro.lp.solution import SolveStatus
from repro.platform import generators as gen

SEED = 20260809


def _two_block_lp():
    """max TP with two single-commodity blocks sharing one capacity row.

    Block k is the cone ``a_k == b_k`` (one conservation row); the
    ``alpha[k]`` rows tie TP under each commodity's rate and the
    ``edge[cap]`` row makes the commodities compete for one link.
    """
    lp = LinearProgram("two-block")
    tp = lp.var("TP")
    a0, b0 = lp.var("a0"), lp.var("b0")
    a1, b1 = lp.var("a1"), lp.var("b1")
    lp.add(a0 - b0 == 0, name="cons[0]")
    lp.add(a1 - b1 == 0, name="cons[1]")
    lp.add(tp - a0 <= 0, name="alpha[0]")
    lp.add(tp - a1 <= 0, name="alpha[1]")
    lp.add(a0 + b0 + a1 + b1 <= 1, name="edge[cap]")
    lp.maximize(tp)
    return lp


class TestDetect:
    def test_two_block_lp_decomposes(self):
        lp = _two_block_lp()
        struct = detect(lp)
        assert struct is not None
        assert len(struct.blocks) == 2
        # TP is the only master variable; every block var is covered once
        assert struct.master_var_idx == [lp.get("TP").index]
        covered = sorted(j for b in struct.blocks for j in b.var_idx)
        assert covered == [lp.get(n).index for n in ("a0", "b0", "a1", "b1")]
        # capacity/alpha rows stay in the master, conservation rows do not
        names = [lp.constraints[ci].name for ci in struct.master_rows]
        assert "edge[cap]" in names and "alpha[0]" in names
        assert "cons[0]" not in names

    def test_scatter_lp_decomposes_per_commodity(self):
        g = gen.ring(5)
        nodes = g.compute_nodes()
        lp = build_scatter_lp(ScatterProblem(g, nodes[0], nodes[1:]))
        struct = detect(lp)
        assert struct is not None and len(struct.blocks) >= 2
        block_vars = {j for b in struct.blocks for j in b.var_idx}
        assert block_vars.isdisjoint(struct.master_var_idx)
        assert block_vars | set(struct.master_var_idx) == \
            set(range(lp.num_vars()))

    def test_minimization_returns_none(self):
        lp = _two_block_lp()
        lp.minimize(lp.get("TP") * 1)
        assert detect(lp) is None

    def test_no_blocks_returns_none(self):
        lp = LinearProgram("flat")
        x, y = lp.var("x", ub=2), lp.var("y", ub=3)
        lp.add(x + y <= 4, name="cap")
        lp.maximize(x + y)
        assert detect(lp) is None


class TestPricing:
    def test_negative_reduced_cost_against_hand_duals(self):
        """Block cone ``a0 == b0`` sliced at ``a0 + b0 = 1`` has the
        single vertex ``(1/2, 1/2)``; with duals y on the master rows
        the reduced cost is ``y . (A_master x)``, computable by hand."""
        lp = _two_block_lp()
        struct = detect(lp)
        block = struct.blocks[0]
        assert block.var_names == ("a0", "b0")
        pos = {lp.constraints[ci].name: p
               for p, ci in enumerate(struct.master_rows)}
        pricer = _BlockPricer(block)

        # y(alpha[0]) = 3, y(edge[cap]) = 1:
        # w = (1*1 + 3*(-1), 1*1) = (-2, 1); rc = w . (1/2, 1/2) = -1/2
        duals = {pos["alpha[0]"]: Fraction(3), pos["edge[cap]"]: Fraction(1)}
        tag, rc, vertex, _warm = pricer.price(duals, None)
        assert tag == "col"
        assert rc == Fraction(-1, 2)
        assert vertex == {0: Fraction(1, 2), 1: Fraction(1, 2)}

        # y(edge[cap]) = 1 alone: w = (1, 1), rc = 1 >= 0 -> priced out
        res = pricer.price({pos["edge[cap]"]: Fraction(1)}, None)
        assert res[0] == "none"

    def test_dijkstra_picks_cheapest_path(self):
        graph = {"source": "s", "sink": "t",
                 "arcs": (("s", "a", 0), ("a", "t", 1), ("s", "t", 2))}
        # two-hop path costs 1 + 0 = 1, direct arc costs -2
        w = [Fraction(1), Fraction(0), Fraction(-2)]
        tag, rc, vertex = _dijkstra_price(graph, w)
        assert (tag, rc) == ("col", Fraction(-2))
        assert vertex == {2: Fraction(1)}
        # make the two-hop route win instead (the discount must sit on
        # the *sink* arc — negative non-sink costs void the precondition)
        w = [Fraction(1), Fraction(-5), Fraction(-2)]
        tag, rc, vertex = _dijkstra_price(graph, w)
        assert (tag, rc) == ("col", Fraction(-4))
        assert vertex == {0: Fraction(1), 1: Fraction(1)}

    def test_dijkstra_priced_out_and_want_any(self):
        graph = {"source": "s", "sink": "t", "arcs": (("s", "t", 0),)}
        assert _dijkstra_price(graph, [Fraction(2)]) == ("none",)
        tag, rc, vertex = _dijkstra_price(graph, [Fraction(2)],
                                          want_any=True)
        assert (tag, rc, vertex) == ("col", Fraction(2), {0: Fraction(1)})

    def test_dijkstra_declines_invalid_preconditions(self):
        # a negative-cost non-sink arc breaks Dijkstra's optimality
        graph = {"source": "s", "sink": "t",
                 "arcs": (("s", "a", 0), ("a", "t", 1))}
        assert _dijkstra_price(graph, [Fraction(-1), Fraction(0)]) is None
        # an arc *out of* the sink breaks the path decomposition
        graph = {"source": "s", "sink": "t",
                 "arcs": (("s", "t", 0), ("t", "s", 1))}
        assert _dijkstra_price(graph, [Fraction(1), Fraction(1)]) is None

    def test_spec_pricing_graphs_enable_path_pricing(self):
        g = gen.ring(6)
        nodes = g.compute_nodes()
        problem = ScatterProblem(g, nodes[0], nodes[1:])
        lp = build_scatter_lp(problem)
        graphs = get_collective("scatter").pricing_graphs(problem)
        assert graphs, "scatter spec must supply pricing graphs"
        sol = solve_colgen(lp, pricing=graphs)
        assert sol.optimal and sol.exact
        assert sol.stats["path_blocks"] >= 1
        assert sol.objective == ExactSimplexSolver().solve(lp).objective


class TestDifferential:
    @pytest.mark.parametrize("trial", range(6))
    def test_random_scatter_matches_tableau(self, trial):
        rng = random.Random(SEED + trial)
        g = gen.heterogenize(
            gen.random_connected(rng.randint(4, 7),
                                 extra_edges=rng.randint(1, 4),
                                 seed=SEED + trial),
            seed=trial)
        nodes = g.compute_nodes()
        lp = build_scatter_lp(ScatterProblem(g, nodes[0], nodes[1:]))
        colgen = solve_colgen(lp)
        tableau = ExactSimplexSolver().solve(lp)
        assert colgen.optimal and tableau.optimal
        assert colgen.exact
        assert colgen.objective == tableau.objective
        assert lp.check_feasible(colgen.values, tol=0) == []

    def test_two_block_lp_exact_optimum(self):
        # by hand: both commodities run at TP, the shared link carries
        # 2*TP per commodity's (a, b) pair -> 4*TP <= 1 -> TP = 1/4
        sol = solve_colgen(_two_block_lp())
        assert sol.optimal and sol.objective == Fraction(1, 4)
        assert sol.stats["blocks"] == 2
        assert sol.stats["rounds"] >= 1

    def test_unbounded_transfers(self):
        lp = _two_block_lp()
        # dropping the capacity row leaves TP unbounded above
        lp.constraints[:] = [c for c in lp.constraints
                             if c.name != "edge[cap]"]
        assert solve_colgen(lp).status is SolveStatus.UNBOUNDED


class TestDeterminism:
    def test_jobs_invariance(self):
        """jobs ∈ {1, 2, 4}: identical solution values, identical
        admitted column set, identical round/pricing counters."""
        g = gen.heterogenize(gen.ring(8), seed=3)
        nodes = g.compute_nodes()
        lp = build_scatter_lp(ScatterProblem(g, nodes[0], nodes[1:]))
        runs = {jobs: solve_colgen(lp, jobs=jobs) for jobs in (1, 2, 4)}
        base = runs[1]
        assert base.optimal and base.stats["rounds"] >= 2
        for jobs, sol in runs.items():
            assert sol.values == base.values, f"jobs={jobs}"
            for key in ("columns_digest", "rounds", "columns",
                        "columns_priced", "seed_columns"):
                assert sol.stats[key] == base.stats[key], (jobs, key)

    def test_resolve_jobs_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1
        assert resolve_jobs(3) == 3
        monkeypatch.setenv("REPRO_JOBS", "2")
        assert resolve_jobs() == 2
        monkeypatch.setenv("REPRO_JOBS", "junk")
        assert resolve_jobs() == 1


class TestFallbacksAndRouting:
    def test_minimization_falls_back(self):
        lp = LinearProgram("mini")
        x = lp.var("x", ub=4)
        lp.add(x >= 1, name="lo")
        lp.minimize(x * 1)
        sol = solve_colgen(lp)
        assert sol.optimal and sol.objective == 1
        assert sol.stats["fallback"] == "minimize"
        assert sol.backend == "colgen"

    def test_no_blocks_falls_back(self):
        lp = LinearProgram("flat")
        x, y = lp.var("x", ub=2), lp.var("y", ub=3)
        lp.add(x + y <= 4, name="cap")
        lp.maximize(x + y)
        sol = solve_colgen(lp)
        assert sol.optimal and sol.objective == 4
        assert sol.stats["fallback"] == "no blocks"

    def test_infeasible_master_falls_back(self):
        # the block cone only contains the zero ray (a == 0 == b), so
        # the seed round cannot populate the demand row and the round-0
        # master is infeasible -> direct fallback diagnoses the full LP
        lp = LinearProgram("infeas")
        tp = lp.var("TP")
        a, b = lp.var("a"), lp.var("b")
        lp.add(a + b == 0, name="cons[0]")
        lp.add(a - b == 0, name="cons[1]")
        lp.add(a + b >= 1, name="demand")
        lp.add(tp - a <= 0, name="alpha[0]")
        lp.maximize(tp)
        sol = solve_colgen(lp)
        assert sol.status is SolveStatus.INFEASIBLE
        assert sol.stats["fallback"] == "master infeasible"

    def test_float_lp_rejected(self):
        lp = LinearProgram("float")
        x = lp.var("x", ub=1.5)
        lp.maximize(x * 1)
        with pytest.raises(ValueError, match="colgen requires"):
            solve_colgen(lp)

    def test_dispatch_backend_colgen_matches_exact(self):
        g = gen.ring(5)
        nodes = g.compute_nodes()
        lp = build_scatter_lp(ScatterProblem(g, nodes[0], nodes[1:]))
        exact = dispatch.solve(lp, backend="exact", cache=False)
        colgen = dispatch.solve(lp, backend="colgen", cache=False)
        assert colgen.exact and colgen.objective == exact.objective
        assert colgen.stats["engine"] == "colgen"
        # the PR 8 var-count contract: both sides recorded, and colgen
        # bypasses presolve so they coincide
        assert colgen.stats["vars_raw"] == lp.num_vars()
        assert colgen.stats["vars_presolved"] == lp.num_vars()

    def test_auto_routes_to_colgen_above_limit(self, monkeypatch):
        monkeypatch.setattr(dispatch, "COLGEN_VAR_LIMIT", 10)
        g = gen.ring(5)
        nodes = g.compute_nodes()
        lp = build_scatter_lp(ScatterProblem(g, nodes[0], nodes[1:]))
        sol = dispatch.solve(lp, backend="auto", cache=False)
        assert sol.exact and sol.stats["engine"] == "colgen"

    def test_incompatible_flags_rejected(self):
        lp = _two_block_lp()
        with pytest.raises(ValueError):
            dispatch.solve(lp, backend="colgen", dual=True, cache=False)
        with pytest.raises(ValueError):
            dispatch.solve(lp, backend="colgen", canonical=True,
                           cache=False)


class TestIncrementalMaster:
    def test_spliced_column_matches_full_rebuild(self):
        """A zero-objective column spliced into the live core must land
        on the same optimum as rebuilding the master from scratch."""
        lp = LinearProgram("master")
        tp = lp.var("TP")
        c0 = lp.var("col0")
        lp.add(tp - c0 <= 0, name="alpha[0]")
        lp.add(c0 + tp * 0 <= 1, name="edge[cap]")
        lp.maximize(tp)
        inc = IncrementalColumnMaster(lp, RevisedSimplexSolver())
        res = inc.solve_full()
        assert res.optimal and res.objective == 1

        # a second column relaxes alpha[0] twice as fast as it spends
        # capacity -> optimum moves to TP = 2
        res2 = inc.add_and_resolve([("col1", {0: Fraction(-2),
                                              1: Fraction(1)})])
        assert res2 is not None and res2.optimal
        assert res2.objective == 2
        assert res2.values.get("col1") == 1

        rebuilt = LinearProgram("rebuilt")
        tp = rebuilt.var("TP")
        c0, c1 = rebuilt.var("col0"), rebuilt.var("col1")
        rebuilt.add(tp - c0 - 2 * c1 <= 0, name="alpha[0]")
        rebuilt.add(c0 + c1 <= 1, name="edge[cap]")
        rebuilt.maximize(tp)
        full = IncrementalColumnMaster(rebuilt,
                                       RevisedSimplexSolver()).solve_full()
        assert full.optimal and full.objective == res2.objective
