"""Presolve/postsolve correctness: unit rules, collective round trips,
randomized differential tests against the un-presolved solver and the
dense oracle, and the canonical-vertex identity guarantee."""

import random
from fractions import Fraction

import pytest

from repro.collectives import get_collective
from repro.core.gossip import GossipProblem
from repro.core.reduce_op import ReduceProblem
from repro.core.reduce_scatter import ReduceScatterProblem
from repro.core.scatter import ScatterProblem
from repro.lp import solve
from repro.lp.dense_simplex import DenseSimplexSolver
from repro.lp.dispatch import clear_cache
from repro.lp.exact_simplex import ExactSimplexSolver
from repro.lp.model import LinearProgram
from repro.lp.presolve import presolve
from repro.lp.solution import SolveStatus
from repro.platform.examples import (
    figure2_platform,
    figure2_targets,
    figure6_platform,
)


def roundtrip(lp, **presolve_kw):
    """Presolve -> exact solve -> postsolve; returns (values, objective,
    reduction result)."""
    pr = presolve(lp, **presolve_kw)
    assert not pr.infeasible
    sol = ExactSimplexSolver().solve(pr.lp, canonical=presolve_kw.get(
        "for_canonical", False))
    assert sol.optimal
    values = pr.postsolve.values(sol.values)
    return values, lp.objective.evaluate(values), pr


# ----------------------------------------------------------------------
class TestRules:
    def test_fixed_variable_substituted(self):
        lp = LinearProgram()
        x = lp.var("x", lb=2, ub=2)
        y = lp.var("y")
        lp.add(x + y <= 5)
        lp.maximize(y)
        values, obj, pr = roundtrip(lp)
        # x substitutes, leaving y <= 3 (a singleton row), which cascades
        # into a bound and a zero column: the whole LP dissolves
        assert pr.stats["fixed_var"] == 1
        assert pr.lp.num_vars() == 0
        assert values == {x.index: 2, y.index: 3} and obj == 3

    def test_singleton_row_becomes_bound(self):
        lp = LinearProgram()
        x, y = lp.var("x"), lp.var("y")
        lp.add(2 * x <= 3)
        lp.add(x + y <= 10)
        lp.maximize(x + y)
        values, obj, pr = roundtrip(lp)
        assert pr.stats["singleton_row"] == 1
        assert obj == 10

    def test_singleton_eq_row_fixes_and_cascades(self):
        lp = LinearProgram()
        x, y = lp.var("x"), lp.var("y")
        lp.add(3 * x == 2)
        lp.add(x + y <= 1)
        lp.maximize(y)
        values, obj, pr = roundtrip(lp)
        assert values[x.index] == Fraction(2, 3)
        assert obj == Fraction(1, 3)
        # the whole LP dissolves: x fixed, then y's row is a singleton
        assert pr.lp.num_vars() == 0 and pr.lp.num_constraints() == 0

    def test_zero_column_sits_at_preferred_bound(self):
        lp = LinearProgram()
        x = lp.var("x", ub=4)   # in no constraint; maximize pushes to ub
        z = lp.var("z", lb=1)   # in no constraint; not in objective -> lb
        y = lp.var("y")
        lp.add(y <= 2)
        lp.maximize(x + y)
        values, obj, pr = roundtrip(lp)
        # y <= 2 cascades (singleton row -> bound -> zero column), so all
        # three variables resolve as zero columns
        assert pr.stats["zero_col"] == 3
        assert values[x.index] == 4 and values[z.index] == 1 and obj == 6

    def test_unbounded_zero_column_left_for_the_solver(self):
        lp = LinearProgram()
        x = lp.var("x")  # no ub, positive objective: unbounded direction
        y = lp.var("y")
        lp.add(y <= 1)
        lp.maximize(x)
        pr = presolve(lp)
        sol = ExactSimplexSolver().solve(pr.lp)
        assert sol.status is SolveStatus.UNBOUNDED

    def test_duplicate_rows_keep_tightest(self):
        lp = LinearProgram()
        x, y = lp.var("x"), lp.var("y")
        lp.add(x + y <= 5)
        lp.add(2 * x + 2 * y <= 4)   # same row scaled; tighter (<= 2)
        lp.add(x + y <= 7)
        lp.maximize(x + y)
        values, obj, pr = roundtrip(lp)
        assert pr.stats["duplicate_row"] == 2
        assert obj == 2

    def test_contradictory_duplicate_eq_rows_infeasible(self):
        lp = LinearProgram()
        x, y = lp.var("x"), lp.var("y")
        lp.add(x + y == 1)
        lp.add(2 * x + 2 * y == 3)
        lp.maximize(x)
        assert presolve(lp).infeasible

    def test_dominated_row_dropped(self):
        lp = LinearProgram()
        x, y, z = lp.var("x"), lp.var("y"), lp.var("z")
        lp.add(x + y <= 1, "edge")           # dominated by the out row
        lp.add(x + y + z <= 1, "out")
        lp.maximize(x + y + z)
        values, obj, pr = roundtrip(lp)
        assert pr.stats["dominated_row"] == 1
        assert [c.name for c in pr.lp.constraints] == ["out"]
        assert obj == 1

    def test_free_singleton_eq_substitution(self):
        # s appears only in the equality, cost 0, no ub: the row relaxes
        # to an inequality and postsolve recomputes s
        lp = LinearProgram()
        x, s = lp.var("x", ub=10), lp.var("s")
        lp.add(x + s == 7)
        lp.maximize(x)
        values, obj, pr = roundtrip(lp)
        assert pr.stats["free_singleton"] >= 1
        assert obj == 7
        assert values.get(x.index, 0) + values.get(s.index, 0) == 7
        assert lp.check_feasible(values) == []

    def test_free_singleton_negative_le_drops_row(self):
        # -s + x <= 0 with s free upward: s absorbs anything, row vanishes,
        # postsolve lifts s to x's value
        lp = LinearProgram()
        x, s = lp.var("x", ub=3), lp.var("s")
        lp.add(x - s <= 0)
        lp.maximize(x)
        values, obj, pr = roundtrip(lp)
        assert obj == 3
        assert values[s.index] >= values[x.index]
        assert lp.check_feasible(values) == []

    def test_singleton_row_conflict_infeasible(self):
        lp = LinearProgram()
        x = lp.var("x", ub=1)
        lp.add(x >= 2)
        lp.maximize(x)
        assert presolve(lp).infeasible

    def test_empty_row_feasibility_checked(self):
        lp = LinearProgram()
        x = lp.var("x")
        lp.add(x - x <= -1)  # 0 <= -1
        lp.maximize(x)
        assert presolve(lp).infeasible

    def test_fully_dissolved_lp(self):
        lp = LinearProgram()
        x = lp.var("x", lb=3, ub=3)
        lp.maximize(x)
        values, obj, pr = roundtrip(lp)
        assert obj == 3 and pr.lp.num_vars() == 0

    def test_reduced_objective_carries_eliminated_contributions(self):
        # the reduced LP's own optimum must equal the original optimum:
        # eliminated variables with objective coefficients fold their
        # contribution into the reduced objective constant
        lp = LinearProgram()
        x = lp.var("x", lb=3, ub=3)        # fixed, obj coef 2
        y = lp.var("y")                    # singleton row -> zero column
        z = lp.var("z")
        lp.add(y <= 5)
        lp.add(z <= 1)
        lp.maximize(2 * x + y + z)
        pr = presolve(lp)
        reduced = ExactSimplexSolver().solve(pr.lp)
        assert reduced.optimal and reduced.objective == 12
        direct = ExactSimplexSolver().solve(lp)
        assert direct.objective == 12

    def test_infeasible_result_summary_does_not_raise(self):
        lp = LinearProgram()
        x = lp.var("x", lb=5, ub=5)
        lp.add(x <= 1)
        lp.maximize(x)
        pr = presolve(lp)
        assert pr.infeasible
        assert "infeasible" in pr.summary()


# ----------------------------------------------------------------------
def _collective_problems():
    fig2 = figure2_platform()
    tri = figure6_platform()
    return {
        "scatter": ScatterProblem(fig2, "Ps", figure2_targets()),
        "reduce": ReduceProblem(tri, [0, 1, 2], target=0),
        "gossip": GossipProblem(tri, [0, 1, 2], [0, 1, 2]),
        "prefix": ReduceProblem(tri, [0, 1, 2], target=0),
        "reduce-scatter": ReduceScatterProblem(tri, [0, 1, 2]),
    }


@pytest.mark.parametrize("name", ["scatter", "reduce", "gossip", "prefix",
                                  "reduce-scatter"])
class TestCollectiveRoundTrip:
    def test_postsolve_matches_direct_solve(self, name):
        lp = get_collective(name).build_lp(_collective_problems()[name])
        direct = ExactSimplexSolver().solve(lp)
        values, obj, pr = roundtrip(lp)
        assert obj == direct.objective
        assert lp.check_feasible(values, tol=0) == []
        # presolve must actually bite on the collective LPs
        assert pr.lp.num_constraints() < lp.num_constraints()

    def test_canonical_vertex_identical_with_and_without_presolve(self, name):
        lp = get_collective(name).build_lp(_collective_problems()[name])
        plain = ExactSimplexSolver().solve(lp, canonical=True)
        values, obj, pr = roundtrip(lp, for_canonical=True)
        assert obj == plain.objective
        assert values == plain.values

    def test_dispatch_presolve_on_off_same_objective(self, name):
        lp_on = get_collective(name).build_lp(_collective_problems()[name])
        lp_off = get_collective(name).build_lp(_collective_problems()[name])
        clear_cache()
        on = solve(lp_on, backend="exact", presolve=True, cache=False)
        off = solve(lp_off, backend="exact", presolve=False, cache=False)
        assert on.objective == off.objective
        assert lp_on.check_feasible(on.values, tol=0) == []


# ----------------------------------------------------------------------
def _random_lp(rng: random.Random, n_vars: int, n_rows: int,
               force_structure: bool) -> LinearProgram:
    """Sparse random rational LP; with ``force_structure`` it salts in the
    patterns presolve targets (fixed vars, singletons, duplicates)."""
    lp = LinearProgram("rand")
    xs = []
    for j in range(n_vars):
        lb = rng.choice([0, 0, 0, 1])
        if force_structure and rng.random() < 0.15:
            xs.append(lp.var(f"x{j}", lb=2, ub=2))  # fixed
        else:
            ub = rng.choice([None, None, 3, Fraction(5, 2)])
            xs.append(lp.var(f"x{j}", lb=lb, ub=ub))
    rows = []
    for i in range(n_rows):
        support = rng.sample(range(n_vars), k=min(n_vars,
                                                  rng.randint(1, 4)))
        expr = 0
        for j in support:
            expr = expr + rng.choice([1, 2, -1, Fraction(1, 2), 3]) * xs[j]
        sense = rng.choice(["<=", "<=", ">=", "=="])
        rhs = rng.choice([0, 1, 2, Fraction(7, 3), 5])
        if sense == "<=":
            con = expr <= rhs
        elif sense == ">=":
            con = expr >= rhs
        else:
            con = expr == rhs
        lp.add(con)
        rows.append(con)
    if force_structure and rows:
        # duplicate a random row at a positive scale
        src = rng.choice(rows)
        dup = sum((2 * c * lp.variables[j] for j, c in src.expr.coefs.items()),
                  start=0 * xs[0])
        lp.add(dup <= -2 * src.expr.constant if src.sense == "<="
               else dup == -2 * src.expr.constant)
    obj = 0
    for j in rng.sample(range(n_vars), k=max(1, n_vars // 2)):
        obj = obj + rng.choice([1, 2, -1, Fraction(3, 2)]) * xs[j]
    lp.maximize(obj)
    return lp


class TestRandomizedDifferential:
    @pytest.mark.parametrize("seed", range(30))
    def test_presolved_matches_unpresolved_and_oracle(self, seed):
        rng = random.Random(1000 + seed)
        lp = _random_lp(rng, n_vars=rng.randint(2, 7),
                        n_rows=rng.randint(1, 8),
                        force_structure=seed % 2 == 0)
        direct = ExactSimplexSolver().solve(lp)
        oracle = DenseSimplexSolver().solve(lp)
        assert direct.status is oracle.status
        pr = presolve(lp)
        if pr.infeasible:
            assert oracle.status is SolveStatus.INFEASIBLE
            return
        reduced = ExactSimplexSolver().solve(pr.lp)
        assert reduced.status is oracle.status
        if reduced.optimal:
            values = pr.postsolve.values(reduced.values)
            assert lp.objective.evaluate(values) == oracle.objective
            assert lp.check_feasible(values, tol=0) == []

    @pytest.mark.parametrize("seed", range(10))
    def test_canonical_identity_randomized(self, seed):
        rng = random.Random(7000 + seed)
        lp = _random_lp(rng, n_vars=rng.randint(2, 6),
                        n_rows=rng.randint(1, 6), force_structure=True)
        plain = ExactSimplexSolver().solve(lp, canonical=True)
        if not plain.optimal:
            return
        pr = presolve(lp, for_canonical=True)
        assert not pr.infeasible
        reduced = ExactSimplexSolver().solve(pr.lp, canonical=True)
        assert reduced.optimal
        assert pr.postsolve.values(reduced.values) == plain.values

    def test_degenerate_lp(self):
        lp = LinearProgram()
        x, y, z = lp.var("x"), lp.var("y"), lp.var("z")
        lp.add(x + y + z <= 1)
        lp.add(x + y <= 1)
        lp.add(2 * x + 2 * y + 2 * z <= 2)
        lp.maximize(x + y + z)
        values, obj, pr = roundtrip(lp)
        assert obj == 1 and lp.check_feasible(values, tol=0) == []

    def test_unbounded_lp_status_preserved(self):
        lp = LinearProgram()
        x, y = lp.var("x"), lp.var("y")
        lp.add(x - y <= 1)
        lp.maximize(x)
        pr = presolve(lp)
        assert not pr.infeasible
        assert ExactSimplexSolver().solve(pr.lp).status \
            is SolveStatus.UNBOUNDED

    def test_infeasible_lp_status_preserved(self):
        lp = LinearProgram()
        x, y = lp.var("x", ub=1), lp.var("y", ub=1)
        lp.add(x + y >= 3)
        lp.maximize(x)
        pr = presolve(lp)
        if not pr.infeasible:
            assert ExactSimplexSolver().solve(pr.lp).status \
                is SolveStatus.INFEASIBLE
