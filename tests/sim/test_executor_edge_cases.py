"""Executor edge cases: split messages, partial supply, no-split schedules."""

from fractions import Fraction

import pytest

from repro.core.schedule import PeriodicSchedule, Slot, Transfer
from repro.sim.executor import simulate_schedule


def two_hop_schedule(split: bool) -> PeriodicSchedule:
    """s -> a -> t shipping one message per period of 2; the second hop is
    split across two slots when ``split`` is set."""
    item = ("msg", "t")
    if split:
        slots = [
            Slot(duration=1, transfers=[
                Transfer("s", "a", item, 1, 1),
                Transfer("a", "t", item, Fraction(1, 2), Fraction(1, 2))]),
            Slot(duration=1, transfers=[
                Transfer("a", "t", item, Fraction(1, 2), Fraction(1, 2))]),
        ]
    else:
        slots = [
            Slot(duration=1, transfers=[Transfer("s", "a", item, 1, 1)]),
            Slot(duration=1, transfers=[Transfer("a", "t", item, 1, 1)]),
        ]
    return PeriodicSchedule(name="twohop", period=2, throughput=Fraction(1, 2),
                            slots=slots, per_period={item: 2},
                            deliveries={item: "t"})


def run(sched, n_periods=20):
    item = ("msg", "t")
    supplies = {("s", item): lambda seq: (item, seq)}
    return simulate_schedule(sched, supplies, n_periods,
                             expected=lambda it, seq: (it, seq))


class TestSplitMessages:
    def test_split_and_unsplit_deliver_same_count(self):
        res_split = run(two_hop_schedule(split=True))
        res_whole = run(two_hop_schedule(split=False))
        assert res_split.completed_ops() == res_whole.completed_ops()

    def test_split_messages_arrive_intact(self):
        res = run(two_hop_schedule(split=True))
        assert res.errors == []
        assert res.one_port_violations == []

    def test_fractional_progress_carries_across_periods(self):
        # a transfer of 1/3 message per period completes one message every
        # three periods — no loss, no duplication
        item = ("msg", "t")
        sched = PeriodicSchedule(
            name="slow", period=1, throughput=Fraction(1, 3),
            slots=[Slot(duration=1, transfers=[
                Transfer("s", "t", item, Fraction(1, 3), 1)])],
            per_period={item: 1}, deliveries={item: "t"})
        res = run(sched, n_periods=30)
        assert res.errors == []
        assert res.completed_ops() == 10

    def test_warmup_relay_sends_nothing_first_period(self):
        res = run(two_hop_schedule(split=False), n_periods=2)
        # period 0: s->a only; period 1: a->t delivers the first message
        assert res.completed_ops() == 1

    def test_deliveries_never_exceed_supply_rate(self):
        res = run(two_hop_schedule(split=True), n_periods=50)
        assert res.completed_ops() <= 50  # 1 per period at most


class TestComputeGuards:
    def test_compute_without_operator_raises(self):
        from repro.core.schedule import ComputeTask

        item_in = ("val", (0, 0), 0)
        item_in2 = ("val", (1, 1), 0)
        item_out = ("val", (0, 1), 0)
        sched = PeriodicSchedule(
            name="c", period=1, throughput=1,
            slots=[Slot(duration=1, transfers=[])],
            per_period={}, deliveries={item_out: "a"},
            compute={"a": [ComputeTask("a", item_out, (item_in, item_in2),
                                       1, Fraction(1, 2))]})
        supplies = {("a", item_in): lambda s: (0, s),
                    ("a", item_in2): lambda s: (1, s)}
        with pytest.raises(ValueError):
            simulate_schedule(sched, supplies, 3)
