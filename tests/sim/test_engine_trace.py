"""Unit tests for the event engine and trace validation."""

from fractions import Fraction

import pytest

from repro.sim.engine import Engine
from repro.sim.trace import (
    Trace, TraceEvent, port_utilization, validate_one_port,
)


class TestEngine:
    def test_events_run_in_time_order(self):
        e = Engine()
        log = []
        e.at(5, lambda: log.append("b"))
        e.at(2, lambda: log.append("a"))
        e.run()
        assert log == ["a", "b"] and e.now == 5

    def test_ties_break_by_scheduling_order(self):
        e = Engine()
        log = []
        e.at(1, lambda: log.append("first"))
        e.at(1, lambda: log.append("second"))
        e.run()
        assert log == ["first", "second"]

    def test_after_is_relative(self):
        e = Engine()
        hits = []
        e.at(3, lambda: e.after(2, lambda: hits.append(e.now)))
        e.run()
        assert hits == [5]

    def test_run_until_stops_clock(self):
        e = Engine()
        log = []
        e.at(10, lambda: log.append("late"))
        e.run(until=4)
        assert log == [] and e.now == 4 and e.pending() == 1

    def test_cannot_schedule_in_past(self):
        e = Engine()
        e.at(5, lambda: None)
        e.run()
        with pytest.raises(ValueError):
            e.at(1, lambda: None)

    def test_reset(self):
        e = Engine()
        e.at(1, lambda: None)
        e.reset()
        assert e.now == 0 and e.pending() == 0

    def test_run_until_advances_even_when_empty(self):
        e = Engine()
        e.run(until=7)
        assert e.now == 7


class TestTraceValidation:
    def test_clean_trace_passes(self):
        t = Trace()
        t.add(TraceEvent("send", "a", 0, 1, peer="b"))
        t.add(TraceEvent("send", "a", 1, 2, peer="c"))  # back-to-back is fine
        assert validate_one_port(t) == []

    def test_overlapping_sends_flagged(self):
        t = Trace()
        t.add(TraceEvent("send", "a", 0, 2, peer="b"))
        t.add(TraceEvent("send", "a", 1, 3, peer="c"))
        bad = validate_one_port(t)
        assert bad and "send@'a'" in bad[0]

    def test_overlapping_receives_flagged(self):
        t = Trace()
        t.add(TraceEvent("send", "a", 0, 2, peer="x"))
        t.add(TraceEvent("send", "b", 1, 3, peer="x"))
        assert any(b.startswith("recv@'x'") for b in validate_one_port(t))

    def test_overlapping_compute_flagged(self):
        t = Trace()
        t.add(TraceEvent("compute", "a", 0, 2))
        t.add(TraceEvent("compute", "a", 1, 3))
        assert any(b.startswith("cpu@'a'") for b in validate_one_port(t))

    def test_send_and_compute_overlap_allowed(self):
        # full-overlap assumption: comm and comp coexist on one node
        t = Trace()
        t.add(TraceEvent("send", "a", 0, 2, peer="b"))
        t.add(TraceEvent("compute", "a", 0, 2))
        assert validate_one_port(t) == []

    def test_send_and_receive_overlap_allowed(self):
        t = Trace()
        t.add(TraceEvent("send", "a", 0, 2, peer="b"))
        t.add(TraceEvent("send", "b", 0, 2, peer="a"))
        assert validate_one_port(t) == []

    def test_zero_duration_events_ignored(self):
        t = Trace()
        t.add(TraceEvent("send", "a", 1, 1, peer="b"))
        t.add(TraceEvent("send", "a", 1, 1, peer="c"))
        assert validate_one_port(t) == []

    def test_fraction_times_supported(self):
        t = Trace()
        t.add(TraceEvent("send", "a", Fraction(1, 3), Fraction(2, 3), peer="b"))
        t.add(TraceEvent("send", "a", Fraction(2, 3), 1, peer="c"))
        assert validate_one_port(t) == []


class TestTraceQueries:
    def test_kind_filters_and_horizon(self):
        t = Trace()
        t.add(TraceEvent("send", "a", 0, 2, peer="b"))
        t.add(TraceEvent("compute", "a", 0, 5))
        t.add(TraceEvent("delivery", "b", 2, 2))
        assert len(t.sends()) == 1
        assert len(t.computes()) == 1
        assert len(t.deliveries()) == 1
        assert t.horizon() == 5

    def test_port_utilization(self):
        t = Trace()
        t.add(TraceEvent("send", "a", 0, 5, peer="b"))
        t.add(TraceEvent("compute", "b", 0, 10))
        u = port_utilization(t, horizon=10)
        assert u[("send", "a")] == 0.5
        assert u[("recv", "b")] == 0.5
        assert u[("cpu", "b")] == 1.0
