"""Unit tests for the periodic schedule executor."""


import pytest

from repro.core.reduce_op import ReduceProblem, solve_reduce
from repro.core.scatter import ScatterProblem, build_scatter_schedule, solve_scatter
from repro.core.schedule import build_reduce_schedule
from repro.platform.examples import figure2_platform, figure2_targets
from repro.sim.executor import (
    simulate_reduce, simulate_scatter,
)
from repro.sim.metrics import steady_throughput
from repro.sim.operators import MatMul2x2Mod


@pytest.fixture(scope="module")
def fig2_run():
    problem = ScatterProblem(figure2_platform(), "Ps", figure2_targets())
    sol = solve_scatter(problem, backend="exact")
    sched = build_scatter_schedule(sol)
    return problem, sol, sched, simulate_scatter(sched, problem, n_periods=40)


@pytest.fixture(scope="module")
def fig6_run(fig6_solution_module=None):
    from repro.platform.examples import figure6_platform

    problem = ReduceProblem(figure6_platform(), participants=[0, 1, 2], target=0)
    sol = solve_reduce(problem, backend="exact")
    sched = build_reduce_schedule(sol)
    return problem, sol, sched, simulate_reduce(sched, problem, n_periods=40)


class TestScatterExecution:
    def test_no_errors(self, fig2_run):
        *_, res = fig2_run
        assert res.errors == []

    def test_one_port_invariants_hold(self, fig2_run):
        *_, res = fig2_run
        assert res.one_port_violations == []

    def test_ops_close_to_bound(self, fig2_run):
        _p, sol, _s, res = fig2_run
        bound = float(sol.throughput) * float(res.horizon)
        assert res.completed_ops() <= bound + 1e-9
        assert res.completed_ops() >= 0.9 * bound  # small warm-up loss only

    def test_deliveries_in_seq_order(self, fig2_run):
        *_, res = fig2_run
        for times in res.delivery_times.values():
            assert times == sorted(times)

    def test_warmup_then_periodic(self, fig2_run):
        _p, sol, sched, res = fig2_run
        # per-period delivery counts settle to ops_per_period
        times = res.delivery_times[("msg", "P0")]
        T = float(sched.period)
        per_period = [0] * res.periods
        for t in times:
            per_period[min(int(float(t) / T), res.periods - 1)] += 1
        settled = per_period[len(per_period) // 2:]
        assert all(c == settled[0] for c in settled)

    def test_measured_throughput_converges(self):
        problem = ScatterProblem(figure2_platform(), "Ps", figure2_targets())
        sol = solve_scatter(problem, backend="exact")
        sched = build_scatter_schedule(sol)
        short = simulate_scatter(sched, problem, n_periods=10)
        long_ = simulate_scatter(sched, problem, n_periods=60)
        assert long_.measured_throughput() >= short.measured_throughput()
        assert abs(long_.measured_throughput() - 0.5) < 0.05

    def test_trace_contains_delivery_markers(self, fig2_run):
        *_, res = fig2_run
        assert len(res.trace.deliveries()) == sum(
            len(v) for v in res.delivery_times.values())


class TestReduceExecution:
    def test_correct_with_seqconcat(self, fig6_run):
        *_, res = fig6_run
        assert res.errors == [] and res.one_port_violations == []

    def test_correct_with_matmul(self, fig6_run):
        problem, sol, sched, _ = fig6_run
        res = simulate_reduce(sched, problem, n_periods=25, op=MatMul2x2Mod)
        assert res.correct

    def test_ops_close_to_bound(self, fig6_run):
        _p, sol, _s, res = fig6_run
        bound = float(sol.throughput) * float(res.horizon)
        assert 0.85 * bound <= res.completed_ops() <= bound + 1e-9

    def test_steady_throughput_estimate(self, fig6_run):
        *_, res = fig6_run
        times = [t for ts in res.delivery_times.values() for t in ts]
        assert steady_throughput(times) == pytest.approx(1.0, rel=0.1)

    def test_no_trace_mode(self, fig6_run):
        problem, sol, sched, _ = fig6_run
        res = simulate_reduce(sched, problem, n_periods=10, record_trace=False)
        assert res.trace is None and res.errors == []

    def test_lemma1_upper_bound_never_violated(self, fig6_run):
        """opt(G, K) <= TP x K — the schedule can never beat the LP bound."""
        problem, sol, sched, _ = fig6_run
        for periods in (5, 15, 30):
            res = simulate_reduce(sched, problem, n_periods=periods)
            assert res.completed_ops() <= float(sol.throughput) * float(res.horizon) + 1e-9
