"""Unit tests for throughput metrics."""

import pytest

from repro.sim.metrics import completions_per_horizon, efficiency, steady_throughput


class TestCompletions:
    def test_counts_within_horizon(self):
        assert completions_per_horizon([1, 2, 3, 10], 5) == 3

    def test_boundary_inclusive(self):
        assert completions_per_horizon([5], 5) == 1

    def test_empty(self):
        assert completions_per_horizon([], 5) == 0


class TestSteadyThroughput:
    def test_uniform_rate_recovered(self):
        times = [i * 2.0 for i in range(1, 101)]
        assert steady_throughput(times) == pytest.approx(0.5)

    def test_warmup_skipped(self):
        # slow start then steady rate 1
        times = [50.0] + [50.0 + i for i in range(1, 100)]
        assert steady_throughput(times) == pytest.approx(1.0, rel=0.05)

    def test_too_few_samples(self):
        assert steady_throughput([]) == 0.0
        assert steady_throughput([1.0]) == 0.0

    def test_identical_times_safe(self):
        assert steady_throughput([3.0, 3.0, 3.0]) == 0.0

    def test_unsorted_input_accepted(self):
        times = [4.0, 2.0, 3.0, 1.0, 5.0, 6.0, 7.0, 8.0]
        assert steady_throughput(times) == pytest.approx(1.0)


class TestEfficiency:
    def test_ratio(self):
        assert efficiency(0.45, 0.5) == pytest.approx(0.9)

    def test_zero_bound(self):
        assert efficiency(1.0, 0) == 0.0
