"""Differential fuzz: compiled engine vs. reference executor (PR 9).

The compiled engine's correctness story is *count-exactness*: on pure
communication schedules every observable (delivery times, per-item
counts, throughput, chain-credit gating, fault ledgers) must be
bit-identical to the per-instance reference executor.  The conformance
suite pins the solver-produced schedules; this file fuzzes the rest of
the surface the two implementations share:

- seeded random platforms x pure-communication collectives, replayed
  over a randomized period count (replica fan-out rides along through
  broadcast/all-gather);
- hand-built *chained* relay schedules exercising the credit gate, with
  both integral and fractional (multi-slot pipe) transfer units;
- fault/switch differentials: fail_link / fail_node mid-run, carry and
  restart schedule hand-offs, compared period by period.

Everything is seeded — a failure reproduces from the test id alone.
"""

import random
from fractions import Fraction as F

import pytest

np = pytest.importorskip("numpy")

from repro.collectives import available_collectives, solve_collective
from repro.collectives import schedule_collective
from repro.core.schedule import ChainLink, PeriodicSchedule, Slot, Transfer
from repro.platform import generators as gen
from repro.sim.compiled import VectorizedExecutor, compile_unsupported
from repro.sim.executor import ScheduleExecutor

SEED = 20260809

pytest.importorskip("scipy", reason="collective solves route through scipy")


def _pure_comm_specs():
    specs = []
    for spec in available_collectives():
        if not spec.has_schedule:
            continue
        # value-checked semantics (a combine operator) are pinned to the
        # reference executor by the dispatch rule; the fuzz targets the
        # engines' shared count-exact surface.
        if spec.name in ("reduce", "all-reduce", "prefix", "reduce-scatter"):
            continue
        specs.append(spec)
    return specs


def _pair(sched, supplies):
    ref = ScheduleExecutor(sched, supplies, record_trace=False)
    fast = VectorizedExecutor(sched, supplies)
    return ref, fast


def _assert_identical(ref, fast):
    a, b = ref.result(), fast.result()
    assert b.delivery_times == a.delivery_times
    assert b.completed_ops() == a.completed_ops()
    assert b.measured_throughput() == a.measured_throughput()
    assert b.periods == a.periods and b.horizon == a.horizon
    assert len(fast.abandoned) == len(ref.abandoned)
    assert fast.blocked_last_period == ref.blocked_last_period


# -- random platforms x collectives -----------------------------------


@pytest.mark.parametrize("case", range(8))
def test_fuzz_random_platform_collective(case):
    rng = random.Random(SEED + case)
    plat = rng.choice([
        gen.random_connected(rng.randrange(3, 6),
                             extra_edges=rng.randrange(0, 4),
                             seed=SEED ^ case),
        gen.clustered(2, 2, seed=SEED ^ case),
        gen.heterogenize(gen.ring(rng.randrange(3, 6)), seed=SEED ^ case),
    ])
    spec = rng.choice(_pure_comm_specs())
    problem = spec.conformance_problem(plat, plat.compute_nodes(), rng)
    if problem is None:
        pytest.skip(f"{spec.name} declines {plat.name}")
    sol = solve_collective(problem, collective=spec.name, backend="exact")
    sched = schedule_collective(sol)
    assert compile_unsupported(sched) is None
    sem = spec.simulation(sched, problem)

    periods = rng.randrange(2, 12)
    ref, fast = _pair(sched, sem.supplies)
    for _ in range(periods):
        assert fast.run_period() == ref.run_period()
    _assert_identical(ref, fast)


# -- chained relay schedules (credit gating) --------------------------


def _chained_relay(units):
    """A -> B stage feeding a gated B -> C stage through a ChainLink.

    ``units`` controls the first stage's slot decomposition: 1 ships the
    instance whole, F(1,2) splits it across two slots so the compiled
    engine's micro-unit pipe accounting is on the hook too.
    """
    if units == 1:
        stage1 = [Slot(duration=1,
                       transfers=[Transfer("A", "B", "x", 1, 1)])]
    else:
        stage1 = [Slot(duration=F(1, 2),
                       transfers=[Transfer("A", "B", "x", units,
                                           F(1, 2))]),
                  Slot(duration=F(1, 2),
                       transfers=[Transfer("A", "B", "x", units,
                                           F(1, 2))])]
    slots = stage1 + [Slot(duration=1,
                           transfers=[Transfer("B", "C", "y", 1, 1)])]
    sched = PeriodicSchedule(
        name="chained-relay", period=2, throughput=F(1, 2),
        slots=slots, per_period={"x": 1, "y": 1},
        deliveries={"x": "B", "y": "C"},
        chain_links=(ChainLink(label="relay", produced=("x",),
                               consumer="B", consumed=(("y", "s0"),)),))
    supplies = {("A", "x"): lambda seq: ("x", seq),
                ("B", "y"): lambda seq: ("y", seq)}
    return sched, supplies


@pytest.mark.parametrize("units", [1, F(1, 2)],
                         ids=["integral", "fractional"])
@pytest.mark.parametrize("periods", [1, 2, 5, 13])
def test_fuzz_chained_relay(units, periods):
    sched, supplies = _chained_relay(units)
    assert compile_unsupported(sched) is None
    ref, fast = _pair(sched, supplies)
    for _ in range(periods):
        assert fast.run_period() == ref.run_period()
    _assert_identical(ref, fast)
    # the gate really engaged: y's first emission waited for x to land
    times = ref.result().delivery_times
    assert times["y"], "the gated stage must eventually deliver"
    assert min(times["y"]) > min(times["x"])


# -- fault / switch differentials -------------------------------------


def _scatter_case(seed):
    plat = gen.clustered(2, 2, seed=seed)
    spec = {s.name: s for s in available_collectives()}["scatter"]
    rng = random.Random(seed)
    problem = spec.conformance_problem(plat, plat.compute_nodes(), rng)
    sol = solve_collective(problem, collective="scatter", backend="exact")
    sched = schedule_collective(sol)
    sem = spec.simulation(sched, problem)
    return sched, sem


@pytest.mark.parametrize("kill", ["link", "node"])
def test_fuzz_fault_differential(kill):
    sched, sem = _scatter_case(SEED)
    ref, fast = _pair(sched, sem.supplies)
    for _ in range(3):
        assert fast.run_period() == ref.run_period()
    # kill a resource the schedule actually uses, then keep running the
    # now-degraded schedule: both engines must block/abandon identically
    tr = next(t for s in sched.slots for t in s.transfers if t.units)
    if kill == "link":
        ref.fail_link(tr.src, tr.dst)
        fast.fail_link(tr.src, tr.dst)
    else:
        ref.fail_node(tr.dst)
        fast.fail_node(tr.dst)
    for _ in range(3):
        assert fast.run_period() == ref.run_period()
    assert fast.blocked_last_period == ref.blocked_last_period > 0
    _assert_identical(ref, fast)


@pytest.mark.parametrize("mode", ["carry", "restart"])
def test_fuzz_switch_differential(mode):
    sched, sem = _scatter_case(SEED)
    sched2, sem2 = _scatter_case(SEED + 1)  # same platform family, re-solve
    ref, fast = _pair(sched, sem.supplies)
    for _ in range(4):
        assert fast.run_period() == ref.run_period()
    m_ref = ref.switch_schedule(sched2, sem2.supplies, mode=mode)
    m_fast = fast.switch_schedule(sched2, sem2.supplies, mode=mode)
    assert m_ref == m_fast == mode
    for _ in range(4):
        assert fast.run_period() == ref.run_period()
    _assert_identical(ref, fast)
    assert len(ref.switches) == len(fast.switches) == 1


def test_switch_refuses_value_checked():
    sched, sem = _scatter_case(SEED)
    fast = VectorizedExecutor(sched, sem.supplies)
    with pytest.raises(ValueError, match="value-checked"):
        fast.switch_schedule(sched, sem.supplies,
                             combine=lambda a, b: a)
