"""Engine-selection rule and exact-Fraction throughput metrics (PR 9)."""

from fractions import Fraction as F

import pytest

from repro.core.schedule import ComputeTask, PeriodicSchedule, Slot, Transfer
from repro.sim.engine import SIM_ENGINES, resolve_sim_engine
from repro.sim.executor import ScheduleExecutor, carry_compatible


def _pure_comm():
    return PeriodicSchedule(
        name="relay", period=1, throughput=1,
        slots=[Slot(duration=1, transfers=[Transfer("A", "B", "x", 1, 1)])],
        per_period={"x": 1}, deliveries={"x": "B"})


def _with_compute():
    s = _pure_comm()
    s.compute = {"B": [ComputeTask(node="B", output="r", inputs=("x",),
                                   count=1, unit_time=1)]}
    return s


class TestResolveSimEngine:
    def test_auto_picks_compiled_for_pure_comm(self):
        pytest.importorskip("numpy")
        assert resolve_sim_engine("auto", _pure_comm()) == "compiled"

    def test_auto_falls_back_on_combine(self):
        assert resolve_sim_engine(
            "auto", _pure_comm(), combine=lambda a, b: a) == "reference"

    def test_auto_falls_back_on_compute(self):
        assert resolve_sim_engine("auto", _with_compute()) == "reference"

    def test_auto_falls_back_on_trace(self):
        assert resolve_sim_engine(
            "auto", _pure_comm(), record_trace=True) == "reference"

    def test_compiled_raises_with_reason(self):
        with pytest.raises(ValueError, match="combine"):
            resolve_sim_engine("compiled", _pure_comm(),
                               combine=lambda a, b: a)
        with pytest.raises(ValueError, match="compute"):
            resolve_sim_engine("compiled", _with_compute())
        with pytest.raises(ValueError, match="trace"):
            resolve_sim_engine("compiled", _pure_comm(), record_trace=True)

    def test_reference_always_wins(self):
        for sched in (_pure_comm(), _with_compute()):
            assert resolve_sim_engine("reference", sched) == "reference"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown sim engine"):
            resolve_sim_engine("turbo", _pure_comm())
        assert SIM_ENGINES == ("auto", "compiled", "reference")

    def test_float_times_disqualify_compiled(self):
        pytest.importorskip("numpy")
        s = _pure_comm()
        s.slots[0].transfers[0] = Transfer("A", "B", "x", 1, 0.5)
        s.slots[0].duration = 0.5
        assert resolve_sim_engine("auto", s) == "reference"


class TestCarryCompatible:
    def test_pure_comm_same_destinations(self):
        assert carry_compatible(_pure_comm(), _pure_comm())

    def test_compute_blocks_carry(self):
        assert not carry_compatible(_with_compute(), _pure_comm())
        assert not carry_compatible(_pure_comm(), _with_compute())

    def test_moved_delivery_blocks_carry(self):
        moved = _pure_comm()
        moved.deliveries = {"x": "A"}
        assert not carry_compatible(_pure_comm(), moved)


class TestExactThroughput:
    def _run(self, periods=6):
        sched = _pure_comm()
        ex = ScheduleExecutor(sched, {("A", "x"): lambda s: ("x", s)},
                              record_trace=False)
        for _ in range(periods):
            ex.run_period()
        return ex.result()

    def test_measured_throughput_is_exact_fraction(self):
        res = self._run()
        tp = res.measured_throughput()
        assert isinstance(tp, F)
        assert tp == F(res.completed_ops(), res.horizon)

    def test_steady_window_throughput_is_exact_fraction(self):
        res = self._run()
        tp = res.steady_window_throughput(periods=3)
        assert isinstance(tp, F) and tp == 1

    def test_steady_window_rejects_bad_window(self):
        res = self._run()
        with pytest.raises(ValueError):
            res.steady_window_throughput(periods=0)
        with pytest.raises(ValueError):
            res.steady_window_throughput(periods=-2)
