"""Mid-run fault injection and the drain-and-switch hand-off (PR 6).

The headline loop — break a link mid-run, detect it, replan warm, swap
the re-solved schedule in — must sustain the *new* LP optimum exactly
and account for every item (nothing lost, nothing double-delivered).
Also pins the executor's explicit retry queue (the PR 6 satellite fix:
a drawn-then-returned credit instance goes through a deterministic
``park``/``take`` path, not back into the supply gate).
"""

from fractions import Fraction

import pytest

from repro.collectives import schedule_collective, solve_collective
from repro.platform.examples import (figure6_platform, figure9_participants,
                                     figure9_platform, figure9_target)
from repro.platform.perturb import LinkDegradation, LinkFailure, NodeFailure
from repro.sim.executor import Instance, ScheduleExecutor
from repro.sim.faults import (Fault, FaultPlan, run_with_faults,
                              steady_window_throughput)


def _fig9_scatter_solution():
    g = figure9_platform()
    src = figure9_target()
    targets = [p for p in figure9_participants() if p != src]
    from repro.core.scatter import ScatterProblem

    return solve_collective(ScatterProblem(g, src, targets), backend="exact",
                            cache=False)


class TestFaultPlan:
    def test_from_spec_parses_and_sorts(self):
        plan = FaultPlan.from_spec("6:fail:2:8, 3:slow:0:1:2")
        assert [f.period for f in plan.faults] == [3, 6]
        assert plan.at(6) == [LinkFailure(2, 8)]
        assert plan.at(5) == []
        assert "fail link" in plan.describe()

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.from_spec("x:fail:0:1")
        with pytest.raises(ValueError):
            FaultPlan([Fault(-1, LinkFailure(0, 1))])


class TestRetryQueue:
    """Satellite regression: a drawn-then-returned instance must come back
    deterministically through the explicit retry queue."""

    def _executor(self):
        sol = _fig9_scatter_solution()
        sched = schedule_collective(sol)
        sem = sol.spec.simulation(sched, sol.problem)
        return ScheduleExecutor(sched, sem.supplies, combine=sem.combine,
                                expected=sem.expected)

    def test_park_then_take_returns_same_instance_first(self):
        ex = self._executor()
        key = next(iter(ex.supplies))
        node, item = key
        a = ex.take(node, item)
        b = ex.take(node, item)
        assert a is not None and b is not None and a.seq != b.seq
        ex.park(node, item, a)
        ex.park(node, item, b)
        # FIFO out of retry, ahead of any fresh supply draw
        assert ex.take(node, item) is a
        assert ex.take(node, item) is b
        assert ex.take(node, item).seq == 2

    def test_peek_sees_parked_instance(self):
        ex = self._executor()
        (node, item) = next(iter(ex.supplies))
        inst = Instance(item=item, seq=99, value=None)
        ex.park(node, item, inst)
        assert ex.peek_count(node, item)
        assert ex.take(node, item) is inst

    def test_failed_link_parks_in_flight_instance(self):
        ex = self._executor()
        tr = ex.schedule.slots[0].transfers[0]
        inst = Instance(item=tr.item, seq=0, value=None)
        # stage a partial shipment on the wire, then cut the link under it
        ex.pipe[(tr.src, tr.dst, tr.item)] = (inst, 1)
        ex.fail_link(tr.src, tr.dst)
        assert (tr.src, tr.dst, tr.item) not in ex.pipe
        assert ex.retry[(tr.src, tr.item)][-1] is inst


class TestFaultedScatter:
    @pytest.fixture(scope="class")
    def run(self):
        sol = _fig9_scatter_solution()
        # (2, 8) is survivable: every target stays reachable without it
        plan = FaultPlan.from_spec("6:fail:2:8")
        return sol, run_with_faults(sol, plan, 40, compare=True)

    def test_replan_triggered_once(self, run):
        _, fr = run
        assert fr.replanned and len(fr.reports) == 1
        assert fr.switch_periods == [7]     # detected one period after fire

    def test_no_items_lost_or_duplicated(self, run):
        _, fr = run
        assert fr.result.errors == []
        assert fr.result.one_port_violations == []
        assert fr.result.abandoned == []

    def test_switch_carries_state(self, run):
        _, fr = run
        assert [sw["mode"] for sw in fr.result.switches] == ["carry"]

    def test_steady_tp_equals_resolved_optimum(self, run):
        _, fr = run
        report = fr.reports[0]
        assert steady_window_throughput(fr) == report.throughput
        assert report.throughput == report.cold_solution.throughput

    def test_base_throughput_recorded(self, run):
        sol, fr = run
        assert fr.reports[0].base_throughput == sol.throughput

    def test_without_replan_schedule_stays_broken(self):
        sol = _fig9_scatter_solution()
        plan = FaultPlan.from_spec("6:fail:2:8")
        fr = run_with_faults(sol, plan, 20, replan=False)
        assert not fr.replanned
        assert steady_window_throughput(fr) < sol.throughput


class TestFaultedComposite:
    def test_pipelined_allreduce_restart_switch(self):
        from repro.core.allreduce import AllReduceProblem

        problem = AllReduceProblem(figure6_platform(), [0, 1, 2], task_work=2)
        sol = solve_collective(problem, collective="all-reduce",
                               backend="exact", mode="pipelined", cache=False)
        plan = FaultPlan.from_spec("5:slow:1:2:2")
        fr = run_with_faults(sol, plan, 60, compare=True)
        assert fr.replanned
        # computing/chained schedules cannot graft state: restart hand-off,
        # written-off instances show up in the abandonment ledger
        assert [sw["mode"] for sw in fr.result.switches] == ["restart"]
        assert fr.result.errors == []
        report = fr.reports[0]
        assert report.throughput == report.cold_solution.throughput
        # composite schedules count per-stream deliveries (delivery_mode
        # "sum"): the measured rate is TP x the spec's stream-group factor
        factor = sol.spec.ops_bound_factor(report.problem)
        assert steady_window_throughput(fr) == report.throughput * factor

    def test_node_failure_degrades_and_resumes(self):
        from repro.core.scatter import ScatterProblem
        from repro.platform.generators import complete

        g = complete(4)
        nodes = g.nodes()
        sol = solve_collective(ScatterProblem(g, nodes[0], nodes[1:]),
                               backend="exact", cache=False)
        plan = FaultPlan([Fault(4, NodeFailure(nodes[-1]))])
        fr = run_with_faults(sol, plan, 40)
        assert fr.replanned
        report = fr.reports[0]
        assert tuple(report.sacrificed) == (nodes[-1],)
        assert nodes[-1] not in report.problem.targets
        assert fr.result.errors == []
        assert steady_window_throughput(fr) == report.throughput

    def test_soft_event_detected_immediately(self):
        sol = _fig9_scatter_solution()
        plan = FaultPlan([Fault(6, LinkDegradation(2, 8, factor=2))])
        fr = run_with_faults(sol, plan, 24)
        # no physical breakage: the replan still fires, in the same period
        assert fr.switch_periods == [6]
        assert fr.result.errors == []


class TestSteadyWindow:
    def test_exact_fraction_and_window_semantics(self):
        sol = _fig9_scatter_solution()
        fr = run_with_faults(sol, FaultPlan([]), 20)
        tp = steady_window_throughput(fr, periods=8)
        assert isinstance(tp, Fraction)
        assert tp == sol.throughput

    def test_rejects_empty_window(self):
        sol = _fig9_scatter_solution()
        fr = run_with_faults(sol, FaultPlan([]), 10)
        with pytest.raises(ValueError):
            steady_window_throughput(fr, periods=0)
