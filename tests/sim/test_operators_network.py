"""Unit tests for reduction operators and the greedy one-port network."""


from repro.platform.examples import figure2_platform
from repro.platform.graph import PlatformGraph
from repro.sim.network import OnePortNetwork
from repro.sim.operators import MatMul2x2Mod, SeqConcat, noncommutative_reduce
from repro.sim.trace import validate_one_port


class TestSeqConcat:
    def test_associative(self):
        a, b, c = ((1,),), ((2,),), ((3,),)
        assert SeqConcat.combine(SeqConcat.combine(a, b), c) == \
               SeqConcat.combine(a, SeqConcat.combine(b, c))

    def test_not_commutative(self):
        a, b = SeqConcat.leaf(0, 0), SeqConcat.leaf(1, 0)
        assert SeqConcat.combine(a, b) != SeqConcat.combine(b, a)

    def test_expected_matches_reference(self):
        leaves = [SeqConcat.leaf(j, 7) for j in range(5)]
        assert noncommutative_reduce(leaves) == SeqConcat.expected(5, 7)

    def test_identity(self):
        assert noncommutative_reduce([]) == SeqConcat.identity


class TestMatMul:
    def test_associative(self):
        a, b, c = (MatMul2x2Mod.leaf(j, 3) for j in range(3))
        assert MatMul2x2Mod.combine(MatMul2x2Mod.combine(a, b), c) == \
               MatMul2x2Mod.combine(a, MatMul2x2Mod.combine(b, c))

    def test_not_commutative(self):
        a, b = MatMul2x2Mod.leaf(0, 0), MatMul2x2Mod.leaf(1, 0)
        assert MatMul2x2Mod.combine(a, b) != MatMul2x2Mod.combine(b, a)

    def test_expected_matches_reference(self):
        leaves = [MatMul2x2Mod.leaf(j, 2) for j in range(4)]
        assert noncommutative_reduce(leaves, op=MatMul2x2Mod) == \
               MatMul2x2Mod.expected(4, 2)

    def test_identity_element(self):
        x = MatMul2x2Mod.leaf(3, 1)
        assert MatMul2x2Mod.combine(MatMul2x2Mod.identity, x) == x


class TestOnePortNetwork:
    def test_transfer_duration(self):
        net = OnePortNetwork(figure2_platform())
        end = net.transfer("Ps", "Pa", 1, 0)
        assert end == 1  # cost 1 x size 1

    def test_sends_serialize_on_sender(self):
        net = OnePortNetwork(figure2_platform())
        net.transfer("Ps", "Pa", 1, 0)
        end = net.transfer("Ps", "Pb", 1, 0)
        assert end == 2
        assert validate_one_port(net.trace) == []

    def test_receives_serialize_on_receiver(self):
        g = PlatformGraph()
        g.add_edge("a", "x", 1)
        g.add_edge("b", "x", 1)
        net = OnePortNetwork(g)
        net.transfer("a", "x", 1, 0)
        end = net.transfer("b", "x", 1, 0)
        assert end == 2

    def test_disjoint_transfers_overlap(self):
        g = PlatformGraph()
        g.add_edge("a", "x", 1)
        g.add_edge("b", "y", 1)
        net = OnePortNetwork(g)
        assert net.transfer("a", "x", 1, 0) == 1
        assert net.transfer("b", "y", 1, 0) == 1

    def test_route_transfer_store_and_forward(self):
        from fractions import Fraction

        net = OnePortNetwork(figure2_platform())
        end = net.route_transfer(["Ps", "Pb", "P1"], 1, 0)
        assert end == Fraction(7, 3)  # 1 (Ps->Pb) + 4/3 (Pb->P1)

    def test_compute_serializes(self):
        net = OnePortNetwork(figure2_platform())
        net.compute("Pa", 2, 0)
        assert net.compute("Pa", 2, 1) == 4

    def test_compute_overlaps_comm(self):
        net = OnePortNetwork(figure2_platform())
        net.transfer("Ps", "Pa", 5, 0)
        assert net.compute("Ps", 1, 0) == 1
        assert validate_one_port(net.trace) == []

    def test_makespan(self):
        net = OnePortNetwork(figure2_platform())
        net.transfer("Ps", "Pa", 3, 0)
        assert net.makespan() == 3

    def test_ready_time_respected(self):
        net = OnePortNetwork(figure2_platform())
        assert net.transfer("Ps", "Pa", 1, 10) == 11
