"""Classical algorithm specs (PR 10): analytic solve, shared verification,
simulator round-trips, LP dominance, and the optimality-gap tuner.

The round-trip matrix is the ISSUE 10 satellite: every baseline spec, on
fig2 / fig6 / ring16 / fat-tree k=4, must replay on *both* engines with
the steady-window rate equal to the analytic per-operation rate
bit-exactly (multi-hop routes fill one pipeline stage per period, so the
window is measured after ``max_hops`` warm-up periods; whole-horizon
``measured_throughput`` can only fall short of the rate, never exceed it).
"""

from fractions import Fraction

import pytest

from repro.collectives import (
    resolve_collective, schedule_collective, solve_collective,
)
from repro.core.allgather import AllGatherProblem
from repro.core.allreduce import AllReduceProblem
from repro.core.reduce_scatter import ReduceScatterProblem
from repro.core.scatter import ScatterProblem
from repro.platform.examples import (
    figure2_platform, figure2_targets, figure6_platform,
)
from repro.platform.generators import complete, fat_tree, ring
from repro.sim.executor import simulate_collective


def _fig2_scatter():
    return ScatterProblem(figure2_platform(), "Ps", figure2_targets())


def _fig6(cls):
    return cls(figure6_platform(), [0, 1, 2])


def _ring16(cls):
    return cls(ring(16), [f"p{i}" for i in range(16)])


def _fattree4_scatter():
    return ScatterProblem(fat_tree(4), "h0", [f"h{i}" for i in range(1, 7)])


def _fattree4(cls):
    return cls(fat_tree(4), [f"h{i}" for i in range(8)])


ROUND_TRIPS = [
    ("fig2", "direct-scatter", _fig2_scatter),
    ("fig6", "ring-reduce-scatter", lambda: _fig6(ReduceScatterProblem)),
    ("fig6", "ring-all-gather", lambda: _fig6(AllGatherProblem)),
    ("fig6", "ring-all-reduce", lambda: _fig6(AllReduceProblem)),
    ("ring16", "ring-reduce-scatter", lambda: _ring16(ReduceScatterProblem)),
    ("ring16", "halving-reduce-scatter",
     lambda: _ring16(ReduceScatterProblem)),
    ("ring16", "ring-all-gather", lambda: _ring16(AllGatherProblem)),
    ("ring16", "doubling-all-gather", lambda: _ring16(AllGatherProblem)),
    ("fattree4", "direct-scatter", _fattree4_scatter),
    ("fattree4", "doubling-all-gather", lambda: _fattree4(AllGatherProblem)),
    ("fattree4", "rabenseifner-all-reduce",
     lambda: _fattree4(AllReduceProblem)),
]


@pytest.mark.parametrize(
    "name,build", [(n, b) for _l, n, b in ROUND_TRIPS],
    ids=[f"{label}-{n}" for label, n, _b in ROUND_TRIPS])
def test_round_trip_rate_is_bit_exact_on_both_engines(name, build):
    problem = build()
    sol = solve_collective(problem, collective=name)
    assert sol.exact
    assert isinstance(sol.throughput, Fraction)
    assert sol.verify() == []
    for occ in sol.edge_occupation().values():
        assert 0 <= occ <= 1

    spec = resolve_collective(problem, name)
    plan = spec.plan(problem)
    schedule = schedule_collective(sol)
    periods = plan.max_hops + 5
    results = {}
    for engine in ("reference", "compiled"):
        res = simulate_collective(schedule, problem, n_periods=periods,
                                  collective=name, record_trace=False,
                                  engine=engine)
        assert res.engine == engine
        # the analytic rate, bit-exact, once the pipeline is full
        assert res.steady_window_throughput(periods=3) == sol.throughput
        assert res.measured_throughput() <= sol.throughput
        if plan.max_hops == 1:
            assert res.measured_throughput() == sol.throughput
        results[engine] = res
    ref, fast = results["reference"], results["compiled"]
    assert fast.delivery_times == ref.delivery_times
    assert fast.completed_ops() == ref.completed_ops()
    assert fast.measured_throughput() == ref.measured_throughput()


def test_lp_dominates_every_baseline_plan():
    """Each classical plan is a feasible point of its LP (the all-reduce
    plans overlap phases, so they compare against the pipelined joint
    LP), hence dominance must hold as exact rationals."""
    cases = [
        (_fig6(ReduceScatterProblem), ["ring-reduce-scatter"], None),
        (_fig6(AllGatherProblem), ["ring-all-gather"], None),
        (_fig6(AllReduceProblem), ["ring-all-reduce"], "pipelined"),
        (ScatterProblem(figure2_platform(), "Ps", figure2_targets()),
         ["direct-scatter"], None),
    ]
    for problem, baselines, mode in cases:
        kwargs = {"mode": mode} if mode else {}
        lp = solve_collective(problem, backend="exact", **kwargs)
        for name in baselines:
            base = solve_collective(problem, collective=name)
            assert lp.throughput >= base.throughput, (name, problem)


def test_classical_message_counts():
    """The order-preserving variants keep the classical communication
    profile: ring reduce-scatter moves n(n-1) block messages per
    operation, recursive halving n*log2(n) messages totalling the same
    n-1 blocks per rank, ring all-gather n(n-1) block hops."""
    n = 4
    parts = [f"p{i}" for i in range(n)]
    g = complete(n)
    rs = resolve_collective(ReduceScatterProblem(g, parts),
                            "ring-reduce-scatter")
    plan = rs.plan(ReduceScatterProblem(g, parts))
    assert len(plan.transfers) == n * (n - 1)
    assert sum(plan.task_counts.values()) == n * (n - 1)

    hv = resolve_collective(ReduceScatterProblem(g, parts),
                            "halving-reduce-scatter")
    hplan = hv.plan(ReduceScatterProblem(g, parts))
    assert len(hplan.transfers) == n * 2  # n messages per round, log2(n) rounds
    assert sum(hplan.task_counts.values()) == n * (n - 1)
    # per-rank data sent matches the classical n-1 blocks
    per_rank = {}
    for tr in hplan.transfers:
        per_rank[tr.src] = per_rank.get(tr.src, 0) + tr.size
    assert set(per_rank.values()) == {n - 1}

    ag = resolve_collective(AllGatherProblem(g, parts), "ring-all-gather")
    aplan = ag.plan(AllGatherProblem(g, parts))
    assert len(aplan.transfers) == n * (n - 1)


def test_power_of_two_specs_reject_other_counts():
    g = complete(3)
    parts = [f"p{i}" for i in range(3)]
    for name, problem in [
            ("halving-reduce-scatter", ReduceScatterProblem(g, parts)),
            ("doubling-all-gather", AllGatherProblem(g, parts)),
            ("rabenseifner-all-reduce", AllReduceProblem(g, parts))]:
        spec = resolve_collective(problem, name)
        assert not spec.applicable(problem)
        with pytest.raises(ValueError, match="power-of-two"):
            solve_collective(problem, collective=name)


def test_baselines_never_capture_type_resolution():
    """The LP specs keep owning their problem types; baselines are only
    reachable by name."""
    assert resolve_collective(_fig6(ReduceScatterProblem)).name \
        == "reduce-scatter"
    assert resolve_collective(_fig2_scatter()).name == "scatter"
    assert resolve_collective(_fig6(AllGatherProblem)).name == "all-gather"
    assert resolve_collective(_fig6(AllReduceProblem)).name == "all-reduce"


def test_verify_flags_off_plan_and_missing_rates():
    problem = _fig6(ReduceScatterProblem)
    sol = solve_collective(problem, collective="ring-reduce-scatter")
    spec = resolve_collective(problem, "ring-reduce-scatter")
    from dataclasses import replace

    key = next(iter(sol.send))
    with_bogus = dict(sol.send)
    with_bogus[("bogus", "edge", ("x",))] = with_bogus[key]
    errors = spec.verify(replace(sol, send=with_bogus))
    assert errors and all("off-plan" in e for e in errors)

    missing = dict(sol.send)
    missing.pop(key)
    errors = spec.verify(replace(sol, send=missing))
    assert any("missing plan hop" in e for e in errors)


# ----------------------------------------------------------------------
# seed-baseline bridges (ISSUE 10 satellite: shared verify path)
# ----------------------------------------------------------------------
def test_direct_scatter_run_passes_shared_verification(fig2_problem):
    from repro.baselines import direct_scatter, direct_scatter_solution

    run = direct_scatter(fig2_problem, n_ops=4)
    assert run.correct  # includes the analytic twin's verify() errors now
    sol = direct_scatter_solution(fig2_problem)
    assert sol.exact
    assert sol.verify() == []
    assert sol.throughput == Fraction(1, 2)
    # its schedule rides the same machinery as every LP solution
    sched = schedule_collective(sol)
    res = simulate_collective(sched, fig2_problem, n_periods=7,
                              collective="direct-scatter",
                              record_trace=False)
    assert res.steady_window_throughput(periods=3) == sol.throughput


def test_single_tree_solution_is_exact_and_verifies(fig6_problem,
                                                    fig6_solution):
    from repro.baselines import best_single_tree_throughput
    from repro.baselines.reduce_baselines import single_tree_solution

    trees = fig6_solution.extract()
    rate, tree = best_single_tree_throughput(trees, fig6_problem)
    assert isinstance(rate, Fraction)  # 1/worst must not decay to float
    assert rate <= fig6_solution.throughput
    sol = single_tree_solution(tree, fig6_problem)
    assert sol.exact
    assert sol.throughput == rate
    assert sol.verify() == []  # conservation + one-port + alpha, tol=0
    for occ in sol.edge_occupation().values():
        assert 0 <= occ <= 1


# ----------------------------------------------------------------------
# the optimality-gap tuner
# ----------------------------------------------------------------------
def test_tune_rows_are_exact_and_dominated():
    from repro.tune import applicable_baselines, tune

    problem = _fig6(ReduceScatterProblem)
    assert [s.name for s in applicable_baselines(problem)] \
        == ["ring-reduce-scatter"]
    rows = tune(problem, topology="fig6")
    assert len(rows) == 1
    row = rows[0]
    assert row.collective == "reduce-scatter"
    assert row.baseline == "ring-reduce-scatter"
    assert isinstance(row.gap, Fraction) and row.gap >= 1
    assert row.sim_matches
    assert row.gap == Fraction(row.lp_tp) / Fraction(row.baseline_tp)


def test_gap_table_renders_rows():
    from repro.tune import tune
    from repro.viz import gap_table

    rows = tune(_fig6(AllGatherProblem), topology="fig6")
    text = gap_table(rows)
    assert "ring-all-gather" in text
    assert "exact" in text and "MISMATCH" not in text


def test_zoo_covers_at_least_five_topologies():
    from repro.tune import zoo_instances

    labels = {label for label, _p, _m in zoo_instances()}
    assert len(labels) >= 5
    collectives = {resolve_collective(p).name for _l, p, _m in zoo_instances()}
    assert collectives >= {"scatter", "reduce-scatter", "all-gather",
                           "all-reduce"}
