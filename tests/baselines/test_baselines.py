"""Unit tests for baseline algorithms — and the paper's qualitative claims:
the steady-state LP throughput dominates every baseline."""

from fractions import Fraction


from repro.baselines.reduce_baselines import (
    best_single_tree_throughput, binary_tree_reduce, flat_tree_reduce,
    single_tree_resource_load,
)
from repro.baselines.scatter_baselines import direct_scatter, spt_scatter_throughput
from repro.core.reduce_op import ReduceProblem
from repro.core.scatter import ScatterProblem, solve_scatter
from repro.platform.examples import figure6_platform
from repro.platform.generators import random_connected
from repro.sim.operators import MatMul2x2Mod


class TestDirectScatter:
    def test_runs_and_respects_one_port(self, fig2_problem):
        run = direct_scatter(fig2_problem, n_ops=30)
        assert run.correct
        assert len(run.completion_times) == 30

    def test_completion_times_monotone(self, fig2_problem):
        run = direct_scatter(fig2_problem, n_ops=20)
        assert run.completion_times == sorted(run.completion_times)

    def test_lp_dominates_direct(self, fig2_problem, fig2_solution):
        run = direct_scatter(fig2_problem, n_ops=60)
        assert run.throughput <= float(fig2_solution.throughput) + 1e-9

    def test_random_platform(self):
        g = random_connected(7, extra_edges=3, seed=3)
        nodes = g.nodes()
        problem = ScatterProblem(g, nodes[0], nodes[1:4])
        run = direct_scatter(problem, n_ops=40)
        assert run.correct and run.throughput > 0


class TestSptScatter:
    def test_single_route_never_beats_lp(self, fig2_problem, fig2_solution):
        spt_tp = spt_scatter_throughput(fig2_problem)
        assert spt_tp <= fig2_solution.throughput

    def test_fig2_single_route_equals_half(self, fig2_problem):
        # In fig2, the SPT routes m0 via Pa and m1 via Pb; the source port
        # is the binding resource either way, so TP stays 1/2 — multi-route
        # helps only when a relay/edge binds first.
        assert spt_scatter_throughput(fig2_problem) == Fraction(1, 2)

    def test_multi_route_strictly_helps_when_relays_bind(self):
        # Two targets behind relay `a`; relay `b` offers a slow detour to
        # t2.  The SPT routes everything through `a` (its out-port binds at
        # TP = 1/2); the LP offloads part of t2's traffic to `b` and reaches
        # TP = 3/5.
        from repro.platform.graph import PlatformGraph

        g = PlatformGraph()
        for n in ("s", "a", "b", "t1", "t2"):
            g.add_node(n, 1)
        g.add_edge("s", "a", Fraction(1, 4))
        g.add_edge("s", "b", Fraction(1, 4))
        g.add_edge("a", "t1", 1)
        g.add_edge("a", "t2", 1)
        g.add_edge("b", "t2", 3)
        problem = ScatterProblem(g, "s", ["t1", "t2"])
        full = solve_scatter(problem, backend="exact").throughput
        spt = spt_scatter_throughput(problem)
        assert full == Fraction(3, 5)
        assert spt == Fraction(1, 2)
        assert full > spt


class TestFlatTreeReduce:
    def test_correct_results(self, fig6_problem):
        run = flat_tree_reduce(fig6_problem, n_ops=25)
        assert run.correct

    def test_lp_dominates_flat(self, fig6_problem, fig6_solution):
        run = flat_tree_reduce(fig6_problem, n_ops=60)
        assert run.throughput <= float(fig6_solution.throughput) + 1e-9

    def test_matmul_operator(self, fig6_problem):
        run = flat_tree_reduce(fig6_problem, n_ops=10, op=MatMul2x2Mod)
        assert run.correct


class TestBinaryTreeReduce:
    def test_correct_results(self, fig6_problem):
        run = binary_tree_reduce(fig6_problem, n_ops=25)
        assert run.correct

    def test_lp_dominates_binary(self, fig6_problem, fig6_solution):
        run = binary_tree_reduce(fig6_problem, n_ops=60)
        assert run.throughput <= float(fig6_solution.throughput) + 1e-9

    def test_handles_target_not_root_of_tree(self):
        g = figure6_platform()
        problem = ReduceProblem(g, participants=[1, 2, 0], target=0)
        run = binary_tree_reduce(problem, n_ops=15)
        assert run.correct


class TestSingleTree:
    def test_resource_load_accounts_everything(self, fig6_solution):
        tree = fig6_solution.extract()[0]
        load = single_tree_resource_load(tree, fig6_solution.problem)
        assert sum(1 for (kind, _n) in load if kind == "cpu") >= 1
        assert all(v > 0 for v in load.values())

    def test_single_tree_never_beats_lp(self, fig6_solution):
        rate, tree = best_single_tree_throughput(
            fig6_solution.extract(), fig6_solution.problem)
        assert tree is not None
        assert rate <= fig6_solution.throughput

    def test_multi_tree_strictly_helps_on_fig9(self, fig9_solution):
        """Figures 11-12: the optimum mixes two trees; either alone is
        strictly worse."""
        trees = fig9_solution.extract()
        assert len(trees) >= 2
        rate, _ = best_single_tree_throughput(trees, fig9_solution.problem)
        assert float(rate) < float(fig9_solution.throughput)

    def test_empty_tree_list(self, fig6_solution):
        rate, tree = best_single_tree_throughput([], fig6_solution.problem)
        assert rate == 0 and tree is None
