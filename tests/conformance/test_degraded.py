"""Degraded-platform conformance: seeded failure traces over the registry.

Extends the cross-collective conformance matrix with a *perturbation
axis*: every registered collective, on a fleet of seeded platforms, is
solved again after a deterministic failure trace
(:func:`repro.platform.perturb.failure_trace` — link failures only when
the platform stays strongly connected, link degradations otherwise, so
every ``conformance_problem`` remains solvable).  Checked per case:

- the exact backend still returns a rational optimum on the perturbed
  platform, with ``verify()`` clean and one-port occupations within
  budget;
- HiGHS agrees with the exact optimum on the same perturbed instance;
- degradation can only lower throughput (events are tightening), and
  the perturbed solve must not have been served from a cached pristine
  solution (the ``cache_tag`` satellite guards the key space — a stale
  hit would show up here as a pristine TP on a degraded platform).

Seeded by ``REPRO_CONFORMANCE_SEED`` like the base suite; CI pins it.
"""

import os
import random
import zlib
from fractions import Fraction

import pytest

from repro.collectives import available_collectives, solve_collective
from repro.platform import generators as gen
from repro.platform.perturb import failure_trace, perturb

pytest.importorskip("scipy", reason="the HiGHS backend needs scipy")

SEED = int(os.environ.get("REPRO_CONFORMANCE_SEED", "20260728"))


def _platforms():
    """A smaller fleet than the base suite: traces multiply the work."""
    s = SEED
    return [
        gen.ring(4),
        gen.complete(4),
        gen.grid2d(2, 2),
        gen.random_connected(5, extra_edges=3, seed=s + 2),
        gen.heterogenize(gen.ring(4), seed=s + 4),
    ]


CASES = [(plat, spec)
         for plat in _platforms()
         for spec in available_collectives()]


@pytest.mark.parametrize(
    "plat,spec", CASES,
    ids=[f"{p.name}-{s.name}" for p, s in CASES])
def test_degraded_exact_and_highs_agree_and_verify(plat, spec):
    hosts = plat.compute_nodes()
    case_id = zlib.crc32(f"degraded-{plat.name}-{spec.name}".encode())
    rng = random.Random(SEED ^ case_id)
    problem = spec.conformance_problem(plat, hosts, rng)
    if problem is None:
        pytest.skip(f"{spec.name} declines {plat.name}")

    events = failure_trace(plat, SEED ^ case_id, n_events=2)
    pristine = solve_collective(problem, collective=spec.name,
                                backend="exact")

    degraded_problem, _ = _reproblem(problem, plat, events)
    exact = solve_collective(degraded_problem, collective=spec.name,
                             backend="exact")
    assert exact.exact
    assert isinstance(exact.throughput, (int, Fraction))
    assert exact.verify() == []
    for occ in exact.edge_occupation().values():
        assert 0 <= occ <= 1
    # failure traces only tighten capacity: for LP specs TP cannot
    # improve — and a cache collision with the pristine platform would
    # violate this whenever the trace actually binds.  Classical
    # baseline specs re-route their fixed plans with Dijkstra on the
    # perturbed costs, so their TP is not monotone under tightening;
    # they get the solvability/verification checks above only.
    from repro.baselines.algorithms import AlgorithmSpec

    if not isinstance(spec, AlgorithmSpec):
        assert exact.throughput <= pristine.throughput

    highs = solve_collective(degraded_problem, collective=spec.name,
                             backend="highs")
    assert abs(float(exact.throughput) - float(highs.throughput)) < 1e-7
    tol = 0 if highs.exact else 1e-6
    assert highs.verify(tol=tol) == []
    for occ in highs.edge_occupation().values():
        assert 0 <= occ <= 1 + tol


def _reproblem(problem, plat, events):
    """The same collective instance on the perturbed platform."""
    from dataclasses import replace

    g2, delta = perturb(plat, events)
    return replace(problem, platform=g2), delta


def test_traces_are_deterministic_across_processes():
    """The axis is reproducible: same seed, same events, every time."""
    plat = gen.complete(4)
    a = failure_trace(plat, SEED, n_events=3)
    b = failure_trace(plat, SEED, n_events=3)
    assert a == b and len(a) == 3
