"""Cross-collective conformance: every registered collective, on a fleet
of seeded random platforms, must solve identically on the exact and the
HiGHS backends and satisfy its own invariants.

The suite is *registry driven*: the case matrix is
``generated platforms x available_collectives()``, and each spec
contributes its own representative instance through the
``CollectiveSpec.conformance_problem`` hook — registering a new
collective (and implementing the hook) is enough to be covered here
automatically, no test edits required.

Differential-testing lineage: like the PR 1 dense-vs-sparse suite this
pits an exact oracle against an independent implementation — here the
whole pipeline (presolve + fraction-free simplex) against scipy/HiGHS —
so a bug must hide in *both* to survive.  Checked per case:

- the exact backend returns ``exact=True`` rational throughput,
- the HiGHS optimum agrees within tolerance,
- ``solution.verify()`` is clean on both backends,
- every edge occupation stays within the one-port budget.

The platform fleet is deterministic under ``REPRO_CONFORMANCE_SEED``
(default pinned; CI exports it explicitly so the matrix runs the exact
same instances on every Python version).
"""

import os
import random
import zlib
from fractions import Fraction

import pytest

from repro.collectives import available_collectives, solve_collective
from repro.platform import generators as gen

pytest.importorskip("scipy", reason="the HiGHS backend needs scipy")

SEED = int(os.environ.get("REPRO_CONFORMANCE_SEED", "20260728"))


def _platforms():
    """~13 deterministic random platforms spanning every generator."""
    s = SEED
    plats = [
        gen.ring(3), gen.ring(5),
        gen.complete(3), gen.complete(4),
        gen.star(3),
        gen.chain(4),
        gen.grid2d(2, 2),
        gen.tree(5, seed=s),
        gen.random_connected(4, extra_edges=2, seed=s + 1),
        gen.random_connected(5, extra_edges=3, seed=s + 2),
        gen.clustered(2, 2, seed=s + 3),
        gen.heterogenize(gen.ring(4), seed=s + 4),
        gen.heterogenize(gen.grid2d(2, 3), seed=s + 5),
    ]
    return plats


CASES = [(plat, spec)
         for plat in _platforms()
         for spec in available_collectives()]


@pytest.mark.parametrize(
    "plat,spec", CASES,
    ids=[f"{p.name}-{s.name}" for p, s in CASES])
def test_exact_and_highs_agree_and_verify(plat, spec):
    hosts = plat.compute_nodes()
    # crc32, not hash(): str hashing is salted per process and would make
    # the per-case rng (and thus the solved instance) unreproducible
    case_id = zlib.crc32(f"{plat.name}-{spec.name}".encode())
    rng = random.Random(SEED ^ case_id)
    problem = spec.conformance_problem(plat, hosts, rng)
    if problem is None:
        pytest.skip(f"{spec.name} declines {plat.name}")

    exact = solve_collective(problem, collective=spec.name, backend="exact")
    assert exact.exact
    assert isinstance(exact.throughput, (int, Fraction))
    assert exact.verify() == []
    for occ in exact.edge_occupation().values():
        assert 0 <= occ <= 1

    highs = solve_collective(problem, collective=spec.name, backend="highs")
    assert abs(float(exact.throughput) - float(highs.throughput)) < 1e-7
    tol = 0 if highs.exact else 1e-6
    assert highs.verify(tol=tol) == []
    for occ in highs.edge_occupation().values():
        assert 0 <= occ <= 1 + tol


@pytest.mark.parametrize(
    "plat,spec", CASES,
    ids=[f"{p.name}-{s.name}" for p, s in CASES])
def test_revised_engine_is_bit_identical(plat, spec):
    """PR 7: the LU-factorized revised simplex must reproduce the tableau
    oracle's rational optimum *bit-exactly* on every shared-size case."""
    hosts = plat.compute_nodes()
    case_id = zlib.crc32(f"{plat.name}-{spec.name}".encode())
    rng = random.Random(SEED ^ case_id)
    problem = spec.conformance_problem(plat, hosts, rng)
    if problem is None:
        pytest.skip(f"{spec.name} declines {plat.name}")

    exact = solve_collective(problem, collective=spec.name, backend="exact")
    revised = solve_collective(problem, collective=spec.name,
                               backend="revised", cache=False)
    assert revised.exact
    assert revised.throughput == exact.throughput
    assert revised.verify() == []
    if revised.lp_solution is not None:  # composites carry no single LP
        stats = revised.lp_solution.stats
        assert stats is not None and stats["path"] in (
            "cold", "float-primal", "float-dual", "warm-primal", "warm-dual")


@pytest.mark.parametrize(
    "plat,spec", CASES,
    ids=[f"{p.name}-{s.name}" for p, s in CASES])
def test_colgen_is_bit_identical(plat, spec):
    """PR 8: the Dantzig-Wolfe column-generation loop must reproduce the
    tableau oracle's rational optimum *bit-exactly* on every case — these
    instances sit far below ``COLGEN_VAR_LIMIT``, so ``backend="colgen"``
    forces the route auto-dispatch only takes at scale."""
    hosts = plat.compute_nodes()
    case_id = zlib.crc32(f"{plat.name}-{spec.name}".encode())
    rng = random.Random(SEED ^ case_id)
    problem = spec.conformance_problem(plat, hosts, rng)
    if problem is None:
        pytest.skip(f"{spec.name} declines {plat.name}")

    exact = solve_collective(problem, collective=spec.name, backend="exact")
    colgen = solve_collective(problem, collective=spec.name,
                              backend="colgen", cache=False)
    assert colgen.exact
    assert colgen.throughput == exact.throughput
    assert colgen.verify() == []


@pytest.mark.parametrize(
    "plat,spec", CASES,
    ids=[f"{p.name}-{s.name}" for p, s in CASES])
def test_compiled_engine_is_bit_identical(plat, spec):
    """PR 9: the compiled (vectorized) simulation engine must replay every
    conformance schedule with *bit-identical* observables to the reference
    executor — delivery times, per-item delivery counts, completed ops and
    measured throughput — and the ``auto`` dispatch rule must route pure
    communication to the compiled engine and value-checked semantics
    (a combine operator) to the reference executor."""
    from repro.collectives import schedule_collective
    from repro.sim.engine import resolve_sim_engine
    from repro.sim.executor import simulate_collective

    if not spec.has_schedule:
        pytest.skip(f"{spec.name} builds no schedule")
    hosts = plat.compute_nodes()
    case_id = zlib.crc32(f"{plat.name}-{spec.name}".encode())
    rng = random.Random(SEED ^ case_id)
    problem = spec.conformance_problem(plat, hosts, rng)
    if problem is None:
        pytest.skip(f"{spec.name} declines {plat.name}")

    sol = solve_collective(problem, collective=spec.name, backend="exact")
    sched = schedule_collective(sol)
    sem = spec.simulation(sched, problem)
    resolved = resolve_sim_engine("auto", sched, combine=sem.combine,
                                  record_trace=False)
    assert resolved == ("reference" if sem.value_checked else "compiled")

    ref = simulate_collective(sched, problem, n_periods=6,
                              collective=spec.name, record_trace=False,
                              engine="reference")
    fast = simulate_collective(sched, problem, n_periods=6,
                               collective=spec.name, record_trace=False,
                               engine="auto")
    assert ref.engine == "reference"
    assert fast.engine == resolved
    assert fast.delivery_times == ref.delivery_times
    assert {i: len(t) for i, t in fast.delivery_times.items()} \
        == {i: len(t) for i, t in ref.delivery_times.items()}
    assert fast.completed_ops() == ref.completed_ops()
    assert fast.measured_throughput() == ref.measured_throughput()
    assert fast.steady_window_throughput(periods=3) \
        == ref.steady_window_throughput(periods=3)
    assert fast.periods == ref.periods and fast.horizon == ref.horizon


def test_every_registered_collective_participates():
    """The matrix really covers the whole registry (the historical seven
    plus any future registration implementing ``conformance_problem``)."""
    plat = gen.complete(4)
    hosts = plat.compute_nodes()
    rng = random.Random(SEED)
    names = [spec.name for spec in available_collectives()
             if spec.conformance_problem(plat, hosts, rng) is not None]
    assert set(names) >= {"scatter", "reduce", "gossip", "prefix",
                          "reduce-scatter", "broadcast", "all-gather",
                          "all-reduce"}
