"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.platform.examples import figure2_platform
from repro.platform.io import save_platform


@pytest.fixture
def plat_file(tmp_path):
    path = str(tmp_path / "fig2.json")
    save_platform(figure2_platform(), path)
    return path


class TestScatterCommand:
    def test_basic(self, plat_file, capsys):
        rc = main(["scatter", "--platform", plat_file, "--source", "Ps",
                   "--targets", "P0,P1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "TP = 1/2" in out

    def test_with_schedule_and_sim(self, plat_file, capsys):
        rc = main(["scatter", "--platform", plat_file, "--source", "Ps",
                   "--targets", "P0,P1", "--schedule", "--simulate",
                   "--periods", "20"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "period =" in out and "correct=True" in out


class TestReduceCommand:
    def test_triangle(self, tmp_path, capsys):
        from repro.platform.examples import figure6_platform

        path = str(tmp_path / "fig6.json")
        save_platform(figure6_platform(), path)
        rc = main(["reduce", "--platform", path, "--participants", "0,1,2",
                   "--target", "0"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "TP = 1" in out and "reduction tree" in out


class TestGossipCommand:
    def test_one_source_gossip_matches_scatter(self, plat_file, capsys):
        rc = main(["gossip", "--platform", plat_file, "--sources", "Ps",
                   "--targets", "Ps,P0,P1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "TP = 1/2" in out

    def test_gossip_schedule_and_sim(self, tmp_path, capsys):
        from repro.platform.examples import figure6_platform

        path = str(tmp_path / "tri.json")
        save_platform(figure6_platform(), path)
        rc = main(["gossip", "--platform", path, "--sources", "0,1,2",
                   "--targets", "0,1,2", "--schedule", "--simulate",
                   "--periods", "25"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "period =" in out and "correct=True" in out


class TestDemoCommand:
    def test_fig2(self, capsys):
        assert main(["demo", "fig2"]) == 0
        assert "paper: 1/2" in capsys.readouterr().out

    def test_fig6(self, capsys):
        assert main(["demo", "fig6"]) == 0
        assert "paper: 1" in capsys.readouterr().out

    def test_unknown_demo_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["demo", "fig99"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
