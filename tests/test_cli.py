"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.platform.examples import figure2_platform
from repro.platform.io import save_platform


@pytest.fixture
def plat_file(tmp_path):
    path = str(tmp_path / "fig2.json")
    save_platform(figure2_platform(), path)
    return path


class TestScatterCommand:
    def test_basic(self, plat_file, capsys):
        rc = main(["scatter", "--platform", plat_file, "--source", "Ps",
                   "--targets", "P0,P1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "TP = 1/2" in out

    def test_with_schedule_and_sim(self, plat_file, capsys):
        rc = main(["scatter", "--platform", plat_file, "--source", "Ps",
                   "--targets", "P0,P1", "--schedule", "--simulate",
                   "--periods", "20"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "period =" in out and "correct=True" in out

    @pytest.mark.parametrize("engine", ["auto", "compiled", "reference"])
    def test_sim_engine_flag(self, plat_file, capsys, engine):
        pytest.importorskip("numpy")
        rc = main(["scatter", "--platform", plat_file, "--source", "Ps",
                   "--targets", "P0,P1", "--schedule", "--simulate",
                   "--periods", "20", "--sim-engine", engine])
        out = capsys.readouterr().out
        assert rc == 0
        # scatter is pure communication, so auto routes to the compiled
        # engine; the banner names whichever engine actually replayed it
        ran = "reference" if engine == "reference" else "compiled"
        assert f"correct=True [{ran} engine]" in out


class TestReduceCommand:
    def test_triangle(self, tmp_path, capsys):
        from repro.platform.examples import figure6_platform

        path = str(tmp_path / "fig6.json")
        save_platform(figure6_platform(), path)
        rc = main(["reduce", "--platform", path, "--participants", "0,1,2",
                   "--target", "0"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "TP = 1" in out and "reduction tree" in out


class TestGossipCommand:
    def test_one_source_gossip_matches_scatter(self, plat_file, capsys):
        rc = main(["gossip", "--platform", plat_file, "--sources", "Ps",
                   "--targets", "Ps,P0,P1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "TP = 1/2" in out

    def test_gossip_schedule_and_sim(self, tmp_path, capsys):
        from repro.platform.examples import figure6_platform

        path = str(tmp_path / "tri.json")
        save_platform(figure6_platform(), path)
        rc = main(["gossip", "--platform", path, "--sources", "0,1,2",
                   "--targets", "0,1,2", "--schedule", "--simulate",
                   "--periods", "25"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "period =" in out and "correct=True" in out


class TestPrefixCommand:
    def test_triangle(self, tmp_path, capsys):
        from repro.platform.examples import figure6_platform

        path = str(tmp_path / "tri.json")
        save_platform(figure6_platform(), path)
        rc = main(["prefix", "--platform", path, "--participants", "0,1,2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "TP =" in out and "send rates" in out


class TestReduceScatterCommand:
    def test_triangle(self, tmp_path, capsys):
        from repro.platform.examples import figure6_platform

        path = str(tmp_path / "tri.json")
        save_platform(figure6_platform(), path)
        rc = main(["reduce-scatter", "--platform", path,
                   "--participants", "0,1,2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "TP =" in out and "block 0" in out and "block 2" in out

    def test_with_schedule_and_sim(self, tmp_path, capsys):
        from repro.platform.examples import figure6_platform

        path = str(tmp_path / "tri.json")
        save_platform(figure6_platform(), path)
        rc = main(["reduce-scatter", "--platform", path,
                   "--participants", "0,1,2", "--schedule", "--simulate",
                   "--periods", "20"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "period =" in out and "correct=True" in out


class TestCollectivesCommand:
    def test_lists_all_registered(self, capsys):
        assert main(["collectives"]) == 0
        out = capsys.readouterr().out
        for name in ("scatter", "reduce", "gossip", "prefix",
                     "reduce-scatter"):
            assert name in out
        assert "registered collectives" in out


class TestDemoCommand:
    """Every demo subcommand runs clean (the registry acceptance bar)."""

    def test_fig2(self, capsys):
        assert main(["demo", "fig2"]) == 0
        assert "paper: 1/2" in capsys.readouterr().out

    def test_fig6(self, capsys):
        assert main(["demo", "fig6"]) == 0
        assert "paper: 1" in capsys.readouterr().out

    def test_fig9(self, capsys):
        assert main(["demo", "fig9"]) == 0
        out = capsys.readouterr().out
        assert "Tiers platform reduce" in out and "tree (weight" in out

    def test_reduce_scatter(self, capsys):
        assert main(["demo", "reduce-scatter"]) == 0
        out = capsys.readouterr().out
        assert "Reduce-scatter" in out and "block 0" in out
        assert "period =" in out

    def test_broadcast(self, capsys):
        assert main(["demo", "broadcast"]) == 0
        out = capsys.readouterr().out
        assert "TP = 7/12" in out and "arborescence" in out

    def test_all_gather(self, capsys):
        assert main(["demo", "all-gather"]) == 0
        out = capsys.readouterr().out
        assert "All-gather" in out and "period =" in out

    def test_unknown_demo_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["demo", "fig99"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestLpStatsFlag:
    def test_revised_backend_prints_counters(self, plat_file, capsys):
        rc = main(["scatter", "--platform", plat_file, "--source", "Ps",
                   "--targets", "P0,P1", "--backend", "revised",
                   "--lp-stats"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "solver stats: revised-simplex" in out
        assert "pivots:" in out and "refactorization" in out

    def test_tableau_backend_reports_var_counts_only(self, plat_file,
                                                     capsys):
        """The tableau oracle records no engine counters, but every
        dispatched solve stamps the raw/presolved variable counts."""
        rc = main(["scatter", "--platform", plat_file, "--source", "Ps",
                   "--targets", "P0,P1", "--backend", "tableau",
                   "--lp-stats"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "solver stats: exact-simplex" in out
        assert "after presolve" in out
        assert "no engine counters recorded" in out

    def test_composite_prints_per_stage(self, tmp_path, capsys):
        from repro.platform.examples import figure6_platform

        path = str(tmp_path / "tri.json")
        save_platform(figure6_platform(), path)
        rc = main(["all-reduce", "--platform", path,
                   "--participants", "0,1,2", "--backend", "revised",
                   "--lp-stats"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "stage 0 (reduce-scatter)" in out
        assert "stage 1 (all-gather)" in out


class TestCacheCommand:
    def test_info_disabled(self, capsys, monkeypatch):
        from repro.lp import diskcache

        monkeypatch.setattr(diskcache, "_cache_dir", None)
        monkeypatch.setattr(diskcache, "_env_checked", True)
        assert main(["cache", "info"]) == 0
        assert "disabled" in capsys.readouterr().out

    def test_info_and_clear_with_dir(self, tmp_path, plat_file, capsys,
                                     monkeypatch):
        from repro.lp import diskcache
        from repro.lp.dispatch import clear_cache

        cache_dir = str(tmp_path / "lpcache")
        diskcache.set_cache_dir(cache_dir)
        clear_cache()
        try:
            main(["scatter", "--platform", plat_file, "--source", "Ps",
                  "--targets", "P0,P1"])
            capsys.readouterr()
            assert main(["cache", "info", "--dir", cache_dir]) == 0
            out = capsys.readouterr().out
            assert "1 entries" in out
            assert main(["cache", "clear", "--dir", cache_dir]) == 0
            assert "removed 1" in capsys.readouterr().out
        finally:
            diskcache.set_cache_dir(None)
            clear_cache()


class TestTuneCommand:
    def test_single_instance_gap_table(self, plat_file, capsys):
        rc = main(["tune", "--platform", plat_file,
                   "--collective", "scatter",
                   "--source", "Ps", "--targets", "P0,P1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "direct-scatter" in out
        assert "exact" in out and "MISMATCH" not in out
        assert "largest gap" in out

    def test_reduce_scatter_instance(self, tmp_path, capsys):
        from repro.platform.examples import figure6_platform
        from repro.platform.io import save_platform

        path = str(tmp_path / "fig6.json")
        save_platform(figure6_platform(), path)
        rc = main(["tune", "--platform", path,
                   "--collective", "reduce-scatter",
                   "--participants", "0,1,2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "ring-reduce-scatter" in out
        assert "2.00x" in out  # fig6 gap: LP 1/2 vs ring baseline 1/4

    def test_zoo_smoke_runs_clean(self, capsys):
        rc = main(["tune"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "baseline runs" in out
        assert "MISMATCH" not in out
