"""Acceptance: broadcast, all-gather and all-reduce end to end — LP ->
solution -> verify -> schedule -> simulation — on the Figure 9 Tiers
platform, with the all-reduce optimum equal to the composed
reduce-scatter + all-gather value."""

from fractions import Fraction

import pytest

from repro.collectives import schedule_collective, solve_collective
from repro.core.allgather import AllGatherProblem
from repro.core.allreduce import AllReduceProblem
from repro.core.broadcast import BroadcastProblem
from repro.core.reduce_scatter import ReduceScatterProblem
from repro.platform.examples import figure9_participants, figure9_platform
from repro.sim.executor import simulate_collective

#: Figure 9 hosts for the sequential all-reduce tier: all eight logical
#: ranks since PR 9 — the tier was pinned at four hosts to keep the
#: schedule + simulation round-trip fast, but column generation (PR 8)
#: put the stage LPs at seconds and the compiled simulation engine
#: (PR 9) made the replay side cheap, so the full fleet runs routinely.
ALLREDUCE_HOSTS = figure9_participants()


def _roundtrip(problem, name, expected_tp=None, n_periods=8):
    sol = solve_collective(problem, collective=name, backend="exact")
    assert sol.exact
    if expected_tp is not None:
        assert sol.throughput == expected_tp
    assert sol.verify() == []
    sched = schedule_collective(sol)
    assert sched.validate() == []
    res = simulate_collective(sched, problem, n_periods=n_periods,
                              collective=name)
    assert res.correct
    assert res.completed_ops() > 0
    return sol, sched, res


class TestFig9Broadcast:
    def test_end_to_end_from_fastest_host(self):
        g = figure9_platform()
        hosts = figure9_participants()
        p = BroadcastProblem(g, 6, [h for h in hosts if h != 6], msg_size=10)
        sol, sched, res = _roundtrip(p, "broadcast",
                                     expected_tp=Fraction(4, 5))
        streams = len(p.targets)
        bound = float(sol.throughput) * float(res.horizon) * streams
        assert res.completed_ops() <= bound + 1e-9


class TestFig9AllGather:
    def test_end_to_end_all_eight_hosts(self):
        g = figure9_platform()
        p = AllGatherProblem(g, figure9_participants(), msg_size=10)
        sol, sched, res = _roundtrip(p, "all-gather")
        assert sol.throughput > 0
        # one broadcast stage per block, all sharing the router fabric
        assert len(sol.stage_solutions) == 8
        assert all(s.verify() == [] for s in sol.stage_solutions)


class TestFig9AllReduce:
    def test_optimal_period_equals_composed_stage_values(self):
        """The acceptance identity: TP(all-reduce) is exactly the harmonic
        composition of the independently solved reduce-scatter and
        all-gather optima, and the simulator validates the composed
        schedule end to end (including the reduced payloads)."""
        g = figure9_platform()
        p = AllReduceProblem(g, ALLREDUCE_HOSTS, msg_size=10, task_work=10)
        sol, sched, res = _roundtrip(p, "all-reduce", n_periods=6)

        rs = solve_collective(
            ReduceScatterProblem(g, ALLREDUCE_HOSTS, msg_size=10,
                                 task_work=10), backend="exact")
        ag = solve_collective(
            AllGatherProblem(g, ALLREDUCE_HOSTS, msg_size=10),
            backend="exact")
        composed = 1 / (1 / Fraction(rs.throughput)
                        + 1 / Fraction(ag.throughput))
        assert sol.throughput == composed
        # the composed *period* is the stage phases chained: N ops per
        # super-period take N/TP_rs time in phase 1 plus N/TP_ag in
        # phase 2 — nothing more
        assert sched.throughput == sol.throughput
        ops = sched.throughput * sched.period
        assert sched.period == \
            ops / Fraction(rs.throughput) + ops / Fraction(ag.throughput)

    def test_simulated_throughput_approaches_the_bound(self):
        g = figure9_platform()
        p = AllReduceProblem(g, ALLREDUCE_HOSTS, msg_size=10, task_work=10)
        sol = solve_collective(p, collective="all-reduce", backend="exact")
        sched = schedule_collective(sol)
        res = simulate_collective(sched, p, n_periods=16)
        assert res.correct
        from repro.collectives import get_collective

        factor = get_collective("all-reduce").ops_bound_factor(p)
        bound = float(sol.throughput) * float(res.horizon) * factor
        assert 0 < res.completed_ops() <= bound + 1e-9
        # past warm-up the schedule sustains a solid fraction of the bound
        assert res.completed_ops() >= 0.5 * bound


class TestFig9AllReduce8HostPipelined:
    def test_pipelined_eight_hosts_via_auto_dispatch(self):
        """The ROADMAP carry-over tier: all eight fig9 hosts through the
        chained pipelined all-reduce LP (17k raw vars), solved exactly by
        plain auto-dispatch — which routes it to Dantzig-Wolfe column
        generation since PR 8 — with the optimum pinned at 2/81 and the
        per-stage solutions verifying clean."""
        g = figure9_platform()
        p = AllReduceProblem(g, figure9_participants(), msg_size=10,
                             task_work=10)
        sol = solve_collective(p, collective="all-reduce", backend="auto",
                               mode="pipelined")
        assert sol.exact
        assert sol.throughput == Fraction(2, 81)
        assert sol.mode == "pipelined"
        assert sol.verify() == []
        assert sol.lp_solution.stats.get("engine") == "colgen"
        # the chained LP overlaps both phases: the pipelined optimum must
        # beat the sequential 8-host harmonic composition or equal it
        assert len(sol.stage_solutions) == 2
        assert all(s.verify() == [] for s in sol.stage_solutions)


@pytest.mark.parametrize("name", ["broadcast", "all-gather", "all-reduce"])
def test_cli_solves_fig9_tier(name, tmp_path, capsys):
    """`repro broadcast|all-gather|all-reduce` on the fig9 tier."""
    from repro.cli import main
    from repro.platform.io import save_platform

    path = str(tmp_path / "fig9.json")
    save_platform(figure9_platform(), path)
    if name == "broadcast":
        args = [name, "--platform", path, "--source", "6", "--targets",
                ",".join(str(h) for h in figure9_participants() if h != 6),
                "--msg-size", "10"]
    else:
        hosts = figure9_participants() if name == "all-gather" \
            else ALLREDUCE_HOSTS
        args = [name, "--platform", path, "--participants",
                ",".join(str(h) for h in hosts), "--msg-size", "10"]
        if name == "all-reduce":
            args += ["--task-work", "10"]
    rc = main(args)
    out = capsys.readouterr().out
    assert rc == 0
    assert "TP = " in out
