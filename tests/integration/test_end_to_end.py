"""Integration tests: full pipelines across modules, including the paper's
headline results."""

from fractions import Fraction

import pytest

from repro.baselines.reduce_baselines import best_single_tree_throughput
from repro.core.fixed_period import fixed_period_approximation
from repro.core.gossip import GossipProblem, build_gossip_schedule, solve_gossip
from repro.core.reduce_op import ReduceProblem, solve_reduce
from repro.core.scatter import ScatterProblem, build_scatter_schedule, solve_scatter
from repro.core.schedule import build_reduce_schedule
from repro.core.trees import trees_weight_sum
from repro.platform.generators import clustered, tiers
from repro.sim.executor import simulate_gossip, simulate_reduce, simulate_scatter
from repro.sim.operators import MatMul2x2Mod


class TestPaperHeadlines:
    def test_figure2_throughput(self, fig2_solution):
        assert fig2_solution.throughput == Fraction(1, 2)

    def test_figure6_throughput(self, fig6_solution):
        assert fig6_solution.throughput == 1

    def test_figure10_throughput_two_ninths(self, fig9_solution):
        """The flagship: our Figure 9 reconstruction yields TP = 2/9,
        exactly the paper's Figure 10 value."""
        assert fig9_solution.throughput == Fraction(2, 9)
        assert fig9_solution.exact

    def test_figure11_12_tree_decomposition(self, fig9_solution,
                                            fig9_canonical_solution):
        # which trees come out is a property of the optimal *vertex*, not
        # of the LP: the paper's Figure 11/12 presents two 1/9 trees, the
        # default (pricing-dependent) vertex may decompose differently,
        # and the canonical vertex concentrates into a single 2/9 tree.
        # Vertex-independent: the weights always sum to TP = 2/9.
        trees = fig9_solution.extract()
        assert trees_weight_sum(trees) == Fraction(2, 9)
        canon = fig9_canonical_solution.extract()
        assert [Fraction(t.weight) for t in canon] == [Fraction(2, 9)]

    def test_figure9_single_tree_bound(self, fig9_solution,
                                       fig9_canonical_solution):
        # no single extracted tree can beat the LP optimum...
        rate, _ = best_single_tree_throughput(fig9_solution.extract(),
                                              fig9_solution.problem)
        assert rate <= Fraction(2, 9)
        # ...and (unlike the paper's two-tree Figure 11/12 presentation)
        # one tree of the canonical vertex attains it exactly
        crate, _ = best_single_tree_throughput(
            fig9_canonical_solution.extract(),
            fig9_canonical_solution.problem)
        assert crate == Fraction(2, 9)


class TestFig9EndToEnd:
    def test_schedule_simulation_converges(self, fig9_solution):
        sched = build_reduce_schedule(fig9_solution)
        assert sched.validate() == []
        res = simulate_reduce(sched, fig9_solution.problem, n_periods=120,
                              record_trace=False)
        assert res.errors == []
        bound = float(fig9_solution.throughput) * float(res.horizon)
        assert res.completed_ops() >= 0.7 * bound
        assert res.completed_ops() <= bound + 1e-9

    def test_fixed_period_rounding_prop4(self, fig9_solution,
                                         fig9_canonical_solution):
        trees = fig9_solution.extract()
        for period in (9, 90, 900):
            fp = fixed_period_approximation(
                trees, period=period,
                original_throughput=fig9_solution.throughput)
            assert fp.loss_within_bound()
        # whether a *specific* period is lossless depends on the vertex's
        # tree weights; the canonical vertex (one 2/9 tree) is exactly
        # representable at period 9
        canon = fig9_canonical_solution.extract()
        assert fixed_period_approximation(canon, period=9).loss == 0


class TestGeneratedPlatforms:
    def test_tiers_reduce_end_to_end(self):
        g = tiers(seed=5, wan_nodes=3, mans_per_wan=1, lans_per_man=1,
                  hosts_per_lan=2)
        hosts = g.compute_nodes()[:4]
        problem = ReduceProblem(g, hosts, hosts[0], msg_size=2, task_work=10)
        sol = solve_reduce(problem)
        assert sol.throughput > 0
        assert sol.verify(tol=0 if sol.exact else 1e-7) == []
        trees = sol.extract()
        total = trees_weight_sum(trees)
        if sol.exact:
            assert total == sol.throughput
        else:
            assert float(total) == pytest.approx(float(sol.throughput), abs=1e-6)

    def test_clustered_scatter_end_to_end(self):
        g = clustered(3, 2, seed=2)
        hosts = g.compute_nodes()
        problem = ScatterProblem(g, hosts[0], hosts[1:5])
        sol = solve_scatter(problem, backend="exact")
        sched = build_scatter_schedule(sol)
        res = simulate_scatter(sched, problem, n_periods=30)
        assert res.correct
        bound = float(sol.throughput) * float(res.horizon)
        assert res.completed_ops() >= 0.6 * bound

    def test_gossip_on_cluster_pair(self):
        g = clustered(2, 2, seed=1)
        hosts = g.compute_nodes()
        problem = GossipProblem(g, hosts, hosts)
        sol = solve_gossip(problem, backend="exact")
        sched = build_gossip_schedule(sol)
        res = simulate_gossip(sched, problem, n_periods=25)
        assert res.correct


class TestCrossChecks:
    def test_scatter_tp_equals_gossip_with_one_source(self, fig2_problem):
        scatter_tp = solve_scatter(fig2_problem, backend="exact").throughput
        gossip = GossipProblem(fig2_problem.platform, ["Ps"],
                               ["Ps", "P0", "P1"])
        gossip_tp = solve_gossip(gossip, backend="exact").throughput
        assert scatter_tp == gossip_tp

    def test_reduce_order_reversal_symmetric_platform(self, fig6_problem):
        # the triangle is symmetric between nodes 1 and 2, so reversing
        # their logical order cannot change the optimum
        sol_a = solve_reduce(fig6_problem, backend="exact")
        problem_b = ReduceProblem(fig6_problem.platform,
                                  participants=[0, 2, 1], target=0)
        sol_b = solve_reduce(problem_b, backend="exact")
        assert sol_a.throughput == sol_b.throughput

    def test_noncommutative_correctness_on_fig9_fixed_period(self, fig9_solution):
        fp = fixed_period_approximation(
            fig9_solution.extract(), period=9,
            original_throughput=fig9_solution.throughput)
        sched = build_reduce_schedule(fig9_solution, trees=fp.items)
        res = simulate_reduce(sched, fig9_solution.problem, n_periods=80,
                              op=MatMul2x2Mod, record_trace=False)
        assert res.errors == []
        assert res.completed_ops() > 0
