"""Unit tests for the platform perturbation API (PR 6).

Events must (a) reshape the platform exactly, (b) emit the row-edit
delta the incremental re-solver consumes, and (c) be deterministic under
seeding — the degraded conformance axis depends on all three.
"""

from fractions import Fraction

import pytest

from repro.platform.generators import complete, ring
from repro.platform.perturb import (
    LinkDegradation, LinkFailure, NodeFailure, NodeJoin, PerturbationError,
    failure_trace, parse_event, parse_events, perturb,
)


class TestEvents:
    def test_link_failure_removes_one_direction(self):
        g = ring(4)
        g2, delta = perturb(g, [LinkFailure("p0", "p1")])
        assert not g2.has_edge("p0", "p1")
        assert g2.has_edge("p1", "p0")          # reverse direction survives
        assert g.has_edge("p0", "p1")           # input never mutated
        assert delta.tightened

    def test_link_degradation_scales_cost(self):
        g = ring(4)
        base = g.cost("p0", "p1")
        g2, _ = perturb(g, [LinkDegradation("p0", "p1", factor=3)])
        assert g2.cost("p0", "p1") == base * 3
        assert g.cost("p0", "p1") == base

    def test_fractional_speedup_is_loosening(self):
        g = ring(4)
        g2, delta = perturb(g, [LinkDegradation("p0", "p1",
                                                factor=Fraction(1, 2))])
        assert g2.cost("p0", "p1") == g.cost("p0", "p1") / 2
        assert not delta.tightened

    def test_node_failure_takes_incident_links(self):
        g = complete(4)
        g2, delta = perturb(g, [NodeFailure("p2")])
        assert "p2" not in g2
        assert all("p2" not in (e.src, e.dst) for e in g2.edges())
        assert delta.tightened

    def test_node_join_adds_symmetric_links(self):
        g = ring(3)
        ev = NodeJoin("px", speed=1, links=(("p0", 2),))
        g2, delta = perturb(g, [ev])
        assert g2.has_edge("px", "p0") and g2.has_edge("p0", "px")
        assert g2.cost("px", "p0") == 2
        assert g2.is_compute("px")
        assert not delta.tightened

    def test_events_compose_left_to_right(self):
        g = ring(3)
        g2, _ = perturb(g, [NodeJoin("px", speed=1, links=(("p0", 1),)),
                            LinkFailure("px", "p0")])
        assert not g2.has_edge("px", "p0") and g2.has_edge("p0", "px")

    def test_validation_errors(self):
        g = ring(3)
        with pytest.raises(PerturbationError):
            perturb(g, [LinkFailure("p0", "nope")])     # missing link
        with pytest.raises(PerturbationError):
            perturb(g, [LinkDegradation("p0", "p1", factor=0)])
        with pytest.raises(PerturbationError):
            perturb(g, [NodeFailure("nope")])
        with pytest.raises(PerturbationError):
            perturb(g, [NodeJoin("p0")])                # already exists


class TestDelta:
    def test_link_failure_row_edits(self):
        _, delta = perturb(ring(4), [LinkFailure("p0", "p1")])
        assert [(e.row, e.kind) for e in delta.row_edits] == [
            ("edge[p0->p1]", "drop"),
            ("out[p0]", "drop"),
            ("in[p1]", "drop"),
        ]
        assert all(e.edge == ("p0", "p1") for e in delta.row_edits)

    def test_degradation_row_edits_carry_factor(self):
        _, delta = perturb(ring(4), [LinkDegradation("p0", "p1", factor=5)])
        assert {e.kind for e in delta.row_edits} == {"scale"}
        assert {e.factor for e in delta.row_edits} == {5}

    def test_node_failure_drops_port_and_alpha_rows(self):
        _, delta = perturb(complete(3), [NodeFailure("p1")])
        rows = {e.row for e in delta.row_edits}
        assert {"out[p1]", "in[p1]", "alpha[p1]"} <= rows

    def test_fingerprint_deterministic_and_event_sensitive(self):
        _, d1 = perturb(ring(4), [LinkFailure("p0", "p1")])
        _, d2 = perturb(ring(4), [LinkFailure("p0", "p1")])
        _, d3 = perturb(ring(4), [LinkFailure("p1", "p2")])
        assert d1.fingerprint == d2.fingerprint
        assert d1.fingerprint != d3.fingerprint


class TestFailureTrace:
    def test_deterministic_under_seed(self):
        g = complete(5)
        assert failure_trace(g, 11, n_events=4) == \
            failure_trace(g, 11, n_events=4)
        assert failure_trace(g, 11, n_events=4) != \
            failure_trace(g, 12, n_events=4)

    def test_keeps_platform_strongly_connected(self):
        g = complete(5)
        for seed in range(12):
            g2, _ = perturb(g, failure_trace(g, seed, n_events=3))
            assert g2.is_strongly_connected()

    def test_link_level_only(self):
        g = complete(5)
        for ev in failure_trace(g, 3, n_events=5):
            assert isinstance(ev, (LinkFailure, LinkDegradation))

    def test_failures_disabled_means_degradations_only(self):
        g = ring(4)
        events = failure_trace(g, 0, n_events=6, allow_failures=False)
        assert events and all(isinstance(e, LinkDegradation) for e in events)


class TestParsing:
    def test_grammar(self):
        assert parse_event("fail:p0:p1") == LinkFailure("p0", "p1")
        assert parse_event("slow:0:1:3/2") == \
            LinkDegradation(0, 1, factor=Fraction(3, 2))
        assert parse_event("down:7") == NodeFailure(7)

    def test_list(self):
        evs = parse_events("fail:0:1,slow:1:2:2")
        assert evs == (LinkFailure(0, 1), LinkDegradation(1, 2,
                                                          factor=Fraction(2)))

    def test_bad_specs_rejected(self):
        for bad in ("fail:p0", "slow:0:1", "down", "warp:0:1", ""):
            with pytest.raises(PerturbationError):
                parse_event(bad)
