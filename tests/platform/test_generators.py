"""Unit tests for topology generators."""

import pytest

from repro.platform.generators import (
    chain, clustered, complete, fat_tree, grid2d, heterogenize,
    random_connected, ring, star, tiers, tree,
)


class TestStar:
    def test_node_and_edge_counts(self):
        g = star(5)
        assert len(g) == 6
        assert g.num_edges() == 10  # bidirectional

    def test_center_connects_to_all_leaves(self):
        g = star(3)
        assert set(g.successors("c")) == {"l0", "l1", "l2"}

    def test_rejects_zero_leaves(self):
        with pytest.raises(ValueError):
            star(0)


class TestChainRing:
    def test_chain_structure(self):
        g = chain(4)
        assert g.num_edges() == 6
        assert g.has_edge("p0", "p1") and not g.has_edge("p0", "p2")

    def test_chain_minimum_size(self):
        with pytest.raises(ValueError):
            chain(1)

    def test_ring_closes(self):
        g = ring(5)
        assert g.has_edge("p4", "p0") and g.has_edge("p0", "p4")

    def test_ring_minimum_size(self):
        with pytest.raises(ValueError):
            ring(2)


class TestComplete:
    def test_all_pairs_connected(self):
        g = complete(4)
        for i in range(4):
            for j in range(4):
                if i != j:
                    assert g.has_edge(f"p{i}", f"p{j}")

    def test_speeds_applied(self):
        g = complete(3, speeds=[5, 6, 7])
        assert [g.speed(f"p{i}") for i in range(3)] == [5, 6, 7]


class TestGrid:
    def test_grid_degree_pattern(self):
        g = grid2d(3, 3)
        # corner has 2 neighbors, center has 4
        assert len(g.successors("p0_0")) == 2
        assert len(g.successors("p1_1")) == 4

    def test_grid_node_count(self):
        assert len(grid2d(2, 5)) == 10


class TestTree:
    def test_tree_edge_count(self):
        g = tree(9, seed=3)
        assert g.num_edges() == 2 * 8  # n-1 links, both directions

    def test_tree_connected(self):
        g = tree(12, seed=1)
        assert g.is_strongly_connected()

    def test_deterministic_for_seed(self):
        a, b = tree(8, seed=42), tree(8, seed=42)
        assert {(e.src, e.dst, e.cost) for e in a.edges()} == \
               {(e.src, e.dst, e.cost) for e in b.edges()}


class TestRandomConnected:
    def test_connected(self):
        g = random_connected(10, extra_edges=3, seed=7)
        assert g.is_strongly_connected()

    def test_extra_edges_added(self):
        base = random_connected(10, extra_edges=0, seed=7)
        plus = random_connected(10, extra_edges=4, seed=7)
        assert plus.num_edges() == base.num_edges() + 8

    def test_deterministic(self):
        a = random_connected(9, extra_edges=2, seed=5)
        b = random_connected(9, extra_edges=2, seed=5)
        assert {(e.src, e.dst) for e in a.edges()} == {(e.src, e.dst) for e in b.edges()}


class TestClustered:
    def test_router_per_cluster(self):
        g = clustered(3, 2, seed=0)
        assert len(g.routers()) == 3
        assert len(g.compute_nodes()) == 6

    def test_single_cluster_has_no_ring(self):
        g = clustered(1, 3, seed=0)
        assert not g.has_edge("r0", "r0") and len(g) == 4


class TestTiers:
    def test_structure_counts(self):
        g = tiers(seed=0, wan_nodes=3, mans_per_wan=1, lans_per_man=2,
                  hosts_per_lan=2)
        # hosts: 3 * 1 * 2 * 2 = 12 compute nodes
        assert len(g.compute_nodes()) == 12
        # routers: 3 WAN + 3 MAN + 6 LAN gateways
        assert len(g.routers()) == 12

    def test_connected(self):
        g = tiers(seed=4)
        assert g.is_strongly_connected()

    def test_host_speeds_within_range(self):
        g = tiers(seed=2, speed_range=(10, 100))
        for h in g.compute_nodes():
            assert 10 <= g.speed(h) <= 100

    def test_deterministic(self):
        a, b = tiers(seed=9), tiers(seed=9)
        assert {(e.src, e.dst, e.cost) for e in a.edges()} == \
               {(e.src, e.dst, e.cost) for e in b.edges()}

    def test_different_seeds_differ(self):
        a, b = tiers(seed=1), tiers(seed=2)
        assert {(e.src, e.dst, e.cost) for e in a.edges()} != \
               {(e.src, e.dst, e.cost) for e in b.edges()}


class TestFatTree:
    def test_structure_counts(self):
        g = fat_tree(4)
        # k^3/4 hosts; (k/2)^2 core + k*(k/2) agg + k*(k/2) edge switches
        assert len(g.compute_nodes()) == 16
        assert len(g.routers()) == 4 + 8 + 8
        # 3 layers of k^2 * k/2 bidirectional links
        assert g.num_edges() == 2 * 3 * 16

    def test_connected(self):
        assert fat_tree(4).is_strongly_connected()

    def test_host_speeds_within_range(self):
        g = fat_tree(4, seed=1, speed_range=(10, 100))
        for h in g.compute_nodes():
            assert 10 <= g.speed(h) <= 100

    def test_deterministic(self):
        a, b = fat_tree(6, seed=7), fat_tree(6, seed=7)
        assert {(e.src, e.dst, e.cost) for e in a.edges()} == \
               {(e.src, e.dst, e.cost) for e in b.edges()}
        assert [a.speed(h) for h in a.compute_nodes()] == \
               [b.speed(h) for h in b.compute_nodes()]

    def test_rejects_odd_k(self):
        with pytest.raises(ValueError):
            fat_tree(3)


class TestHeterogenize:
    def test_keeps_structure(self):
        g = ring(5)
        h = heterogenize(g, seed=3)
        assert {(e.src, e.dst) for e in h.edges()} == {(e.src, e.dst) for e in g.edges()}

    def test_symmetric_links_stay_symmetric(self):
        h = heterogenize(ring(5), seed=3)
        for e in h.edges():
            assert h.cost(e.dst, e.src) == e.cost

    def test_routers_stay_routers(self):
        g = clustered(2, 2, seed=0)
        h = heterogenize(g, seed=1)
        assert set(h.routers()) == set(g.routers())
