"""Unit tests for platform (de)serialization."""

from fractions import Fraction

import pytest

from repro.platform.examples import figure2_platform, figure9_platform
from repro.platform.io import (
    load_platform, platform_from_json, platform_to_json, save_platform,
)


class TestRoundtrip:
    def test_figure2_roundtrip_exact(self):
        g = figure2_platform()
        back = platform_from_json(platform_to_json(g))
        assert back.name == g.name
        assert set(back.nodes()) == set(g.nodes())
        for e in g.edges():
            assert back.cost(e.src, e.dst) == e.cost
            assert isinstance(back.cost(e.src, e.dst), (int, Fraction))

    def test_figure9_roundtrip_with_int_ids_and_routers(self):
        g = figure9_platform()
        back = platform_from_json(platform_to_json(g))
        assert set(back.routers()) == set(g.routers())
        assert back.speed(6) == 92
        assert back.cost(0, 1) == Fraction(1, 10)

    def test_float_costs_preserved(self):
        from repro.platform.graph import PlatformGraph

        g = PlatformGraph("f")
        g.add_node("a", 1.5)
        g.add_node("b", 2)
        g.add_edge("a", "b", 0.25)
        back = platform_from_json(platform_to_json(g))
        assert back.cost("a", "b") == 0.25
        assert back.speed("a") == 1.5

    def test_file_roundtrip(self, tmp_path):
        g = figure2_platform()
        path = str(tmp_path / "plat.json")
        save_platform(g, path)
        assert load_platform(path).cost("Pa", "P0") == Fraction(2, 3)

    def test_integer_fraction_collapses_to_int(self):
        from repro.platform.graph import PlatformGraph

        g = PlatformGraph()
        g.add_node("a", 1)
        g.add_node("b", 1)
        g.add_edge("a", "b", Fraction(4, 2))
        text = platform_to_json(g)
        assert '"cost": 2' in text

    def test_bad_number_rejected(self):
        with pytest.raises(TypeError):
            platform_from_json('{"name":"x","nodes":[{"id":"a","speed":[1]}],"edges":[]}')
