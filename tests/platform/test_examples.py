"""The paper's platforms must match the figures structurally."""

from fractions import Fraction

from repro.platform.examples import (
    FIGURE9_INDEX, FIGURE9_LINKS, FIGURE9_SPEEDS, figure2_platform,
    figure2_targets, figure6_platform, figure9_participants,
    figure9_platform, figure9_target, triangle_platform,
)


class TestFigure2:
    def test_nodes(self):
        g = figure2_platform()
        assert set(g.nodes()) == {"Ps", "Pa", "Pb", "P0", "P1"}

    def test_edge_costs_match_figure(self):
        g = figure2_platform()
        assert g.cost("Ps", "Pa") == 1
        assert g.cost("Ps", "Pb") == 1
        assert g.cost("Pa", "P0") == Fraction(2, 3)
        assert g.cost("Pb", "P0") == Fraction(4, 3)
        assert g.cost("Pb", "P1") == Fraction(4, 3)

    def test_edges_are_downward_only(self):
        g = figure2_platform()
        assert not g.has_edge("Pa", "Ps")
        assert not g.has_edge("P0", "Pa")

    def test_two_routes_to_p0_one_to_p1(self):
        g = figure2_platform()
        assert set(g.predecessors("P0")) == {"Pa", "Pb"}
        assert g.predecessors("P1") == ["Pb"]

    def test_targets(self):
        assert figure2_targets() == ["P0", "P1"]


class TestFigure6:
    def test_triangle_fully_connected_unit_costs(self):
        g = figure6_platform()
        for i in range(3):
            for j in range(3):
                if i != j:
                    assert g.cost(i, j) == 1

    def test_node0_twice_as_fast(self):
        g = figure6_platform()
        assert g.speed(0) == 2 and g.speed(1) == 1 and g.speed(2) == 1

    def test_triangle_platform_parametric(self):
        g = triangle_platform(speeds=(3, 3, 3), cost=2)
        assert g.speed(1) == 3 and g.cost(0, 2) == 2


class TestFigure9:
    def test_counts(self):
        g = figure9_platform()
        assert len(g) == 14
        assert len(g.compute_nodes()) == 8
        assert len(g.routers()) == 6
        assert g.num_edges() == 2 * 17

    def test_speeds_match_figure(self):
        g = figure9_platform()
        for node, s in FIGURE9_SPEEDS.items():
            assert g.speed(node) == s

    def test_costs_are_inverse_bandwidth(self):
        g = figure9_platform()
        for a, b, bw in FIGURE9_LINKS:
            assert g.cost(a, b) == Fraction(1, bw)
            assert g.cost(b, a) == Fraction(1, bw)

    def test_lan_links_are_fast(self):
        g = figure9_platform()
        for pair in ((6, 7), (8, 9), (10, 11), (12, 13)):
            assert g.cost(*pair) == Fraction(1, 1000)

    def test_logical_order_matches_index_labels(self):
        parts = figure9_participants()
        assert len(parts) == 8
        for node, idx in FIGURE9_INDEX.items():
            assert parts[idx] == node

    def test_target_is_node6_index4(self):
        assert figure9_target() == 6
        assert FIGURE9_INDEX[6] == 4

    def test_every_figure10_path_exists(self):
        # spot-check the multi-hop routes printed in Figures 11-12
        g = figure9_platform()
        for path in ([10, 4, 12, 5, 0, 1, 2, 6],
                     [13, 12, 5, 4, 10],
                     [9, 8, 2, 6, 7],
                     [7, 6, 2, 3, 8],
                     [11, 10, 4, 12, 13]):
            for u, v in zip(path, path[1:]):
                assert g.has_edge(u, v), (u, v)

    def test_strongly_connected(self):
        assert figure9_platform().is_strongly_connected()
