"""Unit tests for the platform graph data structure."""

from fractions import Fraction

import pytest

from repro.platform.graph import Edge, PlatformGraph


@pytest.fixture
def small():
    g = PlatformGraph("small")
    g.add_node("a", 2)
    g.add_node("b", 1)
    g.add_node("r")  # router
    g.add_edge("a", "b", 3)
    g.add_edge("b", "a", 1)
    g.add_edge("a", "r", Fraction(1, 2))
    return g


class TestConstruction:
    def test_nodes_in_insertion_order(self, small):
        assert small.nodes() == ["a", "b", "r"]

    def test_len_counts_nodes(self, small):
        assert len(small) == 3

    def test_num_edges(self, small):
        assert small.num_edges() == 3

    def test_contains(self, small):
        assert "a" in small and "zzz" not in small

    def test_add_edge_creates_missing_endpoints_as_routers(self):
        g = PlatformGraph()
        g.add_edge("x", "y", 1)
        assert not g.is_compute("x") and not g.is_compute("y")

    def test_self_loop_rejected(self):
        g = PlatformGraph()
        with pytest.raises(ValueError):
            g.add_edge("a", "a", 1)

    def test_nonpositive_cost_rejected(self):
        g = PlatformGraph()
        with pytest.raises(ValueError):
            g.add_edge("a", "b", 0)
        with pytest.raises(ValueError):
            g.add_edge("a", "b", -2)

    def test_readding_node_updates_speed_keeps_edges(self, small):
        small.add_node("a", 7)
        assert small.speed("a") == 7
        assert small.has_edge("a", "b")

    def test_add_link_is_bidirectional(self):
        g = PlatformGraph()
        g.add_link("u", "v", 2)
        assert g.cost("u", "v") == 2 and g.cost("v", "u") == 2

    def test_add_link_asymmetric_back_cost(self):
        g = PlatformGraph()
        g.add_link("u", "v", 2, cost_back=5)
        assert g.cost("v", "u") == 5

    def test_integer_node_ids(self):
        g = PlatformGraph()
        g.add_node(0, 1)
        g.add_node(1, 1)
        g.add_edge(0, 1, 1)
        assert g.cost(0, 1) == 1


class TestQueries:
    def test_cost_missing_edge_raises(self, small):
        with pytest.raises(KeyError):
            small.cost("b", "r")

    def test_directed_costs_differ(self, small):
        assert small.cost("a", "b") == 3
        assert small.cost("b", "a") == 1

    def test_successors_predecessors(self, small):
        assert set(small.successors("a")) == {"b", "r"}
        assert small.predecessors("a") == ["b"]

    def test_out_in_edges(self, small):
        outs = {(e.src, e.dst) for e in small.out_edges("a")}
        assert outs == {("a", "b"), ("a", "r")}
        ins = [(e.src, e.dst) for e in small.in_edges("r")]
        assert ins == [("a", "r")]

    def test_compute_nodes_and_routers(self, small):
        assert small.compute_nodes() == ["a", "b"]
        assert small.routers() == ["r"]

    def test_speed_none_for_router(self, small):
        assert small.speed("r") is None

    def test_edges_iteration_complete(self, small):
        assert {(e.src, e.dst, e.cost) for e in small.edges()} == {
            ("a", "b", 3), ("b", "a", 1), ("a", "r", Fraction(1, 2))}


class TestStructure:
    def test_remove_edge(self, small):
        small.remove_edge("a", "b")
        assert not small.has_edge("a", "b")
        assert small.has_edge("b", "a")

    def test_remove_node_drops_incident_edges(self, small):
        small.remove_node("a")
        assert "a" not in small
        assert small.num_edges() == 0

    def test_copy_is_independent(self, small):
        c = small.copy()
        c.remove_node("a")
        assert "a" in small and "a" not in c

    def test_subgraph_keeps_induced_edges(self, small):
        sub = small.subgraph(["a", "b"])
        assert set(sub.nodes()) == {"a", "b"}
        assert sub.num_edges() == 2

    def test_reversed_flips_directions(self, small):
        r = small.reversed()
        assert r.has_edge("r", "a") and not r.has_edge("a", "r")
        assert r.cost("b", "a") == 3

    def test_reachable_from(self, small):
        assert small.reachable_from("b") == {"a", "b", "r"}
        assert small.reachable_from("r") == {"r"}

    def test_strong_connectivity(self, small):
        assert not small.is_strongly_connected()
        small.add_edge("r", "a", 1)
        assert small.is_strongly_connected()

    def test_single_node_strongly_connected(self):
        g = PlatformGraph()
        g.add_node("x", 1)
        assert g.is_strongly_connected()


class TestConversions:
    def test_as_fraction_costs_decodes_float_literals(self):
        g = PlatformGraph()
        g.add_node("a", 0.5)
        g.add_node("b", 1)
        g.add_edge("a", "b", 0.1)
        f = g.as_fraction_costs()
        assert f.cost("a", "b") == Fraction(1, 10)
        assert f.speed("a") == Fraction(1, 2)

    def test_networkx_roundtrip(self, small):
        nxg = small.to_networkx()
        back = PlatformGraph.from_networkx(nxg, name="back")
        assert set(back.nodes()) == set(small.nodes())
        assert back.cost("a", "b") == 3
        assert back.speed("a") == 2

    def test_from_networkx_undirected_doubles_edges(self):
        import networkx as nx

        u = nx.Graph()
        u.add_edge(1, 2, cost=4)
        g = PlatformGraph.from_networkx(u)
        assert g.has_edge(1, 2) and g.has_edge(2, 1)

    def test_validate_accepts_good_graph(self, small):
        small.validate()

    def test_repr_mentions_counts(self, small):
        assert "nodes=3" in repr(small)

    def test_edge_reversed_helper(self):
        e = Edge("x", "y", 5)
        r = e.reversed()
        assert (r.src, r.dst, r.cost) == ("y", "x", 5)
