"""Unit tests for shortest-path routing."""

from fractions import Fraction

import pytest

from repro.platform.generators import chain, ring
from repro.platform.graph import PlatformGraph
from repro.platform.routing import (
    dijkstra, eccentricity_bound, graph_width, path_cost, shortest_path,
    shortest_path_tree,
)


@pytest.fixture
def diamond():
    # a -> b -> d (cost 1+1), a -> c -> d (cost 3+? ) with a cheaper detour
    g = PlatformGraph("diamond")
    for n in "abcd":
        g.add_node(n, 1)
    g.add_edge("a", "b", 1)
    g.add_edge("b", "d", 1)
    g.add_edge("a", "c", 3)
    g.add_edge("c", "d", 1)
    return g


class TestDijkstra:
    def test_distances(self, diamond):
        dist, _ = dijkstra(diamond, "a")
        assert dist == {"a": 0, "b": 1, "c": 3, "d": 2}

    def test_parent_reconstruction(self, diamond):
        assert shortest_path(diamond, "a", "d") == ["a", "b", "d"]

    def test_unreachable_returns_none(self, diamond):
        diamond.add_node("z", 1)
        assert shortest_path(diamond, "a", "z") is None

    def test_unknown_source_raises(self, diamond):
        with pytest.raises(KeyError):
            dijkstra(diamond, "nope")

    def test_fraction_costs(self):
        g = PlatformGraph()
        g.add_edge("a", "b", Fraction(1, 3))
        g.add_edge("b", "c", Fraction(1, 6))
        dist, _ = dijkstra(g, "a")
        assert dist["c"] == Fraction(1, 2)

    def test_directed_asymmetry(self, diamond):
        # no edges back toward 'a'
        dist, _ = dijkstra(diamond, "d")
        assert set(dist) == {"d"}

    def test_prefers_cheap_multi_hop_over_expensive_direct(self):
        g = PlatformGraph()
        g.add_edge("a", "d", 10)
        g.add_edge("a", "b", 1)
        g.add_edge("b", "d", 1)
        assert shortest_path(g, "a", "d") == ["a", "b", "d"]


class TestPathHelpers:
    def test_path_cost(self, diamond):
        assert path_cost(diamond, ["a", "c", "d"]) == 4

    def test_path_cost_single_node(self, diamond):
        assert path_cost(diamond, ["a"]) == 0

    def test_shortest_path_tree_edges(self, diamond):
        t = shortest_path_tree(diamond, "a")
        assert t.has_edge("a", "b") and t.has_edge("b", "d")
        assert t.has_edge("a", "c")
        assert not t.has_edge("c", "d")
        assert t.num_edges() == 3

    def test_spt_keeps_speeds(self, diamond):
        t = shortest_path_tree(diamond, "a")
        assert t.speed("b") == 1


class TestWidth:
    def test_graph_width_chain(self):
        g = chain(4, cost=2)
        assert graph_width(g, "p0") == 6

    def test_eccentricity_bound_dominates_width(self):
        g = ring(5, cost=1)
        assert eccentricity_bound(g) >= graph_width(g, "p0")
