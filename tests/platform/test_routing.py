"""Unit tests for shortest-path routing."""

from fractions import Fraction

import pytest

from repro.platform.generators import chain, ring
from repro.platform.graph import PlatformGraph
from repro.platform.routing import (
    dijkstra, eccentricity_bound, graph_width, path_cost, shortest_path,
    shortest_path_tree,
)


@pytest.fixture
def diamond():
    # a -> b -> d (cost 1+1), a -> c -> d (cost 3+? ) with a cheaper detour
    g = PlatformGraph("diamond")
    for n in "abcd":
        g.add_node(n, 1)
    g.add_edge("a", "b", 1)
    g.add_edge("b", "d", 1)
    g.add_edge("a", "c", 3)
    g.add_edge("c", "d", 1)
    return g


class TestDijkstra:
    def test_distances(self, diamond):
        dist, _ = dijkstra(diamond, "a")
        assert dist == {"a": 0, "b": 1, "c": 3, "d": 2}

    def test_parent_reconstruction(self, diamond):
        assert shortest_path(diamond, "a", "d") == ["a", "b", "d"]

    def test_unreachable_returns_none(self, diamond):
        diamond.add_node("z", 1)
        assert shortest_path(diamond, "a", "z") is None

    def test_unknown_source_raises(self, diamond):
        with pytest.raises(KeyError):
            dijkstra(diamond, "nope")

    def test_fraction_costs(self):
        g = PlatformGraph()
        g.add_edge("a", "b", Fraction(1, 3))
        g.add_edge("b", "c", Fraction(1, 6))
        dist, _ = dijkstra(g, "a")
        assert dist["c"] == Fraction(1, 2)

    def test_directed_asymmetry(self, diamond):
        # no edges back toward 'a'
        dist, _ = dijkstra(diamond, "d")
        assert set(dist) == {"d"}

    def test_prefers_cheap_multi_hop_over_expensive_direct(self):
        g = PlatformGraph()
        g.add_edge("a", "d", 10)
        g.add_edge("a", "b", 1)
        g.add_edge("b", "d", 1)
        assert shortest_path(g, "a", "d") == ["a", "b", "d"]


class TestPathHelpers:
    def test_path_cost(self, diamond):
        assert path_cost(diamond, ["a", "c", "d"]) == 4

    def test_path_cost_single_node(self, diamond):
        assert path_cost(diamond, ["a"]) == 0

    def test_shortest_path_tree_edges(self, diamond):
        t = shortest_path_tree(diamond, "a")
        assert t.has_edge("a", "b") and t.has_edge("b", "d")
        assert t.has_edge("a", "c")
        assert not t.has_edge("c", "d")
        assert t.num_edges() == 3

    def test_spt_keeps_speeds(self, diamond):
        t = shortest_path_tree(diamond, "a")
        assert t.speed("b") == 1


class TestCanonicalTieBreaking:
    """Equal-cost ties must resolve independently of edge insertion order
    (PR 10 regression: the planner memoises routes per (src, dst), so an
    order-dependent tree would make baseline plans non-deterministic)."""

    @staticmethod
    def _equal_diamond(order):
        g = PlatformGraph("tie")
        for n in "sabt":
            g.add_node(n, 1)
        for src, dst in order:
            g.add_edge(src, dst, 1)
        return g

    ORDERS = [
        [("s", "a"), ("s", "b"), ("a", "t"), ("b", "t")],
        [("s", "b"), ("s", "a"), ("b", "t"), ("a", "t")],
    ]

    def test_parent_picks_min_name_predecessor(self):
        for order in self.ORDERS:
            g = self._equal_diamond(order)
            dist, parent = dijkstra(g, "s")
            assert dist["t"] == 2
            assert parent["t"] == "a", order

    def test_path_and_tree_are_insertion_order_independent(self):
        g1, g2 = (self._equal_diamond(o) for o in self.ORDERS)
        assert shortest_path(g1, "s", "t") == shortest_path(g2, "s", "t") \
            == ["s", "a", "t"]
        t1, t2 = shortest_path_tree(g1, "s"), shortest_path_tree(g2, "s")
        edges1 = {(e.src, e.dst) for e in t1.edges()}
        edges2 = {(e.src, e.dst) for e in t2.edges()}
        assert edges1 == edges2
        assert ("a", "t") in edges1 and ("b", "t") not in edges1

    def test_fig2_spt_is_pinned(self):
        from repro.platform.examples import figure2_platform

        t = shortest_path_tree(figure2_platform(), "Ps")
        edges = {(e.src, e.dst) for e in t.edges()}
        assert edges == {("Ps", "Pa"), ("Ps", "Pb"),
                         ("Pa", "P0"), ("Pb", "P1")}


class TestWidth:
    def test_graph_width_chain(self):
        g = chain(4, cost=2)
        assert graph_width(g, "p0") == 6

    def test_eccentricity_bound_dominates_width(self):
        g = ring(5, cost=1)
        assert eccentricity_bound(g) >= graph_width(g, "p0")
