"""The pipelined joint all-reduce: chained joint LP, retimed superposed
schedule, credit-gated simulation — and the proof it never falls below
the sequential harmonic bound (strictly beating it where the phases
stress different resources)."""

from fractions import Fraction

import pytest

from repro.collectives import (
    ChainRow,
    compose_joint_lp,
    get_collective,
    schedule_collective,
    solve_collective,
)
from repro.core.allreduce import AllReduceProblem
from repro.core.schedule import ChainLink, schedule_from_rates
from repro.lp import LinearProgram
from repro.lp.presolve import presolve
from repro.platform.examples import (
    figure2_platform,
    figure6_platform,
    figure9_participants,
    figure9_platform,
)
from repro.platform.generators import complete
from repro.platform.graph import PlatformGraph
from repro.sim.executor import simulate_collective, simulate_schedule


def figure2_bidirectional() -> PlatformGraph:
    """The Figure 2 topology with every link usable in both directions.

    The original figure is a scatter DAG (downward edges only), on which
    all-reduce is degenerate — participants could never answer back.  The
    bidirectional variant keeps the costs and is the fig2 tier for
    composed collectives.
    """
    g0 = figure2_platform()
    g = PlatformGraph("figure2-bidi")
    for n in g0.nodes():
        g.add_node(n, 1)
    seen = set()
    for e in g0.edges():
        if (e.src, e.dst) in seen:
            continue
        g.add_link(e.src, e.dst, e.cost)
        seen.add((e.src, e.dst))
        seen.add((e.dst, e.src))
    return g


def _tiers():
    g4 = complete(4, cost=1)
    return {
        "fig2": AllReduceProblem(figure2_bidirectional(), ["Ps", "P0", "P1"]),
        "fig6": AllReduceProblem(figure6_platform(), [0, 1, 2]),
        "complete4": AllReduceProblem(g4, g4.nodes()),
        "fig9-4host": AllReduceProblem(figure9_platform(),
                                       figure9_participants()[:4],
                                       msg_size=10, task_work=10),
    }


class TestPipelinedBeatsHarmonicBound:
    """Acceptance: TP_pipelined >= TP_sequential on every shipped tier,
    strictly greater on at least one."""

    @pytest.mark.parametrize("tier", ["fig2", "fig6", "complete4",
                                      "fig9-4host"])
    def test_never_below_the_sequential_bound(self, tier):
        problem = _tiers()[tier]
        seq = solve_collective(problem, collective="all-reduce",
                               backend="exact")
        pipe = solve_collective(problem, collective="all-reduce",
                                backend="exact", mode="pipelined")
        assert pipe.exact and seq.exact
        assert pipe.mode == "pipelined" and seq.mode == "sequential"
        assert pipe.throughput >= seq.throughput
        assert pipe.verify() == []

    def test_strict_improvement_on_fig2_tier(self):
        problem = _tiers()["fig2"]
        seq = solve_collective(problem, collective="all-reduce",
                               backend="exact")
        pipe = solve_collective(problem, collective="all-reduce",
                                backend="exact", mode="pipelined")
        assert seq.throughput == Fraction(3, 22)
        assert pipe.throughput == Fraction(1, 7)
        assert pipe.throughput > seq.throughput

    @pytest.mark.parametrize("tier,seq_tp,pipe_tp", [
        ("fig6", Fraction(1, 5), Fraction(1, 4)),
        ("complete4", Fraction(1, 9), Fraction(1, 6)),
    ])
    def test_strict_improvement_when_reduce_is_compute_bound(self, tier,
                                                             seq_tp, pipe_tp):
        """With task_work=2 the reduce-scatter phase is compute-bound and
        the all-gather phase link-bound: overlapping them hides one
        inside the other, well past the harmonic combination."""
        base = _tiers()[tier]
        problem = AllReduceProblem(base.platform, base.participants,
                                   task_work=2)
        seq = solve_collective(problem, collective="all-reduce",
                               backend="exact")
        pipe = solve_collective(problem, collective="all-reduce",
                                backend="exact", mode="pipelined")
        assert seq.throughput == seq_tp
        assert pipe.throughput == pipe_tp
        assert pipe.throughput > seq.throughput

    def test_backends_agree_on_the_pipelined_optimum(self):
        problem = _tiers()["fig6"]
        exact = solve_collective(problem, collective="all-reduce",
                                 backend="exact", mode="pipelined")
        highs = solve_collective(problem, collective="all-reduce",
                                 backend="highs", mode="pipelined")
        assert abs(float(exact.throughput) - float(highs.throughput)) < 1e-7


class TestPipelinedJointLP:
    def test_chain_rows_are_emitted_and_survive_presolve(self):
        problem = _tiers()["complete4"]
        spec = get_collective("all-reduce")
        lp = spec.build_lp(problem, mode="pipelined")
        chain = [c for c in lp.constraints if c.name.startswith("chain[")]
        # one precedence row per (block, broadcast target)
        assert len(chain) == 4 * 3
        pr = presolve(lp)
        kept = [c.name for c in pr.lp.constraints
                if c.name.startswith("chain[")]
        assert sorted(kept) == sorted(c.name for c in chain)

    def test_chain_rows_do_not_cut_the_joint_optimum(self):
        """The coupling rows only exclude source-cycle vertices: the
        chained LP and the plain joint LP share the same optimum."""
        from repro.lp import solve as lp_solve

        problem = _tiers()["fig6"]
        spec = get_collective("all-reduce")
        plain = compose_joint_lp("plain", spec._stage_lps(problem))
        chained = spec.build_lp(problem, mode="pipelined")
        a = lp_solve(plain, backend="exact", cache=False)
        b = lp_solve(chained, backend="exact", cache=False)
        assert a.by_name("TP") == b.by_name("TP")

    def test_joint_mode_emits_no_chain_rows(self):
        problem = _tiers()["fig6"]
        lp = get_collective("all-reduce").build_lp(problem, mode="joint")
        assert not any(c.name.startswith("chain[") for c in lp.constraints)

    def test_chain_row_requires_the_prefix(self):
        lp = LinearProgram("stage")
        x = lp.var("x")
        lp.add(x <= 1, name="out[0]")
        lp.maximize(lp.var("TP"))
        with pytest.raises(ValueError, match="chain"):
            compose_joint_lp("bad", [lp], chain_rows=[
                ChainRow(name="link[x]", terms=((0, "x", 1),))])

    def test_mode_is_rejected_for_plain_collectives(self):
        from repro.core.scatter import ScatterProblem

        p = ScatterProblem(figure2_platform(), "Ps", ["P0", "P1"])
        with pytest.raises(ValueError, match="not a composite"):
            solve_collective(p, mode="pipelined")

    def test_unknown_mode_is_rejected(self):
        with pytest.raises(ValueError, match="unknown composition mode"):
            solve_collective(_tiers()["fig6"], collective="all-reduce",
                             mode="overlapped")


class TestPipelinedSchedule:
    def _solved(self, tier="fig6", task_work=2):
        base = _tiers()[tier]
        problem = AllReduceProblem(base.platform, base.participants,
                                   task_work=task_work)
        sol = solve_collective(problem, collective="all-reduce",
                               backend="exact", mode="pipelined")
        return problem, sol, schedule_collective(sol)

    def test_single_period_with_chain_links_and_retiming(self):
        problem, sol, sched = self._solved()
        assert sched.validate() == []
        assert sched.throughput == sol.throughput
        assert len(sched.chain_links) == problem.n_values
        # retiming: produce-only slots precede every chained departure
        produced = {it for ln in sched.chain_links for it in ln.produced}
        departs = {(ln.consumer, it) for ln in sched.chain_links
                   for (it, _s) in ln.consumed}
        klass = []
        for slot in sched.slots:
            if any((t.src, t.item) in departs for t in slot.transfers):
                klass.append(2)
            elif any(t.item in produced for t in slot.transfers):
                klass.append(0)
            else:
                klass.append(1)
        assert klass == sorted(klass)

    def test_period_is_one_phase_not_two(self):
        """The pipelined schedule overlaps the stages in ONE period: its
        ops-per-period traffic equals the superposed stage traffic, not
        the sequential schedule's concatenated phases."""
        problem, sol, sched = self._solved()
        seq_sol = solve_collective(problem, collective="all-reduce",
                                   backend="exact")
        seq_sched = schedule_collective(seq_sol)
        # faster than the chained phases, and BOTH stages' traffic shares
        # every single period (overlap, not alternation)
        assert sched.throughput > seq_sched.throughput
        stages_present = {it[1] for it in sched.per_period}
        assert stages_present == {0, 1}
        ops = sched.throughput * sched.period
        assert ops == int(ops) and ops >= 1

    def test_simulation_sustains_the_joint_rate(self):
        problem, sol, sched = self._solved()
        res = simulate_collective(sched, problem, n_periods=40)
        assert res.correct
        # past warm-up the chained schedule delivers at exactly TP per
        # stream group: count deliveries in the last 10 periods
        factor = get_collective("all-reduce").ops_bound_factor(problem)
        cutoff = 30 * sched.period
        late = sum(1 for ts in res.delivery_times.values()
                   for t in ts if t > cutoff)
        assert late == float(sol.throughput) * float(10 * sched.period) * factor

    def test_every_participant_receives_the_exact_reduction(self):
        """Acceptance: the simulated schedule delivers the exact
        non-commutative reduction at every node, under genuine overlap
        (all-gather sources credit-gated by reduce-scatter landings)."""
        from repro.sim.operators import MatMul2x2Mod

        problem, sol, sched = self._solved("complete4")
        # every participant is the destination of stage-1 deliveries
        stage1_targets = {node for it, node in sched.deliveries.items()
                          if it[1] == 1}
        assert stage1_targets == set(problem.participants)
        res = simulate_collective(sched, problem, n_periods=24,
                                  op=MatMul2x2Mod)
        assert res.errors == []
        assert res.one_port_violations == []
        assert res.completed_ops() > 0

    def test_fig9_tier_roundtrip(self):
        problem = _tiers()["fig9-4host"]
        sol = solve_collective(problem, collective="all-reduce",
                               backend="exact", mode="pipelined")
        assert sol.verify() == []
        sched = schedule_collective(sol)
        assert sched.validate() == []
        # the fig9 fabric takes several periods to fill the pipeline
        # (platform diameter plus the chained hand-off)
        res = simulate_collective(sched, problem, n_periods=12)
        assert res.correct and res.completed_ops() > 0


class TestChainCreditGating:
    """Executor-level: a chained supply can never depart before a
    production landed — by construction, not by luck."""

    def _schedule(self, with_link: bool):
        # producer a->b ships "raw" (delivered at b), consumer b->c ships
        # "out" drawn from a supply at b that the link gates on "raw"
        rates = {("a", "b", "raw"): (1, 1), ("b", "c", "out"): (1, 1)}
        links = (ChainLink(label="ln", produced=("raw",), consumer="b",
                           consumed=(("out", "s0"),)),) if with_link else ()
        sched = schedule_from_rates(rates, throughput=1,
                                    deliveries={"raw": "b", "out": "c"},
                                    delivery_mode="sum")
        sched.chain_links = links
        return sched

    def test_without_production_the_consumer_starves(self):
        sched = self._schedule(with_link=True)
        supplies = {("b", "out"): lambda seq: ("v", seq)}  # no "raw" supply
        res = simulate_schedule(sched, supplies, 10)
        assert res.delivery_times["out"] == []  # gated: zero credits ever

    def test_ungated_consumer_emits_freely(self):
        sched = self._schedule(with_link=False)
        supplies = {("b", "out"): lambda seq: ("v", seq)}
        res = simulate_schedule(sched, supplies, 10)
        assert len(res.delivery_times["out"]) == 10

    def test_production_paces_consumption_one_for_one(self):
        sched = self._schedule(with_link=True)
        supplies = {("a", "raw"): lambda seq: ("r", seq),
                    ("b", "out"): lambda seq: ("v", seq)}
        res = simulate_schedule(sched, supplies, 12)
        assert res.correct
        raw, out = res.delivery_times["raw"], res.delivery_times["out"]
        assert len(raw) == 12
        # hand-off within the same period (retimed) or the next one —
        # never ahead of production
        assert 10 <= len(out) <= 12
        for k, t in enumerate(out):
            assert raw[k] < t  # the k-th departure follows the k-th landing

    def test_sibling_consumed_items_share_one_credit_per_op(self):
        """Two root edges of one arborescence draw the same operation:
        the second draw of an op index on a stream is free."""
        rates = {("a", "b", "raw"): (1, 1),
                 ("b", "c", "out1"): (1, Fraction(1, 2)),
                 ("b", "d", "out2"): (1, Fraction(1, 2))}
        link = ChainLink(label="ln", produced=("raw",), consumer="b",
                         consumed=(("out1", "s0"), ("out2", "s0")))
        sched = schedule_from_rates(
            rates, throughput=1,
            deliveries={"raw": "b", "out1": "c", "out2": "d"},
            delivery_mode="sum")
        sched.chain_links = (link,)
        supplies = {("a", "raw"): lambda seq: ("r", seq),
                    ("b", "out1"): lambda seq: ("v", seq),
                    ("b", "out2"): lambda seq: ("v", seq)}
        res = simulate_schedule(sched, supplies, 12)
        assert res.correct
        # both sibling streams run at the full rate — a per-draw (rather
        # than per-op) charge would have halved them
        assert len(res.delivery_times["out1"]) >= 10
        assert len(res.delivery_times["out2"]) >= 10


class TestPipelinedReporting:
    def test_composition_table_shows_the_mode(self):
        from repro.viz.tables import composition_table

        problem = _tiers()["fig6"]
        pipe = solve_collective(problem, collective="all-reduce",
                                backend="exact", mode="pipelined")
        table = composition_table(pipe)
        assert "pipelined" in table and "full period" in table
        seq = solve_collective(problem, collective="all-reduce",
                               backend="exact")
        assert "sequential" in composition_table(seq)

    def test_cli_solves_pipelined_mode(self, tmp_path, capsys):
        from repro.cli import main
        from repro.platform.io import save_platform

        path = str(tmp_path / "fig6.json")
        save_platform(figure6_platform(), path)
        rc = main(["all-reduce", "--platform", path,
                   "--participants", "0,1,2", "--task-work", "2",
                   "--mode", "pipelined"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "TP = 1/4" in out
        assert "pipelined composition" in out
