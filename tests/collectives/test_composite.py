"""The composition layer: joint LPs, sequential phases, schedule
superposition/concatenation, and chained simulator semantics."""

from fractions import Fraction

import pytest

from repro.collectives import (
    CompositeCollectiveSpec,
    compose_joint_lp,
    get_collective,
    register_collective,
    schedule_collective,
    solve_collective,
    unregister_collective,
)
from repro.core.allgather import AllGatherProblem, solve_all_gather
from repro.core.allreduce import AllReduceProblem, solve_all_reduce
from repro.core.broadcast import BroadcastProblem
from repro.core.reduce_op import ReduceProblem
from repro.core.reduce_scatter import ReduceScatterProblem, solve_reduce_scatter
from repro.core.scatter import ScatterProblem
from repro.lp import solve as lp_solve
from repro.platform.examples import figure2_platform, figure6_platform
from repro.platform.generators import complete
from repro.sim.executor import simulate_collective


class TestComposeJointLP:
    def test_joint_reduces_equal_hand_built_reduce_scatter(self):
        """The generic joint composition of n per-block reduces must reach
        the same optimum as the hand-built SSRS LP of PR 2."""
        tri = figure6_platform()
        parts = [0, 1, 2]
        stage_lps = [
            get_collective("reduce").build_lp(
                ReduceProblem(tri, parts, target=parts[b]))
            for b in range(3)
        ]
        joint = compose_joint_lp("joint-reduces", stage_lps)
        a = lp_solve(joint, backend="exact")
        b = solve_reduce_scatter(ReduceScatterProblem(tri, parts),
                                 backend="exact")
        assert a.optimal
        assert a.by_name("TP") == b.throughput

    def test_capacity_rows_are_shared_not_duplicated(self):
        tri = figure6_platform()
        lps = [get_collective("broadcast").build_lp(
            BroadcastProblem(tri, s, [p for p in (0, 1, 2) if p != s]))
            for s in (0, 1, 2)]
        joint = compose_joint_lp("joint-bcast", lps)
        names = [c.name for c in joint.constraints]
        # one shared out[p] row per node, not one per stage
        assert names.count("out[0]") == 1
        assert names.count("in[0]") == 1
        # per-stage structural rows are prefixed
        assert any(n.startswith("s1:conserve[") for n in names)

    def test_rejects_malformed_capacity_rows(self):
        from repro.lp import LinearProgram

        lp = LinearProgram("bad")
        x = lp.var("x")
        lp.add(x <= 2, name="out[0]")  # constant is -2, not -1
        lp.maximize(lp.var("TP"))
        with pytest.raises(ValueError, match="normalized"):
            compose_joint_lp("joint", [lp])


class TestJointCompositeOfScatters:
    """An ad-hoc joint composite built from already-registered stages:
    the composition layer is not special-cased to the built-ins."""

    def _spec(self):
        class TwinScatter(CompositeCollectiveSpec):
            name = "twin-scatter"
            title = "two scatters sharing the fig2 ports"
            problem_type = ScatterProblem
            mode = "joint"
            resolve_by_type = False

            def stages(self, problem):
                return [("scatter", problem), ("scatter", problem)]

        return TwinScatter()

    def test_two_scatters_share_the_source_port(self):
        spec = self._spec()
        register_collective(spec)
        try:
            p = ScatterProblem(figure2_platform(), "Ps", ["P0", "P1"])
            sol = solve_collective(p, collective="twin-scatter",
                                   backend="exact")
            # one scatter alone reaches 1/2; two concurrent ones halve it
            assert sol.throughput == Fraction(1, 4)
            assert sol.verify() == []
            sched = schedule_collective(sol)
            assert sched.validate() == []
            res = simulate_collective(sched, p, n_periods=25,
                                      collective="twin-scatter")
            assert res.correct
            assert res.completed_ops() > 0
        finally:
            unregister_collective("twin-scatter")


class TestSequentialComposition:
    def test_harmonic_throughput_identity(self):
        tri = figure6_platform()
        p = AllReduceProblem(tri, [0, 1, 2])
        sol = solve_all_reduce(p, backend="exact")
        rs = solve_collective(ReduceScatterProblem(tri, [0, 1, 2]),
                              backend="exact")
        ag = solve_all_gather(AllGatherProblem(tri, [0, 1, 2]),
                              backend="exact")
        assert sol.throughput == \
            1 / (1 / Fraction(rs.throughput) + 1 / Fraction(ag.throughput))

    def test_phase_scaled_occupation_fits_one_port(self):
        """Sequential composite send rates are long-run averages: the
        union must still respect the one-port budget."""
        p = AllReduceProblem(figure6_platform(), [0, 1, 2])
        sol = solve_all_reduce(p, backend="exact")
        for o in sol.edge_occupation().values():
            assert 0 < o <= 1

    def test_concatenated_schedule_period_is_sum_of_phases(self):
        p = AllReduceProblem(figure6_platform(), [0, 1, 2])
        sol = solve_all_reduce(p, backend="exact")
        sched = schedule_collective(sol)
        spec = get_collective("all-reduce")
        stage_periods = []
        n_ops = sched.throughput * sched.period
        for (sspec, _sub), s in zip(spec.stage_specs(p),
                                    sol.stage_solutions):
            ssched = sspec.build_schedule(s)
            ops = ssched.throughput * ssched.period
            stage_periods.append(ssched.period * (n_ops / ops))
        assert sched.period == sum(stage_periods)
        assert sched.throughput == sol.throughput

    def test_simulation_chains_reduced_values_into_all_gather(self):
        """Every all-gather delivery in the composite simulation must carry
        the full non-commutative reduction — proving stage chaining, not
        just per-stage correctness."""
        from repro.sim.operators import SeqConcat

        p = AllReduceProblem(figure6_platform(), [0, 1, 2])
        sol = solve_all_reduce(p, backend="exact")
        sched = schedule_collective(sol)
        sem = get_collective("all-reduce").simulation(sched, p, op=SeqConcat)
        # stage 1 delivery items are tagged ("stg", 1, <all-gather item>)
        stage1 = [it for it in sched.deliveries if it[1] == 1]
        assert stage1
        for it in stage1:
            assert sem.expected(it, 3) == SeqConcat.expected(3, 3)
        res = simulate_collective(sched, p, n_periods=25)
        assert res.correct and res.completed_ops() > 0

    def test_sequential_composite_has_no_single_lp(self):
        spec = get_collective("all-reduce")
        with pytest.raises(NotImplementedError, match="sequential"):
            spec.build_lp(AllReduceProblem(figure6_platform(), [0, 1, 2]))


class TestCompleteTier:
    """The complete-graph tier: symmetric platforms with known optima."""

    def test_all_gather_complete4(self):
        g = complete(4, cost=1)
        p = AllGatherProblem(g, g.nodes())
        sol = solve_all_gather(p, backend="exact")
        # every node receives n-1 = 3 blocks through one in-port: TP <= 1/3,
        # and a ring rotation achieves it
        assert sol.throughput == Fraction(1, 3)
        assert sol.verify() == []
        sched = schedule_collective(sol)
        assert sched.validate() == []
        res = simulate_collective(sched, p, n_periods=20)
        assert res.correct

    def test_all_reduce_complete4(self):
        g = complete(4, cost=1)
        p = AllReduceProblem(g, g.nodes())
        sol = solve_all_reduce(p, backend="exact")
        assert sol.exact and sol.throughput > 0
        assert sol.verify() == []
        rs, ag = sol.stage_solutions
        assert sol.throughput == \
            1 / (1 / Fraction(rs.throughput) + 1 / Fraction(ag.throughput))
        res = simulate_collective(schedule_collective(sol), p, n_periods=12)
        assert res.correct and res.completed_ops() > 0


class TestCompositeReporting:
    def test_rates_table_renders_stage_labels(self):
        from repro.viz.tables import rates_table

        p = AllGatherProblem(figure6_platform(), [0, 1, 2])
        sol = solve_all_gather(p, backend="exact")
        table = rates_table(sol)
        assert "s0:broadcast" in table and "s2:broadcast" in table

    def test_composition_table_shows_phase_shares(self):
        from repro.viz.tables import composition_table

        p = AllReduceProblem(figure6_platform(), [0, 1, 2])
        sol = solve_all_reduce(p, backend="exact")
        table = composition_table(sol)
        assert "reduce-scatter" in table and "all-gather" in table
        assert "of period" in table  # sequential: phase fractions
        ag = solve_all_gather(AllGatherProblem(figure6_platform(),
                                               [0, 1, 2]), backend="exact")
        assert "full period" in composition_table(ag)  # joint: concurrent

    def test_ops_bound_factor_sums_stages(self):
        p = AllReduceProblem(figure6_platform(), [0, 1, 2])
        spec = get_collective("all-reduce")
        # reduce-scatter: 3 block streams; all-gather: 3 blocks x 2 targets
        assert spec.ops_bound_factor(p) == 3 + 6
