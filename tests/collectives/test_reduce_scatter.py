"""The new reduce-scatter collective: LP structure, per-block trees,
schedule superposition, and a value-checked simulation."""

from fractions import Fraction

import pytest

from repro.core.reduce_scatter import (
    ReduceScatterProblem,
    build_reduce_scatter_lp,
    build_reduce_scatter_schedule,
    solve_reduce_scatter,
)
from repro.core.trees import trees_weight_sum
from repro.platform.examples import figure6_platform, triangle_platform
from repro.sim.executor import simulate_collective
from repro.sim.operators import MatMul2x2Mod


@pytest.fixture(scope="module")
def tri_solution():
    problem = ReduceScatterProblem(figure6_platform(), [0, 1, 2])
    return problem, solve_reduce_scatter(problem, backend="exact")


class TestProblem:
    def test_block_targets(self):
        p = ReduceScatterProblem(figure6_platform(), [2, 0, 1])
        assert p.n_values == 3
        assert [p.block_target(b) for b in p.blocks] == [2, 0, 1]
        assert p.owner(0) == 2

    def test_block_problem_projection(self):
        p = ReduceScatterProblem(figure6_platform(), [0, 1, 2], msg_size=3)
        bp = p.block_problem(1)
        assert bp.target == 1
        assert bp.participants == (0, 1, 2)
        assert bp.size((0, 2)) == 3

    def test_validation_delegates_to_reduce(self):
        with pytest.raises(ValueError):
            ReduceScatterProblem(figure6_platform(), [0])  # < 2 participants
        with pytest.raises(ValueError):
            ReduceScatterProblem(figure6_platform(), [0, 0, 1])  # duplicate


class TestLP:
    def test_block_targets_never_reemit_their_result(self):
        p = ReduceScatterProblem(figure6_platform(), [0, 1, 2])
        lp = build_reduce_scatter_lp(p)
        # block 1's full result leaving node 1 must not exist
        with pytest.raises(KeyError):
            lp.get("send[1->0,b1:v[0,2]]")
        # but block 0's full result may leave node 1
        lp.get("send[1->0,b0:v[0,2]]")

    def test_triangle_throughput_positive_and_bounded(self, tri_solution):
        _, sol = tri_solution
        assert 0 < sol.throughput <= 1
        assert sol.exact


class TestSolutionStructure:
    def test_verify_clean(self, tri_solution):
        _, sol = tri_solution
        assert sol.verify() == []

    def test_per_block_trees_decompose_full_throughput(self, tri_solution):
        _, sol = tri_solution
        trees = sol.extract()
        assert set(trees) == {0, 1, 2}
        for b, block_trees in trees.items():
            assert trees_weight_sum(block_trees) == sol.throughput

    def test_block_projection_is_valid_reduce_solution(self, tri_solution):
        _, sol = tri_solution
        for b in (0, 1, 2):
            block = sol.block_solution(b)
            # conservation/throughput hold per block; only the shared
            # port/alpha capacities may exceed a single block's budget
            bad = block.verify()
            assert [v for v in bad if "conserve" in v or "throughput" in v] == []

    def test_alpha_within_capacity(self, tri_solution):
        p, sol = tri_solution
        for h in p.compute_hosts():
            assert 0 <= sol.alpha(h) <= 1


class TestScheduleAndSimulation:
    def test_schedule_validates(self, tri_solution):
        _, sol = tri_solution
        sched = build_reduce_scatter_schedule(sol)
        assert sched.validate() == []
        assert sched.throughput == sol.throughput
        # one delivery stream per (block, tree)
        trees = sol.extract()
        assert len(sched.deliveries) == sum(len(t) for t in trees.values())

    def test_simulation_is_correct_and_near_bound(self, tri_solution):
        p, sol = tri_solution
        sched = build_reduce_scatter_schedule(sol)
        res = simulate_collective(sched, p, n_periods=40)
        assert res.correct
        # per-block delivered counts: each block must be served ~TP per
        # time-unit after warm-up
        per_block = {}
        for item, times in res.delivery_times.items():
            _tag, _interval, (b, _r) = item
            per_block[b] = per_block.get(b, 0) + len(times)
        assert set(per_block) == set(p.blocks)
        bound = float(sol.throughput) * float(res.horizon)
        for b, count in per_block.items():
            assert count <= bound + 1e-9
            assert count >= bound * 0.7  # warm-up slack

    def test_simulation_with_matrix_operator(self, tri_solution):
        p, sol = tri_solution
        sched = build_reduce_scatter_schedule(sol)
        res = simulate_collective(sched, p, n_periods=20, op=MatMul2x2Mod)
        assert res.correct


class TestHeterogeneousVariant:
    def test_skewed_triangle(self):
        p = ReduceScatterProblem(triangle_platform(speeds=(4, 1, 1),
                                                   cost=Fraction(1, 2)),
                                 [0, 1, 2], msg_size=1, task_work=2)
        sol = solve_reduce_scatter(p, backend="exact")
        assert sol.verify() == []
        sched = build_reduce_scatter_schedule(sol)
        assert sched.validate() == []
        res = simulate_collective(sched, p, n_periods=25)
        assert res.correct
