"""Full registry round-trip — build -> solve -> clean -> schedule ->
simulate — for every registered collective, exercised through the single
``solve_collective`` orchestrator.
"""

from fractions import Fraction

import pytest

from repro.collectives import (
    get_collective,
    schedule_collective,
    solve_collective,
)
from repro.core.flowclean import (
    CleanCommodityPass,
    PruneEpsilonRatesPass,
    RemoveCyclesPass,
)
from repro.core.allgather import AllGatherProblem
from repro.core.allreduce import AllReduceProblem
from repro.core.broadcast import BroadcastProblem
from repro.core.gossip import GossipProblem, GossipSolution, solve_gossip
from repro.core.prefix import PrefixSolution, solve_prefix
from repro.core.reduce_op import ReduceProblem, ReduceSolution, solve_reduce
from repro.core.reduce_scatter import (
    ReduceScatterProblem,
    ReduceScatterSolution,
    solve_reduce_scatter,
)
from repro.core.scatter import ScatterProblem, ScatterSolution, solve_scatter
from repro.platform.examples import (
    figure2_platform,
    figure2_targets,
    figure6_platform,
)
from repro.sim.executor import simulate_collective


def _problems():
    fig2 = figure2_platform()
    tri = figure6_platform()
    return {
        "scatter": ScatterProblem(fig2, "Ps", figure2_targets()),
        "reduce": ReduceProblem(tri, [0, 1, 2], target=0),
        "gossip": GossipProblem(tri, [0, 1, 2], [0, 1, 2]),
        "prefix": ReduceProblem(tri, [0, 1, 2], target=0),
        "reduce-scatter": ReduceScatterProblem(tri, [0, 1, 2]),
        # fig2's relay nodes exercise the Steiner (non-spanning) packing
        "broadcast": BroadcastProblem(fig2, "Ps", figure2_targets()),
        "all-gather": AllGatherProblem(tri, [0, 1, 2]),
        "all-reduce": AllReduceProblem(tri, [0, 1, 2]),
    }


EXPECTED_TP = {
    "scatter": Fraction(1, 2),
    "reduce": 1,
    # content sharing beats fig2's scatter (1/2): both targets reuse the
    # Pb route for part of the message
    "broadcast": Fraction(7, 12),
    # each node must receive two blocks through one in-port of capacity 1
    "all-gather": Fraction(1, 2),
    # harmonic composition of reduce-scatter (1/2) and all-gather (1/2)
    "all-reduce": Fraction(1, 4),
}

ALL_COLLECTIVES = ["scatter", "reduce", "gossip", "prefix", "reduce-scatter",
                   "broadcast", "all-gather", "all-reduce"]


@pytest.mark.parametrize("name", ALL_COLLECTIVES)
class TestRoundTrip:
    def test_solve_verify(self, name):
        problem = _problems()[name]
        sol = solve_collective(problem, collective=name, backend="exact")
        assert sol.exact
        assert sol.collective == name
        assert sol.throughput > 0
        assert sol.verify() == []
        if name in EXPECTED_TP:
            assert sol.throughput == EXPECTED_TP[name]
        occ = sol.edge_occupation()
        assert all(0 < o <= 1 for o in occ.values())

    def test_schedule_and_simulate(self, name):
        problem = _problems()[name]
        sol = solve_collective(problem, collective=name, backend="exact")
        spec = get_collective(name)
        if not spec.has_schedule:
            with pytest.raises(NotImplementedError):
                schedule_collective(sol)
            return
        sched = schedule_collective(sol)
        assert sched.validate() == []
        res = simulate_collective(sched, problem, n_periods=30,
                                  collective=name)
        assert res.correct
        assert res.completed_ops() > 0
        # steady state can never beat the LP bound; completed_ops sums
        # independent delivery streams for compute/broadcast schedules and
        # each spec declares how many TP-rate stream groups it counts
        streams = spec.ops_bound_factor(problem)
        bound = float(sol.throughput) * float(res.horizon) * streams
        assert res.completed_ops() <= bound + 1e-9


class TestWrapperEquivalence:
    """The classic solve_* entry points are thin registry wrappers: same
    types, same rates as the orchestrator."""

    def test_scatter(self):
        p = _problems()["scatter"]
        a = solve_scatter(p, backend="exact")
        b = solve_collective(p, backend="exact")  # resolved by type
        assert isinstance(a, ScatterSolution) and isinstance(b, ScatterSolution)
        assert a.throughput == b.throughput and a.send == b.send
        assert a.paths.keys() == b.paths.keys()

    def test_reduce(self):
        p = _problems()["reduce"]
        a = solve_reduce(p, backend="exact")
        b = solve_collective(p, backend="exact")
        assert isinstance(a, ReduceSolution) and isinstance(b, ReduceSolution)
        assert a.send == b.send and a.cons == b.cons

    def test_gossip(self):
        p = _problems()["gossip"]
        a = solve_gossip(p, backend="exact")
        assert isinstance(a, GossipSolution)
        assert a.verify() == []

    def test_prefix(self):
        p = _problems()["prefix"]
        a = solve_prefix(p, backend="exact")
        b = solve_collective(p, collective="prefix", backend="exact")
        assert isinstance(a, PrefixSolution) and isinstance(b, PrefixSolution)
        assert a.throughput == b.throughput and a.send == b.send

    def test_reduce_scatter(self):
        p = _problems()["reduce-scatter"]
        a = solve_reduce_scatter(p, backend="exact")
        assert isinstance(a, ReduceScatterSolution)
        assert a.verify() == []

    def test_broadcast(self):
        from repro.core.broadcast import BroadcastSolution, solve_broadcast

        p = _problems()["broadcast"]
        a = solve_broadcast(p, backend="exact")
        b = solve_collective(p, backend="exact")  # resolved by type
        assert isinstance(a, BroadcastSolution)
        assert isinstance(b, BroadcastSolution)
        assert a.throughput == b.throughput and a.send == b.send
        assert a.flows.keys() == b.flows.keys()

    def test_all_gather(self):
        from repro.collectives import CompositeSolution
        from repro.core.allgather import solve_all_gather

        p = _problems()["all-gather"]
        a = solve_all_gather(p, backend="exact")
        b = solve_collective(p, backend="exact")  # resolved by type
        assert isinstance(a, CompositeSolution)
        assert a.throughput == b.throughput and a.send == b.send
        assert len(a.stage_solutions) == p.n_values
        assert all(s.collective == "broadcast" for s in a.stage_solutions)

    def test_all_reduce(self):
        from repro.collectives import CompositeSolution
        from repro.core.allreduce import solve_all_reduce

        p = _problems()["all-reduce"]
        a = solve_all_reduce(p, backend="exact")
        b = solve_collective(p, backend="exact")  # resolved by type
        assert isinstance(a, CompositeSolution)
        assert a.throughput == b.throughput
        assert [s.collective for s in a.stage_solutions] == \
            ["reduce-scatter", "all-gather"]


class TestPassOverrides:
    def test_scatter_without_clean_pass_keeps_raw_flow(self):
        p = _problems()["scatter"]
        raw = solve_collective(p, backend="exact",
                               passes=[PruneEpsilonRatesPass()])
        cleaned = solve_collective(p, backend="exact")
        assert raw.throughput == cleaned.throughput
        assert raw.paths is None  # no decomposition pass ran
        assert cleaned.paths is not None

    def test_reduce_with_explicit_pipeline_matches_default(self):
        p = _problems()["reduce"]
        a = solve_collective(p, backend="exact",
                             passes=[PruneEpsilonRatesPass(),
                                     RemoveCyclesPass()])
        b = solve_collective(p, backend="exact")
        assert a.send == b.send

    def test_endpoint_pass_skipped_for_interval_commodities(self):
        # CleanCommodityPass requires endpoints; reduce commodities have
        # none, so the pass must be skipped rather than crash
        p = _problems()["reduce"]
        sol = solve_collective(p, backend="exact",
                               passes=[PruneEpsilonRatesPass(),
                                       CleanCommodityPass(),
                                       RemoveCyclesPass()])
        assert sol.verify() == []


class TestFloatBackendRoundTrip:
    def test_scatter_highs_verifies_with_tolerance(self):
        p = _problems()["scatter"]
        sol = solve_collective(p, backend="highs")
        assert sol.throughput == pytest.approx(0.5)
        assert sol.verify(tol=1e-7) == []
