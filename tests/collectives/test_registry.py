"""Registry mechanics: registration, lookup, problem-type resolution."""

import pytest

from repro.collectives import (
    CollectiveSpec,
    available_collectives,
    get_collective,
    register_collective,
    resolve_collective,
    unregister_collective,
)
from repro.core.gossip import GossipProblem
from repro.core.reduce_op import ReduceProblem
from repro.core.reduce_scatter import ReduceScatterProblem
from repro.core.scatter import ScatterProblem
from repro.platform.examples import figure2_platform, figure6_platform


class TestBuiltins:
    def test_all_builtins_registered(self):
        names = [s.name for s in available_collectives()]
        assert names == ["scatter", "reduce", "gossip", "prefix",
                         "reduce-scatter", "broadcast", "all-gather",
                         "all-reduce",
                         # classical baselines (PR 10) — name-only specs
                         "direct-scatter", "ring-reduce-scatter",
                         "halving-reduce-scatter", "ring-all-gather",
                         "doubling-all-gather", "ring-all-reduce",
                         "rabenseifner-all-reduce"]

    def test_get_by_name(self):
        assert get_collective("scatter").problem_type is ScatterProblem
        assert get_collective("reduce-scatter").problem_type \
            is ReduceScatterProblem

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown collective"):
            get_collective("allgather")


class TestResolution:
    def test_by_problem_type(self):
        p = ScatterProblem(figure2_platform(), "Ps", ["P0"])
        assert resolve_collective(p).name == "scatter"
        g = GossipProblem(figure6_platform(), [0, 1], [0, 1])
        assert resolve_collective(g).name == "gossip"
        rs = ReduceScatterProblem(figure6_platform(), [0, 1, 2])
        assert resolve_collective(rs).name == "reduce-scatter"

    def test_reduce_problem_resolves_to_reduce_not_prefix(self):
        p = ReduceProblem(figure6_platform(), [0, 1, 2], target=0)
        assert resolve_collective(p).name == "reduce"
        assert resolve_collective(p, collective="prefix").name == "prefix"

    def test_resolution_is_import_order_independent(self):
        """Registering prefix ahead of reduce (as a direct
        `import repro.collectives.prefix` before any registry access
        would) must not capture bare ReduceProblems: prefix opts out of
        type resolution entirely."""
        from repro.collectives.prefix import PrefixSpec

        assert PrefixSpec.resolve_by_type is False
        import repro.collectives.registry as reg

        saved = dict(reg._registry)
        try:
            reg._registry.clear()
            reg._registry["prefix"] = saved["prefix"]
            reg._registry["reduce"] = saved["reduce"]
            p = ReduceProblem(figure6_platform(), [0, 1, 2], target=0)
            assert resolve_collective(p).name == "reduce"
        finally:
            reg._registry.clear()
            reg._registry.update(saved)

    def test_unresolvable_problem(self):
        with pytest.raises(KeyError, match="no registered collective"):
            resolve_collective(object())

    def test_priority_beats_registration_order(self):
        """Type resolution is explicit: a later-registered spec with a
        higher priority wins over an earlier one, regardless of order."""
        class LowSpec(CollectiveSpec):
            name = "prio-low"
            problem_type = ScatterProblem

        class HighSpec(CollectiveSpec):
            name = "prio-high"
            problem_type = ScatterProblem

        p = ScatterProblem(figure2_platform(), "Ps", ["P0"])
        try:
            register_collective(LowSpec())
            # scatter itself registered first with priority 0: a tie keeps
            # the first registered (behavior identical to the old rule)
            assert resolve_collective(p).name == "scatter"
            register_collective(HighSpec(), priority=5)
            assert resolve_collective(p).name == "prio-high"
        finally:
            unregister_collective("prio-low")
            unregister_collective("prio-high")
        assert resolve_collective(p).name == "scatter"

    def test_reduce_priority_is_explicit(self):
        """The reduce spec claims bare ReduceProblems with an explicit
        registration priority, not via import order."""
        import repro.collectives.registry as reg

        reg._load_builtins()
        assert reg._priorities["reduce"][0] > reg._priorities["prefix"][0]


class TestRegistration:
    def test_duplicate_name_rejected(self):
        spec = CollectiveSpec()
        spec.name = "scatter"
        with pytest.raises(ValueError, match="already registered"):
            register_collective(spec)

    def test_register_replace_and_unregister(self):
        class FakeSpec(CollectiveSpec):
            name = "fake-collective"
            title = "for tests"

        try:
            register_collective(FakeSpec())
            assert get_collective("fake-collective").title == "for tests"
            register_collective(FakeSpec(), replace=True)
        finally:
            unregister_collective("fake-collective")
        with pytest.raises(KeyError):
            get_collective("fake-collective")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty name"):
            register_collective(CollectiveSpec())

    def test_validate_checks_problem_type(self):
        spec = get_collective("scatter")
        with pytest.raises(ValueError, match="expects a ScatterProblem"):
            spec.validate(ReduceProblem(figure6_platform(), [0, 1], target=0))
