"""Shared fixtures: the paper's instances and a few synthetic platforms."""

from __future__ import annotations

import pytest

from repro.core.reduce_op import ReduceProblem, solve_reduce
from repro.core.scatter import ScatterProblem, solve_scatter
from repro.platform.examples import (
    figure2_platform,
    figure2_targets,
    figure6_platform,
    figure9_participants,
    figure9_platform,
    figure9_target,
)
from repro.platform.generators import chain, complete, ring, star


@pytest.fixture
def fig2():
    return figure2_platform()


@pytest.fixture
def fig2_problem(fig2):
    return ScatterProblem(fig2, "Ps", figure2_targets())


@pytest.fixture(scope="session")
def fig2_solution():
    # canonical=True: the lex-smallest optimal vertex, so tests that pin
    # schedule/flow artifacts cannot break when the pricing rule changes
    problem = ScatterProblem(figure2_platform(), "Ps", figure2_targets())
    return solve_scatter(problem, backend="exact", canonical=True)


@pytest.fixture
def fig6():
    return figure6_platform()


@pytest.fixture
def fig6_problem(fig6):
    return ReduceProblem(fig6, participants=[0, 1, 2], target=0)


@pytest.fixture(scope="session")
def fig6_solution():
    problem = ReduceProblem(figure6_platform(), participants=[0, 1, 2], target=0)
    return solve_reduce(problem, backend="exact", canonical=True)


@pytest.fixture(scope="session")
def fig9_solution():
    problem = ReduceProblem(figure9_platform(),
                            participants=figure9_participants(),
                            target=figure9_target(), msg_size=10, task_work=10)
    return solve_reduce(problem)


@pytest.fixture(scope="session")
def fig9_canonical_solution():
    """The lex-smallest optimal fig9 vertex — pricing-rule independent;
    use it for tests that pin tree/schedule artifacts."""
    problem = ReduceProblem(figure9_platform(),
                            participants=figure9_participants(),
                            target=figure9_target(), msg_size=10, task_work=10)
    return solve_reduce(problem, canonical=True)


@pytest.fixture
def star4():
    return star(4)


@pytest.fixture
def chain5():
    return chain(5)


@pytest.fixture
def ring6():
    return ring(6)


@pytest.fixture
def complete4():
    return complete(4, speeds=[4, 2, 1, 1])
