"""Tier-1 perf smoke check against the committed ``BENCH_PR3.json``.

Fails when the exact pipeline (presolve + simplex + postsolve) regresses
more than 2× versus the recorded baseline on the guarded tiers — the
Figure 9–12 platform, the two PR 3 scale rungs (``complete7_reduce``,
``ring48_scatter``) and the PR 4 composition rung (``fig9_allgather``,
the joint 8-broadcast LP) — with a small absolute cushion so timer noise
on sub-second solves cannot flake the suite.  Also pins the cross-baseline
acceptance bar: the committed fig9 timing must stay ≥2× under the frozen
PR 1 record (both files were measured on the same machine).

Also guards the PR 6 degraded-planning tiers against the committed
``BENCH_PR6.json``: the warm incremental re-solve must stay within 2× of
its recorded latency on the paper-figure rungs, and must beat a cold
solve by ≥2× (the <0.5× acceptance bar) on the 20-node scatter rung
where the basis is big enough for the crash to pay off.

Also guards the PR 7 revised-simplex scale tiers against the committed
``BENCH_PR7.json``: the 8-host fig9 pipelined all-reduce (17k raw vars
on the LU-factorized revised engine) and the 128-host ring scatter must
stay within 2× of their recorded end-to-end timings with exact optima
pinned.

Also guards the PR 8 column-generation tiers against the committed
``BENCH_PR8.json``: the same two LPs through plain auto-dispatch — which
now routes them to the Dantzig-Wolfe colgen loop — must stay within 2×
of their recorded timings, and the committed colgen records must beat
their revised-engine "before" timings at all (the cross-baseline bar).

Also guards the PR 9 compiled-simulation tiers against the committed
``BENCH_PR9.json``: the 1025-node clustered replay (the ≥10× acceptance
tier) and the fat-tree k=6 million-slot run must reproduce their
recorded ops within 2× of the recorded compiled time, and every
engine-pair record must hold the ≥10× bar with bit-identity asserted.

Regenerate the baselines with ``PYTHONPATH=src python
benchmarks/perf_report.py`` (``--replan`` for BENCH_PR6.json,
``--revised`` for BENCH_PR7.json, ``--colgen`` for BENCH_PR8.json,
``--sim`` for BENCH_PR9.json) after an intentional perf change — or on
a new machine.
"""

import json
import os
import sys
import time
from fractions import Fraction
from pathlib import Path

import pytest

from repro.lp.exact_simplex import ExactSimplexSolver
from repro.lp.presolve import presolve

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
import perf_report  # noqa: E402  — the same builders that made the baseline

BASELINE_PATH = REPO_ROOT / "BENCH_PR3.json"
PR1_PATH = REPO_ROOT / "BENCH_PR1.json"

#: Absolute slack added on top of the 2x budget: guards against scheduler
#: jitter dominating a sub-second measurement.
NOISE_CUSHION_S = 0.25


def _budget_factor() -> float:
    """Extra multiplier for boxes slower than the baseline machine.

    The committed baseline is hardware-specific; set
    ``REPRO_PERF_FACTOR=3`` (say) on a slow CI runner instead of
    regenerating the baseline there.
    """
    try:
        return max(1.0, float(os.environ.get("REPRO_PERF_FACTOR", "1")))
    except ValueError:
        return 1.0

EXPECTED_OBJECTIVE = {
    "fig9_reduce": Fraction(2, 9),
    "complete7_reduce": Fraction(1),
    "ring48_scatter": Fraction(1, 47),
    # PR 4 composition tier: 8 broadcast stages jointly over fig9
    "fig9_allgather": Fraction(1, 9),
}


def _build(name):
    # the exact builders behind the committed baseline: if they change,
    # both the baseline and this guard change together
    return perf_report._cases()[name]()


@pytest.mark.perf_smoke
@pytest.mark.parametrize("case", ["fig9_reduce", "complete7_reduce",
                                  "ring48_scatter", "fig9_allgather"])
def test_exact_pipeline_within_2x_of_baseline(case):
    if not BASELINE_PATH.exists():
        pytest.skip("no BENCH_PR3.json baseline; run benchmarks/perf_report.py")
    baseline = json.loads(BASELINE_PATH.read_text())
    base_s = baseline["cases"][case]["exact_solve_s"]

    lp = _build(case)
    t0 = time.perf_counter()
    pr = presolve(lp)
    sol = ExactSimplexSolver().solve(pr.lp)
    values = pr.postsolve.values(sol.values)
    elapsed = time.perf_counter() - t0

    assert sol.optimal
    assert lp.objective.evaluate(values) == EXPECTED_OBJECTIVE[case]
    budget = (2.0 * base_s + NOISE_CUSHION_S) * _budget_factor()
    assert elapsed <= budget, (
        f"{case} exact pipeline regressed: {elapsed:.3f}s vs baseline "
        f"{base_s:.3f}s (budget {budget:.3f}s) — if intentional, regenerate "
        f"BENCH_PR3.json via benchmarks/perf_report.py (slow hardware: "
        f"set REPRO_PERF_FACTOR instead)")


@pytest.mark.perf_smoke
def test_pipelined_allreduce_tier_within_2x_of_baseline():
    """PR 5 workload rung: the fig6 pipelined all-reduce end to end
    (chained joint LP build, presolve, simplex, per-stage extraction)
    must stay within 2x of the committed composite baseline — and its
    throughput pinned at 1/4, strictly above the harmonic 1/5."""
    if not BASELINE_PATH.exists():
        pytest.skip("no BENCH_PR3.json baseline; run benchmarks/perf_report.py")
    baseline = json.loads(BASELINE_PATH.read_text())
    entry = baseline["composite_cases"].get("fig6_allreduce_pipelined")
    if entry is None:
        pytest.skip("baseline predates the fig6_allreduce_pipelined tier")

    solve = perf_report._composite_cases()["fig6_allreduce_pipelined"]
    t0 = time.perf_counter()
    sol = solve()
    elapsed = time.perf_counter() - t0

    assert sol.throughput == Fraction(1, 4)
    assert sol.mode == "pipelined"
    budget = (2.0 * entry["solve_s"] + NOISE_CUSHION_S) * _budget_factor()
    assert elapsed <= budget, (
        f"fig6_allreduce_pipelined regressed: {elapsed:.3f}s vs baseline "
        f"{entry['solve_s']:.3f}s (budget {budget:.3f}s)")


REPLAN_PATH = REPO_ROOT / "BENCH_PR6.json"


@pytest.mark.perf_smoke
def test_x20_warm_replan_beats_cold_by_2x():
    """PR 6 acceptance tier: on the 20-node scatter rung the warm
    incremental re-solve must finish in under half the cold solve, with
    a bit-identical rational optimum.  (The paper-figure instances are
    millisecond-scale, where the basis crash costs about one cold solve —
    their tiers below assert latency budgets and exactness only; the
    committed baseline records ~9x here, so 2x has wide margin and the
    ratio is hardware-independent.)"""
    from repro.lp.resolve import replan

    sol, events = perf_report._replan_cases()["x20_scatter_slow"]()
    report = replan(sol, events, compare=True)
    assert report.warm
    assert report.throughput == report.cold_solution.throughput
    assert report.speedup is not None and report.speedup >= 2.0, (
        f"warm replan no longer <0.5x cold on the x20 tier: "
        f"{report.replan_s:.3f}s vs {report.cold_s:.3f}s "
        f"({report.speedup:.2f}x)")


@pytest.mark.perf_smoke
@pytest.mark.parametrize("case", ["fig9_scatter_slow", "fig9_scatter_fail",
                                  "fig6_allreduce_pipelined_slow"])
def test_replan_latency_within_2x_of_baseline(case):
    if not REPLAN_PATH.exists():
        pytest.skip("no BENCH_PR6.json baseline; run "
                    "benchmarks/perf_report.py --replan")
    base = json.loads(REPLAN_PATH.read_text())["replan_cases"][case]

    from repro.lp.resolve import replan

    sol, events = perf_report._replan_cases()[case]()
    t0 = time.perf_counter()
    report = replan(sol, events)
    elapsed = time.perf_counter() - t0

    assert str(report.throughput) == base["tp_after"]
    budget = (2.0 * base["replan_s"] + NOISE_CUSHION_S) * _budget_factor()
    assert elapsed <= budget, (
        f"{case} replan regressed: {elapsed:.3f}s vs baseline "
        f"{base['replan_s']:.3f}s (budget {budget:.3f}s) — if intentional, "
        f"regenerate BENCH_PR6.json via benchmarks/perf_report.py --replan")


REVISED_PATH = REPO_ROOT / "BENCH_PR7.json"

#: Exact rational optima pinned for the PR 7 revised-simplex tiers.
REVISED_EXPECTED = {
    "fig9_8host_allreduce_pipelined": Fraction(2, 81),
    "ring128_scatter": Fraction(1, 127),
}


@pytest.mark.perf_smoke
@pytest.mark.parametrize("case", ["fig9_8host_allreduce_pipelined",
                                  "ring128_scatter"])
def test_revised_tier_within_2x_of_baseline(case):
    """PR 7 scale rungs: the LU-factorized revised simplex must keep the
    8-host fig9 pipelined all-reduce (17k raw vars, ``backend="revised"``
    pinned — auto now routes it to colgen, guarded separately below) and
    the 128-host ring scatter inside 2x of their committed end-to-end
    timings, with the exact rational optimum pinned and the solution
    verifying clean.  These LPs sit far past the old tableau limit, so
    any regression here means the revised path itself broke."""
    if not REVISED_PATH.exists():
        pytest.skip("no BENCH_PR7.json baseline; run "
                    "benchmarks/perf_report.py --revised")
    base = json.loads(REVISED_PATH.read_text())["revised_cases"][case]

    solve = perf_report._revised_cases()[case]
    t0 = time.perf_counter()
    sol = solve()
    elapsed = time.perf_counter() - t0

    assert sol.exact
    assert sol.throughput == REVISED_EXPECTED[case]
    assert sol.verify() == []
    budget = (2.0 * base["solve_s"] + NOISE_CUSHION_S) * _budget_factor()
    assert elapsed <= budget, (
        f"{case} revised tier regressed: {elapsed:.3f}s vs baseline "
        f"{base['solve_s']:.3f}s (budget {budget:.3f}s) — if intentional, "
        f"regenerate BENCH_PR7.json via benchmarks/perf_report.py --revised")


COLGEN_BASELINE_PATH = REPO_ROOT / "BENCH_PR8.json"

#: Exact rational optima pinned for the PR 8 column-generation tiers.
COLGEN_EXPECTED = {
    "fig9_8host_allreduce_pipelined": Fraction(2, 81),
    "ring128_scatter": Fraction(1, 127),
}


@pytest.mark.perf_smoke
@pytest.mark.parametrize("case", ["fig9_8host_allreduce_pipelined",
                                  "ring128_scatter"])
def test_colgen_tier_within_2x_of_baseline(case):
    """PR 8 rungs: plain auto-dispatch must keep routing the 8-host fig9
    pipelined all-reduce and the 128-host ring scatter to the
    Dantzig-Wolfe column-generation loop and land inside 2x of the
    committed end-to-end timings, exact optimum pinned, verify clean."""
    if not COLGEN_BASELINE_PATH.exists():
        pytest.skip("no BENCH_PR8.json baseline; run "
                    "benchmarks/perf_report.py --colgen")
    base = json.loads(COLGEN_BASELINE_PATH.read_text())["colgen_cases"][case]

    solve = perf_report._colgen_cases()[case]
    t0 = time.perf_counter()
    sol = solve()
    elapsed = time.perf_counter() - t0

    assert sol.exact
    assert sol.throughput == COLGEN_EXPECTED[case]
    assert sol.verify() == []
    assert sol.lp_solution.stats.get("engine") == "colgen", \
        f"{case}: auto-dispatch no longer routes to colgen"
    budget = (2.0 * base["solve_s"] + NOISE_CUSHION_S) * _budget_factor()
    assert elapsed <= budget, (
        f"{case} colgen tier regressed: {elapsed:.3f}s vs baseline "
        f"{base['solve_s']:.3f}s (budget {budget:.3f}s) — if intentional, "
        f"regenerate BENCH_PR8.json via benchmarks/perf_report.py --colgen")


@pytest.mark.perf_smoke
def test_committed_colgen_baseline_beats_the_revised_engine():
    """The committed PR 8 colgen records must stay faster than their
    revised-engine "before" timings (both sides measured on one machine
    and stored in the record itself)."""
    if not COLGEN_BASELINE_PATH.exists():
        pytest.skip("no BENCH_PR8.json baseline; run "
                    "benchmarks/perf_report.py --colgen")
    cases = json.loads(COLGEN_BASELINE_PATH.read_text())["colgen_cases"]
    for name, c in cases.items():
        if "before_solve_s" not in c:
            continue  # tiers the revised engine never ran (fat-tree)
        assert c["solve_s"] < c["before_solve_s"], (
            f"committed BENCH_PR8.json no longer beats the revised engine "
            f"on {name} — regenerate both baselines on one machine or "
            f"investigate")


SIM_BASELINE_PATH = REPO_ROOT / "BENCH_PR9.json"


@pytest.mark.perf_smoke
def test_sim_cluster1025_tier_within_2x_and_10x_recorded():
    """PR 9 acceptance tier: the committed record must show the compiled
    engine ≥10× over the reference executor on the 1025-node clustered
    distribution with bit-identity asserted, and a live rebuild + replay
    must stay within 2× of the recorded compiled time with the recorded
    ops and exact throughput reproduced."""
    if not SIM_BASELINE_PATH.exists():
        pytest.skip("no BENCH_PR9.json baseline; run "
                    "benchmarks/perf_report.py --sim")
    base = json.loads(SIM_BASELINE_PATH.read_text())["sim_cases"][
        "cluster1025_scatter"]
    assert base["speedup_x"] >= 10.0, (
        "committed BENCH_PR9.json no longer records the >=10x acceptance "
        "bar on the 1000-node tier — regenerate or investigate")
    assert base["bit_identical"] and base["nodes"] >= 1000

    from repro.sim.compiled import VectorizedExecutor

    sched, supplies, _build_s = perf_report._sim_cluster1025()
    t0 = time.perf_counter()
    ex = VectorizedExecutor(sched, supplies)
    for _ in range(base["periods"]):
        ex.run_period()
    res = ex.result()
    elapsed = time.perf_counter() - t0

    assert res.completed_ops() == base["completed_ops"]
    assert str(res.measured_throughput()) == base["throughput"]
    budget = (2.0 * base["compiled_s"] + NOISE_CUSHION_S) * _budget_factor()
    assert elapsed <= budget, (
        f"cluster1025 compiled replay regressed: {elapsed:.3f}s vs baseline "
        f"{base['compiled_s']:.3f}s (budget {budget:.3f}s) — if intentional, "
        f"regenerate BENCH_PR9.json via benchmarks/perf_report.py --sim")


@pytest.mark.perf_smoke
def test_sim_million_slot_tier_within_2x_of_baseline():
    """PR 9 scale rung: the fat-tree k=6 million-slot replay must stay a
    million-slot run (≥1e6 slot-transfer executions) inside 2× of its
    recorded compiled time, ops reproduced exactly."""
    if not SIM_BASELINE_PATH.exists():
        pytest.skip("no BENCH_PR9.json baseline; run "
                    "benchmarks/perf_report.py --sim")
    base = json.loads(SIM_BASELINE_PATH.read_text())["sim_cases"][
        "fattree6_scatter_million_slot"]
    assert base["slot_events"] >= 1_000_000 and base["speedup_x"] >= 10.0

    from repro.sim.compiled import VectorizedExecutor

    sched, supplies = perf_report._sim_solved_schedule("fattree6")
    t0 = time.perf_counter()
    ex = VectorizedExecutor(sched, supplies)
    for _ in range(base["periods"]):
        ex.run_period()
    res = ex.result()
    elapsed = time.perf_counter() - t0

    assert res.completed_ops() == base["completed_ops"]
    budget = (2.0 * base["compiled_s"] + NOISE_CUSHION_S) * _budget_factor()
    assert elapsed <= budget, (
        f"fattree6 million-slot replay regressed: {elapsed:.3f}s vs "
        f"baseline {base['compiled_s']:.3f}s (budget {budget:.3f}s) — if "
        f"intentional, regenerate BENCH_PR9.json via perf_report.py --sim")


@pytest.mark.perf_smoke
def test_committed_sim_baseline_holds_the_10x_bar_everywhere():
    """Every engine-pair tier in the committed PR 9 record must hold the
    ≥10× per-period bar with bit-identity asserted at record time."""
    if not SIM_BASELINE_PATH.exists():
        pytest.skip("no BENCH_PR9.json baseline; run "
                    "benchmarks/perf_report.py --sim")
    cases = json.loads(SIM_BASELINE_PATH.read_text())["sim_cases"]
    for name, c in cases.items():
        if "speedup_x" not in c:
            continue  # reference-only tiers (value-checked semantics)
        assert c["bit_identical"], f"{name}: record lacks bit-identity"
        assert c["speedup_x"] >= 10.0, (
            f"committed BENCH_PR9.json tier {name} fell under 10x — "
            f"regenerate on one machine or investigate")


@pytest.mark.perf_smoke
def test_committed_fig9_baseline_holds_the_2x_acceptance_bar():
    """The PR 3 record must stay ≥2× under the frozen PR 1 record."""
    if not (BASELINE_PATH.exists() and PR1_PATH.exists()):
        pytest.skip("need both BENCH_PR1.json and BENCH_PR3.json")
    pr1 = json.loads(PR1_PATH.read_text())["cases"]["fig9_reduce"]
    pr3 = json.loads(BASELINE_PATH.read_text())["cases"]["fig9_reduce"]
    assert 2.0 * pr3["exact_solve_s"] <= pr1["exact_solve_s"], (
        "committed BENCH_PR3.json no longer 2x faster than BENCH_PR1.json "
        "on the fig9 tier — regenerate both on one machine or investigate")


TUNE_BASELINE_PATH = REPO_ROOT / "BENCH_PR10.json"

#: Exact rational (LP, baseline) optima pinned for the PR 10 tuner tiers.
TUNE_EXPECTED = {
    "fig2:scatter": (Fraction(1, 2), Fraction(1, 2)),
    "fig6:reduce-scatter": (Fraction(1, 2), Fraction(1, 4)),
}


@pytest.mark.perf_smoke
@pytest.mark.parametrize("instance", ["fig2:scatter", "fig6:reduce-scatter"])
def test_tune_instance_within_2x_of_baseline(instance):
    """PR 10 tuner rungs: re-tune one zoo instance live (exact LP solve +
    analytic baseline + schedule + compiled replay) and hold it inside 2x
    of its committed per-instance timing, with the recorded exact optima
    and the bit-exact sim match pinned."""
    from repro.tune import tune, zoo_instances

    if not TUNE_BASELINE_PATH.exists():
        pytest.skip("no BENCH_PR10.json baseline; run "
                    "benchmarks/perf_report.py --tune")
    baseline = json.loads(TUNE_BASELINE_PATH.read_text())
    base_s = baseline["instance_seconds"][instance]

    from repro.collectives import resolve_collective

    label, collective = instance.split(":")
    case = next((lbl, prob, mode) for lbl, prob, mode in zoo_instances()
                if lbl == label
                and resolve_collective(prob).name == collective)
    t0 = time.perf_counter()
    rows = tune(case[1], topology=case[0], mode=case[2])
    elapsed = time.perf_counter() - t0

    lp_tp, worst_base_tp = TUNE_EXPECTED[instance]
    assert rows, f"{instance}: no applicable baselines"
    for row in rows:
        assert row.lp_tp == lp_tp
        assert row.sim_matches, f"{row.baseline}: sim != analytic rate"
        assert row.gap >= 1
    assert min(r.baseline_tp for r in rows) == worst_base_tp
    budget = (2.0 * base_s + NOISE_CUSHION_S) * _budget_factor()
    assert elapsed <= budget, (
        f"{instance} tuner tier regressed: {elapsed:.3f}s vs baseline "
        f"{base_s:.3f}s (budget {budget:.3f}s) — if intentional, "
        f"regenerate BENCH_PR10.json via benchmarks/perf_report.py --tune")


@pytest.mark.perf_smoke
def test_committed_tune_record_holds_the_dominance_bar():
    """Every committed PR 10 gap row must show LP dominance (gap >= 1 as
    an exact rational) and a bit-exact simulated rate, across >= 5 zoo
    topologies — the ISSUE 10 acceptance bar, pinned on the record."""
    if not TUNE_BASELINE_PATH.exists():
        pytest.skip("no BENCH_PR10.json baseline; run "
                    "benchmarks/perf_report.py --tune")
    rows = json.loads(TUNE_BASELINE_PATH.read_text())["gap_rows"]
    assert len({r["topology"] for r in rows.values()}) >= 5
    for name, r in rows.items():
        assert Fraction(r["gap"]) >= 1, f"{name}: LP beaten in the record"
        assert Fraction(r["gap"]) == \
            Fraction(r["lp_tp"]) / Fraction(r["baseline_tp"])
        assert r["sim_matches"], f"{name}: record lacks bit-exact sim match"
