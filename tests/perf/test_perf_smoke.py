"""Tier-1 perf smoke check against the committed ``BENCH_PR1.json``.

Fails when the exact solve of the Figure 9–12 tier platform regresses more
than 2× versus the recorded baseline (plus a small absolute cushion so
timer noise on sub-second solves cannot flake the suite).  Regenerate the
baseline with ``PYTHONPATH=src python benchmarks/perf_report.py`` after an
intentional perf change — or on a new machine.
"""

import json
import time
from fractions import Fraction
from pathlib import Path

import pytest

from repro.core.reduce_op import ReduceProblem, build_reduce_lp
from repro.lp.exact_simplex import ExactSimplexSolver
from repro.platform.examples import (
    figure9_participants, figure9_platform, figure9_target,
)

BASELINE_PATH = Path(__file__).resolve().parents[2] / "BENCH_PR1.json"

#: Absolute slack added on top of the 2x budget: guards against scheduler
#: jitter dominating a sub-second measurement.
NOISE_CUSHION_S = 0.25


@pytest.mark.perf_smoke
def test_fig9_exact_solve_within_2x_of_baseline():
    if not BASELINE_PATH.exists():
        pytest.skip("no BENCH_PR1.json baseline; run benchmarks/perf_report.py")
    baseline = json.loads(BASELINE_PATH.read_text())
    base_s = baseline["cases"]["fig9_reduce"]["exact_solve_s"]

    lp = build_reduce_lp(ReduceProblem(
        figure9_platform(), participants=figure9_participants(),
        target=figure9_target(), msg_size=10, task_work=10))
    t0 = time.perf_counter()
    sol = ExactSimplexSolver().solve(lp)
    elapsed = time.perf_counter() - t0

    assert sol.optimal and sol.objective == Fraction(2, 9)
    budget = 2.0 * base_s + NOISE_CUSHION_S
    assert elapsed <= budget, (
        f"fig9-tier exact solve regressed: {elapsed:.3f}s vs baseline "
        f"{base_s:.3f}s (budget {budget:.3f}s) — if intentional, regenerate "
        f"BENCH_PR1.json via benchmarks/perf_report.py")
