"""Unit tests for text reporting (tables, gantt, dot)."""

import pytest

from repro.core.scatter import build_scatter_schedule
from repro.platform.examples import figure2_platform, figure9_platform
from repro.viz.dot import platform_to_dot
from repro.viz.gantt import ascii_gantt
from repro.viz.tables import format_table


class TestTables:
    def test_alignment_and_rule(self):
        text = format_table(["a", "bee"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_title(self):
        text = format_table(["x"], [[1]], title="T1")
        assert text.splitlines()[0] == "T1"

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_wide_cells_stretch_columns(self):
        text = format_table(["h"], [["wide-cell-content"]])
        assert "wide-cell-content" in text


class TestGantt:
    def test_fig2_gantt_has_all_edges(self, fig2_solution):
        sched = build_scatter_schedule(fig2_solution)
        art = ascii_gantt(sched)
        for pair in ("Ps -> Pa", "Ps -> Pb", "Pa -> P0", "Pb -> P1"):
            assert pair in art
        assert "#" in art

    def test_gantt_mentions_period_and_throughput(self, fig2_solution):
        sched = build_scatter_schedule(fig2_solution)
        art = ascii_gantt(sched)
        assert f"period = {sched.period}" in art

    def test_gantt_cpu_rows_for_reduce(self, fig6_solution):
        from repro.core.schedule import build_reduce_schedule

        art = ascii_gantt(build_reduce_schedule(fig6_solution))
        # the fixture solves with canonical=True, so the artifact is the
        # lex-smallest optimal vertex — stable under any pricing rule:
        # node 0 merges T(0,0,2) and node 2 merges T(1,1,2)
        busy = {h for (h, _t) in fig6_solution.cons}
        assert busy == {0, 2}
        for h in busy:
            assert f"cpu {h}" in art


class TestDot:
    def test_compute_nodes_shaded(self):
        dot = platform_to_dot(figure9_platform())
        assert dot.count("fillcolor=gray") == 8
        assert dot.startswith('digraph "figure9"')

    def test_symmetric_links_collapse(self):
        dot = platform_to_dot(figure9_platform())
        assert dot.count("dir=none") == 17

    def test_directed_platform_keeps_arrows(self):
        dot = platform_to_dot(figure2_platform())
        assert "dir=none" not in dot
