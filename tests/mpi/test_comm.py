"""Unit tests for the simulated MPI communicator."""

import pytest

from repro.mpi.comm import SimComm
from repro.platform.examples import figure6_platform
from repro.platform.generators import complete
from repro.sim.operators import SeqConcat, noncommutative_reduce


@pytest.fixture
def comm():
    return SimComm(figure6_platform())


class TestConstruction:
    def test_default_ranks_are_compute_nodes(self, comm):
        assert comm.size() == 3
        assert comm.node_of(0) == 0

    def test_too_few_ranks_rejected(self):
        g = complete(2)
        with pytest.raises(ValueError):
            SimComm(g, ranks=[g.nodes()[0]])

    def test_unknown_rank_node_rejected(self):
        with pytest.raises(ValueError):
            SimComm(figure6_platform(), ranks=[0, "nope"])


class TestSingleShot:
    def test_scatter_values_and_makespan(self, comm):
        values = ["x", "y", "z"]
        out, makespan = comm.scatter(values, root=0)
        assert out == values
        assert makespan > 0

    def test_scatter_wrong_arity(self, comm):
        with pytest.raises(ValueError):
            comm.scatter(["a"], root=0)

    def test_reduce_matches_reference(self, comm):
        values = [SeqConcat.leaf(j, 0) for j in range(3)]
        result, makespan = comm.reduce(values, root=0)
        assert result == noncommutative_reduce(values)
        assert makespan > 0


class TestSeries:
    def test_scatter_series_reaches_lp_rate(self, comm):
        report = comm.scatter_series(root=0, n_periods=50)
        assert report.correct
        assert report.measured_throughput <= float(report.lp_throughput) + 1e-9
        assert report.measured_throughput >= 0.8 * float(report.lp_throughput)

    def test_reduce_series_reaches_lp_rate(self, comm):
        report = comm.reduce_series(root=0, n_periods=50)
        assert report.correct
        assert float(report.lp_throughput) == 1.0  # the Figure 6 optimum
        assert report.measured_throughput >= 0.8

    def test_series_throughput_beats_single_shot_rate(self, comm):
        """The whole point of the paper: pipelining beats repeating the
        makespan-optimal single operation."""
        values = [SeqConcat.leaf(j, 0) for j in range(3)]
        _res, makespan = comm.reduce(values, root=0)
        single_rate = 1.0 / float(makespan)
        report = comm.reduce_series(root=0, n_periods=60)
        assert report.measured_throughput > single_rate
