#!/usr/bin/env python3
"""Quickstart: the paper's Figure 2 toy scatter, end to end.

Builds the 5-node platform, solves the steady-state LP (exact rationals),
constructs the periodic one-port schedule, renders it as an ASCII Gantt
chart, and replays it in the simulator to confirm the throughput.

Run:  python examples/quickstart.py
"""

from repro.core.scatter import (
    ScatterProblem, build_scatter_schedule, solve_scatter,
)
from repro.platform.examples import figure2_platform, figure2_targets
from repro.sim.executor import simulate_scatter
from repro.viz.gantt import ascii_gantt


def main() -> None:
    platform = figure2_platform()
    problem = ScatterProblem(platform, source="Ps", targets=figure2_targets())

    # 1. the steady-state LP (Section 3.1) — solved in exact rationals
    solution = solve_scatter(problem, backend="exact")
    print(f"platform: {platform!r}")
    print(f"optimal steady-state throughput TP = {solution.throughput} "
          f"(paper: 1/2)\n")
    print("per-type routes (flow decomposition):")
    for target, paths in solution.paths.items():
        for path, rate in paths:
            print(f"  m[{target}]: {' -> '.join(path)}   rate {rate}")

    # 2. the periodic schedule (Section 3.3, matching decomposition)
    schedule = build_scatter_schedule(solution)
    print()
    print(ascii_gantt(schedule))

    # 3. replay under the one-port model (init phase emerges by itself)
    result = simulate_scatter(schedule, problem, n_periods=50)
    bound = float(solution.throughput) * float(result.horizon)
    print()
    print(f"simulated {result.completed_ops()} scatter ops over "
          f"{result.horizon} time-units (Lemma 1 bound {bound:.0f})")
    print(f"one-port violations: {len(result.one_port_violations)}, "
          f"payload errors: {len(result.errors)}")
    assert result.correct


if __name__ == "__main__":
    main()
