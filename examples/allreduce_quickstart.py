#!/usr/bin/env python3
"""Quickstart for composed collectives: all-reduce on the Figure 6 triangle.

All-reduce = reduce-scatter ∘ all-gather (Träff's decomposition), built on
the collective registry's composition layer — and solvable in all three
composition modes side by side:

- **sequential**: each stage on its own steady-state LP, throughput the
  harmonic combination ``1/(1/TP_rs + 1/TP_ag)``, schedule the two phases
  back to back;
- **pipelined**: ONE joint LP overlaps both phases at a common TP on the
  shared capacities, the all-gather sources chained to the reduce-scatter
  sinks (``chain[..]`` precedence rows) — never below the harmonic value,
  strictly above it here (the reduce phase is compute-bound, the gather
  phase link-bound, so they hide inside each other);
- **joint**: the same LP without the chaining rows — an upper-bound
  sanity line (the coupling never costs throughput).

The simulator replays the pipelined schedule with credit-gated chaining:
no block is redistributed before the reduce-scatter stage actually
delivered it, and every participant must receive the full
non-commutative reduction.

Run:  python examples/allreduce_quickstart.py
"""

from fractions import Fraction

from repro.core.allgather import AllGatherProblem, solve_all_gather
from repro.core.allreduce import (
    AllReduceProblem, build_all_reduce_schedule, solve_all_reduce,
)
from repro.core.reduce_scatter import ReduceScatterProblem, solve_reduce_scatter
from repro.platform.examples import figure6_platform
from repro.sim.executor import simulate_collective
from repro.viz.gantt import ascii_gantt
from repro.viz.tables import composition_table, format_table


def main() -> None:
    platform = figure6_platform()
    participants = [0, 1, 2]
    # task_work=2 makes the reduce-scatter phase compute-bound — the
    # configuration where overlapping the phases pays off
    problem = AllReduceProblem(platform, participants, task_work=2)

    # 1. the stage optima (two independent exact LP solves)
    rs = solve_reduce_scatter(
        ReduceScatterProblem(platform, participants, task_work=2),
        backend="exact")
    ag = solve_all_gather(AllGatherProblem(platform, participants),
                          backend="exact")
    print(f"platform: {platform!r}")
    print(f"reduce-scatter stage: TP = {rs.throughput} (compute-bound)")
    print(f"all-gather stage:     TP = {ag.throughput} "
          f"(joint LP over {len(participants)} shared-capacity broadcasts)")

    # 2. the three composition modes side by side
    sequential = solve_all_reduce(problem, backend="exact")
    pipelined = solve_all_reduce(problem, backend="exact", mode="pipelined")
    joint = solve_all_reduce(problem, backend="exact", mode="joint")
    print()
    print(format_table(
        ["mode", "TP", "how"],
        [("sequential", sequential.throughput,
          f"harmonic combination of {rs.throughput} and {ag.throughput}"),
         ("pipelined", pipelined.throughput,
          "one joint LP, gather chained to reduce (chain[..] rows)"),
         ("joint", joint.throughput,
          "same LP without chaining (upper-bound sanity)")],
        title="all-reduce composition modes"))
    assert sequential.throughput == \
        1 / (1 / Fraction(rs.throughput) + 1 / Fraction(ag.throughput))
    assert pipelined.throughput >= sequential.throughput  # always
    assert pipelined.throughput > sequential.throughput   # here: strictly
    assert joint.throughput == pipelined.throughput       # chaining is free
    assert sequential.verify() == [] and pipelined.verify() == []
    print()
    print(composition_table(pipelined))

    # 3. the pipelined periodic schedule: ONE period carries both phases,
    # retimed so reduced blocks land before they are re-broadcast
    schedule = build_all_reduce_schedule(pipelined)
    print()
    print(ascii_gantt(schedule))
    seq_schedule = build_all_reduce_schedule(sequential)
    print(f"pipelined period {schedule.period} vs sequential "
          f"{seq_schedule.period} for "
          f"{schedule.throughput * schedule.period} op(s)")

    # 4. replay under the one-port model with chain-credit gating: the
    # all-gather sources only emit what the reduce-scatter delivered, and
    # every delivery must equal the full non-commutative reduction
    result = simulate_collective(schedule, problem, n_periods=40)
    from repro.collectives import get_collective

    factor = get_collective("all-reduce").ops_bound_factor(problem)
    bound = float(pipelined.throughput) * float(result.horizon) * factor
    print()
    print(f"simulated {result.completed_ops()} stream deliveries over "
          f"{result.horizon} time-units (bound {bound:.0f})")
    print(f"one-port violations: {len(result.one_port_violations)}, "
          f"payload errors: {len(result.errors)}")
    assert result.correct
    assert result.completed_ops() >= 0.8 * bound  # sustains the rate


if __name__ == "__main__":
    main()
