#!/usr/bin/env python3
"""Quickstart for composed collectives: all-reduce on the Figure 6 triangle.

All-reduce = reduce-scatter ∘ all-gather (Träff's decomposition), built
here as a *sequential composite* on the collective registry: each stage is
solved on its own steady-state LP, the composed throughput is the harmonic
combination of the stage optima, the periodic schedule chains the two
phases back to back, and the simulator replays the whole thing — checking
that every participant really receives the full non-commutative reduction.

Run:  python examples/allreduce_quickstart.py
"""

from fractions import Fraction

from repro.core.allgather import AllGatherProblem, solve_all_gather
from repro.core.allreduce import (
    AllReduceProblem, build_all_reduce_schedule, solve_all_reduce,
)
from repro.core.reduce_scatter import ReduceScatterProblem, solve_reduce_scatter
from repro.platform.examples import figure6_platform
from repro.sim.executor import simulate_collective
from repro.viz.gantt import ascii_gantt


def main() -> None:
    platform = figure6_platform()
    participants = [0, 1, 2]
    problem = AllReduceProblem(platform, participants)

    # 1. the composed steady-state optimum (two stage LPs, exact rationals)
    solution = solve_all_reduce(problem, backend="exact")
    rs = solve_reduce_scatter(ReduceScatterProblem(platform, participants),
                              backend="exact")
    ag = solve_all_gather(AllGatherProblem(platform, participants),
                          backend="exact")
    print(f"platform: {platform!r}")
    print(f"reduce-scatter stage: TP = {rs.throughput}")
    print(f"all-gather stage:     TP = {ag.throughput} "
          f"(joint LP over {len(participants)} shared-capacity broadcasts)")
    print(f"composed all-reduce:  TP = {solution.throughput} "
          f"= 1/(1/({rs.throughput}) + 1/({ag.throughput}))")
    assert solution.throughput == \
        1 / (1 / Fraction(rs.throughput) + 1 / Fraction(ag.throughput))
    assert solution.verify() == []

    # 2. the two-phase periodic schedule (stages chained back to back)
    schedule = build_all_reduce_schedule(solution)
    print()
    print(ascii_gantt(schedule))

    # 3. replay under the one-port model: the all-gather phase must hand
    # every participant the full reduction of every operation's fragments
    result = simulate_collective(schedule, problem, n_periods=40)
    from repro.collectives import get_collective

    factor = get_collective("all-reduce").ops_bound_factor(problem)
    bound = float(solution.throughput) * float(result.horizon) * factor
    print()
    print(f"simulated {result.completed_ops()} stream deliveries over "
          f"{result.horizon} time-units (bound {bound:.0f})")
    print(f"one-port violations: {len(result.one_port_violations)}, "
          f"payload errors: {len(result.errors)}")
    assert result.correct


if __name__ == "__main__":
    main()
