#!/usr/bin/env python3
"""Series of Reduces on the paper's Figure 9 Tiers platform.

The headline experiment of Section 4.7: 8 compute hosts behind 6 routers,
message size 10, task time 10/speed, target node 6 (logical index 4).
Solves ``SSR(G)`` (~1900 variables, via HiGHS + exact rationalization),
extracts the two reduction trees of Figures 11-12, applies the Section 4.6
fixed-period approximation, and pipelines everything in the simulator with
a non-commutative operator.

Run:  python examples/reduce_tiers.py
"""


from repro.core.fixed_period import fixed_period_approximation
from repro.core.reduce_op import ReduceProblem, solve_reduce
from repro.core.schedule import build_reduce_schedule
from repro.platform.examples import (
    figure9_participants, figure9_platform, figure9_target,
)
from repro.sim.executor import simulate_reduce
from repro.sim.operators import MatMul2x2Mod


def main() -> None:
    problem = ReduceProblem(
        figure9_platform(),
        participants=figure9_participants(),  # logical (⊕) order 0..7
        target=figure9_target(),              # node 6, index 4
        msg_size=10, task_work=10)
    print(f"platform: {problem.platform!r}")

    solution = solve_reduce(problem)
    print(f"LP backend: {solution.lp_solution.backend}")
    print(f"optimal steady-state throughput TP = {solution.throughput} "
          f"(paper Figure 10: 2/9)\n")

    trees = solution.extract()
    print(f"{len(trees)} reduction trees (paper Figures 11-12: two at 1/9):")
    for tree in trees:
        print(tree.describe())
        print()

    # Section 4.6: round to a practical period
    fp = fixed_period_approximation(trees, period=90,
                                    original_throughput=solution.throughput)
    print(f"fixed period 90: achieved {fp.throughput}, "
          f"loss {fp.loss} <= bound {fp.bound}")

    schedule = build_reduce_schedule(solution, trees=fp.items)
    result = simulate_reduce(schedule, problem, n_periods=100,
                             op=MatMul2x2Mod, record_trace=False)
    bound = float(fp.throughput) * float(result.horizon)
    print(f"simulated {result.completed_ops()} reduces over "
          f"{result.horizon} time-units (bound {bound:.0f}); "
          f"errors: {len(result.errors)}")
    assert result.errors == []


if __name__ == "__main__":
    main()
