#!/usr/bin/env python3
"""The mpi4py-flavoured façade: makespan vs steady-state throughput.

An application issuing collectives through an MPI-like library cares about
one number when it calls ``reduce`` once — the makespan — and a different
one when it calls it in a loop: the pipelined throughput.  ``SimComm``
exposes both over the same platform, which makes the paper's motivation
measurable in five lines.

Run:  python examples/mpi_pipeline.py
"""

from repro.mpi.comm import SimComm
from repro.platform.examples import figure6_platform
from repro.sim.operators import SeqConcat


def main() -> None:
    comm = SimComm(figure6_platform())
    print(f"communicator of size {comm.size()} on {comm.platform!r}\n")

    # single-shot semantics (what classical collective algorithms optimize)
    values = [SeqConcat.leaf(j, stamp=0) for j in range(comm.size())]
    result, makespan = comm.reduce(values, root=0)
    print(f"single reduce: result={result}, makespan={float(makespan):.2f}")
    print(f"  -> naive series rate = 1/makespan = {1 / float(makespan):.3f} "
          f"ops/time-unit")

    # pipelined series semantics (what this paper optimizes)
    report = comm.reduce_series(root=0, n_periods=60)
    print(f"\npipelined series of reduces:")
    print(f"  LP throughput bound  : {float(report.lp_throughput):.3f}")
    print(f"  measured throughput  : {report.measured_throughput:.3f}")
    print(f"  completed operations : {report.completed_ops}")
    print(f"  results correct      : {report.correct}")

    speedup = report.measured_throughput * float(makespan)
    print(f"\npipelining speedup over repeated single reduces: "
          f"{speedup:.2f}x")


if __name__ == "__main__":
    main()
