#!/usr/bin/env python3
"""Steady-state scheduling vs classical baselines on a heterogeneous cluster.

Generates a Tiers-like platform, then compares pipelined throughput of:

- the steady-state LP schedule (this paper),
- flat-tree reduce (everyone sends to the target),
- order-preserving binary-tree reduce,
- the best single reduction tree extracted from the LP solution.

Run:  python examples/baseline_faceoff.py
"""

from repro.baselines.reduce_baselines import (
    best_single_tree_throughput, binary_tree_reduce, flat_tree_reduce,
)
from repro.core.reduce_op import ReduceProblem, solve_reduce
from repro.core.schedule import build_reduce_schedule
from repro.platform.generators import tiers
from repro.sim.executor import simulate_reduce
from repro.viz.tables import format_table


def main() -> None:
    g = tiers(seed=7, wan_nodes=3, mans_per_wan=1, lans_per_man=1,
              hosts_per_lan=2)
    hosts = g.compute_nodes()[:4]
    problem = ReduceProblem(g, participants=hosts, target=hosts[0],
                            msg_size=2, task_work=4)
    print(f"platform: {g!r}")
    print(f"participants: {hosts} -> target {hosts[0]}\n")

    solution = solve_reduce(problem)
    schedule = build_reduce_schedule(solution) if solution.exact else None
    rows = []

    if schedule is not None:
        run = simulate_reduce(schedule, problem, n_periods=80,
                              record_trace=False)
        rows.append(["steady-state LP (this paper)",
                     f"{float(run.measured_throughput()):.4f}",
                     f"{float(solution.throughput):.4f} (optimal)"])

    flat = flat_tree_reduce(problem, n_ops=80, record_trace=False)
    rows.append(["flat tree", f"{flat.throughput:.4f}", ""])

    binary = binary_tree_reduce(problem, n_ops=80, record_trace=False)
    rows.append(["binary tree", f"{binary.throughput:.4f}", ""])

    single, _ = best_single_tree_throughput(solution.extract(), problem)
    rows.append(["best single LP tree (pipelined)", f"{float(single):.4f}", ""])

    print(format_table(["strategy", "throughput (ops/time-unit)", "LP bound"],
                       rows, title="Series of Reduces — who wins"))


if __name__ == "__main__":
    main()
