#!/usr/bin/env python3
"""Series of Gossips (personalized all-to-all) on a heterogeneous ring.

Section 3.5's generalization: every node streams a distinct message to
every other node.  On a ring, messages must share the two directions —
the LP splits traffic optimally and the matching decomposition turns the
rates into a conflict-free periodic schedule.

Run:  python examples/gossip_ring.py
"""

from repro.core.gossip import (
    GossipProblem, build_gossip_schedule, solve_gossip,
)
from repro.platform.generators import heterogenize, ring
from repro.sim.executor import simulate_gossip
from repro.viz.gantt import ascii_gantt


def main() -> None:
    g = heterogenize(ring(4), seed=11, cost_choices=(1, 2),
                     speed_choices=(1,))
    nodes = g.nodes()
    problem = GossipProblem(g, sources=nodes, targets=nodes)
    print(f"platform: {g!r} (ring, heterogeneous link costs)")

    solution = solve_gossip(problem, backend="exact")
    print(f"optimal gossip throughput TP = {solution.throughput} "
          f"({len(problem.pairs())} message types)\n")
    print("routes per (source, target) pair:")
    for (k, l), paths in sorted(solution.paths.items(), key=str):
        for path, rate in paths:
            print(f"  m({k},{l}): {' -> '.join(str(p) for p in path)}  rate {rate}")

    schedule = build_gossip_schedule(solution)
    print()
    print(ascii_gantt(schedule))

    result = simulate_gossip(schedule, problem, n_periods=40)
    bound = float(solution.throughput) * float(result.horizon)
    print(f"\nsimulated {result.completed_ops()} complete gossip ops "
          f"(bound {bound:.0f}); correct={result.correct}")
    assert result.correct


if __name__ == "__main__":
    main()
