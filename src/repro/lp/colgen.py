"""Dantzig-Wolfe column generation over commodity blocks.

The steady-state collective LPs are *block-angular*: one homogeneous
flow system per commodity (scatter messages, reduce values, broadcast
contents — the ``conserve[..]``/``cons[..]``/``content[..]`` rows, all
with right-hand side 0), tied together only by the shared capacity rows
(``edge[..]``/``out[..]``/``in[..]``/``alpha[..]``, plus ``chain[..]``
for pipelined composites) and the throughput rows carrying ``TP``.
This module solves such LPs by the classic decomposition:

- the **restricted master** keeps the shared rows — every row that has
  a nonzero right-hand side, carries a capacity/chain name, or touches
  a master variable (``TP``, anything bounded) — over the *columns*
  generated so far.  Each column is one ray of a commodity's
  conservation cone: a tree/path/flow pattern carrying the commodity at
  unit rate, entered into the master at a nonnegative scale ``lambda``.
  Because the blocks are homogeneous cones, no convexity rows are
  needed — the master is always feasible at ``TP = 0`` and its optimum
  expands back to exact edge flows (``x = sum lambda_c x_c``).
- the **pricing subproblem** per block searches for a ray of negative
  reduced cost ``rc = sum_r y_r (a_r . x)`` against the master's exact
  rational duals ``y`` (the revised engine reports them, see
  :meth:`repro.lp.revised_simplex.RevisedSimplexSolver.solve`): either
  a shortest-path search on a per-commodity pricing graph supplied by
  the collective spec (:meth:`CollectiveSpec.pricing_graphs`), or a
  small exact LP ``min rc`` over the cone's unit-sum slice.  At the
  master optimum every admitted column has ``rc >= 0``, so an improving
  ray is always *new* — finitely many slice vertices per block bound
  the round count.

Pricing across blocks is embarrassingly parallel and fans out over a
``concurrent.futures`` process pool (``jobs``/``REPRO_JOBS``).  The
result is **deterministic and independent of the worker count**: per
block the subproblem is a deterministic solve seeded only by the duals
and the block's *own* previous basis (warm bases travel through the
parent, never through worker-local caches), and the admitted columns
are ordered by a stable key — ``(block id, sorted vertex)`` — not by
arrival.  ``jobs`` therefore changes wall-clock only, never the
solution or the column set (enforced by ``tests/lp/test_colgen.py``).

:func:`solve_colgen` is wired into :func:`repro.lp.dispatch.solve` as
``backend="colgen"`` and picked automatically above
:data:`repro.lp.dispatch.COLGEN_VAR_LIMIT` presolved variables when the
LP decomposes; LPs without block structure (or minimization problems)
fall back to a direct exact solve, tagged in ``stats["fallback"]``.
"""

from __future__ import annotations

import hashlib
import heapq
import os
from dataclasses import dataclass, field
from fractions import Fraction
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lp.exact_simplex import ExactSimplexSolver
from repro.lp.model import EQ, LE, Constraint, LinearProgram, LinExpr
from repro.lp.revised_simplex import (IncrementalColumnMaster,
                                      RevisedSimplexSolver)
from repro.lp.solution import LPSolution, SolveStatus

#: Shared-row name prefixes forced into the master (mirrors the
#: composition contract of :mod:`repro.collectives.base`: capacity rows
#: are summed across stages, chain rows span two stages' blocks —
#: treating either as block rows would merge commodities).
MASTER_ROW_PREFIXES = ("edge[", "out[", "in[", "alpha[", "chain[")

#: Pricing LPs up to this many variables use the tableau engine; larger
#: blocks use the revised engine (whose float crash pays off once per
#: block — later rounds warm-start from the block's previous basis).
PRICING_TABLEAU_LIMIT = 600

#: Blocks with more variables than this try float-guided pricing first
#: (scipy linprog steering a support-restricted exact re-solve, or an
#: exact weak-duality price-out certificate); below it a cold exact
#: tableau solve is already ~1 ms and the float detour only adds noise.
FLOAT_PRICE_MIN = 120

#: Fallback direct solves route like dispatch's exact split.
_FALLBACK_TABLEAU_LIMIT = 5000

#: Safety net on the round loop; real instances converge in tens of
#: rounds (finitely many slice vertices per block bound it anyway).
MAX_ROUNDS = 10_000

ZERO = Fraction(0)

#: ``REPRO_COLGEN_DEBUG=1`` prints a one-line per-round trace.
_DEBUG = os.environ.get("REPRO_COLGEN_DEBUG") == "1"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit ``jobs``, else ``REPRO_JOBS``, else 1."""
    if jobs is None:
        try:
            jobs = int(os.environ.get("REPRO_JOBS", "1"))
        except ValueError:
            jobs = 1
    return max(1, int(jobs))


def resolve_chunksize(n_tasks: int, njobs: int) -> int:
    """Pricing-pool ``pool.map`` chunk size for one round.

    ``REPRO_COLGEN_CHUNK`` pins it; the default heuristic hands each
    worker ~4 chunks per round (``ceil(n_tasks / (4 * njobs))``), which
    amortizes per-task pickling/IPC on wide rounds while still letting
    fast workers steal from stragglers.  Chunking only reorders *when*
    results come back, never *what* they are — column admission sorts by
    key, so the optimum stays jobs- and chunk-invariant.
    """
    try:
        pinned = int(os.environ.get("REPRO_COLGEN_CHUNK", "0"))
    except ValueError:
        pinned = 0
    if pinned > 0:
        return pinned
    return max(1, -(-n_tasks // (4 * max(1, njobs))))


# ----------------------------------------------------------------------
# structure detection
# ----------------------------------------------------------------------

@dataclass
class _BlockPayload:
    """One commodity block, picklable for the worker pool.

    ``rows`` and ``graph`` use *local* variable indices (positions in
    ``var_idx``); ``master_coefs[j]`` lists this variable's coefficients
    in the master rows as ``(master row position, coef)``.
    """

    bid: int
    var_idx: Tuple[int, ...]
    var_names: Tuple[str, ...]
    rows: Tuple[Tuple[str, Tuple[Tuple[int, object], ...]], ...]
    master_coefs: Tuple[Tuple[Tuple[int, object], ...], ...]
    graph: Optional[dict] = None


@dataclass
class Structure:
    """Block-angular decomposition of one LP (see :func:`detect`)."""

    master_var_idx: List[int]
    master_rows: List[int]          # positions in lp.constraints
    blocks: List[_BlockPayload]


def detect(lp: LinearProgram,
           pricing: Optional[Sequence[dict]] = None) -> Optional[Structure]:
    """Split ``lp`` into master rows/variables and commodity blocks.

    Master variables: every objective variable plus everything bounded
    (``lb != 0`` or a finite ``ub``) — their bounds stay native in the
    master, and bound multipliers never enter the pricing of bound-free
    block columns.  Block-eligible rows are homogeneous (constant 0),
    not named with :data:`MASTER_ROW_PREFIXES`, and touch no master
    variable; blocks are the connected components of variables over
    those rows.  Variables outside every block become master variables
    too.  Returns ``None`` when nothing decomposes (no blocks) or the
    LP is a minimization (the duals convention here is max-form).
    """
    if not lp.sense_max:
        return None
    n = lp.num_vars()
    master_var = [False] * n
    for j in lp.objective.coefs:
        master_var[j] = True
    for v in lp.variables:
        if v.lb != 0 or v.ub is not None:
            master_var[v.index] = True

    # union-find over variables joined by block-eligible rows
    parent = list(range(n))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    master_rows: List[int] = []
    block_rows: List[int] = []
    for ci, con in enumerate(lp.constraints):
        coefs = con.expr.coefs
        if (con.expr.constant != 0
                or con.name.startswith(MASTER_ROW_PREFIXES)
                or any(master_var[j] for j in coefs)
                or not coefs):
            master_rows.append(ci)
            continue
        block_rows.append(ci)
        it = iter(coefs)
        r0 = find(next(it))
        for j in it:
            parent[find(j)] = r0

    comp_vars: Dict[int, List[int]] = {}
    for j in range(n):
        if master_var[j]:
            continue
        comp_vars.setdefault(find(j), []).append(j)
    # variables never joined to a row form singleton components; they
    # appear only in master rows (or nowhere) — promote them to master
    rows_of: Dict[int, List[int]] = {}
    for ci in block_rows:
        rows_of.setdefault(find(next(iter(lp.constraints[ci].expr.coefs))),
                           []).append(ci)
    blocks: List[_BlockPayload] = []
    master_extra: List[int] = []
    # deterministic block order: by smallest member variable index
    for root in sorted(comp_vars, key=lambda r: comp_vars[r][0]):
        vidx = sorted(comp_vars[root])
        rws = rows_of.get(root)
        if not rws:
            master_extra.extend(vidx)
            continue
        local = {j: lj for lj, j in enumerate(vidx)}
        rows = tuple(
            (lp.constraints[ci].sense,
             tuple(sorted((local[j], c)
                          for j, c in lp.constraints[ci].expr.coefs.items())))
            for ci in sorted(rws))
        blocks.append(_BlockPayload(
            bid=len(blocks), var_idx=tuple(vidx),
            var_names=tuple(lp.variables[j].name for j in vidx),
            rows=rows, master_coefs=()))
    if not blocks:
        return None
    if pricing:
        _attach_graphs(lp, blocks, pricing)
    mrow_pos = {ci: pos for pos, ci in enumerate(master_rows)}
    for b in blocks:
        local = {j: lj for lj, j in enumerate(b.var_idx)}
        mc: List[List[Tuple[int, object]]] = [[] for _ in b.var_idx]
        for ci in master_rows:
            pos = mrow_pos[ci]
            for j, c in lp.constraints[ci].expr.coefs.items():
                lj = local.get(j)
                if lj is not None:
                    mc[lj].append((pos, c))
        b.master_coefs = tuple(tuple(e) for e in mc)
    master_idx = sorted([j for j in range(n) if master_var[j]]
                        + master_extra)
    return Structure(master_var_idx=master_idx, master_rows=master_rows,
                     blocks=blocks)


def _attach_graphs(lp: LinearProgram, blocks: Sequence[_BlockPayload],
                   pricing: Sequence[dict]) -> None:
    """Match spec-supplied pricing graphs to blocks; matched blocks
    price by shortest path instead of an LP.

    A graph claims every block whose variables are a *subset* of its
    arc variables, and is restricted to the block's own arcs — a
    commodity's direct source->sink arc sits in no conservation row, so
    :func:`detect` promotes it to a master variable and the remaining
    arcs (one or more connected components) still price as path flows
    over exactly their own arc set.
    """
    resolved = []
    for g in pricing:
        arcs = []
        for (i, j, vname) in g["arcs"]:
            try:
                var = lp.get(vname)
            except KeyError:
                continue  # LP builders omit some arcs (e.g. out of the
                # sink); specs may list the full edge set regardless
            arcs.append((i, j, var.index))
        if arcs:
            resolved.append((g, {a[2] for a in arcs}, arcs))
    for b in blocks:
        bvars = set(b.var_idx)
        for g, gvars, arcs in resolved:
            if bvars <= gvars:
                local = {j: lj for lj, j in enumerate(b.var_idx)}
                b.graph = {"source": g["source"], "sink": g["sink"],
                           "arcs": tuple((i, j, local[vj])
                                         for (i, j, vj) in arcs
                                         if vj in bvars)}
                break


# ----------------------------------------------------------------------
# pricing
# ----------------------------------------------------------------------

try:
    import numpy as _np
    from scipy import sparse as _sparse
    from scipy.optimize import linprog as _linprog
    _HAVE_SCIPY = True
except ImportError:            # pragma: no cover - scipy is baked in
    _HAVE_SCIPY = False

#: Denominator cap when rationalizing float pricing duals for the
#: exact price-out certificate (see :meth:`_BlockPricer._certify`).
_CERT_DENOM = 10 ** 6

#: Float pricing considers a reduced cost negative below this; anything
#: in ``[-eps, 0)`` is left to the exact certificate / exact LP.
_FLOAT_EPS = 1e-9



class _BlockPricer:
    """Per-block pricing state living in the parent or a pool worker.

    Small blocks (up to :data:`PRICING_TABLEAU_LIMIT` variables) price
    by an exact tableau solve outright.  Large blocks price
    *float-first*: a persistent scipy/HiGHS model of the block cone is
    re-solved with the round's dual weights (milliseconds), then the
    result is made exact either way — an improving float vertex is
    re-solved exactly on its support (a tiny tableau LP), and a
    priced-out verdict is certified by an exact weak-duality check of
    the rationalized float duals.  Only when both fail does the full
    exact LP run.  Every path is deterministic, so a block prices
    identically whichever worker runs it; all round-to-round state (the
    warm basis) is passed in and returned explicitly.
    """

    def __init__(self, payload: _BlockPayload) -> None:
        self.p = payload
        self._lp: Optional[LinearProgram] = None
        self._dead = False
        self._float = None     # lazily built persistent scipy model
        self._by_row = None    # transposed master coefs: pos -> [(lj, c)]

    def _pricing_lp(self) -> LinearProgram:
        if self._lp is None:
            p = self.p
            lp = LinearProgram(f"price[b{p.bid}]")
            xs = [lp.var(name) for name in p.var_names]
            for sense, terms in p.rows:
                e = LinExpr()
                for lj, c in terms:
                    e.add_term(xs[lj], c)
                lp.add(Constraint(e, sense))
            norm = LinExpr()
            for x in xs:
                norm.add_term(x, 1)
            norm.constant = -1
            lp.add(Constraint(norm, EQ), name="norm")
            self._lp = lp
        return self._lp

    def weights(self, duals: Dict[int, Fraction]) -> List[Fraction]:
        """Reduced-cost weights ``w[j] = sum_r y_r a_rj`` per local var
        (block columns have zero objective coefficient, so ``rc`` of a
        candidate ray is just ``w . x``).  Iterates the transposed
        coefficient index over the *duals*, so a round with few nonzero
        duals on this block's rows costs proportionally little."""
        br = self._by_row
        if br is None:
            br = {}
            for lj, mc in enumerate(self.p.master_coefs):
                for pos, c in mc:
                    br.setdefault(pos, []).append((lj, c))
            self._by_row = br
        w = [ZERO] * len(self.p.master_coefs)
        for pos, y in duals.items():
            if y:
                for lj, c in br.get(pos, ()):
                    w[lj] += y * c
        return w

    # ------------------------------------------------------ float path
    def _float_setup(self):
        """Build the persistent scipy model of the block cone once.

        Rows are sense-normalized (``>=`` negated into ``<=``); the
        exact normalized rows are kept too, for the certificate.
        """
        n = len(self.p.var_names)
        ub_rows: List[Tuple[Tuple[int, Fraction], ...]] = []
        eq_rows: List[Tuple[Tuple[int, Fraction], ...]] = []
        for sense, terms in self.p.rows:
            if sense == EQ:
                eq_rows.append(terms)
            elif sense == LE:
                ub_rows.append(terms)
            else:
                ub_rows.append(tuple((lj, -c) for lj, c in terms))
        def _csr(rows):
            ri, ci, vv = [], [], []
            for r, terms in enumerate(rows):
                for lj, c in terms:
                    ri.append(r)
                    ci.append(lj)
                    vv.append(float(c))
            return _sparse.csr_matrix((vv, (ri, ci)), shape=(len(rows), n))
        a_ub = _csr(ub_rows) if ub_rows else None
        eq_all = eq_rows + [tuple((lj, Fraction(1)) for lj in range(n))]
        a_eq = _csr(eq_all)
        b_eq = _np.zeros(len(eq_all))
        b_eq[-1] = 1.0
        self._float = {
            "a_ub": a_ub, "b_ub": _np.zeros(len(ub_rows)),
            "a_eq": a_eq, "b_eq": b_eq,
            "ub_rows": ub_rows, "eq_rows": eq_rows,
            "bounds": [(0, None)] * n,
        }
        return self._float

    def _cert_mults(self, res):
        """Rationalize the float duals into candidate certificate
        multipliers (``<=``-row duals clamped to the valid sign)."""
        f = self._float
        marg_ub = res.ineqlin.marginals if f["a_ub"] is not None else ()
        u_ub = []
        for r in range(len(f["ub_rows"])):
            u = Fraction(float(marg_ub[r])).limit_denominator(_CERT_DENOM)
            u_ub.append(ZERO if u > 0 else u)
        u_eq = [
            Fraction(float(res.eqlin.marginals[r])).limit_denominator(
                _CERT_DENOM)
            for r in range(len(f["eq_rows"]))
        ]
        return (u_ub, u_eq)

    def _cert_check(self, w: List[Fraction], mults) -> bool:
        """Exact weak-duality price-out certificate.

        With block rows homogeneous, any multipliers ``u`` that are
        ``<= 0`` on the normalized ``<=`` rows give the exact bound
        ``min w.x >= min_j (w_j - sum_r u_r a_rj)`` over the unit slice;
        the block is priced out when that bound is ``>= 0``.  The
        multipliers are just a *candidate* ``u`` — a wrong (or stale,
        cached) guess only weakens the bound, never the soundness, and
        no candidate can pass while an improving ray exists.
        """
        f = self._float
        u_ub, u_eq = mults
        s = list(w)
        for r, terms in enumerate(f["ub_rows"]):
            u = u_ub[r]
            if u:
                for lj, c in terms:
                    s[lj] -= u * c
        for r, terms in enumerate(f["eq_rows"]):
            u = u_eq[r]
            if u:
                for lj, c in terms:
                    s[lj] -= u * c
        return min(s) >= 0

    def _restricted_exact(self, w: List[Fraction], support: List[int],
                          want_any: bool):
        """Exact tableau solve of the pricing LP restricted to the float
        optimum's support — a tiny LP whose optimum (when the float
        support is honest) is the block's true minimum-rc ray.  Returns
        a local vertex dict, or ``None`` when the restriction is
        infeasible or fails to price negative."""
        sset = set(support)
        lp = LinearProgram(f"price[b{self.p.bid}]#sup")
        xs = {lj: lp.var(self.p.var_names[lj]) for lj in support}
        for sense, terms in self.p.rows:
            live = [(lj, c) for lj, c in terms if lj in sset]
            if not live:
                continue
            e = LinExpr()
            for lj, c in live:
                e.add_term(xs[lj], c)
            lp.add(Constraint(e, sense))
        norm = LinExpr()
        for lj in support:
            norm.add_term(xs[lj], 1)
        norm.constant = -1
        lp.add(Constraint(norm, EQ), name="norm")
        obj = LinExpr()
        for lj in support:
            if w[lj]:
                obj.add_term(xs[lj], w[lj])
        lp.minimize(obj)
        sol = ExactSimplexSolver().solve(lp)
        if not sol.optimal:
            return None
        if sol.objective >= 0 and not want_any:
            return None
        local = {}
        for pos, lj in enumerate(support):
            v = sol.values.get(xs[lj].index)
            if v:
                local[lj] = v
        return (sol.objective, local)

    def _float_price(self, w: List[Fraction], want_any: bool, fwarm):
        """Float-guided pricing; ``(None, fwarm)`` defers to the full
        exact LP.

        ``fwarm`` is the float path's warm token ``("fw", cert)``
        threaded through :func:`solve_colgen` round to round: ``cert``
        holds the last successful certificate multipliers, tried
        *before* the float solve — a cached certificate that still
        checks proves price-out outright (a stale ``u`` only weakens
        the bound, and no ``u`` can pass while an improving ray
        exists).  Keeping this state in the token rather than the
        pricer makes pricing a pure function of the task, so results
        cannot depend on which worker ran earlier rounds.
        """
        f = self._float or self._float_setup()
        cert0 = fwarm[1] if fwarm else None
        if (not want_any and cert0 is not None
                and self._cert_check(w, cert0)):
            return ("none",), fwarm
        n = len(w)
        c = _np.fromiter((float(x) for x in w), dtype=float, count=n)
        res = _linprog(c, A_ub=f["a_ub"], b_ub=f["b_ub"],
                       A_eq=f["a_eq"], b_eq=f["b_eq"], bounds=f["bounds"],
                       method="highs", options={"presolve": False})
        if res.status == 2:
            self._dead = True
            return ("dead", None), None
        if not res.success:
            return None, fwarm
        if res.fun < -_FLOAT_EPS or want_any:
            support = [int(j) for j in _np.nonzero(res.x > 1e-9)[0]]
            if support:
                got = self._restricted_exact(w, support, want_any)
                if got is not None:
                    rc, local = got
                    return ("col", rc, local), fwarm
        if res.fun >= -_FLOAT_EPS and not want_any:
            mults = self._cert_mults(res)
            if self._cert_check(w, mults):
                return ("none",), ("fw", mults)
        return None, fwarm

    # ------------------------------------------------------ entry point
    def price(self, duals: Dict[int, Fraction], warm: Optional[tuple],
              want_any: bool = False):
        """One pricing round: ``("col", rc, vertex, warm')`` with
        ``rc < 0`` and ``vertex`` a local-index ray, ``("none", warm')``
        at local optimality, ``("dead", None)`` for an empty cone.
        ``want_any`` (the seed round) returns a ray regardless of its
        reduced cost, so every block enters the first master."""
        if self._dead:
            return ("dead", None)
        w = self.weights(duals)
        if self.p.graph is not None:
            res = _dijkstra_price(self.p.graph, w, want_any=want_any)
            if res is not None:
                return res + (warm,)    # graphs carry no warm basis
        if _HAVE_SCIPY and len(w) > FLOAT_PRICE_MIN:
            fwarm = (warm if isinstance(warm, tuple) and warm
                     and warm[0] == "fw" else None)
            res, fwarm = self._float_price(w, want_any, fwarm)
            if res is not None:
                return res if res[0] == "dead" else res + (fwarm,)
        lp = self._pricing_lp()
        obj = LinExpr()
        for lj, wj in enumerate(w):
            if wj:
                obj.add_term(lp.variables[lj], wj)
        lp.minimize(obj)
        if lp.num_vars() <= PRICING_TABLEAU_LIMIT:
            sol = ExactSimplexSolver().solve(lp, warm_basis=warm)
        else:
            sol = RevisedSimplexSolver().solve(lp)
        if sol.status is SolveStatus.INFEASIBLE:
            self._dead = True
            return ("dead", None)
        if not sol.optimal:
            raise RuntimeError(
                f"pricing solve failed on block {self.p.bid}: {sol.status}"
                f" {sol.message}")
        if sol.objective >= 0 and not want_any:
            return ("none", sol.basis_labels)
        vertex = {lj: v for lj, v in sol.values.items() if v}
        return ("col", sol.objective, vertex, sol.basis_labels)


def _dijkstra_price(graph: dict, w: List[Fraction], want_any: bool = False):
    """Cheapest source->sink path under the dual arc costs.

    Valid only when the sink has no outgoing arcs and every non-sink
    arc cost is nonnegative (capacity duals are; chain/equality duals
    folded into a *non-sink* arc can break it) — then every ray of the
    block cone decomposes into source->sink paths plus nonnegative-cost
    cycles, so the min-cost simple path attains the most negative
    reduced cost and Dijkstra is exact.  Returns ``None`` to make the
    caller fall back to LP pricing when the preconditions fail,
    ``("none",)`` when no path improves, else ``("col", rc, vertex)``.
    """
    source, sink = graph["source"], graph["sink"]
    out: Dict[object, List[Tuple[object, int]]] = {}
    sink_arcs: List[Tuple[object, int]] = []
    for (i, j, lj) in graph["arcs"]:
        if i == sink:
            return None
        if j == sink:
            sink_arcs.append((i, lj))
        else:
            if w[lj] < 0:
                return None
            out.setdefault(i, []).append((j, lj))
    dist: Dict[object, Fraction] = {source: ZERO}
    prev: Dict[object, Tuple[object, int]] = {}
    heap: List[Tuple[Fraction, str, object]] = [(ZERO, str(source), source)]
    done = set()
    while heap:
        d, _tie, u = heapq.heappop(heap)
        if u in done:
            continue
        done.add(u)
        for (v, lj) in out.get(u, ()):
            nd = d + w[lj]
            if v not in dist or nd < dist[v]:
                dist[v] = nd
                prev[v] = (u, lj)
                heapq.heappush(heap, (nd, str(v), v))
    best = None
    for (q, lj) in sorted(sink_arcs, key=lambda a: a[1]):
        dq = dist.get(q)
        if dq is None:
            continue
        cost = dq + w[lj]
        if best is None or cost < best[0]:
            best = (cost, q, lj)
    if best is None or (best[0] >= 0 and not want_any):
        return ("none",)
    rc, q, last = best
    vertex = {last: Fraction(1)}
    while q != source:
        u, lj = prev[q]
        vertex[lj] = Fraction(1)
        q = u
    return ("col", rc, vertex)


# pool workers: payloads ship once through the initializer, warm bases
# travel with every task (worker-local caches would break the
# jobs-invariance contract)
_POOL_PRICERS: Optional[Dict[int, _BlockPricer]] = None


def _pool_init(payloads: Sequence[_BlockPayload]) -> None:
    global _POOL_PRICERS
    _POOL_PRICERS = {p.bid: _BlockPricer(p) for p in payloads}


def _pool_price(task):
    bid, duals, warm, want_any = task
    t0 = perf_counter()
    res = _POOL_PRICERS[bid].price(duals, warm, want_any=want_any)
    return bid, res, perf_counter() - t0


# ----------------------------------------------------------------------
# the master loop
# ----------------------------------------------------------------------

@dataclass
class _Column:
    """An admitted ray: original-index vertex + master-row activity."""

    bid: int
    name: str
    vertex: Dict[int, Fraction]          # original var index -> value
    row_coefs: Dict[int, object]         # master row position -> a_r . x
    key: tuple = field(default=())


def _column_from_vertex(payload: _BlockPayload,
                        local_vertex: Dict[int, Fraction]) -> _Column:
    vertex = {payload.var_idx[lj]: v for lj, v in local_vertex.items()}
    rows: Dict[int, object] = {}
    for lj, v in local_vertex.items():
        for pos, c in payload.master_coefs[lj]:
            acc = rows.get(pos, 0) + c * v
            if acc:
                rows[pos] = acc
            elif pos in rows:
                del rows[pos]
    key = (payload.bid, tuple(sorted(vertex.items())))
    digest = hashlib.blake2b(repr(key).encode(), digest_size=6).hexdigest()
    return _Column(bid=payload.bid, name=f"col[b{payload.bid}:{digest}]",
                   vertex=vertex, row_coefs=rows, key=key)


def _build_master(lp: LinearProgram, struct: Structure,
                  columns: Sequence[_Column]) -> LinearProgram:
    master = LinearProgram(f"{lp.name}#master")
    mvars = {}
    for j in struct.master_var_idx:
        v = lp.variables[j]
        mvars[j] = master.var(v.name, lb=v.lb, ub=v.ub)
    cvars = [master.var(c.name) for c in columns]
    exprs = []
    for ci in struct.master_rows:
        con = lp.constraints[ci]
        e = LinExpr()
        for j, c in con.expr.coefs.items():
            mv = mvars.get(j)
            if mv is not None:
                e.add_term(mv, c)
        e.constant = con.expr.constant
        exprs.append(e)
    for col, cv in zip(columns, cvars):
        for pos, c in col.row_coefs.items():
            exprs[pos].add_term(cv, c)
    for e, ci in zip(exprs, struct.master_rows):
        con = lp.constraints[ci]
        master.add(Constraint(e, con.sense), name=con.name or f"#m{ci}")
    obj = LinExpr()
    for j, c in lp.objective.coefs.items():
        obj.add_term(mvars[j], c)
    obj.constant = lp.objective.constant
    master.maximize(obj)
    return master


def _direct_fallback(lp: LinearProgram, reason: str) -> LPSolution:
    """No block structure (or a shape colgen does not speak): one
    direct exact solve, still reported under the colgen backend."""
    if lp.num_vars() <= _FALLBACK_TABLEAU_LIMIT:
        sol = ExactSimplexSolver().solve(lp)
    else:
        sol = RevisedSimplexSolver().solve(lp)
    stats = dict(sol.stats or {})
    stats.update({"engine": "colgen", "fallback": reason, "rounds": 0,
                  "columns": 0, "columns_priced": 0, "blocks": 0})
    sol.stats = stats
    sol.backend = "colgen"
    return sol


def solve_colgen(lp: LinearProgram,
                 pricing: Optional[Sequence[dict]] = None,
                 jobs: Optional[int] = None,
                 structure: Optional[Structure] = None,
                 max_rounds: int = MAX_ROUNDS) -> LPSolution:
    """Solve ``lp`` exactly by Dantzig-Wolfe column generation.

    ``pricing`` is an optional list of per-commodity pricing graphs
    (``{"source", "sink", "arcs": [(i, j, varname), ...]}``, the
    :meth:`CollectiveSpec.pricing_graphs` format); matched blocks price
    by shortest path, everything else by a small exact LP.  ``jobs``
    (default ``REPRO_JOBS``, else 1) prices blocks on a process pool;
    the returned solution is identical for every worker count.  Run on
    the *raw* LP — presolve substitutions would break the block/name
    structure the decomposition and the graphs rely on.
    """
    if not lp.is_rational():
        raise ValueError("colgen requires int/Fraction data; use the "
                         "HiGHS backend for float LPs")
    t_start = perf_counter()
    if structure is None:
        structure = detect(lp, pricing=pricing)
    if structure is None:
        reason = "minimize" if not lp.sense_max else "no blocks"
        return _direct_fallback(lp, reason)
    jobs = resolve_jobs(jobs)
    njobs = min(jobs, len(structure.blocks))
    stats: Dict[str, object] = {
        "engine": "colgen", "blocks": len(structure.blocks),
        "path_blocks": sum(1 for b in structure.blocks
                           if b.graph is not None),
        "master_rows": len(structure.master_rows),
        "master_vars": len(structure.master_var_idx),
        "jobs": njobs, "rounds": 0, "columns": 0, "columns_priced": 0,
        "pricing_skipped": 0, "seed_columns": 0,
        "master_s": 0.0, "pricing_s": 0.0, "pricing_serial_s": 0.0,
        "master_pivots": 0,
    }

    columns: List[_Column] = []
    seen_keys = set()
    payload_of = {b.bid: b for b in structure.blocks}
    warm_of: Dict[int, Optional[tuple]] = {b.bid: None
                                           for b in structure.blocks}
    alive = [b.bid for b in structure.blocks]
    solver = RevisedSimplexSolver()
    pool = None
    pricers: Dict[int, _BlockPricer] = {}
    if njobs > 1:
        from concurrent.futures import ProcessPoolExecutor

        pool = ProcessPoolExecutor(max_workers=njobs,
                                   initializer=_pool_init,
                                   initargs=(structure.blocks,))
    else:
        pricers = {b.bid: _BlockPricer(b) for b in structure.blocks}

    # rows whose duals a block's pricing can see: skip a block when they
    # did not move since its last priced-out round (the result would be
    # bit-identical, see the loop below)
    dual_rows = {b.bid: tuple(sorted({pos for mc in b.master_coefs
                                      for pos, _ in mc}))
                 for b in structure.blocks}
    last_key: Dict[int, tuple] = {}
    last_none: Dict[int, bool] = {}

    def run_tasks(tasks):
        stats["columns_priced"] += len(tasks)
        t0 = perf_counter()
        if pool is not None:
            chunk = resolve_chunksize(len(tasks), njobs)
            stats["pricing_chunk"] = max(int(stats.get("pricing_chunk", 0)),
                                         chunk)
            results = list(pool.map(_pool_price, tasks, chunksize=chunk))
        else:
            results = []
            for task in tasks:
                t1 = perf_counter()
                res = pricers[task[0]].price(task[1], task[2],
                                             want_any=task[3])
                results.append((task[0], res, perf_counter() - t1))
        wall = perf_counter() - t0
        stats["pricing_s"] += wall
        stats["pricing_serial_s"] += sum(r[2] for r in results)
        return results, wall

    def harvest(results, live):
        fresh: List[_Column] = []
        dead = set()
        for bid, res, _secs in results:
            if res[0] == "dead":
                dead.add(bid)
                continue
            last_none[bid] = res[0] == "none"
            if res[0] == "none":
                warm_of[bid] = res[1]
                continue
            _tag, rc, local_vertex, warm = res
            warm_of[bid] = warm
            col = _column_from_vertex(payload_of[bid], local_vertex)
            if col.key not in seen_keys:
                fresh.append(col)
        fresh.sort(key=lambda c: c.key)     # stable admission order
        for col in fresh:
            seen_keys.add(col.key)
            columns.append(col)
        if dead:
            live[:] = [bid for bid in live if bid not in dead]
        return fresh

    # coupling rows: master rows touching a master variable (alpha /
    # throughput rows tying commodity rates to the TP variable) plus
    # the homogeneous master rows (cross-block ``chain[..]`` precedence
    # rows — homogeneous no-master-var rows only stay in the master via
    # the protected prefixes, everything else becomes a block row)
    mset = set(structure.master_var_idx)
    tp_pos = [pos for pos, ci in enumerate(structure.master_rows)
              if lp.constraints[ci].expr.constant == 0
              or any(j in mset for j in lp.constraints[ci].expr.coefs)]

    try:
        # seed round: rays of extremal rate per block (any reduced
        # cost) before the first master, so chain-coupled commodities
        # (pipelined composites) all carry flow from round 0 — without
        # them the master sits at TP=0 for tens of rounds while duals
        # wake the stages up one by one.  Pricing minimizes
        # w.x = sum_r y_r a_rj x_j, so y = -1 (+1) on the rate rows
        # maximizes (minimizes) the block's coupling contribution.
        tp_set = set(tp_pos)
        seed_tasks = [(bid,
                       {p: Fraction(s) for p in dual_rows[bid]
                        if p in tp_set},
                       None, True)
                      for bid in alive for s in (-1, 1)]
        seed_results, _ = run_tasks(seed_tasks)
        stats["seed_columns"] = len(harvest(seed_results, alive))
        stats["columns"] = len(columns)

        master_res = None
        inc: Optional[IncrementalColumnMaster] = None
        pending: List[_Column] = []     # admitted, not yet in the master
        for rnd in range(max_rounds):
            t0 = perf_counter()
            res = None
            if inc is not None and inc.live:
                # hot path: splice the fresh columns into the live core
                # and continue the primal — no crash, no refactorization
                res = inc.add_and_resolve(
                    [(c.name, c.row_coefs) for c in pending])
                if res is not None and res.status is SolveStatus.ERROR:
                    res = None          # poisoned core: full re-solve
            if res is None:
                master = _build_master(lp, structure, columns)
                inc = IncrementalColumnMaster(master, solver)
                res = inc.solve_full()
            pending = []
            master_res = res
            stats["master_s"] += perf_counter() - t0
            stats["master_pivots"] += res.pivots
            if res.status is SolveStatus.UNBOUNDED:
                # the restricted master's rays expand to rays of the
                # full LP, so unboundedness transfers directly
                return LPSolution(SolveStatus.UNBOUNDED, backend="colgen",
                                  lp=lp, stats=stats)
            if not res.optimal:
                if rnd == 0 and res.status is SolveStatus.INFEASIBLE:
                    # a zero-column master can be infeasible while the
                    # full LP is not (columns only add feasibility)
                    return _direct_fallback(lp, "master infeasible")
                return LPSolution(res.status, backend="colgen",
                                  lp=lp, stats=stats,
                                  message=f"master solve failed in round "
                                          f"{rnd} on {lp.name!r}")
            duals = res.duals
            stats["rounds"] = rnd + 1

            # a block whose visible duals match its last priced-out
            # round would return "none" again bit-identically (pricing
            # is a pure function of those duals; a block that just
            # yielded a column always sees moved duals — the new master
            # optimum prices every admitted column >= 0), so skip it
            tasks = []
            for bid in alive:
                key = tuple(duals.get(pos) for pos in dual_rows[bid])
                if last_none.get(bid) and last_key.get(bid) == key:
                    stats["pricing_skipped"] += 1
                    continue
                last_key[bid] = key
                tasks.append((bid, duals, warm_of[bid], False))
            results, wall = run_tasks(tasks)
            fresh = harvest(results, alive)
            if _DEBUG:
                print(f"[colgen] {lp.name} round {rnd}: "
                      f"obj={res.objective} fresh={len(fresh)} "
                      f"priced={len(tasks)} alive={len(alive)} "
                      f"wall={wall:.3f}s", flush=True)
            if not fresh:
                break
            pending = fresh
            stats["columns"] = len(columns)
        else:
            return LPSolution(SolveStatus.ERROR, backend="colgen", lp=lp,
                              stats=stats,
                              message=f"colgen hit the {max_rounds}-round "
                                      f"limit on {lp.name!r}")
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    # expand the master optimum back to original variables
    values: Dict[int, Fraction] = {}
    for j in structure.master_var_idx:
        v = master_res.values.get(lp.variables[j].name)
        if v:
            values[j] = v
    for col in columns:
        lam = master_res.values.get(col.name)
        if not lam:
            continue
        for j, x in col.vertex.items():
            acc = values.get(j, 0) + lam * x
            if acc:
                values[j] = acc
            elif j in values:
                del values[j]
    bad = lp.check_feasible(values, tol=0)
    if bad:
        return LPSolution(SolveStatus.ERROR, backend="colgen", lp=lp,
                          stats=stats,
                          message=f"expanded colgen optimum violates "
                                  f"{bad[:5]} on {lp.name!r}")
    # digest of the admitted column keys, in admission order: the
    # jobs-invariance contract says this never depends on worker count
    stats["columns_digest"] = hashlib.blake2b(
        repr([c.key for c in columns]).encode(), digest_size=8).hexdigest()
    ser = stats["pricing_serial_s"]
    stats["parallel_speedup"] = (
        round(ser / stats["pricing_s"], 2) if stats["pricing_s"] else 1.0)
    stats["total_s"] = perf_counter() - t_start
    return LPSolution(SolveStatus.OPTIMAL,
                      objective=lp.objective.evaluate(values),
                      values=values, backend="colgen", exact=True, lp=lp,
                      iterations=int(stats["rounds"]), stats=stats)
