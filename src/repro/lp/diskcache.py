"""Persistent on-disk LP solution store (cross-process memo cache).

The in-process memo cache in :mod:`repro.lp.dispatch` dies with the
interpreter; pipelines that re-run the same instances across processes
(benchmarks, CLI invocations, CI shards) re-pay the simplex every time.
This module stores solved :class:`~repro.lp.solution.LPSolution` objects
under the same canonical model hash, one pickle file per solution, in a
configurable directory:

- ``set_cache_dir(path)`` enables the store programmatically;
- the ``REPRO_LP_CACHE_DIR`` environment variable enables it for a whole
  shell session (picked up lazily on first solve);
- ``set_cache_dir(None)`` disables it again (the default state).

Solutions are written atomically (tmp file + ``os.replace``) so parallel
processes sharing a cache directory never observe torn files; unreadable
or truncated entries are treated as misses.  Only *optimal* solutions are
stored, with the model stripped (``lp=None``) — the dispatch layer
re-attaches the caller's LP on a hit, exactly like the in-memory cache.

The ``repro cache`` CLI subcommand inspects and clears the store.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import replace
from typing import Dict, Optional

from repro.lp.solution import LPSolution

#: Environment variable naming the cache directory (lazily honoured).
CACHE_DIR_ENV = "REPRO_LP_CACHE_DIR"

#: File suffix of one stored solution.
SUFFIX = ".lpsol"

#: Bump when the on-disk format changes; part of every file name, so a
#: format change invalidates old entries instead of crashing on them.
FORMAT_VERSION = 1

_cache_dir: Optional[str] = None
_env_checked = False


def set_cache_dir(path: Optional[str]) -> Optional[str]:
    """Set (and create) the cache directory; ``None`` disables the store.

    Returns the normalized path (or ``None``).  Overrides any
    ``REPRO_LP_CACHE_DIR`` setting for the rest of the process.
    """
    global _cache_dir, _env_checked
    _env_checked = True  # explicit configuration beats the environment
    if path is None:
        _cache_dir = None
        return None
    path = os.path.abspath(os.path.expanduser(str(path)))
    os.makedirs(path, exist_ok=True)
    _cache_dir = path
    return path


def get_cache_dir() -> Optional[str]:
    """Active cache directory, or ``None`` when the store is disabled.

    The first call honours ``REPRO_LP_CACHE_DIR`` if set and non-empty.
    """
    global _env_checked
    if not _env_checked:
        _env_checked = True
        env = os.environ.get(CACHE_DIR_ENV, "").strip()
        if env:
            set_cache_dir(env)
    return _cache_dir


def _entry_path(root: str, key: str) -> str:
    return os.path.join(root, f"v{FORMAT_VERSION}-{key}{SUFFIX}")


def load(key: str) -> Optional[LPSolution]:
    """Stored solution for ``key``, or ``None`` (disabled/miss/corrupt)."""
    root = get_cache_dir()
    if root is None:
        return None
    path = _entry_path(root, key)
    try:
        with open(path, "rb") as fh:
            sol = pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError):
        return None
    return sol if isinstance(sol, LPSolution) else None


def store(key: str, sol: LPSolution) -> bool:
    """Persist ``sol`` under ``key`` (atomic); returns True when written."""
    root = get_cache_dir()
    if root is None:
        return False
    path = _entry_path(root, key)
    payload = replace(sol, lp=None)
    try:
        fd, tmp = tempfile.mkstemp(dir=root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        return False  # read-only / full disk: the cache is best-effort
    return True


def stats(root: Optional[str] = None) -> Dict[str, object]:
    """``{dir, enabled, entries, bytes}`` for ``root`` (default: active)."""
    root = root or get_cache_dir()
    if root is None:
        return {"dir": None, "enabled": False, "entries": 0, "bytes": 0}
    entries = 0
    size = 0
    try:
        with os.scandir(root) as it:
            for de in it:
                if de.name.endswith(SUFFIX):
                    entries += 1
                    try:
                        size += de.stat().st_size
                    except OSError:
                        pass
    except OSError:
        pass
    return {"dir": root, "enabled": True, "entries": entries, "bytes": size}


def clear(root: Optional[str] = None) -> int:
    """Delete every stored solution under ``root`` (default: active
    directory); returns the number of entries removed."""
    root = root or get_cache_dir()
    if root is None:
        return 0
    removed = 0
    try:
        with os.scandir(root) as it:
            names = [de.name for de in it if de.name.endswith(SUFFIX)]
    except OSError:
        return 0
    for name in names:
        try:
            os.unlink(os.path.join(root, name))
            removed += 1
        except OSError:
            pass
    return removed
