"""Persistent on-disk LP solution store (cross-process memo cache).

The in-process memo cache in :mod:`repro.lp.dispatch` dies with the
interpreter; pipelines that re-run the same instances across processes
(benchmarks, CLI invocations, CI shards) re-pay the simplex every time.
This module stores solved :class:`~repro.lp.solution.LPSolution` objects
under the same canonical model hash, one pickle file per solution, in a
configurable directory:

- ``set_cache_dir(path)`` enables the store programmatically;
- the ``REPRO_LP_CACHE_DIR`` environment variable enables it for a whole
  shell session (picked up lazily on first solve);
- ``set_cache_dir(None)`` disables it again (the default state).

Solutions are written atomically (tmp file + ``os.replace``) so parallel
processes sharing a cache directory never observe torn files; unreadable
or truncated entries are treated as misses.  Only *optimal* solutions are
stored, with the model stripped (``lp=None``) — the dispatch layer
re-attaches the caller's LP on a hit, exactly like the in-memory cache.

The store is **size-bounded with LRU eviction**: every ``store`` that
pushes the directory past the byte limit (default
:data:`DEFAULT_MAX_BYTES`; configure via ``REPRO_LP_CACHE_MAX_BYTES`` or
:func:`set_cache_limit`, ``0`` = unbounded) deletes least-recently-*used*
entries until the store fits again.  Recency is the file mtime, which
``load`` refreshes on every hit, so hot entries survive; eviction races
between parallel processes are harmless (a vanished file is just a miss).

The ``repro cache`` CLI subcommand inspects and clears the store.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import replace
from typing import Dict, Optional

from repro.lp.solution import LPSolution

#: Environment variable naming the cache directory (lazily honoured).
CACHE_DIR_ENV = "REPRO_LP_CACHE_DIR"

#: Environment variable overriding the size limit in bytes (0 = unbounded).
CACHE_MAX_BYTES_ENV = "REPRO_LP_CACHE_MAX_BYTES"

#: Default size bound of the store (LRU entries beyond it are evicted).
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: File suffix of one stored solution.
SUFFIX = ".lpsol"

#: Bump when the on-disk format changes; part of every file name, so a
#: format change invalidates old entries instead of crashing on them.
FORMAT_VERSION = 1

_cache_dir: Optional[str] = None
_env_checked = False
_max_bytes: Optional[int] = None  # resolved lazily (env or default)
_evictions = 0
#: per-directory running estimate of the store size, so the common case
#: of a store well under the limit costs O(1) instead of a full scandir
_approx_bytes: Dict[str, int] = {}


def set_cache_dir(path: Optional[str]) -> Optional[str]:
    """Set (and create) the cache directory; ``None`` disables the store.

    Returns the normalized path (or ``None``).  Overrides any
    ``REPRO_LP_CACHE_DIR`` setting for the rest of the process.
    """
    global _cache_dir, _env_checked
    _env_checked = True  # explicit configuration beats the environment
    if path is None:
        _cache_dir = None
        return None
    path = os.path.abspath(os.path.expanduser(str(path)))
    os.makedirs(path, exist_ok=True)
    _cache_dir = path
    return path


def get_cache_dir() -> Optional[str]:
    """Active cache directory, or ``None`` when the store is disabled.

    The first call honours ``REPRO_LP_CACHE_DIR`` if set and non-empty.
    """
    global _env_checked
    if not _env_checked:
        _env_checked = True
        env = os.environ.get(CACHE_DIR_ENV, "").strip()
        if env:
            set_cache_dir(env)
    return _cache_dir


def set_cache_limit(max_bytes: Optional[int]) -> int:
    """Set the store's size bound in bytes; ``0`` disables eviction,
    ``None`` restores the default/environment setting.  Returns the
    active limit."""
    global _max_bytes
    _max_bytes = None if max_bytes is None else max(0, int(max_bytes))
    return get_cache_limit()


def get_cache_limit() -> int:
    """Active size bound in bytes (``0`` means unbounded).

    Resolution order: :func:`set_cache_limit`, then
    ``REPRO_LP_CACHE_MAX_BYTES``, then :data:`DEFAULT_MAX_BYTES`.
    """
    if _max_bytes is not None:
        return _max_bytes
    env = os.environ.get(CACHE_MAX_BYTES_ENV, "").strip()
    if env:
        try:
            return max(0, int(env))
        except ValueError:
            pass
    return DEFAULT_MAX_BYTES


def _entry_path(root: str, key: str) -> str:
    return os.path.join(root, f"v{FORMAT_VERSION}-{key}{SUFFIX}")


def load(key: str) -> Optional[LPSolution]:
    """Stored solution for ``key``, or ``None`` (disabled/miss/corrupt)."""
    root = get_cache_dir()
    if root is None:
        return None
    path = _entry_path(root, key)
    try:
        with open(path, "rb") as fh:
            sol = pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError):
        return None
    if not isinstance(sol, LPSolution):
        return None
    try:
        os.utime(path)  # refresh LRU recency on every hit
    except OSError:
        pass
    return sol


def store(key: str, sol: LPSolution) -> bool:
    """Persist ``sol`` under ``key`` (atomic); returns True when written."""
    root = get_cache_dir()
    if root is None:
        return False
    path = _entry_path(root, key)
    payload = replace(sol, lp=None)
    try:
        fd, tmp = tempfile.mkstemp(dir=root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        return False  # read-only / full disk: the cache is best-effort
    limit = get_cache_limit()
    if limit > 0:
        # O(1) fast path: bump the running size estimate and only pay a
        # full directory scan when it says the limit may be crossed (the
        # estimate is refreshed from disk on every scan)
        approx = _approx_bytes.get(root)
        try:
            size = os.path.getsize(path)
        except OSError:
            size = 0
        if approx is None:
            evict(root)
        else:
            _approx_bytes[root] = approx + size
            if _approx_bytes[root] > limit:
                evict(root)
    return True


def evict(root: Optional[str] = None,
          max_bytes: Optional[int] = None) -> int:
    """Delete least-recently-used entries until the store fits the limit.

    Over-limit stores shrink to 90 % of the limit (hysteresis, so a store
    hovering at the boundary does not rescan on every write).  Runs
    automatically from :func:`store` when the running size estimate
    crosses the limit; callable directly for housekeeping.  Returns the
    number of entries removed (0 when the store is disabled, unbounded,
    or already within the limit).
    """
    global _evictions
    root = root or get_cache_dir()
    limit = get_cache_limit() if max_bytes is None else max_bytes
    if root is None or limit <= 0:
        return 0
    entries = []
    total = 0
    try:
        with os.scandir(root) as it:
            for de in it:
                if de.name.endswith(SUFFIX):
                    try:
                        st = de.stat()
                    except OSError:
                        continue
                    entries.append((st.st_mtime, st.st_size, de.path))
                    total += st.st_size
    except OSError:
        return 0
    removed = 0
    if total > limit:
        target = limit * 9 // 10
        entries.sort()  # oldest mtime first
        for _mtime, size, path in entries:
            if total <= target:
                break
            try:
                os.unlink(path)
            except OSError:
                continue  # parallel eviction/clear: fine, recount next time
            total -= size
            removed += 1
        _evictions += removed
    _approx_bytes[root] = total
    return removed


def stats(root: Optional[str] = None) -> Dict[str, object]:
    """``{dir, enabled, entries, bytes, max_bytes, evictions}`` for
    ``root`` (default: active directory).  ``evictions`` counts entries
    this process evicted; ``max_bytes == 0`` means unbounded."""
    root = root or get_cache_dir()
    if root is None:
        return {"dir": None, "enabled": False, "entries": 0, "bytes": 0,
                "max_bytes": get_cache_limit(), "evictions": _evictions}
    entries = 0
    size = 0
    try:
        with os.scandir(root) as it:
            for de in it:
                if de.name.endswith(SUFFIX):
                    entries += 1
                    try:
                        size += de.stat().st_size
                    except OSError:
                        pass
    except OSError:
        pass
    return {"dir": root, "enabled": True, "entries": entries, "bytes": size,
            "max_bytes": get_cache_limit(), "evictions": _evictions}


def clear(root: Optional[str] = None) -> int:
    """Delete every stored solution under ``root`` (default: active
    directory); returns the number of entries removed."""
    root = root or get_cache_dir()
    if root is None:
        return 0
    removed = 0
    try:
        with os.scandir(root) as it:
            names = [de.name for de in it if de.name.endswith(SUFFIX)]
    except OSError:
        return 0
    for name in names:
        try:
            os.unlink(os.path.join(root, name))
            removed += 1
        except OSError:
            pass
    _approx_bytes.pop(root, None)
    return removed
