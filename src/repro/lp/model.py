"""A small linear-programming modeling layer.

Deliberately PuLP-flavoured::

    lp = LinearProgram("sssp")
    tp = lp.var("TP")
    x = lp.var("send_s_a", ub=1)
    lp.add(x + 2 * tp <= 1, "one-port-out")
    lp.maximize(tp)

Coefficients may be ``int``, :class:`fractions.Fraction` or ``float``; the
exact backend requires rationals and will refuse floats (use the HiGHS
backend or convert via :func:`fractions.Fraction`).

Variables are non-negative by default (every quantity in the paper's LPs is a
fraction of time or a message rate, both >= 0).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Union

Number = Union[int, float, Fraction]

LE = "<="
GE = ">="
EQ = "=="


class Variable:
    """A decision variable with bounds ``lb <= x <= ub``.

    Comparison operators build :class:`Constraint` objects (PuLP style), so
    variables must never be used as dict keys relying on ``==``; internally
    everything is keyed by :attr:`index`.
    """

    __slots__ = ("name", "index", "lb", "ub")

    def __init__(self, name: str, index: int, lb: Number = 0,
                 ub: Optional[Number] = None) -> None:
        self.name = name
        self.index = index
        self.lb = lb
        self.ub = ub

    # arithmetic — promote to LinExpr
    def _expr(self) -> "LinExpr":
        return LinExpr({self.index: 1}, 0, _vars={self.index: self})

    def __add__(self, other):
        return self._expr() + other

    __radd__ = __add__

    def __sub__(self, other):
        return self._expr() - other

    def __rsub__(self, other):
        return (-self._expr()) + other

    def __mul__(self, k):
        return self._expr() * k

    __rmul__ = __mul__

    def __neg__(self):
        return self._expr() * -1

    def __le__(self, other):
        return self._expr() <= other

    def __ge__(self, other):
        return self._expr() >= other

    def __eq__(self, other):  # type: ignore[override]
        return self._expr() == other

    def __hash__(self) -> int:  # identity-ish hash despite __eq__ override
        return object.__hash__(self)

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


class LinExpr:
    """Affine expression ``sum(coef_i * x_i) + constant``."""

    __slots__ = ("coefs", "constant", "_vars")

    def __init__(self, coefs: Optional[Dict[int, Number]] = None,
                 constant: Number = 0,
                 _vars: Optional[Dict[int, Variable]] = None) -> None:
        self.coefs: Dict[int, Number] = dict(coefs or {})
        self.constant = constant
        self._vars: Dict[int, Variable] = dict(_vars or {})

    @staticmethod
    def _coerce(x) -> "LinExpr":
        if isinstance(x, LinExpr):
            return x
        if isinstance(x, Variable):
            return x._expr()
        if isinstance(x, (int, float, Fraction)):
            return LinExpr({}, x)
        raise TypeError(f"cannot use {x!r} in a linear expression")

    def copy(self) -> "LinExpr":
        return LinExpr(self.coefs, self.constant, _vars=self._vars)

    # -- in-place accumulation (the hot path for LP builders) ----------
    def add_term(self, var: "Variable", coef: Number = 1) -> "LinExpr":
        """Accumulate ``coef * var`` in place and return ``self``.

        This is the linear-time building block: ``lin_sum`` and the LP
        builders in :mod:`repro.core` use it instead of ``+``, which copies
        the whole expression on every application (O(n²) in terms).
        """
        idx = var.index
        c = self.coefs.get(idx, 0) + coef
        if c:
            self.coefs[idx] = c
            self._vars[idx] = var
        else:
            self.coefs.pop(idx, None)
        return self

    def add_expr(self, other) -> "LinExpr":
        """Accumulate a Variable/LinExpr/Number in place; return ``self``."""
        if isinstance(other, Variable):
            return self.add_term(other)
        if isinstance(other, (int, float, Fraction)):
            self.constant = self.constant + other
            return self
        other = self._coerce(other)
        coefs, vars_ = self.coefs, self._vars
        for idx, c in other.coefs.items():
            coefs[idx] = coefs.get(idx, 0) + c
            vars_[idx] = other._vars[idx]
        self.constant = self.constant + other.constant
        return self

    def __add__(self, other):
        return self.copy().add_expr(other)

    __radd__ = __add__

    def __iadd__(self, other):
        # ``e += x`` mutates in place — only use on expressions you own.
        return self.add_expr(other)

    def __sub__(self, other):
        return self + (self._coerce(other) * -1)

    def __rsub__(self, other):
        return (self * -1) + other

    def __mul__(self, k):
        if isinstance(k, (LinExpr, Variable)):
            raise TypeError("products of variables are not linear")
        out = LinExpr({i: c * k for i, c in self.coefs.items()},
                      self.constant * k, _vars=self._vars)
        return out

    __rmul__ = __mul__

    def __neg__(self):
        return self * -1

    def __le__(self, other):
        return Constraint(self - other, LE)

    def __ge__(self, other):
        return Constraint(self - other, GE)

    def __eq__(self, other):  # type: ignore[override]
        return Constraint(self - other, EQ)

    def __hash__(self):
        return object.__hash__(self)

    def evaluate(self, values: Dict[int, Number]) -> Number:
        """Value of the expression under an assignment ``{var index: value}``."""
        total = self.constant
        for idx, c in self.coefs.items():
            total = total + c * values.get(idx, 0)
        return total

    def variables(self) -> List[Variable]:
        return [self._vars[i] for i in self.coefs]

    def __repr__(self) -> str:
        terms = " + ".join(f"{c}*{self._vars[i].name}" for i, c in self.coefs.items())
        return f"LinExpr({terms} + {self.constant})"


def lin_sum(items: Iterable) -> LinExpr:
    """Sum of variables/expressions (like ``pulp.lpSum``); empty -> 0.

    Accumulates in place into a fresh expression — linear in the total
    number of terms, unlike a ``+`` fold, which copies every partial sum.
    """
    total = LinExpr({}, 0)
    for it in items:
        total.add_expr(it)
    return total


class Constraint:
    """Normalized constraint ``expr (<=|>=|==) 0``."""

    __slots__ = ("expr", "sense", "name")

    def __init__(self, expr: LinExpr, sense: str, name: str = "") -> None:
        if sense not in (LE, GE, EQ):
            raise ValueError(f"bad sense {sense!r}")
        self.expr = expr
        self.sense = sense
        self.name = name

    def violation(self, values: Dict[int, Number]) -> Number:
        """How much the constraint is violated (0 when satisfied exactly).

        Positive return means infeasible by that amount.
        """
        v = self.expr.evaluate(values)
        if self.sense == LE:
            return v if v > 0 else 0
        if self.sense == GE:
            return -v if v < 0 else 0
        return abs(v)

    def __repr__(self) -> str:
        return f"Constraint({self.name or '?'}: {self.expr!r} {self.sense} 0)"


class LinearProgram:
    """A linear program: variables, constraints, and a linear objective.

    The objective direction is set by :meth:`maximize` / :meth:`minimize`.
    """

    def __init__(self, name: str = "lp") -> None:
        self.name = name
        self.variables: List[Variable] = []
        self.constraints: List[Constraint] = []
        self.objective: LinExpr = LinExpr({}, 0)
        self.sense_max: bool = True
        self._names: Dict[str, Variable] = {}

    def var(self, name: str, lb: Number = 0, ub: Optional[Number] = None) -> Variable:
        """Create (or fetch, if the exact name exists) a variable."""
        if name in self._names:
            return self._names[name]
        v = Variable(name, len(self.variables), lb=lb, ub=ub)
        self.variables.append(v)
        self._names[name] = v
        return v

    def get(self, name: str) -> Variable:
        """Fetch an existing variable by name (KeyError if absent)."""
        return self._names[name]

    def add(self, constraint: Constraint, name: str = "") -> Constraint:
        """Add a constraint (built via ``expr <= rhs`` etc.)."""
        if not isinstance(constraint, Constraint):
            raise TypeError(
                "add() expects a Constraint; build one with <=, >= or == "
                f"(got {constraint!r})")
        if name:
            constraint.name = name
        self.constraints.append(constraint)
        return constraint

    def maximize(self, expr) -> None:
        self.objective = LinExpr._coerce(expr)
        self.sense_max = True

    def minimize(self, expr) -> None:
        self.objective = LinExpr._coerce(expr)
        self.sense_max = False

    # ------------------------------------------------------------------
    def num_vars(self) -> int:
        return len(self.variables)

    def num_constraints(self) -> int:
        return len(self.constraints)

    def check_feasible(self, values: Dict[int, Number], tol: Number = 0) -> List[str]:
        """Names of constraints (and variable bounds) violated beyond ``tol``.

        With Fraction values and ``tol=0`` this is an exact feasibility
        certificate; an empty list means the assignment is feasible.
        """
        bad: List[str] = []
        for v in self.variables:
            x = values.get(v.index, 0)
            if x < v.lb - tol:
                bad.append(f"lb:{v.name}")
            if v.ub is not None and x > v.ub + tol:
                bad.append(f"ub:{v.name}")
        for i, c in enumerate(self.constraints):
            if c.violation(values) > tol:
                bad.append(c.name or f"c{i}")
        return bad

    def is_rational(self) -> bool:
        """True when every coefficient/bound is int or Fraction (no floats)."""
        def ok(x) -> bool:
            return x is None or isinstance(x, (int, Fraction))

        for v in self.variables:
            if not (ok(v.lb) and ok(v.ub)):
                return False
        exprs = [self.objective] + [c.expr for c in self.constraints]
        for e in exprs:
            if not ok(e.constant):
                return False
            for c in e.coefs.values():
                if not ok(c):
                    return False
        return True

    def __repr__(self) -> str:
        return (f"LinearProgram({self.name!r}, vars={self.num_vars()}, "
                f"constraints={self.num_constraints()})")
