"""Floating-point LP backend on :func:`scipy.optimize.linprog` (HiGHS).

Used for instances too large for the exact tableau simplex (the Figure 9/10
reduce LP has ~2000 variables).  The float optimum is then either
rationalized-and-verified (:mod:`repro.lp.rationalize`) or fed to the paper's
own Section 4.6 fixed-period rounding, which tolerates float inputs by
construction.
"""

from __future__ import annotations

from typing import Dict

import numpy as np
from scipy.optimize import linprog

from repro.lp.model import GE, LE, LinearProgram
from repro.lp.solution import LPSolution, SolveStatus


class HighsSolver:
    """scipy/HiGHS backend for :class:`LinearProgram`."""

    def __init__(self, method: str = "highs") -> None:
        self.method = method

    def solve(self, lp: LinearProgram) -> LPSolution:
        n = lp.num_vars()
        c = np.zeros(n)
        for j, coef in lp.objective.coefs.items():
            c[j] = float(coef)
        if lp.sense_max:
            c = -c

        a_ub_rows, b_ub = [], []
        a_eq_rows, b_eq = [], []
        for con in lp.constraints:
            row = np.zeros(n)
            for j, coef in con.expr.coefs.items():
                row[j] = float(coef)
            b = -float(con.expr.constant)
            if con.sense == LE:
                a_ub_rows.append(row)
                b_ub.append(b)
            elif con.sense == GE:
                a_ub_rows.append(-row)
                b_ub.append(-b)
            else:
                a_eq_rows.append(row)
                b_eq.append(b)

        bounds = [(float(v.lb), None if v.ub is None else float(v.ub))
                  for v in lp.variables]
        res = linprog(
            c,
            A_ub=np.array(a_ub_rows) if a_ub_rows else None,
            b_ub=np.array(b_ub) if b_ub else None,
            A_eq=np.array(a_eq_rows) if a_eq_rows else None,
            b_eq=np.array(b_eq) if b_eq else None,
            bounds=bounds,
            method=self.method,
        )
        if res.status == 2:
            return LPSolution(SolveStatus.INFEASIBLE, backend="highs", lp=lp)
        if res.status == 3:
            return LPSolution(SolveStatus.UNBOUNDED, backend="highs", lp=lp)
        if not res.success:
            return LPSolution(SolveStatus.ERROR, backend="highs", lp=lp)

        values: Dict[int, float] = {}
        for j, x in enumerate(res.x):
            if x != 0.0:
                values[j] = float(x)
        objective = lp.objective.evaluate(values)
        return LPSolution(SolveStatus.OPTIMAL, objective=objective,
                          values=values, backend="highs", exact=False, lp=lp,
                          iterations=int(getattr(res, "nit", 0) or 0))
