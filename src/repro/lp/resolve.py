"""Warm-started incremental re-solve after a platform perturbation.

A solved collective carries the exact optimal basis of its steady-state
LP (``solution.lp_solution.basis_labels`` — stable variable/constraint
*name* labels).  When the platform changes
(:mod:`repro.platform.perturb`), the perturbed LP keeps almost all of
those names: only the rows and variables named by the perturbation
delta change.  :func:`replan` exploits that — it rebuilds the problem on
the perturbed platform (optionally shrinking it via the graceful
degradation policy), then re-solves *warm* from the previous basis
instead of from scratch.

Warm-vs-cold decision rule (documented next to the chaining contract in
ROADMAP.md):

- **Loosening** deltas (link speed-up, node join) keep the old vertex
  primal feasible — the crash basis passes the feasibility check and the
  solver goes straight to phase-2 re-pricing.
- **Tightening** deltas (link/node loss, slowdown) may leave the crashed
  basis primal-infeasible in exactly the touched rows — but it stays
  *dual* feasible (reduced costs don't depend on the right-hand side),
  so :func:`replan` passes ``dual=True`` and the revised simplex
  (:mod:`repro.lp.revised_simplex`) re-solves with dual pivots from the
  old basis instead of crashing through a phase-1 feasibility repair.
- Either way the optimum is **bit-identical** to a cold solve of the
  perturbed LP — only the returned vertex (and the time to reach it) can
  differ.  An unrepairable crash (many violated rows, e.g. a delta that
  rewrote most of the platform) falls back to a cold start inside the
  solver, so :func:`replan` never returns a worse answer, only a slower
  one.

Every re-solve is tagged with the perturbation-delta fingerprint in the
LP cache key (``cache_tag``), so warm vertices never poison the pristine
platform's cached solutions.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Optional, Tuple

from repro.collectives.degrade import degrade_problem
from repro.lp.model import Constraint, LinearProgram, LinExpr
from repro.platform.perturb import (Event, LinkDegradation, LinkFailure,
                                    PerturbationDelta, perturb)


def apply_delta(lp: LinearProgram,
                delta: PerturbationDelta) -> Optional[LinearProgram]:
    """Edited copy of ``lp`` with the perturbation's row edits applied.

    This is the "apply a capacity delta to a solved LP" half of the
    incremental re-solve: instead of rebuilding the collective's LP from
    the perturbed problem, the previous solve's model is copied and only
    the rows named by the delta change —

    - ``scale`` (link degradation): the degraded edge's terms in its
      ``edge[..]``/``out[..]``/``in[..]`` rows multiply by the factor
      (occupation per unit rate grows with the cost);
    - ``drop`` with an edge (link failure): the edge's capacity row is
      removed, its terms leave the shared port rows, and its variables
      are fixed to zero — exactly equivalent to building the LP without
      the link (the dead variables stay, pinned at 0, so the variable
      indexing and every surviving row are unchanged).

    Returns ``None`` when the delta cannot be expressed as row edits on
    the same variable set (node failures/joins change the commodity
    structure) — callers then rebuild from the perturbed problem.  The
    edge-term membership is read from the ``edge[..]`` row *before* any
    edit touches it, which is why the per-event edit order (edge row
    first, then ports) matters and is guaranteed by the delta builder.
    """
    for ev in delta.events:
        if not isinstance(ev, (LinkFailure, LinkDegradation)):
            return None
    new = LinearProgram(lp.name)
    for v in lp.variables:
        new.var(v.name, lb=v.lb, ub=v.ub)
    rows = {}
    new_cons = []
    for c in lp.constraints:
        e = c.expr
        ce = LinExpr(dict(e.coefs), e.constant,
                     _vars={i: new.variables[i] for i in e.coefs})
        cc = Constraint(ce, c.sense, c.name)
        new_cons.append(cc)
        if c.name:
            rows[c.name] = cc
    new.objective = LinExpr(dict(lp.objective.coefs), lp.objective.constant,
                            _vars={i: new.variables[i]
                                   for i in lp.objective.coefs})
    new.sense_max = lp.sense_max

    edge_vars = {}
    drop = set()
    for ed in delta.row_edits:
        con = rows.get(ed.row)
        if con is None:
            return None  # structure mismatch: fall back to a rebuild
        if ed.edge is not None and ed.edge not in edge_vars:
            edge_row = rows.get(f"edge[{ed.edge[0]}->{ed.edge[1]}]")
            if edge_row is None:
                return None
            edge_vars[ed.edge] = set(edge_row.expr.coefs)
        members = edge_vars.get(ed.edge, set())
        if ed.kind == "scale":
            for i in list(con.expr.coefs):
                if i in members:
                    con.expr.coefs[i] = con.expr.coefs[i] * ed.factor
        elif ed.kind == "drop" and ed.edge is not None:
            if ed.row.startswith("edge["):
                drop.add(ed.row)
                for i in members:
                    new.variables[i].ub = 0
            else:
                for i in members:
                    con.expr.coefs.pop(i, None)
                    con.expr._vars.pop(i, None)
        else:
            return None
    new.constraints = [c for c in new_cons
                       if not (c.name and c.name in drop)]
    return new


#: Crashing a basis of m labels means LU-factorizing it exactly before any
#: dual pivot runs — a small fixed cost in Fraction arithmetic (plus one
#: scipy solve when the crash falls back to the float guess).  Re-measured
#: for the dual re-solve path (revised engine): the crash pays for itself
#: from about a hundred labels up — fig6 pipelined all-reduce (96 labels)
#: re-solves in ~18 ms vs a ~29 ms cold rebuild, fig9 scatter (108) hits
#: ``warm-dual`` with 0 pivots at ~16 ms vs ~20 ms cold, ring24 (577)
#: 166 ms vs 252 ms (2.7x over the old tableau phase-1 repair at 363 ms),
#: x20 scatter ~36x.  Below the floor (fig2: 10 labels, ring8: 65) the
#: exact-LU setup costs more than the couple of milliseconds a cold
#: tableau solve needs, so replan skips the crash and only skips the
#: problem/LP rebuild.
WARM_BASIS_MIN_LABELS = 90


@dataclass
class ReplanReport:
    """Outcome of one incremental re-solve.

    ``replan_s`` is the wall-clock latency of the warm path (problem
    rebuild + warm LP solve); ``cold_s`` is the measured from-scratch
    solve of the *same* perturbed problem when ``compare=True`` was
    requested, so the warm speed-up is an apples-to-apples ratio.
    """

    solution: object                  # CollectiveSolution on the new platform
    problem: object                   # the (possibly shrunk) perturbed problem
    delta: PerturbationDelta
    base_throughput: object           # TP before the perturbation
    warm: bool                        # True when a previous basis was crashed in
    replan_s: float
    sacrificed: Tuple = ()
    cold_s: Optional[float] = None
    cold_solution: object = None

    @property
    def throughput(self):
        return self.solution.throughput

    @property
    def speedup(self) -> Optional[float]:
        """Cold-solve time over warm replan time (None without compare)."""
        if self.cold_s is None or not self.replan_s:
            return None
        return self.cold_s / self.replan_s

    def describe(self) -> str:
        parts = [f"TP {self.base_throughput} -> {self.throughput}",
                 f"{'warm' if self.warm else 'cold'} replan "
                 f"{self.replan_s * 1e3:.1f} ms"]
        if self.cold_s is not None:
            parts.append(f"cold {self.cold_s * 1e3:.1f} ms "
                         f"({self.speedup:.1f}x)")
        if self.sacrificed:
            parts.append(f"sacrificed {list(self.sacrificed)!r}")
        return ", ".join(parts)


def warm_solve_lp(lp, previous, backend: str = "exact",
                  cache_tag: Optional[str] = "warm", **kwargs):
    """Re-solve a row-edited LP warm from ``previous.basis_labels``.

    Thin wrapper over :func:`repro.lp.solve` for callers that hold raw
    LPs rather than collective solutions; falls back to a cold solve
    when the previous solution carries no basis.
    """
    from repro.lp import solve as lp_solve

    basis = getattr(previous, "basis_labels", None)
    if basis is None:
        return lp_solve(lp, backend=backend, **kwargs)
    return lp_solve(lp, backend=backend, warm_basis=basis,
                    cache_tag=cache_tag, **kwargs)


def _extract_from_lp(solution, new_problem, lp2, backend, mode, kwargs):
    """Solve the delta-edited LP warm and run the spec's own extractor.

    This rides the exact seams :meth:`CollectiveSpec.solve` is built
    from (``lp_solve`` then ``extract``), just without ``build_lp`` —
    the edited model *is* the perturbed LP.
    """
    from repro.collectives.base import CompositeCollectiveSpec
    from repro.lp import solve as lp_solve

    spec = solution.spec
    sol2 = lp_solve(lp2, backend=backend, **kwargs)
    if not sol2.optimal:
        raise RuntimeError(f"incremental re-solve failed: {sol2.status}")
    tol = 0 if sol2.exact else 1e-9
    if isinstance(spec, CompositeCollectiveSpec):
        out = spec.extract(new_problem, lp2, sol2, tol, None)
        out.mode = mode or spec.mode
    else:
        out = spec.extract(new_problem, lp2, sol2, tol,
                           spec.default_passes())
    return out


def replan(solution, events: Tuple[Event, ...], backend: str = "exact",
           on_infeasible: str = "degrade", compare: bool = False,
           **solve_kwargs) -> ReplanReport:
    """Re-solve ``solution``'s collective after ``events`` hit its platform.

    Parameters
    ----------
    solution:
        A solved :class:`~repro.collectives.base.CollectiveSolution`
        (its ``problem``, ``collective`` name and LP basis drive the
        re-solve).
    events:
        Perturbation events (:mod:`repro.platform.perturb`).
    on_infeasible:
        ``"degrade"`` (default) — shrink to the surviving set when the
        perturbation removed members of the collective;
        ``"error"`` — raise instead of sacrificing any node.
    compare:
        Also run (and time) a cold solve of the perturbed problem; the
        report then carries ``cold_s``/``cold_solution``/``speedup``.
        The acceptance bar asserts warm < 0.5x cold on the paper tiers.

    Both paths solve with ``cache=False`` (unless overridden): replan
    latency is the quantity being measured, and a memo hit would fake it.
    """
    from repro.collectives import solve_collective

    problem = solution.problem
    new_platform, delta = perturb(problem.platform, events)
    new_problem, sacrificed = degrade_problem(problem, new_platform,
                                              policy=on_infeasible)
    basis = getattr(solution.lp_solution, "basis_labels", None)
    mode = getattr(solution, "mode", None)
    kwargs = dict(solve_kwargs)
    kwargs.setdefault("cache", False)
    warm_kwargs = dict(kwargs)
    crash = basis is not None and len(basis) >= WARM_BASIS_MIN_LABELS
    warm_backend = backend
    if crash:
        warm_kwargs["warm_basis"] = basis
        warm_kwargs["cache_tag"] = f"perturb:{delta.fingerprint}"
        dropped = any(ed.kind == "drop" for ed in delta.row_edits)
        if dropped:
            # a removed link deletes its (usually tight) capacity row,
            # which moves every reduced cost through that row's dual
            # multiplier — the old basis is rarely dual feasible, so the
            # dual entry would pay for a failed crash and fall back.
            # The tableau's feasibility-restoring repair shines here
            # instead: the dead columns pin at 0, presolve shreds them,
            # and the repair re-solves the shrunk LP in a few pivots.
            pass
        else:
            if backend == "exact":
                # scale edits keep the structure: the revised engine
                # owns the fast re-solve routes — the dual entry from
                # the old basis and, when the scaling moved the reduced
                # costs after all, the float-assisted crash fallback,
                # which still beats the tableau's cold pivots on the
                # degenerate composite LPs
                warm_backend = "revised"
            if delta.tightened:
                # the old optimal basis stays dual feasible when the
                # touched terms priced no basic column: enter the dual
                # simplex from it instead of phase-1 feasibility repair
                warm_kwargs["dual"] = True

    # incremental fast path: when the collective survives whole and the
    # delta is pure row edits, skip the problem/LP rebuild entirely —
    # edit the previous solve's model in place and re-solve warm
    lp2 = None
    if not sacrificed:
        old_lp = getattr(solution.lp_solution, "lp", None)
        if old_lp is not None:
            lp2 = apply_delta(old_lp, delta)

    t0 = perf_counter()
    if lp2 is not None:
        new_sol = _extract_from_lp(solution, new_problem, lp2, warm_backend,
                                   mode, warm_kwargs)
    else:
        new_sol = solve_collective(new_problem,
                                   collective=solution.collective,
                                   backend=warm_backend, mode=mode,
                                   **warm_kwargs)
    replan_s = perf_counter() - t0
    if sacrificed and not new_sol.sacrificed:
        new_sol.sacrificed = sacrificed

    cold_s = None
    cold_sol = None
    if compare:
        t0 = perf_counter()
        cold_sol = solve_collective(new_problem,
                                    collective=solution.collective,
                                    backend=backend, mode=mode, **kwargs)
        cold_s = perf_counter() - t0

    return ReplanReport(solution=new_sol, problem=new_problem, delta=delta,
                        base_throughput=solution.throughput,
                        warm=lp2 is not None or crash, replan_s=replan_s,
                        sacrificed=sacrificed, cold_s=cold_s,
                        cold_solution=cold_sol)
