"""Snapping float LP solutions to exact rationals.

The schedule-reconstruction pipeline (lcm period, integer message counts,
matching decomposition) needs exact rational variable values.  When the LP
was solved in floating point (HiGHS), we attempt to recover rationals by
limiting each value's denominator and *verifying feasibility exactly*; a
snapped solution is only returned when it provably satisfies every
constraint and its objective is within ``objective_slack`` of the float one.

This succeeds whenever the true optimum has modest denominators (all the
paper's instances do: 1/2, 2/9, 1/3, ...).  When it fails, callers fall back
to the paper's own Section 4.6 fixed-period approximation, which never needs
exact inputs.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Optional

from repro.lp.model import LinearProgram
from repro.lp.solution import LPSolution, SolveStatus

#: Denominator ladder tried in order.  Small, highly composite denominators
#: first (periods in the paper are lcm's of small numbers), then larger.
DEFAULT_DENOMINATORS = (1, 2, 3, 4, 6, 9, 12, 18, 24, 36, 48, 60, 72, 120,
                        144, 180, 240, 360, 720, 2520, 5040, 27720, 360360)


def snap_to_denominator(x: float, den: int) -> Fraction:
    """Nearest fraction with denominator dividing ``den``."""
    return Fraction(round(x * den), den)


def rationalize_solution(sol: LPSolution,
                         denominators: Iterable[int] = DEFAULT_DENOMINATORS,
                         objective_slack: float = 1e-6,
                         max_limit_denominator: int = 10**6,
                         ) -> Optional[LPSolution]:
    """Try to convert a float solution into an exact rational one.

    Two strategies, in order:

    1. snap *every* variable to a common denominator from ``denominators``,
    2. per-variable :meth:`fractions.Fraction.limit_denominator`.

    Each candidate is verified exactly against all constraints and bounds
    (``tol=0``); the first feasible candidate whose objective is within
    ``objective_slack`` of the float objective (from below is fine — LP float
    objectives can overshoot) is returned.  Returns ``None`` when no
    candidate verifies.
    """
    if sol.lp is None or not sol.optimal:
        return None
    if sol.exact:
        return sol
    lp: LinearProgram = sol.lp
    if not lp.is_rational():
        return None
    float_obj = float(sol.objective)

    candidates = []
    for den in denominators:
        candidates.append({j: snap_to_denominator(x, den)
                           for j, x in sol.values.items()})
    candidates.append({j: Fraction(x).limit_denominator(max_limit_denominator)
                       for j, x in sol.values.items()})

    for values in candidates:
        values = {j: v for j, v in values.items() if v != 0}
        if lp.check_feasible(values, tol=0):
            continue
        obj = lp.objective.evaluate(values)
        gap = float_obj - float(obj) if lp.sense_max else float(obj) - float_obj
        if gap <= objective_slack:
            return LPSolution(SolveStatus.OPTIMAL, objective=obj,
                              values=values, backend=sol.backend + "+rationalized",
                              exact=True, lp=lp, iterations=sol.iterations)
    return None
