"""Fraction-preserving LP presolve / postsolve (run before any backend).

The collective LPs carry a lot of structural slack: every ``edge[i->j]``
one-port row is componentwise dominated by its ``out[i]`` row, chains and
rings make ``out``/``in`` rows literal duplicates of edge rows, and test
or generator LPs are full of fixed variables and singleton rows.  This
module shrinks the model *exactly* — all arithmetic stays in
``int``/``Fraction`` (floats pass through untouched), so the reduced LP
has the same optimal objective and its solution maps back to a feasible,
optimal solution of the original.

Reductions (applied to a fixpoint, each with its postsolve inverse):

``empty_row``
    A constraint with no variables.  Feasibility of ``0 (sense) b`` is
    checked exactly; feasible rows vanish.  *Inverse:* nothing.
``singleton_row``
    ``a*x <= b`` (or ``>=``/``==``) with a single variable turns into a
    bound: inequalities tighten ``lb``/``ub``, equalities fix ``x = b/a``.
    The feasible region is unchanged.  *Inverse:* nothing (the variable
    keeps its value; a bound is not a removed quantity).
``fixed_var``
    ``lb == ub`` substitutes the forced value into every row and the
    objective.  *Inverse:* report the forced value.
``zero_col``
    A variable in no constraint sits at whichever bound the objective
    prefers (at ``lb`` when the objective is indifferent — the lex-least
    choice, so canonical solves are unaffected).  Columns whose improving
    direction is unbounded are *kept* so the simplex can certify
    unboundedness itself.  *Inverse:* report the chosen bound.
``duplicate_row``
    Rows equal up to a positive scale collapse to the tightest of the
    group; equalities swallow consistent inequalities, and contradictory
    pairs prove infeasibility.  *Inverse:* nothing.
``dominated_row``
    ``r: a.x <= b`` is dropped when another row ``r': a'.x <= b'`` with
    ``a' >= a >= 0`` componentwise, ``b' <= b``, and all involved
    variables nonnegative implies it (``a.x <= a'.x <= b' <= b``).  This
    is what removes every ``edge`` row under its ``out`` row.
    *Inverse:* nothing.
``free_singleton``
    A zero-cost variable appearing in exactly one row is eliminated:

    - in an equality ``a*x + rest == b`` with ``ub = None``, the row
      relaxes to ``rest <= b - a*lb`` for ``a > 0`` (``>=`` for
      ``a < 0``) — one artificial fewer for phase 1 — and *inverse*
      recomputes ``x = (b - rest)/a``;
    - in a ``<=`` row with ``a > 0``, ``x`` sits at ``lb`` and the row
      tightens to ``rest <= b - a*lb``; *inverse* reports ``lb``;
    - in a ``<=`` row with ``a < 0``, ``ub = None``, the variable can
      absorb any violation, so the *row* is dropped and *inverse* sets
      ``x = max(lb, (rest - b)/(-a))``.

    Skipped under ``for_canonical=True``: eliminating a variable changes
    the lexicographic minimization order, and the canonical-vertex
    guarantee (`solve(lp, canonical=True)`) promises the lex-smallest
    optimal vertex of the *original* variable sequence.  Every other
    reduction either leaves the feasible region intact or removes
    variables whose value is identical in all feasible/optimal points,
    so canonical solves of the reduced model postsolve to exactly the
    canonical vertex of the original.

**Protected rows.**  Rows whose name starts with a prefix in
:data:`PROTECTED_ROW_PREFIXES` (the ``chain[..]`` cross-stage coupling
rows of pipelined composite LPs, see
:data:`repro.collectives.base.CHAIN_PREFIX`) are never converted to
bounds, collapsed into duplicates, dropped as dominated, or relaxed by a
free-singleton elimination — they survive into the reduced model as
explicit rows.  This extends the canonical-safe idea: the reductions
above are individually exact, but coupling rows carry mixed-sign
coefficients across stages and downstream consumers (composite
``verify``, the conformance fuzz suite) re-check the postsolved solution
against them *as rows*, so they must still exist after presolve.  Fixed
variables are still substituted into protected rows (value-exact), and a
protected row whose variables have all been fixed is checked for
feasibility and then removed like any other empty row — an empty row is
nothing but a feasibility fact.

:func:`presolve` returns a :class:`PresolveResult` whose ``lp`` is a
fresh, compact :class:`~repro.lp.model.LinearProgram` (original variable
names and constraint names are preserved) and whose ``postsolve`` maps a
reduced solution's values back to original-variable values by unwinding
the elimination stack in reverse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.lp.model import EQ, GE, LE, Constraint, LinearProgram, LinExpr
from repro.lp.solution import SolveStatus

Number = object  # int | Fraction (floats are never produced by presolve)

#: Constraint-name prefixes presolve must keep as explicit rows (see the
#: module docstring).  ``chain[`` is the cross-stage coupling contract of
#: :func:`repro.collectives.base.compose_joint_lp` — kept as a literal
#: here so the LP layer stays import-free of the collectives layer.
PROTECTED_ROW_PREFIXES = ("chain[",)


@dataclass
class _Record:
    """One postsolve step (unwound in reverse elimination order).

    ``kind`` is ``"value"`` (variable ``var`` takes ``value``),
    ``"eq_sub"`` (``var = (rhs - sum coefs.x)/a``) or ``"ge_clip"``
    (``var = max(value, (sum coefs.x - rhs)/(-a))``).  ``coefs`` is in
    *original* variable indices, captured at elimination time, so every
    referenced variable is resolved by the time the record unwinds.
    """

    kind: str
    var: int
    value: Number = 0
    a: Number = 1
    rhs: Number = 0
    coefs: Dict[int, Number] = field(default_factory=dict)


class Postsolve:
    """Maps a reduced-model solution back onto the original variables."""

    def __init__(self, n_orig: int, kept: List[int],
                 records: List[_Record], lbs: List[Number]) -> None:
        self.n_orig = n_orig
        #: reduced index -> original index
        self.kept = kept
        self.records = records
        self._lbs = lbs

    def values(self, reduced_values: Dict[int, Number]) -> Dict[int, Number]:
        """Original-variable values from reduced-model ``values``.

        Follows the solver convention: variables absent from ``values``
        are 0, and zeros are omitted from the returned dict.
        """
        full: Dict[int, Number] = {}
        for r_idx, o_idx in enumerate(self.kept):
            full[o_idx] = reduced_values.get(r_idx, 0)
        for rec in reversed(self.records):
            if rec.kind == "value":
                full[rec.var] = rec.value
            else:
                rest = rec.rhs
                for j, c in rec.coefs.items():
                    rest -= c * full.get(j, 0)
                if rec.kind == "eq_sub":
                    full[rec.var] = rest / rec.a
                else:  # ge_clip: a < 0, x >= (rest' - b)/(-a) with rest' = b - rest
                    need = rest / rec.a  # == (sum coefs.x - rhs)/(-a)
                    full[rec.var] = need if need > rec.value else rec.value
        return {j: v for j, v in full.items() if v != 0}


@dataclass
class PresolveResult:
    lp: LinearProgram
    postsolve: Postsolve
    #: rule name -> number of times it fired
    stats: Dict[str, int]
    #: INFEASIBLE when presolve proved it; None otherwise
    status: Optional[SolveStatus] = None

    @property
    def infeasible(self) -> bool:
        return self.status is SolveStatus.INFEASIBLE

    def summary(self) -> str:
        if self.infeasible:
            return "infeasible (proved during presolve)"
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.stats.items())
                          if v and not k.endswith(("_before", "_after")))
        return (f"{self.stats['vars_before']}->{self.stats['vars_after']} vars, "
                f"{self.stats['rows_before']}->{self.stats['rows_after']} rows"
                + (f" ({inner})" if inner else ""))


def _frac(x) -> Number:
    return x if isinstance(x, int) else Fraction(x)


def _div(b, a) -> Number:
    """Exact rational division (never a float for int/Fraction inputs)."""
    if isinstance(b, int) and isinstance(a, int):
        return b // a if b % a == 0 else Fraction(b, a)
    return b / a


class _Work:
    """Mutable row/column workspace the reductions operate on."""

    def __init__(self, lp: LinearProgram) -> None:
        n = lp.num_vars()
        self.lp = lp
        self.lb: List[Number] = [_frac(v.lb) for v in lp.variables]
        self.ub: List[Optional[Number]] = [
            None if v.ub is None else _frac(v.ub) for v in lp.variables]
        self.obj: Dict[int, Number] = {
            j: _frac(c) for j, c in lp.objective.coefs.items() if c}
        self.rows: List[Optional[Dict[int, Number]]] = []
        self.sense: List[str] = []
        self.rhs: List[Number] = []
        self.rname: List[str] = []
        self.var_alive = [True] * n
        #: var -> set of alive row ids that reference it (kept exact)
        self.cols: List[set] = [set() for _ in range(n)]
        #: rows that must survive as rows (cross-stage coupling contract)
        self.protected: List[bool] = []
        for i, con in enumerate(lp.constraints):
            coefs = {j: _frac(c) for j, c in con.expr.coefs.items() if c}
            self.rows.append(coefs)
            self.sense.append(con.sense)
            self.rhs.append(-_frac(con.expr.constant))
            name = con.name or f"#c{i}"
            self.rname.append(name)
            self.protected.append(name.startswith(PROTECTED_ROW_PREFIXES))
            for j in coefs:
                self.cols[j].add(i)
        self.records: List[_Record] = []
        self.stats: Dict[str, int] = {}
        self.infeasible = False
        #: objective contribution of eliminated variables, folded into the
        #: reduced objective's constant so the reduced optimum equals the
        #: original optimum (not just maps back to it)
        self.obj_offset: Number = 0

    # -- primitives ----------------------------------------------------
    def hit(self, rule: str) -> None:
        self.stats[rule] = self.stats.get(rule, 0) + 1

    def drop_row(self, i: int) -> None:
        for j in self.rows[i]:
            self.cols[j].discard(i)
        self.rows[i] = None

    def drop_var(self, j: int, record: _Record) -> None:
        self.var_alive[j] = False
        self.obj.pop(j, None)
        self.records.append(record)

    def substitute_value(self, j: int, val: Number) -> None:
        """Replace ``x_j`` by the constant ``val`` in every row."""
        for i in list(self.cols[j]):
            row = self.rows[i]
            self.rhs[i] -= row.pop(j) * val
        self.cols[j].clear()


def _tighten(w: _Work, j: int, lb: Optional[Number],
             ub: Optional[Number]) -> None:
    if lb is not None and lb > w.lb[j]:
        w.lb[j] = lb
    if ub is not None and (w.ub[j] is None or ub < w.ub[j]):
        w.ub[j] = ub
    if w.ub[j] is not None and w.lb[j] > w.ub[j]:
        w.infeasible = True


def _pass_rows(w: _Work) -> bool:
    """Empty rows + singleton rows.  Returns True when anything fired."""
    changed = False
    for i, row in enumerate(w.rows):
        if row is None or w.infeasible:
            continue
        if not row:
            b, s = w.rhs[i], w.sense[i]
            if (s == LE and b < 0) or (s == GE and b > 0) or (s == EQ and b):
                w.infeasible = True
                return True
            w.drop_row(i)
            w.hit("empty_row")
            changed = True
            continue
        if len(row) == 1:
            if w.protected[i]:
                continue  # coupling rows stay rows, never become bounds
            (j, a), = row.items()
            b, s = w.rhs[i], w.sense[i]
            if s == EQ:
                val = _div(b, a)
                if val < w.lb[j] or (w.ub[j] is not None and val > w.ub[j]):
                    w.infeasible = True
                    return True
                _tighten(w, j, val, val)
            elif (s == LE) == (a > 0):  # a*x <= b, a>0  or  a*x >= b, a<0
                _tighten(w, j, None, _div(b, a))
            else:
                _tighten(w, j, _div(b, a), None)
            w.drop_row(i)
            w.hit("singleton_row")
            changed = True
    return changed


def _pass_cols(w: _Work, sense_max: bool, for_canonical: bool) -> bool:
    changed = False
    for j in range(len(w.var_alive)):
        if not w.var_alive[j] or w.infeasible:
            continue
        lb, ub = w.lb[j], w.ub[j]
        if ub is not None and lb == ub:
            w.substitute_value(j, lb)
            w.obj_offset += w.obj.get(j, 0) * lb
            w.drop_var(j, _Record("value", j, value=lb))
            w.hit("fixed_var")
            changed = True
            continue
        live = w.cols[j]
        if not live:
            c = w.obj.get(j, 0)
            up = (c > 0) == sense_max and c != 0
            if c == 0 or not up:
                w.obj_offset += c * lb
                w.drop_var(j, _Record("value", j, value=lb))
            elif ub is not None:
                w.obj_offset += c * ub
                w.drop_var(j, _Record("value", j, value=ub))
            else:
                continue  # unbounded improving direction: leave for simplex
            w.hit("zero_col")
            changed = True
            continue
        if len(live) == 1 and not for_canonical and w.obj.get(j, 0) == 0:
            i = next(iter(live))
            if w.protected[i]:
                continue  # never relax/drop a coupling row
            row, a, b, s = w.rows[i], w.rows[i][j], w.rhs[i], w.sense[i]
            if s == EQ and ub is None:
                del row[j]
                live.clear()
                w.sense[i] = LE if a > 0 else GE
                w.rhs[i] = b - a * lb
                w.drop_var(j, _Record("eq_sub", j, a=a, rhs=b,
                                      coefs=dict(row)))
                w.hit("free_singleton")
                changed = True
            elif s == LE and a > 0:
                del row[j]
                live.clear()
                w.rhs[i] = b - a * lb
                w.drop_var(j, _Record("value", j, value=lb))
                w.hit("free_singleton")
                changed = True
            elif s == LE and a < 0 and ub is None:
                del row[j]
                live.clear()
                w.drop_var(j, _Record("ge_clip", j, value=lb, a=a, rhs=b,
                                      coefs=dict(row)))
                w.drop_row(i)
                w.hit("free_singleton")
                changed = True
    return changed


def _pass_duplicates(w: _Work) -> bool:
    """Collapse rows that are equal up to a positive scale."""
    changed = False
    groups: Dict[Tuple, List[int]] = {}
    for i, row in enumerate(w.rows):
        if row is None or not row or w.protected[i]:
            continue
        scale = row[min(row)]
        sig = tuple(sorted((j, _div(c, scale)) for j, c in row.items()))
        groups.setdefault(sig, []).append(i)
    for sig, idxs in groups.items():
        if len(idxs) < 2:
            continue
        # normalized form: sig . x (sense') rhs/scale, sense flipped if scale<0
        lo: Optional[Number] = None   # strongest >= bound
        hi: Optional[Number] = None   # strongest <= bound
        eq: Optional[Number] = None
        for i in idxs:
            scale = w.rows[i][min(w.rows[i])]
            b = _div(w.rhs[i], scale)
            s = w.sense[i]
            if scale < 0:
                s = {LE: GE, GE: LE, EQ: EQ}[s]
            if s == EQ:
                if eq is not None and eq != b:
                    w.infeasible = True
                    return True
                eq = b
            elif s == LE:
                hi = b if hi is None or b < hi else hi
            else:
                lo = b if lo is None or b > lo else lo
        if eq is not None:
            if (hi is not None and eq > hi) or (lo is not None and eq < lo):
                w.infeasible = True
                return True
        elif lo is not None and hi is not None and lo > hi:
            w.infeasible = True
            return True
        # keep at most one row per surviving sense
        keep_eq = keep_le = keep_ge = None
        for i in idxs:
            scale = w.rows[i][min(w.rows[i])]
            s = w.sense[i]
            if scale < 0:
                s = {LE: GE, GE: LE, EQ: EQ}[s]
            b = _div(w.rhs[i], scale)
            if eq is not None:
                if s == EQ and keep_eq is None:
                    keep_eq = i
                else:
                    w.drop_row(i)
                    w.hit("duplicate_row")
                    changed = True
            elif s == LE:
                if b == hi and keep_le is None:
                    keep_le = i
                else:
                    w.drop_row(i)
                    w.hit("duplicate_row")
                    changed = True
            else:
                if b == lo and keep_ge is None:
                    keep_ge = i
                else:
                    w.drop_row(i)
                    w.hit("duplicate_row")
                    changed = True
    return changed


def _pass_dominated(w: _Work) -> bool:
    """Drop ``<=`` rows implied by a componentwise-larger ``<=`` row.

    Sound only over nonnegative variables:  ``a' >= a >= 0`` and
    ``b' <= b`` give ``a.x <= a'.x <= b' <= b`` for every ``x >= 0``.
    """
    changed = False
    for i, row in enumerate(w.rows):
        if row is None or not row or w.sense[i] != LE or w.protected[i]:
            continue
        if any(c < 0 for c in row.values()) or any(w.lb[j] < 0 for j in row):
            continue
        # probe via the sparsest column of the row
        j0 = min(row, key=lambda j: len(w.cols[j]))
        for k in w.cols[j0]:
            if k == i or w.rows[k] is None or w.sense[k] != LE:
                continue
            big = w.rows[k]
            if len(big) < len(row) or w.rhs[k] > w.rhs[i]:
                continue
            if any(w.lb[j] < 0 or big[j] < 0
                   for j in big if j not in row):
                continue
            if all(big.get(j, 0) >= c for j, c in row.items()):
                w.drop_row(i)
                w.hit("dominated_row")
                changed = True
                break
    return changed


def presolve(lp: LinearProgram, for_canonical: bool = False,
             max_rounds: int = 20) -> PresolveResult:
    """Reduce ``lp`` exactly; see the module docstring for the rule set.

    ``for_canonical=True`` restricts the rule set to reductions that
    provably preserve the lex-smallest optimal vertex, so
    ``solve(reduced, canonical=True)`` postsolves to the same vertex as
    ``solve(lp, canonical=True)``.
    """
    w = _Work(lp)
    w.stats["vars_before"] = lp.num_vars()
    w.stats["rows_before"] = lp.num_constraints()
    for round_no in range(max_rounds):
        changed = _pass_rows(w)
        if not w.infeasible:
            changed |= _pass_cols(w, lp.sense_max, for_canonical)
        # the duplicate/dominated scans are the expensive passes; they
        # only see new opportunities when the cheap passes changed a row,
        # so after the first round they run only on actual change
        if not w.infeasible and (changed or round_no == 0):
            changed |= _pass_duplicates(w)
            if not w.infeasible:
                changed |= _pass_dominated(w)
        if w.infeasible or not changed:
            break

    if w.infeasible:
        return PresolveResult(lp, Postsolve(lp.num_vars(), [], [], w.lb),
                              dict(w.stats), status=SolveStatus.INFEASIBLE)

    reduced = LinearProgram(lp.name)
    kept: List[int] = []
    new_index: Dict[int, object] = {}
    for j, v in enumerate(lp.variables):
        if w.var_alive[j]:
            kept.append(j)
            new_index[j] = reduced.var(v.name, lb=w.lb[j], ub=w.ub[j])
    oexpr = LinExpr({}, _frac(lp.objective.constant) + w.obj_offset)
    for j in kept:
        c = w.obj.get(j, 0)
        if c:
            oexpr.add_term(new_index[j], c)
    if lp.sense_max:
        reduced.maximize(oexpr)
    else:
        reduced.minimize(oexpr)
    for i, row in enumerate(w.rows):
        if row is None:
            continue
        e = LinExpr({}, -w.rhs[i])
        for j, c in row.items():
            e.add_term(new_index[j], c)
        reduced.add(Constraint(e, w.sense[i]), name=w.rname[i])
    w.stats["vars_after"] = reduced.num_vars()
    w.stats["rows_after"] = reduced.num_constraints()
    return PresolveResult(
        reduced, Postsolve(lp.num_vars(), kept, w.records, w.lb),
        dict(w.stats))
