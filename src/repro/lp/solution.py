"""LP solution objects shared by all backends."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Optional, Union

from repro.lp.model import LinearProgram, Variable

Number = Union[int, float, Fraction]


class SolveStatus(enum.Enum):
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"


@dataclass
class LPSolution:
    """Result of solving a :class:`~repro.lp.model.LinearProgram`.

    ``values`` maps variable *index* to value; use :meth:`value` /
    :meth:`by_name` for convenient access.  ``exact`` is True when values are
    int/Fraction (from the exact simplex or successful rationalization).

    ``basis_labels`` (exact backend only) names the optimal basis by stable
    labels — ``("v", variable name)`` for structural columns and
    ``("s", constraint name)`` for slacks — so a later solve of a
    structurally similar LP can warm-start from it (see
    :func:`repro.lp.dispatch.solve`).  ``message`` carries diagnostics for
    ``ERROR`` statuses (e.g. iteration-limit overruns).

    ``stats`` (when the backend provides it — the revised simplex does)
    is a flat dict of solver counters and timings: pivot counts per
    phase, refactorizations, FTRAN/BTRAN solves, per-phase seconds and
    the solve path taken (``cold``, ``float-primal`` / ``float-dual``
    for the perturbed-float basis crash, ``warm-primal`` /
    ``warm-dual`` from a recorded basis).  Solutions returned by
    :func:`repro.lp.dispatch.solve` always carry ``vars_raw`` /
    ``vars_presolved`` (the raw model size vs the presolved model the
    routing decision saw — equal when presolve was skipped).  The
    ``--lp-stats`` CLI flag prints it.

    ``duals`` (revised engine, opt-in via ``want_duals=True``) maps the
    *position* of each constraint in ``lp.constraints`` to its exact
    rational row multiplier ``y_i`` at the optimum (zeros omitted).
    Sign convention: for a maximization LP every variable satisfies
    ``sum_i y_i a_ij >= c_j`` (its *reduced cost* ``sum_i y_i a_ij -
    c_j`` is nonnegative, zero on basic columns); ``<=`` rows have
    ``y_i >= 0``, ``>=`` rows ``y_i <= 0``, equalities are free.  For a
    minimization LP the inequalities mirror (``sum_i y_i a_ij <= c_j``).
    Multipliers of variable *bound* rows are not reported — the column
    generation in :mod:`repro.lp.colgen` prices only bound-free
    candidate columns, which need the constraint-row duals alone.
    """

    status: SolveStatus
    objective: Optional[Number] = None
    values: Dict[int, Number] = field(default_factory=dict)
    backend: str = ""
    exact: bool = False
    lp: Optional[LinearProgram] = None
    iterations: int = 0
    message: str = ""
    basis_labels: Optional[tuple] = None
    stats: Optional[dict] = None
    duals: Optional[Dict[int, Number]] = None

    @property
    def optimal(self) -> bool:
        return self.status is SolveStatus.OPTIMAL

    def value(self, var: Variable) -> Number:
        """Value of ``var`` (0 for variables absent from the basis)."""
        return self.values.get(var.index, 0)

    def by_name(self, name: str) -> Number:
        if self.lp is None:
            raise ValueError("solution has no attached LP")
        return self.value(self.lp.get(name))

    def named_values(self, nonzero_only: bool = True) -> Dict[str, Number]:
        """Human-readable ``{variable name: value}`` map."""
        if self.lp is None:
            raise ValueError("solution has no attached LP")
        out: Dict[str, Number] = {}
        for v in self.lp.variables:
            x = self.values.get(v.index, 0)
            if x != 0 or not nonzero_only:
                out[v.name] = x
        return out

    def __repr__(self) -> str:
        return (f"LPSolution({self.status.value}, objective={self.objective}, "
                f"backend={self.backend!r}, exact={self.exact})")
