"""Dense reference simplex over exact rationals (differential-test oracle).

This is the original stand-in for the paper's use of ``lpsolve``/Maple: a
dense tableau of :class:`fractions.Fraction` with Bland's smallest-index
pivoting rule in both phases.  It is *slow* — every pivot touches all
columns and every ``Fraction`` op pays a gcd — which is why production
solves go through the sparse fraction-free rewrite in
:mod:`repro.lp.exact_simplex`.

It is kept verbatim as a known-good oracle: the property tests in
``tests/lp`` assert that the fast solver reaches the same optimum on
randomized rational LPs.  Do not optimise this module; its value is that
it stays simple enough to be obviously correct.

Implementation notes
--------------------
- Dense tableau of :class:`fractions.Fraction`.
- Bland's smallest-index pivoting rule in both phases (terminates, slowly).
- Lower bounds are shifted out (``y = x - lb``), upper bounds become rows.
- Phase 1 minimizes the sum of artificial variables; any artificial left in
  the basis at level 0 is pivoted out (or its redundant row dropped).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.lp.model import EQ, GE, LE, LinearProgram
from repro.lp.solution import LPSolution, SolveStatus


class DenseSimplexSolver:
    """Dense exact rational simplex (reference oracle, not a hot path)."""

    def __init__(self, max_iterations: int = 200_000) -> None:
        self.max_iterations = max_iterations

    # ------------------------------------------------------------------
    def solve(self, lp: LinearProgram) -> LPSolution:
        if not lp.is_rational():
            raise ValueError(
                "exact simplex requires int/Fraction data; convert the LP or "
                "use the HiGHS backend")
        n = lp.num_vars()
        lbs = [Fraction(v.lb) for v in lp.variables]

        # Build rows  sum_j a_ij * y_j  (sense)  b_i   with y = x - lb >= 0.
        rows: List[List[Fraction]] = []
        senses: List[str] = []
        rhs: List[Fraction] = []

        def add_row(coefs: Dict[int, Fraction], sense: str, b: Fraction) -> None:
            row = [Fraction(0)] * n
            for j, c in coefs.items():
                row[j] = row[j] + Fraction(c)
            rows.append(row)
            senses.append(sense)
            rhs.append(Fraction(b))

        for con in lp.constraints:
            # expr sense 0  ->  sum c_j x_j sense -const
            b = -Fraction(con.expr.constant)
            for j, c in con.expr.coefs.items():
                b -= Fraction(c) * lbs[j]
            add_row(con.expr.coefs, con.sense, b)
        for v in lp.variables:
            if v.ub is not None:
                add_row({v.index: Fraction(1)}, LE, Fraction(v.ub) - lbs[v.index])

        # Normalize to b >= 0.
        for i in range(len(rows)):
            if rhs[i] < 0:
                rows[i] = [-a for a in rows[i]]
                rhs[i] = -rhs[i]
                if senses[i] == LE:
                    senses[i] = GE
                elif senses[i] == GE:
                    senses[i] = LE

        m = len(rows)
        # Column layout: [structural 0..n) | slacks/surplus | artificials]
        n_slack = sum(1 for s in senses if s in (LE, GE))
        slack_col: Dict[int, int] = {}
        art_col: Dict[int, int] = {}
        col = n
        for i, s in enumerate(senses):
            if s in (LE, GE):
                slack_col[i] = col
                col += 1
        n_struct_slack = col
        for i, s in enumerate(senses):
            if s in (GE, EQ):
                art_col[i] = col
                col += 1
        total_cols = col

        # Tableau: m rows x (total_cols + 1); last column is b.
        T: List[List[Fraction]] = []
        basis: List[int] = []
        for i in range(m):
            row = rows[i] + [Fraction(0)] * (total_cols - n) + [rhs[i]]
            if senses[i] == LE:
                row[slack_col[i]] = Fraction(1)
                basis.append(slack_col[i])
            elif senses[i] == GE:
                row[slack_col[i]] = Fraction(-1)
                row[art_col[i]] = Fraction(1)
                basis.append(art_col[i])
            else:
                row[art_col[i]] = Fraction(1)
                basis.append(art_col[i])
            T.append(row)

        iterations = 0

        # ---------------- Phase 1 ----------------
        if art_col:
            art_set = set(art_col.values())
            obj = [Fraction(0)] * (total_cols + 1)
            for c in art_set:
                obj[c] = Fraction(1)
            # canonicalize: basic artificials must have 0 reduced cost
            for i, bvar in enumerate(basis):
                if bvar in art_set:
                    obj = [o - t for o, t in zip(obj, T[i])]
            status, iters = self._iterate(T, basis, obj, total_cols,
                                          allowed=range(total_cols))
            iterations += iters
            if status != "optimal":  # unbounded/iterlimit: defensive
                return LPSolution(
                    SolveStatus.ERROR, backend="dense-simplex", lp=lp,
                    iterations=iterations,
                    message=f"phase 1 stopped with {status!r} after "
                            f"{iterations} pivots")
            if -obj[total_cols] > 0:  # min sum of artificials > 0
                return LPSolution(SolveStatus.INFEASIBLE, backend="dense-simplex",
                                  lp=lp, iterations=iterations)
            # Pivot artificials out of the basis (degenerate at 0).
            drop_rows: List[int] = []
            for i in range(m):
                if basis[i] in art_set:
                    pivot_j = None
                    for j in range(n_struct_slack):
                        if T[i][j] != 0:
                            pivot_j = j
                            break
                    if pivot_j is None:
                        drop_rows.append(i)  # redundant row
                    else:
                        self._pivot(T, basis, i, pivot_j)
                        iterations += 1
            for i in sorted(drop_rows, reverse=True):
                del T[i]
                del basis[i]
            m = len(T)
            # Erase artificial columns so phase 2 cannot re-enter them.
            for row in T:
                for c in art_set:
                    row[c] = Fraction(0)

        # ---------------- Phase 2 ----------------
        # minimize f = -objective (if maximizing) over y; constants handled
        # at extraction time by re-evaluating the original objective.
        sign = -1 if lp.sense_max else 1
        obj = [Fraction(0)] * (total_cols + 1)
        for j, c in lp.objective.coefs.items():
            obj[j] = sign * Fraction(c)
        for i, bvar in enumerate(basis):
            if obj[bvar] != 0:
                coef = obj[bvar]
                obj = [o - coef * t for o, t in zip(obj, T[i])]
        status, iters = self._iterate(T, basis, obj, total_cols,
                                      allowed=range(n_struct_slack))
        iterations += iters
        if status == "unbounded":
            return LPSolution(SolveStatus.UNBOUNDED, backend="dense-simplex",
                              lp=lp, iterations=iterations)
        if status == "iterlimit":
            return LPSolution(
                SolveStatus.ERROR, backend="dense-simplex", lp=lp,
                iterations=iterations,
                message=f"phase 2 hit the {self.max_iterations}-iteration "
                        f"limit")

        values: Dict[int, Fraction] = {}
        y = [Fraction(0)] * total_cols
        for i, bvar in enumerate(basis):
            y[bvar] = T[i][total_cols]
        for j in range(n):
            x = y[j] + lbs[j]
            if x != 0:
                values[j] = x
        objective = lp.objective.evaluate(values)
        return LPSolution(SolveStatus.OPTIMAL, objective=objective,
                          values=values, backend="dense-simplex", exact=True,
                          lp=lp, iterations=iterations)

    # ------------------------------------------------------------------
    def _iterate(self, T: List[List[Fraction]], basis: List[int],
                 obj: List[Fraction], bcol: int, allowed) -> Tuple[str, int]:
        """Run simplex iterations (min form) with Bland's rule.

        ``obj`` is the reduced-cost row (mutated in place); ``allowed`` is the
        range of columns eligible to enter.  Returns (status, iterations).
        """
        it = 0
        allowed = list(allowed)
        while True:
            if it >= self.max_iterations:
                return "iterlimit", it
            enter = -1
            for j in allowed:
                if obj[j] < 0:
                    enter = j
                    break
            if enter < 0:
                return "optimal", it
            # Bland ratio test: min b_i / T[i][enter] over positive entries,
            # ties broken by smallest basis variable index.
            best_ratio: Optional[Fraction] = None
            leave = -1
            for i in range(len(T)):
                a = T[i][enter]
                if a > 0:
                    ratio = T[i][bcol] / a
                    if (best_ratio is None or ratio < best_ratio or
                            (ratio == best_ratio and basis[i] < basis[leave])):
                        best_ratio = ratio
                        leave = i
            if leave < 0:
                return "unbounded", it
            self._pivot(T, basis, leave, enter)
            coef = obj[enter]
            if coef != 0:
                prow = T[leave]
                for j in range(len(obj)):
                    if prow[j] != 0:
                        obj[j] -= coef * prow[j]
            it += 1

    @staticmethod
    def _pivot(T: List[List[Fraction]], basis: List[int], i: int, j: int) -> None:
        """Pivot the tableau on entry (i, j)."""
        prow = T[i]
        p = prow[j]
        if p == 0:
            raise ZeroDivisionError("pivot on zero entry")
        inv = 1 / p
        T[i] = [a * inv for a in prow]
        prow = T[i]
        for r in range(len(T)):
            if r != i:
                f = T[r][j]
                if f != 0:
                    row = T[r]
                    T[r] = [a - f * b for a, b in zip(row, prow)]
        basis[i] = j
