"""Rational revised simplex: LU-factorized basis, never a full tableau.

The tableau solver (:mod:`repro.lp.exact_simplex`) carries the *entire*
``B^{-1}N`` image through every pivot — fill-in grows with the iteration
count, which is what caps it at ~5k variables.  This module keeps only

- a sparse **LU factorization of the basis** over exact
  :class:`~fractions.Fraction`, built with Markowitz-style pivot
  selection (min active-column count, min row count tie-break) so the
  near-triangular crash bases of the collective LPs factor with almost
  no fill;
- **product-form eta updates** between refactorizations (refactor on an
  update-count or fill threshold), so a pivot costs one FTRAN + one
  BTRAN instead of a tableau sweep;
- heap-driven **sparse triangular solves** (FTRAN ``Bx = a``, BTRAN
  ``yB = c``) that touch only the reachable nonzeros, not all ``m``
  rows;
- a maintained exact **reduced-cost vector** plus float Devex reference
  weights, priced block-by-block: collective LPs decompose into
  per-commodity blocks joined only by the shared capacity rows, so
  partial pricing sweeps one commodity block at a time
  (**commodity-block pricing**) and a column-singleton triangular crash
  covers the conservation rows per block before any simplex pivot.

A **dual simplex** entry point re-solves from a recorded basis after a
capacity-tightening perturbation: the old vertex stays *dual* feasible
(reduced costs unchanged sign) while a handful of ``x_B`` entries go
negative, exactly the shape :func:`repro.lp.resolve.replan` produces.

The returned optimum is bit-identical to the tableau solver's (both are
exact); only the vertex reached and the pivot path may differ.  The
tableau backend stays the differential oracle below its size cap.
"""

from __future__ import annotations

import heapq
from fractions import Fraction
from math import gcd
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lp.exact_simplex import _fdiv, _row_sub
from repro.lp.model import EQ, GE, LE, LinearProgram
from repro.lp.solution import LPSolution, SolveStatus

Label = Tuple[str, object]
SpVec = Dict[int, Fraction]

#: Consecutive degenerate pivots tolerated before Bland's rule kicks in
#: (reset on the next nondegenerate pivot) — same policy as the tableau.
DEGENERACY_LIMIT = 40

#: Partial-pricing shortlist size per refresh (see exact_simplex).
CANDIDATE_LIST_SIZE = 8

#: Devex weights above this trigger a reference-framework reset.
DEVEX_RESET = 1e10

#: Slack/surplus columns have no commodity; they are priced in pseudo
#: blocks of this many columns, in row order.
SLACK_BLOCK = 512

#: A candidate refresh sweeps commodity blocks until it has seen this
#: many improving columns (or a full cycle).  Swept on the complete8
#: reduce tier: 8 (one block) triples the pivot count versus a full
#: Devex scan, 128 is within ~7% of it while still touching only a few
#: blocks per refresh early in the solve.
PRICE_SWEEP_MIN = 128

ZERO = Fraction(0)
ONE = Fraction(1)


def _f(x: Fraction) -> float:
    """``float(x)`` collapsing overflow to signed infinity (pricing only)."""
    try:
        return x.numerator / x.denominator
    except OverflowError:
        return float("inf") if x > 0 else float("-inf")


def _to_int_vec(fracs: Dict[int, Fraction]) -> Tuple[Dict[int, int], int]:
    """``{k: Fraction}`` as integer numerators over one lcm denominator."""
    den = 1
    for v in fracs.values():
        dv = v.denominator
        den = den // gcd(den, dv) * dv
    return {k: int(v * den) for k, v in fracs.items()}, den


#: Relative scale of the anti-degeneracy perturbation in the float
#: crash.  Small enough that the perturbed optimal basis is (almost
#: always) an optimal basis of the unperturbed LP, large enough that
#: basic/nonbasic classification of the float vertex is unambiguous.
FLOAT_CRASH_EPS = 1e-6


def _crash_eps(i: int) -> float:
    """Deterministic pseudo-random perturbation in ``[0.5, 1.5) * EPS``."""
    return FLOAT_CRASH_EPS * (0.5 + ((i * 2654435761) & 0xFFFF) / 65536.0)


def _float_crash_labels(
        lp: LinearProgram,
) -> Optional[Tuple[Tuple[Label, ...], Tuple[Label, ...]]]:
    """Guess an optimal basis from a *perturbed* floating-point solve.

    The collective LPs are massively primal-degenerate (the steady-state
    conservation rows all have ``b = 0``), so a cold exact simplex
    wanders the optimal vertex for thousands of zero-step pivots.  The
    textbook cure, done on the float side where it costs nothing:
    shift every variable lower bound down and every inequality out by a
    distinct tiny epsilon.  The perturbed LP has the same reduced costs
    (they never depend on ``b`` or bounds), its feasible region contains
    the original's, and its optimal vertex is generically
    *nondegenerate* — every basic variable sits strictly off its bound,
    so the basis can be read straight off the solution support.  For
    small enough epsilon that basis is an optimal basis of the original
    LP; the exact layer verifies and, when the guess is off, finishes
    with ordinary (dual or primal) pivots.

    Returns ``(primary, full)`` label tuples for
    :meth:`_Core.crash_from_labels` — ``primary`` holds the columns
    that are unambiguously basic (strictly off their bounds), ``full``
    additionally appends every *zero-marginal at-bound* column, the
    candidates for degenerate basic slots that stay invisible in ``x``
    when the perturbed vertex is still degenerate (rank-deficient row
    systems: ring topologies).  The caller crashes ``primary`` first
    and escalates to ``full`` only when that basis is not already
    optimal.  Returns ``None`` when scipy is unavailable or the float
    solve fails — the caller falls back to a cold exact solve.
    """
    try:
        import numpy as np
        from scipy.optimize import linprog
        from scipy.sparse import csr_array
    except ImportError:                                # pragma: no cover
        return None
    n = lp.num_vars()
    m = len(lp.constraints)
    if n == 0 or m == 0:
        return None
    c = np.zeros(n)
    for j, coef in lp.objective.coefs.items():
        c[j] = float(coef)
    if lp.sense_max:
        c = -c

    # sparse triplets: ring128-scale rows would not fit densely
    def triplets(rows):
        data, ri, cj = [], [], []
        for i, coefs in enumerate(rows):
            for j, v in coefs.items():
                ri.append(i)
                cj.append(j)
                data.append(v)
        return csr_array((data, (ri, cj)), shape=(len(rows), n))

    ub_coefs, b_ub, ub_rows = [], [], []
    eq_coefs, b_eq = [], []
    for ci, con in enumerate(lp.constraints):
        coefs = {j: float(v) for j, v in con.expr.coefs.items()}
        b = -float(con.expr.constant)
        if con.sense == LE:
            ub_coefs.append(coefs)
            b_ub.append(b + _crash_eps(ci))
            ub_rows.append(ci)
        elif con.sense == GE:
            ub_coefs.append({j: -v for j, v in coefs.items()})
            b_ub.append(-b + _crash_eps(ci))
            ub_rows.append(ci)
        else:
            eq_coefs.append(coefs)
            b_eq.append(b)
    lbs = np.array([float(v.lb) for v in lp.variables])
    lb_shift = np.array([_crash_eps(m + j) for j in range(n)])
    bounds = []
    for j, v in enumerate(lp.variables):
        hi = (None if v.ub is None
              else float(v.ub) + _crash_eps(2 * m + n + j))
        bounds.append((lbs[j] - lb_shift[j], hi))
    try:
        res = linprog(c,
                      A_ub=triplets(ub_coefs) if ub_coefs else None,
                      b_ub=np.array(b_ub) if ub_coefs else None,
                      A_eq=triplets(eq_coefs) if eq_coefs else None,
                      b_eq=np.array(b_eq) if eq_coefs else None,
                      bounds=bounds, method="highs-ds")
    except (ValueError, TypeError):                    # pragma: no cover
        return None
    if not res.success or res.x is None:
        return None
    x = res.x
    tol = FLOAT_CRASH_EPS * 1e-3
    dtol = 1e-9
    # reduced costs / row duals, when the method reports them
    try:
        low_marg = res.lower.marginals
        up_marg = res.upper.marginals
        row_marg = res.ineqlin.marginals
    except AttributeError:                             # pragma: no cover
        low_marg = up_marg = row_marg = None

    # Primary labels: columns strictly off their (shifted) bounds and
    # slacks of strictly loose rows — unambiguously basic at the vertex.
    labels: List[Label] = []
    off_lb = [False] * n
    for j, v in enumerate(lp.variables):
        if x[j] - (lbs[j] - lb_shift[j]) > tol:
            off_lb[j] = True
            labels.append(("v", v.name))
    slack = [0.0] * len(ub_rows)
    for k, ci in enumerate(ub_rows):
        slack[k] = b_ub[k] - sum(v * x[j] for j, v in ub_coefs[k].items())
        if slack[k] > tol:
            con = lp.constraints[ci]
            labels.append(("s", con.name or f"#c{ci}"))
    for j, v in enumerate(lp.variables):
        if v.ub is not None and bounds[j][1] - x[j] > tol:
            labels.append(("s", f"#ub:{v.name}"))
    primary = tuple(labels)
    # Secondary candidates: even the perturbed vertex keeps *basic at
    # bound* columns when the row system is rank-deficient (ring
    # topologies), and those are invisible in ``x`` alone.  They do show
    # up in the duals: a degenerate basic column has reduced cost
    # exactly 0, a degenerate basic slack a zero row dual.  Appending
    # every zero-marginal at-bound column lets the crash's LU probe
    # pick a consistent completion instead of falling back to
    # artificials (which distort the duals and strand the exact cleanup
    # on a degenerate vertex).
    if low_marg is not None:
        for j, v in enumerate(lp.variables):
            if not off_lb[j] and abs(low_marg[j]) < dtol:
                labels.append(("v", v.name))
            if (v.ub is not None and bounds[j][1] - x[j] <= tol
                    and abs(up_marg[j]) < dtol):
                labels.append(("s", f"#ub:{v.name}"))
        for k, ci in enumerate(ub_rows):
            if slack[k] <= tol and abs(row_marg[k]) < dtol:
                con = lp.constraints[ci]
                labels.append(("s", con.name or f"#c{ci}"))
    return primary, tuple(labels)


class _LU:
    """Sparse LU of a basis matrix over ``Fraction``.

    Built by right-looking elimination with Markowitz-style pivot
    selection: always eliminate on a minimum-active-count column,
    breaking ties toward the sparsest row — column singletons (the
    common case for crash bases: slacks, artificials and the triangular
    commodity blocks) pivot with literally zero fill.

    The factorization is stored in *pivot order* ``t = 0..m-1``:

    - ``row_of[t]`` / ``pos_of[t]``: original row index and basis
      position of pivot ``t``; ``piv[t]`` its pivot value.
    - ``lrows[t]``: multipliers eliminated *by* pivot ``t`` as
      ``(t2, f)`` with ``t2 > t`` — row ``row_of[t2]`` had
      ``f * pivot_row`` subtracted.  ``ltrans`` is the transpose
      (entries *in* row ``t`` against earlier pivots).
    - ``urow[t]``: remaining entries of pivot row ``t`` as ``(t2, u)``
      with ``t2 > t`` (columns that pivot later); ``ucol`` is the
      transpose, used by the FTRAN back-substitution scatter.

    All four solve passes walk a heap of dirty positions, so a sparse
    right-hand side touches only the reachable part of the factors.
    """

    __slots__ = ("m", "row_of", "pos_of", "piv", "t_of_row", "t_of_pos",
                 "lrows", "ltrans", "urow", "ucol", "uncovered_rows",
                 "unused_pos", "nnz")

    def __init__(self, cols: List[SpVec], m: int,
                 allow_deficient: bool = False) -> None:
        self.m = m
        # active submatrix, row-wise; colrows = exact column support
        rows: Dict[int, Dict[int, Fraction]] = {}
        colrows: Dict[int, Set[int]] = {}
        for pos, col in enumerate(cols):
            s = set()
            for r, v in col.items():
                if v:
                    rows.setdefault(r, {})[pos] = v
                    s.add(r)
            colrows[pos] = s
        self.row_of: List[int] = []
        self.pos_of: List[int] = []
        self.piv: List[Fraction] = []
        raw_l: List[List[Tuple[int, Fraction]]] = []   # (orig row, f)
        raw_u: List[List[Tuple[int, Fraction]]] = []   # (basis pos, u)
        # lazy min-count heap over active columns
        heap = [(len(s), pos) for pos, s in colrows.items()]
        heapq.heapify(heap)
        while heap:
            cnt, pc = heapq.heappop(heap)
            s = colrows.get(pc)
            if s is None:
                continue
            if len(s) != cnt:          # stale key: re-queue at current size
                if s:
                    heapq.heappush(heap, (len(s), pc))
                elif not allow_deficient:
                    raise ValueError("singular basis: empty active column")
                continue
            if not s:
                if allow_deficient:
                    continue
                raise ValueError("singular basis: empty active column")
            # Markowitz tie-break: sparsest active row within the column
            pr = min(s, key=lambda r: len(rows[r]))
            prow = rows.pop(pr)
            pv = prow.pop(pc)
            t = len(self.piv)
            self.row_of.append(pr)
            self.pos_of.append(pc)
            self.piv.append(pv)
            # retire the pivot row from every column's support
            for c2 in prow:
                colrows[c2].discard(pr)
            s.discard(pr)
            raw_u.append(list(prow.items()))
            # eliminate the pivot column from the remaining active rows
            lent: List[Tuple[int, Fraction]] = []
            for r in s:
                row = rows[r]
                f = row.pop(pc) / pv
                lent.append((r, f))
                for c2, u in prow.items():
                    nv = row.get(c2, ZERO) - f * u
                    if nv:
                        if c2 not in row:
                            colrows[c2].add(r)
                        row[c2] = nv
                    elif c2 in row:
                        del row[c2]
                        colrows[c2].discard(r)
            raw_l.append(lent)
            del colrows[pc]
        self.uncovered_rows = sorted(rows)
        self.unused_pos = sorted(colrows)
        if (self.uncovered_rows or self.unused_pos) and not allow_deficient:
            raise ValueError("singular basis: deficient factorization")
        # convert raw factors to pivot-order indices (+ transposes)
        self.t_of_row = {r: t for t, r in enumerate(self.row_of)}
        self.t_of_pos = {p: t for t, p in enumerate(self.pos_of)}
        n_t = len(self.piv)
        self.lrows = [[] for _ in range(n_t)]
        self.ltrans = [[] for _ in range(n_t)]
        self.urow = [[] for _ in range(n_t)]
        self.ucol = [[] for _ in range(n_t)]
        nnz = n_t
        for t, lent in enumerate(raw_l):
            for r, f in lent:
                t2 = self.t_of_row.get(r)
                if t2 is None:      # deficient probe: row never pivoted
                    continue
                self.lrows[t].append((t2, f))
                self.ltrans[t2].append((t, f))
                nnz += 1
        for t, uent in enumerate(raw_u):
            for p, u in uent:
                t2 = self.t_of_pos.get(p)
                if t2 is None:      # deficient probe: column never pivoted
                    continue
                # scale by the *target* pivot once, so the solve sweeps
                # are pure multiply-subtract (see ftran/btran)
                self.urow[t].append((t2, u / self.piv[t2]))
                self.ucol[t2].append((t, u / self.piv[t]))
                nnz += 1
        self.nnz = nnz

    # -- sparse scatter passes ----------------------------------------
    @staticmethod
    def _sweep(work: SpVec, table, descending: bool):
        """Drain ``work`` in pivot order, scattering through ``table``.

        ``table[t]`` lists ``(t2, coef)`` with ``t2`` strictly beyond
        ``t`` in the sweep direction; each processed position subtracts
        ``coef * value`` into ``t2``.  Returns the processed values.
        """
        sgn = -1 if descending else 1
        heap = [sgn * t for t, v in work.items() if v]
        heapq.heapify(heap)
        queued = set(heap)
        out: SpVec = {}
        while heap:
            ht = heapq.heappop(heap)
            t = sgn * ht
            v = work.get(t, ZERO)
            if not v:
                continue
            out[t] = v
            for t2, coef in table[t]:
                work[t2] = work.get(t2, ZERO) - coef * v
                h2 = sgn * t2
                if h2 not in queued:
                    queued.add(h2)
                    heapq.heappush(heap, h2)
        return out

    def ftran(self, b: SpVec) -> SpVec:
        """Solve ``B x = b`` (``b`` keyed by row, ``x`` by basis pos)."""
        work = {}
        for r, v in b.items():
            if v:
                work[self.t_of_row[r]] = v
        y = self._sweep(work, self.lrows, descending=False)   # L y = b
        # U x = y: pre-divide by each diagonal, then the ucol entries
        # (already scaled by their target pivot) scatter into earlier t
        work = {t: v / self.piv[t] for t, v in y.items()}
        x = self._sweep(work, self.ucol, descending=True)
        return {self.pos_of[t]: v for t, v in x.items() if v}

    def btran(self, c: SpVec) -> SpVec:
        """Solve ``y B = c`` (``c`` keyed by basis pos, ``y`` by row)."""
        work = {}
        for p, v in c.items():
            if v:
                work[self.t_of_pos[p]] = v
        # U^T w = c: forward; urow entries are pre-scaled by the target
        # pivot, the initial values divide by their own diagonal
        pre = {t: v / self.piv[t] for t, v in work.items()}
        w = self._sweep(pre, self.urow, descending=False)
        # L^T y = w: backward through the multiplier transpose
        y = self._sweep(dict(w), self.ltrans, descending=True)
        return {self.row_of[t]: v for t, v in y.items() if v}


def _blocks_of(lp: LinearProgram, n_slack: int, slack_cols: List[int]):
    """Commodity-block partition of the priceable columns.

    Collective LP variables follow the ``prefix[src->dst,commodity]``
    codec (stage prefixes like ``s0:`` included in the head), so the
    text after the *first* comma inside the brackets names the
    commodity — ``send[p0->p1,mp1]``, ``s1:send[0->1,b0:v[0,0]]``.
    Columns sharing ``(head, commodity)`` form one pricing block; names
    outside the codec share a catch-all block, and slack columns are
    chunked :data:`SLACK_BLOCK` at a time in row order.
    """
    groups: Dict[Tuple[str, str], List[int]] = {}
    order: List[Tuple[str, str]] = []
    for v in lp.variables:
        name = v.name
        i = name.find("[")
        k = name.find(",", i + 1) if i >= 0 else -1
        key = (name[:i], name[k + 1:-1]) if 0 <= i < k else ("", "")
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(v.index)
    blocks = [groups[k] for k in order]
    for i in range(0, len(slack_cols), SLACK_BLOCK):
        blocks.append(slack_cols[i:i + SLACK_BLOCK])
    return blocks


class _Core:
    """One solve's working state: rows, columns, basis, factors, stats."""

    def __init__(self, lp: LinearProgram, refactor_interval: int) -> None:
        self.lp = lp
        self.refactor_interval = refactor_interval
        n = self.n = lp.num_vars()
        lbs = self.lbs = [Fraction(v.lb) for v in lp.variables]

        # rows in ``sum a_ij y_j (sense) b_i`` form, y = x - lb >= 0,
        # normalized to b >= 0 (negate + flip sense), same as the tableau
        senses: List[str] = []
        bs: List[Fraction] = []
        tags: List[Label] = []
        rows_coefs: List[Dict[int, Fraction]] = []
        self.row_flip: List[int] = []   # -1 when the row was negated below
        for ci, con in enumerate(lp.constraints):
            b = -Fraction(con.expr.constant)
            coefs: Dict[int, Fraction] = {}
            for j, c in con.expr.coefs.items():
                c = Fraction(c)
                if c:
                    coefs[j] = c
                    b -= c * lbs[j]
            sense = con.sense
            flip = 1
            if b < 0:
                coefs = {j: -c for j, c in coefs.items()}
                b = -b
                sense = {LE: GE, GE: LE, EQ: EQ}[sense]
                flip = -1
            rows_coefs.append(coefs)
            senses.append(sense)
            bs.append(b)
            tags.append(("s", con.name or f"#c{ci}"))
            self.row_flip.append(flip)
        for v in lp.variables:
            if v.ub is not None:
                b = Fraction(v.ub) - lbs[v.index]
                coefs = {v.index: ONE}
                sense = LE
                if b < 0:          # infeasible box, keep it honest
                    coefs = {v.index: -ONE}
                    b = -b
                    sense = GE
                rows_coefs.append(coefs)
                senses.append(sense)
                bs.append(b)
                tags.append(("s", f"#ub:{v.name}"))
        m = self.m = len(senses)
        self.senses = senses
        self.bs = bs
        self.b_vec: SpVec = {i: b for i, b in enumerate(bs) if b}

        # column layout: [structural 0..n) | slacks | artificials...].
        # Rows are kept twice: exact Fraction columns (``acols``, the
        # FTRAN/factorization input) and integerized rows over one
        # denominator per row (``arows``/``row_den``), so the pivot-row
        # and reduced-cost arithmetic is pure-integer (fraction-free).
        self.acols: Dict[int, SpVec] = {j: {} for j in range(n)}
        arows_f: List[Dict[int, Fraction]] = [dict(c) for c in rows_coefs]
        for i, coefs in enumerate(rows_coefs):
            for j, c in coefs.items():
                self.acols[j][i] = c
        self.slack_of: Dict[int, int] = {}
        self.labels: Dict[int, Label] = {v.index: ("v", v.name)
                                         for v in lp.variables}
        col = n
        slack_cols: List[int] = []
        for i, s in enumerate(senses):
            if s in (LE, GE):
                self.slack_of[i] = col
                sv = ONE if s == LE else -ONE
                self.acols[col] = {i: sv}
                arows_f[i][col] = sv
                self.labels[col] = tags[i]
                slack_cols.append(col)
                col += 1
        self.arows: List[List[Tuple[int, int]]] = []
        self.row_den: List[int] = []
        for coefs in arows_f:
            nums, den = _to_int_vec(coefs)
            self.arows.append(list(nums.items()))
            self.row_den.append(den)
        self.n_priceable = col
        self.art_cols: Set[int] = set()
        self.next_col = col
        self.blocks = _blocks_of(lp, col - n, slack_cols)
        self.block_ptr = 0

        # basis state (filled by a crash)
        self.basis: List[int] = []
        self.basic: Set[int] = set()
        self.x_b: List[Fraction] = []
        self.lu: Optional[_LU] = None
        self.etas: List[Tuple[int, SpVec]] = []
        self.eta_nnz = 0
        self.dnum: Dict[int, int] = {}
        self.dden = 1
        self.weights: Dict[int, float] = {}
        self.cands: List[int] = []
        self.iterations = 0
        self.stats: Dict[str, object] = {
            "pivots": 0, "phase1_pivots": 0, "phase2_pivots": 0,
            "dual_pivots": 0, "refactorizations": 0, "ftran": 0,
            "btran": 0, "factor_s": 0.0, "phase1_s": 0.0,
            "phase2_s": 0.0, "dual_s": 0.0, "basis_m": m,
        }

    # -- columns -------------------------------------------------------
    def new_artificial(self, row: int) -> int:
        c = self.next_col
        self.next_col += 1
        self.art_cols.add(c)
        self.acols[c] = {row: ONE}
        return c

    def column(self, col: int) -> SpVec:
        return self.acols[col]

    # -- factorization + solves ---------------------------------------
    def factorize(self) -> None:
        t0 = perf_counter()
        cols = [self.column(c) for c in self.basis]
        self.lu = _LU(cols, self.m)
        self.etas = []
        self.eta_nnz = 0
        self.stats["refactorizations"] += 1
        self.stats["factor_s"] += perf_counter() - t0

    def maybe_refactorize(self) -> None:
        if (len(self.etas) >= self.refactor_interval
                or self.eta_nnz > max(1000, 2 * self.lu.nnz)):
            self.factorize()

    def ftran(self, col_vec: SpVec) -> SpVec:
        """``B^{-1} a``: LU solve, then the eta file in append order."""
        self.stats["ftran"] += 1
        x = self.lu.ftran(col_vec)
        for r, w in self.etas:
            xr = x.get(r)
            if not xr:
                continue
            xr2 = xr / w[r]
            for i, wv in w.items():
                if i == r:
                    continue
                nv = x.get(i, ZERO) - wv * xr2
                if nv:
                    x[i] = nv
                elif i in x:
                    del x[i]
            x[r] = xr2
        return x

    def btran(self, cvec: SpVec) -> SpVec:
        """``c B^{-1}``: eta file transposed in reverse, then LU solve."""
        self.stats["btran"] += 1
        c = dict(cvec)
        for r, w in reversed(self.etas):
            s = ZERO
            for i, wv in w.items():
                if i != r:
                    ci = c.get(i)
                    if ci:
                        s += wv * ci
            cr = (c.get(r, ZERO) - s) / w[r]
            if cr:
                c[r] = cr
            elif r in c:
                del c[r]
        return self.lu.btran(c)

    def set_x_from_b(self) -> None:
        x = self.ftran(self.b_vec)
        self.x_b = [x.get(pos, ZERO) for pos in range(self.m)]

    # -- crash bases ---------------------------------------------------
    def crash_cold(self) -> None:
        """All-slack start plus a column-singleton triangular crash.

        LE rows take their slack; GE/EQ rows with ``b = 0`` take the
        surplus slack / a structural column; only rows with ``b > 0``
        and no usable slack get an artificial (those drive phase 1).
        The structural cover peels column singletons over the uncovered
        ``b = 0`` equality rows — the conservation rows decompose per
        commodity, so this is the per-block basis crash: each block's
        triangular tail enters the basis before any simplex pivot.
        """
        m = self.m
        basis: List[Optional[int]] = [None] * m
        crash_rows: List[int] = []
        for i, s in enumerate(self.senses):
            if s == LE:
                basis[i] = self.slack_of[i]
            elif s == GE and self.bs[i] == 0:
                basis[i] = self.slack_of[i]
            elif self.bs[i] == 0:
                crash_rows.append(i)
            else:
                basis[i] = self.new_artificial(i)
        if crash_rows:
            uncovered = set(crash_rows)
            used: Set[int] = set()
            supp: Dict[int, Set[int]] = {}
            for i in crash_rows:
                for j, _c in self.arows[i]:
                    if j < self.n:
                        supp.setdefault(j, set()).add(i)
            heap = [(len(s), j) for j, s in supp.items()]
            heapq.heapify(heap)
            while heap:
                cnt, j = heapq.heappop(heap)
                s = supp.get(j)
                if not s or j in used:
                    continue
                if len(s) != cnt:       # stale: re-queue at current size
                    heapq.heappush(heap, (len(s), j))
                    continue
                if cnt != 1:
                    continue   # re-armed below if it drops to a singleton
                (i,) = s
                basis[i] = j
                used.add(j)
                uncovered.discard(i)
                # covering row i shrinks every other column's support;
                # columns reaching one active row become peelable again
                for j2, _c in self.arows[i]:
                    if j2 < self.n and j2 != j:
                        s2 = supp.get(j2)
                        if s2 and i in s2:
                            s2.discard(i)
                            if len(s2) == 1 and j2 not in used:
                                heapq.heappush(heap, (1, j2))
            for i in sorted(uncovered):
                basis[i] = self.new_artificial(i)
        self.basis = basis
        self.basic = set(basis)
        self.factorize()
        self.set_x_from_b()

    def crash_from_labels(self, warm_basis: Sequence[Label]) -> None:
        """Crash a recorded basis (stable name labels) back in.

        Labels missing from this LP are dropped; a deficient
        factorization reveals the uncovered rows, which are completed
        with their slack (if free) or a fresh artificial — then the
        completed basis is factorized strictly.
        """
        col_of = {lab: c for c, lab in self.labels.items()}
        want: List[int] = []
        seen: Set[int] = set()
        for lab in warm_basis:
            c = col_of.get(lab)
            if c is not None and c not in seen:
                seen.add(c)
                want.append(c)
        probe = _LU([self.column(c) for c in want], self.m,
                    allow_deficient=True)
        drop = set(probe.unused_pos)
        kept = [c for p, c in enumerate(want) if p not in drop]
        covered = set(probe.row_of)
        basis = list(kept)
        for i in range(self.m):
            if i in covered:
                continue
            sc = self.slack_of.get(i)
            if sc is not None and sc not in seen:
                basis.append(sc)
                seen.add(sc)
            else:
                basis.append(self.new_artificial(i))
        self.basis = basis
        self.basic = set(basis)
        self.factorize()
        self.set_x_from_b()

    def primal_feasible(self) -> bool:
        return all(v >= 0 for v in self.x_b) and all(
            self.x_b[p] == 0 for p, c in enumerate(self.basis)
            if c in self.art_cols)

    # -- reduced costs ---------------------------------------------------
    def cost_vec(self, phase: int) -> Dict[int, Fraction]:
        """Min-form objective: phase 1 = sum of artificials, phase 2 =
        ``sign * c`` over the structural columns."""
        if phase == 1:
            return {c: ONE for c in self.art_cols}
        sign = -1 if self.lp.sense_max else 1
        out = {}
        for j, c in self.lp.objective.coefs.items():
            c = sign * Fraction(c)
            if c:
                out[j] = c
        return out

    def compute_d(self, phase: int) -> None:
        """Recompute the reduced costs from scratch (phase entry).

        ``d`` is kept fraction-free: integer numerators ``dnum`` over
        one positive common denominator ``dden`` (the tableau's trick),
        so the per-pivot update is pure integer multiply/subtract with
        a single gcd pass.
        """
        cost = self.cost_vec(phase)
        cb = {}
        for pos, c in enumerate(self.basis):
            v = cost.get(c)
            if v:
                cb[pos] = v
        y = self.btran(cb) if cb else {}
        # fold each row's integerization denominator into y once
        w = {r: yv / self.row_den[r] for r, yv in y.items()}
        for j, cv in cost.items():
            if j not in self.basic and j not in self.art_cols:
                w[-1 - j] = cv       # stash c_j under an impossible row key
        wi, den = _to_int_vec(w)
        acc: Dict[int, int] = {}
        for k, cn in wi.items():
            if k < 0:
                j = -1 - k
                if cn:
                    acc[j] = acc.get(j, 0) + cn
        basic = self.basic
        for r, yn in wi.items():
            if r < 0 or not yn:
                continue
            for j, a in self.arows[r]:
                if j in basic:
                    continue
                nv = acc.get(j, 0) - yn * a
                if nv:
                    acc[j] = nv
                elif j in acc:
                    del acc[j]
        g = gcd(den, *acc.values()) if acc else 1
        if g > 1:
            den //= g
            acc = {j: v // g for j, v in acc.items()}
        self.dnum = acc
        self.dden = den
        self.weights = {}
        self.cands = []

    def extract_duals(self) -> Dict[int, Fraction]:
        """Constraint-row multipliers ``y`` of the current optimal basis.

        One BTRAN of the phase-2 basic costs, mapped back through the
        row normalization (the ``b < 0`` sign flips of ``__init__``) and
        the internal min-form sign, so the returned convention is the
        one documented on :attr:`repro.lp.solution.LPSolution.duals`:
        for a maximization LP, ``sum_i y_i a_ij - c_j >= 0`` for every
        column.  Multipliers of the synthetic upper-bound rows are
        dropped (they price variable bounds, not constraints).
        """
        cost = self.cost_vec(2)
        cb: SpVec = {}
        for pos, c in enumerate(self.basis):
            v = cost.get(c)
            if v:
                cb[pos] = v
        y = self.btran(cb) if cb else {}
        sgn = -1 if self.lp.sense_max else 1
        out: Dict[int, Fraction] = {}
        for ci, flip in enumerate(self.row_flip):
            v = y.get(ci)
            if v:
                out[ci] = sgn * flip * v
        return out

    def pivot_row_alpha(self, r: int) -> Tuple[Dict[int, int], int]:
        """Row ``r`` of ``B^{-1}N`` over the priceable nonbasic columns,
        as integer numerators over one common denominator."""
        z = self.btran({r: ONE})
        w = {row: zv / self.row_den[row] for row, zv in z.items()}
        wi, den = _to_int_vec(w)
        alpha: Dict[int, int] = {}
        basic = self.basic
        for row, zn in wi.items():
            if not zn:
                continue
            for j, a in self.arows[row]:
                if j in basic:
                    continue
                nv = alpha.get(j, 0) + zn * a
                if nv:
                    alpha[j] = nv
                elif j in alpha:
                    del alpha[j]
        return alpha, den

    # -- pricing ---------------------------------------------------------
    def _score(self, j: int) -> float:
        r = _fdiv(self.dnum[j], self.dden)
        return (r * r) / self.weights.get(j, 1.0)

    def _refresh_candidates(self) -> None:
        """Sweep commodity blocks round-robin for improving columns.

        Each refresh scans whole blocks starting after the last
        productive one and keeps sweeping until it has seen
        :data:`PRICE_SWEEP_MIN` improving columns (or a full cycle
        completes): a single commodity rarely holds the globally
        attractive pivots on a degenerate face, so the shortlist always
        mixes several blocks — that keeps the pivot count close to full
        Devex pricing while still scanning only a sliver of the
        nonbasic set per refresh early in the solve.
        """
        d = self.dnum
        nb = len(self.blocks)
        found: List[Tuple[float, int]] = []
        for step in range(nb):
            bi = (self.block_ptr + step) % nb
            hit = False
            for j in self.blocks[bi]:
                v = d.get(j)
                if v is not None and v < 0 and j not in self.basic:
                    found.append((-self._score(j), j))
                    hit = True
            if hit and len(found) >= PRICE_SWEEP_MIN:
                self.block_ptr = (bi + 1) % nb
                break
        self.cands = [j for _s, j in
                      heapq.nsmallest(CANDIDATE_LIST_SIZE, found)]

    def price(self, bland: bool) -> Optional[int]:
        """Entering column, or None when ``d >= 0`` (full-scan proven)."""
        d = self.dnum
        if bland:
            enter = -1
            for j, v in d.items():
                if v < 0 and (enter < 0 or j < enter):
                    enter = j
            return enter if enter >= 0 else None
        for attempt in (0, 1):
            best = None
            best_s = 0.0
            live = []
            for j in self.cands:
                v = d.get(j)
                if v is None or v >= 0 or j in self.basic:
                    continue
                live.append(j)
                s = self._score(j)
                if s > best_s or (s == best_s and
                                  (best is None or j < best)):
                    best_s = s
                    best = j
            self.cands = live
            if best is not None:
                return best
            if attempt == 0:
                self._refresh_candidates()
        # optimality backstop: full scan of the maintained nonzeros
        enter = None
        best_s = 0.0
        for j, v in d.items():
            if v < 0:
                s = self._score(j)
                if s > best_s or (s == best_s and
                                  (enter is None or j < enter)):
                    best_s = s
                    enter = j
        return enter

    # -- pivot bookkeeping -------------------------------------------
    def apply_pivot(self, r: int, q: int, w: SpVec, theta: Fraction,
                    alpha: Dict[int, int], aden: int) -> None:
        """Update ``x_B``, ``d``, Devex weights, basis and the eta file.

        ``d' = d - (d_q / alpha_q) * alpha_row``, done fraction-free via
        :func:`~repro.lp.exact_simplex._row_sub`: the ``aden`` scaling
        cancels, the entering column's entry cancels to exactly 0, and
        appending the leaving column's (unit) alpha entry makes its new
        reduced cost ``-d_q/alpha_q`` fall out of the same update.
        """
        wr = w[r]
        dq = self.dnum.get(q, 0)
        leaving = self.basis[r]
        aq = alpha[q]
        if dq:
            pd = dict(alpha)
            if leaving not in self.art_cols:
                pd[leaving] = aden      # alpha of the leaving basic col is 1
            pden = aq
            if pden < 0:
                pd = {j: -v for j, v in pd.items()}
                pden = -pden
            self.dnum, self.dden = _row_sub(self.dnum, self.dden, dq,
                                            pd, pden)
        # Devex reference weights (Forrest-Goldfarb), float-approximate:
        # they only steer the pivot path, never the arithmetic
        weights = self.weights
        wq = weights.pop(q, 1.0)
        af = _f(wr)
        w_leave = wq / (af * af) if af else 1.0
        if not w_leave <= DEVEX_RESET:       # catches inf and NaN too
            weights.clear()
            w_leave = 1.0
        if leaving not in self.art_cols:
            weights[leaving] = w_leave if w_leave > 1.0 else 1.0
        big = False
        for j, av in alpha.items():
            if j == q:
                continue
            rf = _fdiv(av, aq)
            nw = rf * rf * wq
            if nw > weights.get(j, 1.0):
                weights[j] = nw
                big = big or nw > DEVEX_RESET
        if big:
            weights.clear()
        # primal values and basis swap
        x_b = self.x_b
        if theta:
            for pos, wv in w.items():
                x_b[pos] -= theta * wv
        x_b[r] = theta
        self.basic.discard(leaving)
        self.basic.add(q)
        self.basis[r] = q
        if leaving in self.art_cols:
            # an expelled artificial never re-enters: drop its column
            del self.acols[leaving]
        self.etas.append((r, w))
        self.eta_nnz += len(w)
        self.iterations += 1
        self.stats["pivots"] += 1
        self.maybe_refactorize()

    # -- primal loop ---------------------------------------------------
    def primal(self, phase: int, max_iterations: int,
               force_bland: bool = False) -> str:
        """Phase 1/2 primal iterations on the current basis; the
        reduced-cost dict must already match ``phase``."""
        t0 = perf_counter()
        bland = force_bland
        degen_streak = 0
        status = "optimal"
        while True:
            if self.iterations >= max_iterations:
                status = "iterlimit"
                break
            q = self.price(bland)
            if q is None:
                break
            w = self.ftran(self.column(q))
            r = self.ratio_test(w, bland)
            if r < 0:
                status = "unbounded"
                break
            alpha, aden = self.pivot_row_alpha(r)
            assert Fraction(alpha[q], aden) == w[r], \
                "pivot row/column disagree"
            theta = self.x_b[r] / w[r]
            self.apply_pivot(r, q, w, theta, alpha, aden)
            self.stats["phase%d_pivots" % phase] += 1
            if theta == 0:
                degen_streak += 1
                if degen_streak >= DEGENERACY_LIMIT:
                    bland = True       # anti-cycling fallback
            else:
                degen_streak = 0
                bland = force_bland
        self.stats["phase%d_s" % phase] += perf_counter() - t0
        return status

    def ratio_test(self, w: SpVec, bland: bool) -> int:
        """Leaving position: min ``x_i / w_i`` over ``w_i > 0`` rows.

        Rows whose basic variable is an artificial sitting at 0 block
        the step at ratio 0 whenever ``w_i != 0`` — artificials are
        pinned at zero (they may never grow back), and the resulting
        degenerate pivot expels one from the basis.  Ties break toward
        expelling artificials, then the smallest basis column index.
        """
        basis, x_b = self.basis, self.x_b
        art = self.art_cols
        leave = -1
        ln = ld = ONE
        for pos, wv in w.items():
            bcol = basis[pos]
            pinned = bcol in art and x_b[pos] == 0
            if not pinned and wv <= 0:
                continue
            if pinned:
                r, a = ZERO, ONE      # ratio 0: forces theta = 0
            else:
                r, a = x_b[pos], wv
            if leave < 0:
                take = True
            else:
                diff = r * ld - ln * a
                if diff < 0:
                    take = True
                elif diff > 0:
                    take = False
                else:
                    lart = basis[leave] in art
                    if pinned != lart:
                        take = pinned          # prefer expelling artificials
                    else:
                        take = bcol < basis[leave]
            if take:
                leave, ln, ld = pos, r, a
        if leave >= 0 and basis[leave] in art and x_b[leave] == 0 \
                and w[leave] < 0:
            # pinned-artificial exit with a negative pivot element is
            # still valid (theta = 0), the pivot just flips signs
            pass
        return leave

    # -- dual loop -------------------------------------------------------
    def dual(self, max_iterations: int) -> str:
        """Dual simplex from a dual-feasible basis (``d >= 0``).

        Leaving row: the most primal-infeasible basic variable — an
        ``x_i < 0``, or an artificial parked *above* 0 by a warm crash.
        The dual ratio test scans the pivot row for the sign-eligible
        column minimizing ``d_j / |alpha_rj|``; no eligible column
        means the dual is unbounded, i.e. the LP is INFEASIBLE.
        """
        t0 = perf_counter()
        basis, x_b, art = self.basis, self.x_b, self.art_cols
        status = "optimal"
        degen_streak = 0
        while True:
            if self.iterations >= max_iterations:
                status = "iterlimit"
                break
            r = -1
            worst = ZERO
            for pos, v in enumerate(x_b):
                infeas = -v if v < 0 else (v if basis[pos] in art else ZERO)
                if infeas > worst or (infeas and infeas == worst
                                      and r >= 0 and basis[pos] < basis[r]):
                    worst = infeas
                    r = pos
            if r < 0:
                break              # primal feasible + dual feasible = optimal
            alpha, aden = self.pivot_row_alpha(r)
            sgn = 1 if x_b[r] > 0 else -1
            bland = degen_streak >= DEGENERACY_LIMIT
            q = None
            qn = qd = 1
            for j, av in alpha.items():
                if sgn * av <= 0:
                    continue
                dj = self.dnum.get(j, 0)
                if q is None:
                    take = True
                else:
                    diff = dj * qd - qn * (sgn * av)
                    take = diff < 0 or (diff == 0 and (j < q if bland else
                                                       abs(av) > abs(qd)))
                if take:
                    q, qn, qd = j, dj, sgn * av
            if q is None:
                status = "infeasible"      # dual unbounded
                break
            w = self.ftran(self.column(q))
            assert w.get(r) == Fraction(alpha[q], aden), \
                "pivot row/column disagree"
            theta = x_b[r] / w[r]
            self.apply_pivot(r, q, w, theta, alpha, aden)
            self.stats["dual_pivots"] += 1
            if qn == 0:
                degen_streak += 1
            else:
                degen_streak = 0
        self.stats["dual_s"] += perf_counter() - t0
        return status


class RevisedSimplexSolver:
    """Exact rational revised simplex (see the module docstring).

    Parameters
    ----------
    max_iterations:
        Hard pivot budget across all phases; overruns return an
        ``ERROR`` solution with a diagnostic message, they never raise.
    pricing:
        ``"devex"`` (default) — Devex weights over commodity-block
        partial pricing; ``"bland"`` — pure Bland's rule (debugging).
    refactor_interval:
        Product-form eta updates tolerated before the basis is
        refactorized from scratch (a fill threshold — eta nonzeros
        exceeding twice the LU's — also triggers one).  Tests force
        tiny intervals to exercise the refactorization path.
    crash:
        ``"float"`` (default) — cold solves first guess the optimal
        basis from a perturbed floating-point solve (see
        :func:`_float_crash_labels`) and only pivot exactly from there;
        ``"cold"`` — pure exact path (triangular crash + two phases),
        used by the differential tests and as the automatic fallback
        when scipy is unavailable or the float guess collapses.
    """

    def __init__(self, max_iterations: int = 500_000,
                 pricing: str = "devex",
                 refactor_interval: int = 64,
                 crash: str = "float") -> None:
        if pricing not in ("devex", "bland"):
            raise ValueError(f"unknown pricing rule {pricing!r}")
        if refactor_interval < 1:
            raise ValueError("refactor_interval must be >= 1")
        if crash not in ("float", "cold"):
            raise ValueError(f"unknown crash strategy {crash!r}")
        self.max_iterations = max_iterations
        self.pricing = pricing
        self.refactor_interval = refactor_interval
        self.crash = crash

    # ------------------------------------------------------------------
    def solve(self, lp: LinearProgram,
              warm_basis: Optional[Sequence[Label]] = None,
              dual: bool = False,
              want_duals: bool = False) -> LPSolution:
        """Solve ``lp`` exactly; optionally warm from a recorded basis.

        ``want_duals=True`` additionally reports the exact constraint
        multipliers of the optimal basis on the returned solution's
        ``duals`` field (one extra BTRAN; see
        :meth:`_Core.extract_duals` for the sign convention) — the
        column-generation masters of :mod:`repro.lp.colgen` price
        candidate columns against them.

        ``warm_basis`` is a tuple of stable name labels (the
        ``basis_labels`` of a previous :class:`LPSolution`); without
        one, ``crash="float"`` first guesses the basis from a perturbed
        float solve.  Either way the crash basis is completed with
        slacks/artificials and then: primal feasible -> straight to
        phase 2; primal infeasible but *dual* feasible (all reduced
        costs nonnegative — the tightened-perturbation case) -> the
        dual simplex; neither -> the next candidate basis.  A warm
        basis that lands neither-feasible (e.g. the perturbation scaled
        matrix coefficients, which moves the reduced costs) falls back
        to the float crash, and only then to a cold start.  ``dual=True``
        insists on trying the dual route first even when the crash
        happens to be primal feasible.
        """
        if not lp.is_rational():
            raise ValueError(
                "revised simplex requires int/Fraction data; convert the "
                "LP or use the HiGHS backend")
        core = _Core(lp, self.refactor_interval)
        path = "cold"
        # candidate bases, tried in order; the float guess is generated
        # lazily so a good warm basis never pays for a scipy solve
        cands: List[Tuple[str, Sequence[Label]]] = []
        if warm_basis:
            cands.append(("warm", warm_basis))
        float_pending = self.crash == "float"
        stage = 0
        while True:
            if stage == len(cands):
                if not float_pending:
                    break
                float_pending = False
                guess = _float_crash_labels(lp)
                if guess:
                    primary, full = guess
                    cands.append(("float", primary))
                    if len(full) > len(primary):
                        cands.append(("float", full))
                if stage == len(cands):
                    break
            tag, labels = cands[stage]
            if stage and core.art_cols:
                # a previous crash added artificial columns, whose arows
                # entries would leak into the next candidate's pricing —
                # rebuild.  An artificial-free failed crash (the common
                # warm-miss) leaves the core clean for re-crashing.
                core = _Core(lp, self.refactor_interval)
            core.crash_from_labels(labels)
            core.compute_d(2)
            dual_ok = all(v >= 0 for v in core.dnum.values())
            primal_ok = core.primal_feasible()
            if primal_ok and dual_ok and not dual:
                path = f"{tag}-primal"   # crash is already optimal
                break
            more = stage + 1 < len(cands) or float_pending
            if more and (not (primal_ok or dual_ok)
                         or len(core.art_cols) * 20 > core.m):
                # Useless crash, or many uncovered rows (the
                # rank-deficient ring shape): artificials distort the
                # duals and the cleanup would wander a degenerate
                # vertex — move on to the next candidate basis.  A
                # mostly-covered feasible crash keeps its few residuals
                # for ordinary pivots.
                stage += 1
                continue
            if primal_ok and not (dual and dual_ok):
                path = f"{tag}-primal"
            elif dual_ok:
                path = f"{tag}-dual"
            elif core.art_cols:                           # cold restart
                core = _Core(lp, self.refactor_interval)
            break
        status = "optimal"
        if path == "cold":
            core.crash_cold()
            art = core.art_cols
            if any(core.x_b[p] > 0 for p, c in enumerate(core.basis)
                   if c in art):
                core.compute_d(1)
                status = self._run(core, 1)
                if status == "optimal":
                    infeas = sum(core.x_b[p]
                                 for p, c in enumerate(core.basis)
                                 if c in art)
                    if infeas > 0:
                        return self._done(core, lp, SolveStatus.INFEASIBLE,
                                          path)
                elif status == "unbounded":
                    status = "error"   # phase 1 is bounded below by zero
            if status == "optimal":
                core.compute_d(2)
                status = self._run(core, 2)
        elif path.endswith("-primal"):
            status = self._run(core, 2)
        else:
            status = core.dual(self.max_iterations)
            if status == "infeasible":
                return self._done(core, lp, SolveStatus.INFEASIBLE, path)
            if status == "optimal":
                # the dual stops at primal feasibility; reduced costs
                # stayed nonnegative throughout, so this is the optimum
                pass
        if status == "unbounded":
            return self._done(core, lp, SolveStatus.UNBOUNDED, path)
        if status != "optimal":
            sol = self._done(core, lp, SolveStatus.ERROR, path)
            sol.message = (f"{path} solve stopped with {status!r} after "
                           f"{core.iterations} pivots on {lp.name!r} "
                           f"({core.n} vars, {core.m} rows)")
            return sol
        return self._done(core, lp, SolveStatus.OPTIMAL, path,
                          want_duals=want_duals)

    def _run(self, core: _Core, phase: int) -> str:
        return core.primal(phase, self.max_iterations,
                           force_bland=self.pricing == "bland")

    def _done(self, core: _Core, lp: LinearProgram, status: SolveStatus,
              path: str, want_duals: bool = False) -> LPSolution:
        stats = dict(core.stats)
        stats["path"] = path
        if status is not SolveStatus.OPTIMAL:
            return LPSolution(status, backend="revised-simplex", lp=lp,
                              iterations=core.iterations, stats=stats)
        values: Dict[int, Fraction] = {}
        basic_struct: Set[int] = set()
        for pos, c in enumerate(core.basis):
            if c < core.n:
                basic_struct.add(c)
                x = core.x_b[pos] + core.lbs[c]
                if x:
                    values[c] = x
        for j in range(core.n):
            if j not in basic_struct and core.lbs[j]:
                values[j] = core.lbs[j]
        objective = lp.objective.evaluate(values)
        labels = tuple(core.labels[c] for c in core.basis
                       if c in core.labels)
        return LPSolution(SolveStatus.OPTIMAL, objective=objective,
                          values=values, backend="revised-simplex",
                          exact=True, lp=lp, iterations=core.iterations,
                          basis_labels=labels, stats=stats,
                          duals=core.extract_duals() if want_duals else None)


class MasterResult:
    """Slim per-round answer of :class:`IncrementalColumnMaster`:
    status, exact objective, duals keyed by constraint index, nonzero
    variable/column values keyed by *name*, and the pivot count this
    round took."""

    __slots__ = ("status", "objective", "duals", "values", "pivots")

    def __init__(self, status: SolveStatus,
                 objective: Optional[Fraction] = None,
                 duals: Optional[Dict[int, Fraction]] = None,
                 values: Optional[Dict[str, Fraction]] = None,
                 pivots: int = 0) -> None:
        self.status = status
        self.objective = objective
        self.duals = duals or {}
        self.values = values or {}
        self.pivots = pivots

    @property
    def optimal(self) -> bool:
        return self.status is SolveStatus.OPTIMAL


class IncrementalColumnMaster:
    """A column-generation master kept *hot* across pricing rounds.

    The Dantzig-Wolfe loop of :mod:`repro.lp.colgen` re-solves one
    master LP dozens of times, each round with a handful of new columns
    over an unchanged row set.  A fresh :meth:`RevisedSimplexSolver.solve`
    pays the dominant costs — basis crash and LU factorization — every
    round just to replay one or two pivots.  This class keeps the
    working core (basis, LU factors, eta file, Devex state) alive
    between rounds: :meth:`add_and_resolve` splices the new columns
    into the exact column file and the fraction-free integer rows
    (rescaling a row's common denominator when a new coefficient widens
    it), recomputes the phase-2 reduced costs, and continues the primal
    from the current basis — which stays feasible, since new columns
    enter nonbasic at zero.

    Contract: added columns have objective coefficient 0, lower bound 0
    and no upper bound — exactly the ray weights of a Dantzig-Wolfe
    master whose objective lives on the shared master variables.  The
    pivot sequence is deterministic, so the reached vertex is too.
    """

    def __init__(self, lp: LinearProgram,
                 solver: Optional[RevisedSimplexSolver] = None) -> None:
        self.lp = lp
        self.solver = solver or RevisedSimplexSolver()
        self.core: Optional[_Core] = None
        self._col_names: Dict[int, str] = {}

    # -- entry: one ordinary solve, then keep the basis ----------------
    def solve_full(self) -> MasterResult:
        """Solve the master from scratch (round 0 / fallback) and, when
        optimal, rebuild a live core on its basis for later rounds."""
        sol = self.solver.solve(self.lp, want_duals=True)
        self.core = None
        self._col_names = {}
        if sol.status is not SolveStatus.OPTIMAL:
            return MasterResult(sol.status)
        core = _Core(self.lp, self.solver.refactor_interval)
        core.crash_from_labels(sol.basis_labels)
        if core.primal_feasible():
            core.compute_d(2)
            if all(v >= 0 for v in core.dnum.values()):
                self.core = core
        values = {self.lp.variables[j].name: v
                  for j, v in sol.values.items() if v}
        return MasterResult(SolveStatus.OPTIMAL, objective=sol.objective,
                            duals=dict(sol.duals or {}), values=values,
                            pivots=int((sol.stats or {}).get("pivots", 0)))

    @property
    def live(self) -> bool:
        return self.core is not None

    # -- incremental rounds --------------------------------------------
    def add_and_resolve(
            self, cols: Sequence[Tuple[str, Dict[int, Fraction]]],
    ) -> Optional[MasterResult]:
        """Splice ``(name, {constraint-index: coef})`` columns in and
        re-optimize from the current basis.  Returns ``None`` when no
        live core is available (caller falls back to a full solve)."""
        core = self.core
        if core is None:
            return None
        block: List[int] = []
        for name, row_coefs in cols:
            c = core.next_col
            core.next_col += 1
            core.n_priceable = core.next_col
            vec: SpVec = {}
            for ci, coef in row_coefs.items():
                f = Fraction(coef)
                if core.row_flip[ci] < 0:
                    f = -f
                if not f:
                    continue
                vec[ci] = f
                den = core.row_den[ci]
                fd = f.denominator
                if fd != 1:
                    s = fd // gcd(den, fd)
                    if s > 1:       # widen the row's common denominator
                        core.arows[ci] = [(j, a * s)
                                          for j, a in core.arows[ci]]
                        den = core.row_den[ci] = den * s
                core.arows[ci].append((c, (f * den).numerator))
            core.acols[c] = vec
            core.labels[c] = ("v", name)
            self._col_names[c] = name
            block.append(c)
        if block:
            core.blocks.append(block)
        return self.resolve()

    def resolve(self) -> MasterResult:
        """Phase-2 continuation from the current (feasible) basis."""
        core = self.core
        assert core is not None
        piv0 = int(core.stats["pivots"])
        core.compute_d(2)
        status = core.primal(2, self.solver.max_iterations)
        pivots = int(core.stats["pivots"]) - piv0
        if status == "unbounded":
            return MasterResult(SolveStatus.UNBOUNDED, pivots=pivots)
        if status != "optimal":
            self.core = None    # poisoned; caller re-solves from scratch
            return MasterResult(SolveStatus.ERROR, pivots=pivots)
        by_idx: Dict[int, Fraction] = {}
        values: Dict[str, Fraction] = {}
        basic_struct: Set[int] = set()
        for pos, c in enumerate(core.basis):
            x = core.x_b[pos]
            if c < core.n:
                basic_struct.add(c)
                x = x + core.lbs[c]
                if x:
                    by_idx[c] = x
                    values[self.lp.variables[c].name] = x
            elif x and c in self._col_names:
                values[self._col_names[c]] = x
        for j in range(core.n):
            if j not in basic_struct and core.lbs[j]:
                by_idx[j] = core.lbs[j]
                values[self.lp.variables[j].name] = core.lbs[j]
        return MasterResult(SolveStatus.OPTIMAL,
                            objective=self.lp.objective.evaluate(by_idx),
                            duals=core.extract_duals(), values=values,
                            pivots=pivots)
