"""Backend auto-dispatch, presolve, solve memoization, and warm starts.

Rational LPs are shrunk by :mod:`repro.lp.presolve` first (on by
default; exactly reversible via its ``Postsolve``), then
``backend="auto"`` sends models up to :data:`EXACT_VAR_LIMIT` variables
to an exact rational simplex (bit-exact rationals, as the paper's
pipeline assumes) and everything else to HiGHS, followed by a
rationalization attempt so downstream exact machinery can still run
whenever the optimum has modest denominators.  The limit is checked on
the *reduced* model, so presolve can pull an oversized LP back onto the
exact path.

Two exact engines sit behind the ``"exact"`` route:

- the fraction-free **tableau** simplex (:mod:`repro.lp.exact_simplex`)
  for models up to :data:`TABLEAU_VAR_LIMIT` presolved variables and for
  every ``canonical=True`` solve (its lexicographic tie-break is defined
  on the tableau), and
- the **revised** simplex (:mod:`repro.lp.revised_simplex`) — LU-
  factorized basis, float-assisted crash, dual re-solve entry — for
  everything above, up to :data:`EXACT_VAR_LIMIT`.  ``dual=True``
  re-solves always use it, whatever the size.

Both return bit-identical optimal objectives (the differential suite in
``tests/lp/test_revised_simplex.py`` enforces it), so the split is purely
a performance decision: below ~5000 variables the dense tableau's cheap
pivots win; above it the revised path's sparse LU and crash basis are the
only thing that finishes.

A third exact route sits on top for the largest collective LPs:
Dantzig-Wolfe **column generation** (:mod:`repro.lp.colgen`,
``backend="colgen"``).  Under ``"auto"``, rational models above
:data:`COLGEN_VAR_LIMIT` presolved variables whose raw form decomposes
into >= 2 commodity blocks route there instead of the monolithic
revised solve; the restricted masters themselves reuse the revised
engine.  Pricing parallelism (``jobs``) never changes the returned
solution, so it is not part of the cache key.

Three layers of reuse sit in front of the solvers:

- **Memo cache.**  Solutions are cached under a canonical hash of the
  model (variables with bounds, constraints with sorted coefficients,
  objective, sense).  The paper pipeline re-solves the same LP repeatedly
  (throughput, tree extraction, scheduling, simulation all start from
  ``solve_reduce``), so identical rebuilds hit the cache instead of the
  simplex.  Bounded FIFO (:data:`CACHE_SIZE` entries); ``clear_cache()``
  resets it (useful in benchmarks).
- **Disk cache** (:mod:`repro.lp.diskcache`, opt-in).  The same keys,
  persisted across processes under a configurable directory
  (``REPRO_LP_CACHE_DIR`` or ``repro.lp.diskcache.set_cache_dir``).
  Memory misses fall through to disk before the solver runs; fresh
  optima are written back.  ``repro cache`` inspects/clears the store.
- **Warm starts.**  After an exact solve, the optimal basis is remembered
  per *family* (default: the LP name up to the first ``"("``, so e.g.
  every ``SSR(...)`` instance shares one slot) as a tuple of stable
  variable/constraint-name labels.  A ``warm_start=True`` solve in the
  family crash-pivots that basis in; labels that don't exist in the new LP
  are skipped, so warm starts transfer across growing platform families
  (see ``benchmarks/test_x3_x4_prefix_scaling.py``).  A failed crash falls
  back to a cold start, so the *objective* is never affected — but the
  returned vertex can differ from a cold solve's, hence opt-in.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import replace
from typing import Dict, Optional, Tuple

from repro.lp import colgen as colgen_mod
from repro.lp import diskcache
from repro.lp.exact_simplex import ExactSimplexSolver
from repro.lp.highs import HighsSolver
from repro.lp.model import LinearProgram
from repro.lp.presolve import presolve as run_presolve
from repro.lp.rationalize import rationalize_solution
from repro.lp.revised_simplex import RevisedSimplexSolver
from repro.lp.solution import LPSolution, SolveStatus

#: LPs with at most this many variables go to an exact engine by default.
#: The revised simplex (float-assisted crash + sparse rational LU) solves
#: the fig9 8-host pipelined all-reduce (~6.5k presolved vars) in seconds
#: and the 128-node ring scatter (~32k vars) in well under a minute, so
#: paper-scale platforms, the scaled benchmark tiers, and the composite
#: collectives all stay exact.  The limit is checked against the model
#: *after* presolve, so an LP that shrinks under it still gets the exact
#: path.
EXACT_VAR_LIMIT = 50000

#: Within the exact route, models up to this many presolved variables use
#: the fraction-free tableau simplex; larger ones use the revised simplex.
#: The tableau's dense pivots are cheaper per iteration on small models
#: and it is the reference ("oracle") implementation the differential
#: suite compares against; ``canonical=True`` solves always use it.
TABLEAU_VAR_LIMIT = 5000

#: Above this many presolved variables, ``backend="auto"`` tries the
#: Dantzig-Wolfe column generation (:mod:`repro.lp.colgen`) before the
#: monolithic revised simplex, provided the LP decomposes into at least
#: two commodity blocks tied only by shared capacity rows.  The
#: threshold sits above the tableau limit — colgen's restricted masters
#: carry overhead per round that only pays off once the raw LP is large —
#: and below the fig9 8-host pipelined composite (~6.5k presolved vars),
#: the first model where the monolithic solve takes whole seconds.
COLGEN_VAR_LIMIT = 6000

#: Max entries kept in the solve memo cache (FIFO eviction).
CACHE_SIZE = 128

_memo: "OrderedDict[str, LPSolution]" = OrderedDict()
_warm_bases: Dict[str, Tuple] = {}
_disk_hits = 0


def canonical_key(lp: LinearProgram) -> str:
    """Stable hash of the model (structure canonicalized).

    Two LPs built independently with the same variables (names, order,
    bounds), the same constraints in the same order (coefficients are
    sorted by variable index) and the same objective hash identically,
    regardless of constraint *names* or coefficient dict iteration order.
    Variable names are deliberately part of the identity: cached solutions
    carry name-addressed ``basis_labels`` and are re-attached to the
    caller's LP for ``by_name`` lookups, so name-blind hits would be
    unsound.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(repr(lp.sense_max).encode())
    for v in lp.variables:
        h.update(f"|{v.name};{v.lb!r};{v.ub!r}".encode())
    exprs = [lp.objective] + [c.expr for c in lp.constraints]
    senses = ["obj"] + [c.sense for c in lp.constraints]
    for sense, e in zip(senses, exprs):
        h.update(f"|{sense};{e.constant!r};".encode())
        for j, c in sorted(e.coefs.items()):
            if c:
                h.update(f"{j}:{c!r},".encode())
    return h.hexdigest()


def clear_cache() -> None:
    """Drop all in-process memoized solutions and warm-start bases.

    The on-disk store (when enabled) is intentionally untouched — clear
    it with :func:`repro.lp.diskcache.clear` or ``repro cache clear``.
    """
    _memo.clear()
    _warm_bases.clear()


def cache_stats() -> Dict[str, object]:
    disk = diskcache.stats()
    return {"memo_entries": len(_memo), "warm_families": len(_warm_bases),
            "disk_enabled": disk["enabled"], "disk_entries": disk["entries"],
            "disk_hits": _disk_hits}


def _family_of(lp: LinearProgram) -> str:
    return lp.name.split("(", 1)[0]


def _solve_exact(lp: LinearProgram, warm_start: bool,
                 family: Optional[str], canonical: bool,
                 warm_basis: Optional[Tuple] = None,
                 engine: str = "tableau",
                 dual: bool = False) -> LPSolution:
    fam = family if family is not None else _family_of(lp)
    warm = warm_basis if warm_basis is not None else (
        _warm_bases.get(fam) if warm_start else None)
    if engine == "revised":
        sol = RevisedSimplexSolver().solve(lp, warm_basis=warm, dual=dual)
    else:
        sol = ExactSimplexSolver().solve(lp, warm_basis=warm,
                                         canonical=canonical)
    if sol.optimal and sol.basis_labels is not None:
        _warm_bases[fam] = sol.basis_labels
    return sol


def solve(lp: LinearProgram, backend: str = "auto",
          exact_var_limit: int = EXACT_VAR_LIMIT,
          rationalize: bool = True, cache: bool = True,
          warm_start: bool = False,
          warm_basis: Optional[Tuple] = None,
          family: Optional[str] = None,
          canonical: bool = False,
          cache_tag: Optional[str] = None,
          presolve: bool = True,
          dual: bool = False,
          pricing: Optional[Tuple] = None,
          jobs: Optional[int] = None) -> LPSolution:
    """Solve ``lp`` with the requested backend.

    Parameters
    ----------
    backend:
        ``"exact"`` — rational simplex (requires rational data): the
        tableau engine up to :data:`TABLEAU_VAR_LIMIT` presolved
        variables, the revised engine above it;
        ``"tableau"`` / ``"revised"`` — force a specific exact engine
        (differential tests and benchmarks);
        ``"colgen"`` — Dantzig-Wolfe column generation
        (:func:`repro.lp.colgen.solve_colgen`; requires rational data,
        falls back to a direct exact solve when the LP has no block
        structure);
        ``"highs"`` — scipy/HiGHS float solve;
        ``"auto"`` — exact when the LP is rational and (after presolve)
        has at most ``exact_var_limit`` variables, HiGHS otherwise.
        Within the exact window, models above :data:`COLGEN_VAR_LIMIT`
        presolved variables that decompose into >= 2 commodity blocks
        route to column generation instead of the monolithic revised
        simplex.
    pricing:
        Optional tuple of commodity pricing-graph descriptors (see
        :func:`repro.lp.colgen.solve_colgen`) enabling the shortest-path
        pricer; collective specs supply it via their
        ``pricing_graphs`` hook.  Only consulted on the colgen routes.
    jobs:
        Worker processes for parallel pricing (default: ``REPRO_JOBS``
        env var, else serial).  Never affects the returned solution —
        column admission is ordered by a stable key — so it is not part
        of the cache key.
    dual:
        Exact path only: enter the dual simplex from the crashed basis
        (``warm_basis`` is the intended companion — the tightened-
        perturbation re-solves of :mod:`repro.lp.resolve` pass the old
        optimal basis, which stays dual feasible when constraints only
        tighten).  Forces the revised engine, which owns the dual
        method; incompatible with ``canonical=True``.
    rationalize:
        After a HiGHS solve of a rational LP, attempt to snap the solution
        to exact rationals (verified); on success the returned solution has
        ``exact=True``.
    cache:
        Memoize solutions under :func:`canonical_key`; repeated solves of
        an identical model return the cached solution (re-attached to the
        caller's LP object so ``by_name`` etc. keep working).
    warm_start:
        Seed the exact solver with the last optimal basis recorded for this
        LP's ``family`` (and record this solve's basis on success).
        Off by default: a warm start may land on a *different optimal
        vertex* than a cold solve, and downstream artifacts (tree
        extraction, schedules) depend on which vertex they get — opt in
        where only the objective/speed matters.
    warm_basis:
        Explicit basis-label tuple to crash in (overrides the ``family``
        slot) — the incremental re-solve path of :mod:`repro.lp.resolve`
        passes the previous solution's ``basis_labels`` here.  Implies a
        ``cache_tag`` of ``"warm"`` unless one is given, so the possibly
        different optimal vertex never collides with cold cache entries.
    cache_tag:
        Extra discriminator folded into the memo/disk cache key (``None``
        leaves the key exactly as before).  Perturbed-platform re-solves
        tag their entries with the perturbation-delta fingerprint.
    family:
        Warm-start slot name; defaults to ``lp.name`` up to the first
        ``"("`` so same-shape LPs on different platforms share a slot.
    canonical:
        Exact backend only: lexicographically tie-break among optimal
        vertices (see :class:`repro.lp.exact_simplex.ExactSimplexSolver`),
        so the returned vertex no longer depends on pricing order.
        Slower; opt in where downstream artifacts must be stable.
    presolve:
        Shrink the model exactly (:mod:`repro.lp.presolve`) before either
        backend and map the solution back afterwards.  On by default for
        rational LPs; float LPs skip it.  Under ``canonical=True`` the
        restricted, canonical-safe rule set runs, so the returned vertex
        is identical with presolve on or off.
    """
    global _disk_hits
    if backend not in ("exact", "tableau", "revised", "highs", "auto",
                       "colgen"):
        raise ValueError(f"unknown backend {backend!r}")
    if dual and canonical:
        raise ValueError("dual=True needs the revised engine, which has "
                         "no canonical mode")
    if dual and backend in ("tableau", "highs", "colgen"):
        raise ValueError(f"dual=True is incompatible with backend="
                         f"{backend!r}")
    if canonical and backend in ("revised", "colgen"):
        raise ValueError("canonical=True is tableau-only; use "
                         "backend='exact' or 'tableau'")
    rational = lp.is_rational()
    # colgen detects block structure on the raw model and expands its
    # column optimum back to raw edge flows itself, so it owns the whole
    # transform pipeline — no presolve/postsolve around it
    use_presolve = presolve and rational and backend != "colgen"

    if warm_basis is not None and cache_tag is None:
        cache_tag = "warm"  # a warm vertex must not shadow the cold one

    key = None
    if cache:
        # backend + var limits + dual pin the routing decision, so a
        # cache hit never has to re-derive it (which would require
        # presolving first)
        tag = f"t{cache_tag};" if cache_tag is not None else ""
        # pricing graphs can steer colgen to a different optimal vertex
        # (path columns vs generic LP columns), so their presence splits
        # the key on the colgen-capable routes; ``jobs`` never does
        gtag = ("g;" if pricing is not None
                and backend in ("auto", "colgen") else "")
        key = (f"{backend};{exact_var_limit};{TABLEAU_VAR_LIMIT};"
               f"d{int(dual)};{rationalize};{int(canonical)};"
               f"p{int(use_presolve)};{gtag}{tag}{canonical_key(lp)}")
        hit = _memo.get(key)
        if hit is not None:
            _memo.move_to_end(key)
            return replace(hit, lp=lp)
        disk_hit = diskcache.load(key)
        if disk_hit is not None:
            _disk_hits += 1
            _memo[key] = disk_hit
            if len(_memo) > CACHE_SIZE:
                _memo.popitem(last=False)
            return replace(disk_hit, lp=lp)

    pres = None
    model = lp
    if use_presolve:
        pres = run_presolve(lp, for_canonical=canonical)
        if pres.infeasible:
            return LPSolution(SolveStatus.INFEASIBLE, backend="presolve",
                              lp=lp)
        model = pres.lp

    exact_route = backend in ("exact", "tableau", "revised") or (
        backend == "auto" and rational
        and model.num_vars() <= exact_var_limit)

    colgen_route = backend == "colgen"
    colgen_struct = None
    if (backend == "auto" and exact_route and not dual and not canonical
            and model.num_vars() > COLGEN_VAR_LIMIT):
        # structure detection runs on the *raw* model: colgen bypasses
        # presolve entirely and returns raw edge-flow values
        colgen_struct = colgen_mod.detect(lp, pricing=pricing)
        if colgen_struct is not None and len(colgen_struct.blocks) >= 2:
            colgen_route = True
        else:
            colgen_struct = None

    if colgen_route:
        sol = colgen_mod.solve_colgen(lp, pricing=pricing, jobs=jobs,
                                      structure=colgen_struct)
        pres = None  # solution is already in raw-variable space
    elif exact_route:
        if backend in ("tableau", "revised"):
            engine = backend
        elif canonical or (model.num_vars() <= TABLEAU_VAR_LIMIT
                           and not dual):
            engine = "tableau"
        else:
            engine = "revised"
        # family defaulting happens inside _solve_exact; presolve keeps
        # lp.name, so the reduced model resolves to the same family
        sol = _solve_exact(model, warm_start, family, canonical,
                           warm_basis=warm_basis, engine=engine, dual=dual)
    else:
        sol = HighsSolver().solve(model)

    if (sol.backend == "highs" and rationalize and sol.optimal
            and rational):
        snapped: Optional[LPSolution] = rationalize_solution(sol)
        if snapped is not None:
            sol = snapped

    if pres is not None:
        if sol.optimal:
            values = pres.postsolve.values(sol.values)
            sol = replace(sol, values=values,
                          objective=lp.objective.evaluate(values), lp=lp)
        else:
            # infeasible/unbounded transfer directly (the reductions are
            # status-preserving); errors keep their diagnostics
            sol = replace(sol, lp=lp)

    # every dispatched solve records both sides of the raw-vs-presolved
    # split, so downstream bench records are unambiguous about which
    # model a var count refers to (they coincide when presolve was
    # skipped; colgen routing decisions read the presolved count)
    counts = {"vars_raw": lp.num_vars(), "vars_presolved": model.num_vars()}
    if sol.stats is None:
        sol = replace(sol, stats=counts)
    else:
        sol.stats.update(counts)

    if cache and key is not None and sol.optimal:
        # store without the model itself: the hit path re-attaches the
        # caller's LP, and keeping 128 full LinearPrograms alive would
        # pin tens of MB on fig9-tier pipelines
        _memo[key] = replace(sol, lp=None)
        if len(_memo) > CACHE_SIZE:
            _memo.popitem(last=False)
        diskcache.store(key, sol)  # no-op unless a cache dir is configured
    return sol
