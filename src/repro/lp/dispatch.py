"""Backend auto-dispatch for LP solving.

``backend="auto"`` sends small rational LPs to the exact simplex (bit-exact
rationals, as the paper's pipeline assumes) and everything else to HiGHS,
followed by a rationalization attempt so downstream exact machinery can still
run whenever the optimum has modest denominators.
"""

from __future__ import annotations

from typing import Optional

from repro.lp.exact_simplex import ExactSimplexSolver
from repro.lp.highs import HighsSolver
from repro.lp.model import LinearProgram
from repro.lp.rationalize import rationalize_solution
from repro.lp.solution import LPSolution

#: LPs with at most this many variables go to the exact simplex by default.
EXACT_VAR_LIMIT = 220


def solve(lp: LinearProgram, backend: str = "auto",
          exact_var_limit: int = EXACT_VAR_LIMIT,
          rationalize: bool = True) -> LPSolution:
    """Solve ``lp`` with the requested backend.

    Parameters
    ----------
    backend:
        ``"exact"`` — rational simplex (requires rational data);
        ``"highs"`` — scipy/HiGHS float solve;
        ``"auto"`` — exact when the LP is rational and small, HiGHS otherwise.
    rationalize:
        After a HiGHS solve of a rational LP, attempt to snap the solution to
        exact rationals (verified); on success the returned solution has
        ``exact=True``.
    """
    if backend == "exact":
        return ExactSimplexSolver().solve(lp)
    if backend == "highs":
        sol = HighsSolver().solve(lp)
    elif backend == "auto":
        if lp.is_rational() and lp.num_vars() <= exact_var_limit:
            return ExactSimplexSolver().solve(lp)
        sol = HighsSolver().solve(lp)
    else:
        raise ValueError(f"unknown backend {backend!r}")

    if rationalize and sol.optimal and lp.is_rational():
        snapped: Optional[LPSolution] = rationalize_solution(sol)
        if snapped is not None:
            return snapped
    return sol
