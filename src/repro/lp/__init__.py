"""Linear-programming substrate.

The paper solves its steady-state LPs *in rational numbers* with tools like
``lpsolve`` or Maple, then multiplies by the lcm of denominators to obtain an
integer periodic schedule.  Neither tool is available here, so this package
provides the substrate from scratch:

- :mod:`repro.lp.model` — a small PuLP-flavoured modeling layer
  (:class:`LinearProgram`, :class:`Variable`, affine expressions,
  ``<=``/``>=``/``==`` constraints).  Expression building is linear-time:
  ``lin_sum`` and :meth:`LinExpr.add_term` accumulate in place, so the LP
  builders in :mod:`repro.core` stay O(terms) even on 5–10× scaled
  platforms.
- :mod:`repro.lp.presolve` — fraction-preserving model shrinking run
  before either backend: fixed variables, singleton/empty rows, zero
  columns, duplicate and dominated one-port rows, free column
  singletons; a ``Postsolve`` object maps the reduced solution back to
  the original variable names, exactly.
- :mod:`repro.lp.exact_simplex` — the *tableau* exact backend: a sparse
  fraction-free two-phase simplex (integer rows over a per-row common
  denominator, an exact column index so pivots touch only rows with a
  nonzero in the entering column, Devex partial pricing with Bland
  fallback on degeneracy cycles, Markowitz basis repair instead of a
  priced phase 1 when the crash basis is already feasible, artificial
  columns physically dropped after Phase 1, warm starts from a
  label-addressed basis).  Bit-exact rational optima, exactly what the
  lcm-of-denominators step needs.
- :mod:`repro.lp.revised_simplex` — the *revised* exact backend for large
  models: never materializes the tableau; sparse LU factorization of the
  basis over ``Fraction`` with Markowitz pivoting, product-form eta
  updates between refactorizations, FTRAN/BTRAN solves, Devex pricing
  over commodity-block partial sweeps, a perturbed floating-point crash
  that lands on (or next to) the optimal basis, and a **dual simplex**
  entry from a recorded basis for tightened re-solves.
- :mod:`repro.lp.colgen` — Dantzig-Wolfe **column generation** over the
  LPs' commodity-block structure: a restricted master holding only the
  shared capacity rows over tree/path columns, priced per commodity by
  exact-dual shortest paths (or small pricing LPs), optionally across a
  process pool — deterministic regardless of worker count.
- :mod:`repro.lp.dense_simplex` — the original dense ``Fraction`` tableau,
  kept as a slow-but-obviously-correct oracle for differential tests.
- :mod:`repro.lp.highs` — a floating-point backend on
  :func:`scipy.optimize.linprog` (HiGHS) for instances past the exact
  dispatch limit.
- :mod:`repro.lp.rationalize` — snapping float solutions to rationals with
  exact feasibility verification.
- :func:`repro.lp.solve` — auto-dispatch plus a solve memo-cache and
  warm-start bookkeeping.

Backend selection and warm starts
---------------------------------
``solve(lp)`` (``backend="auto"``) presolves rational LPs, then picks an
exact engine whenever the reduced model has at most
:data:`repro.lp.dispatch.EXACT_VAR_LIMIT` variables (50000 — covering the
fig9 8-host pipelined all-reduce and the 128-node ring scatter tier), else
HiGHS followed by verified rationalization.  Within the exact route the
fraction-free tableau serves models up to
:data:`repro.lp.dispatch.TABLEAU_VAR_LIMIT` (5000) presolved variables
plus every ``canonical=True`` solve, and the revised simplex serves
everything larger and every ``dual=True`` re-solve; both produce
bit-identical objectives (enforced by the differential suite).  Models
above :data:`repro.lp.dispatch.COLGEN_VAR_LIMIT` (6000) presolved
variables that decompose into commodity blocks route to column
generation (:mod:`repro.lp.colgen`) first — same exact optima, masters
orders of magnitude smaller.
Identical models are memoized
under a canonical hash (:func:`repro.lp.dispatch.canonical_key`), so the
pipeline's repeated ``solve_reduce`` calls cost one simplex run.  Exact
solves also record their optimal basis per LP *family* (name up to the
first ``"(``") as ``("v", var-name)`` / ``("s", constraint-name)`` labels;
the next solve in the family crash-pivots that basis in and skips Phase 1
when it is still primal feasible.  ``repro.lp.dispatch.clear_cache()``
resets both layers (benchmarks do this to measure cold solves).
"""

from repro.lp.model import Constraint, LinearProgram, LinExpr, Variable, lin_sum
from repro.lp.solution import LPSolution, SolveStatus
from repro.lp.exact_simplex import ExactSimplexSolver
from repro.lp.revised_simplex import RevisedSimplexSolver
from repro.lp.dense_simplex import DenseSimplexSolver
from repro.lp.highs import HighsSolver
from repro.lp.rationalize import rationalize_solution
from repro.lp.colgen import solve_colgen
from repro.lp.dispatch import canonical_key, clear_cache, solve

__all__ = [
    "Constraint",
    "LinearProgram",
    "LinExpr",
    "Variable",
    "lin_sum",
    "LPSolution",
    "SolveStatus",
    "ExactSimplexSolver",
    "RevisedSimplexSolver",
    "DenseSimplexSolver",
    "HighsSolver",
    "rationalize_solution",
    "solve_colgen",
    "canonical_key",
    "clear_cache",
    "solve",
]
