"""Linear-programming substrate.

The paper solves its steady-state LPs *in rational numbers* with tools like
``lpsolve`` or Maple, then multiplies by the lcm of denominators to obtain an
integer periodic schedule.  Neither tool is available here, so this package
provides the substrate from scratch:

- :mod:`repro.lp.model` — a small PuLP-flavoured modeling layer
  (:class:`LinearProgram`, :class:`Variable`, affine expressions,
  ``<=``/``>=``/``==`` constraints),
- :mod:`repro.lp.exact_simplex` — a two-phase primal simplex over
  :class:`fractions.Fraction` with Bland's anti-cycling rule: bit-exact
  rational optima, exactly what the lcm-of-denominators step needs,
- :mod:`repro.lp.highs` — a floating-point backend on
  :func:`scipy.optimize.linprog` (HiGHS) for larger instances,
- :mod:`repro.lp.rationalize` — snapping float solutions to rationals with
  exact feasibility verification,
- :func:`repro.lp.solve` — auto-dispatch between the two backends.
"""

from repro.lp.model import Constraint, LinearProgram, LinExpr, Variable, lin_sum
from repro.lp.solution import LPSolution, SolveStatus
from repro.lp.exact_simplex import ExactSimplexSolver
from repro.lp.highs import HighsSolver
from repro.lp.rationalize import rationalize_solution
from repro.lp.dispatch import solve

__all__ = [
    "Constraint",
    "LinearProgram",
    "LinExpr",
    "Variable",
    "lin_sum",
    "LPSolution",
    "SolveStatus",
    "ExactSimplexSolver",
    "HighsSolver",
    "rationalize_solution",
    "solve",
]
