"""Sparse fraction-free two-phase primal simplex over exact rationals.

This is the stand-in for the paper's use of ``lpsolve``/Maple: it returns
the *exact rational* optimum of the steady-state LPs, so that the period
``T`` (lcm of the denominators of all variables, Section 3.1) and the
integer per-period message counts are well defined.

This module replaces the original dense ``Fraction`` tableau (kept as
:class:`repro.lp.dense_simplex.DenseSimplexSolver` for differential
testing).  Design choices, in order of measured impact:

- **Sparse rows with an exact column index.**  Each tableau row is a dict
  ``{column: int numerator}``, and a :class:`_Tableau` maintains the exact
  inverse map ``column -> {rows with a nonzero}`` through every update
  (fill-in adds, cancellation removes).  A pivot therefore touches *only*
  the rows with a nonzero in the entering column — never scans the row
  list — and the ratio test walks the same set.  The steady-state LPs are
  very sparse (a ``send`` variable appears in ~5 constraints), so this
  removes most of the per-pivot work.
- **Fraction-free integer arithmetic.**  A row stores integer numerators
  over one positive common denominator, so a pivot update is pure integer
  multiply/subtract:

      row' = (row * p_den - a * pivot_row) / (den * p_den)

  followed by a *single* gcd pass per row (``math.gcd`` is C-level and
  variadic).  :class:`fractions.Fraction` pays ~3 gcds per arithmetic op;
  here the per-op cost is an integer multiply.  Normalizing the pivot row
  costs nothing: dividing ``row_i`` by its pivot entry ``p`` is just
  re-labelling the denominator to ``p``.
- **Phase 1 is skipped when the crash basis is already feasible.**  The
  collective LPs' conservation rows are equalities with rhs 0, so the
  all-slack/artificial start already has phase-1 objective 0; driving it
  "optimal" used to cost hundreds of degenerate pivots with full
  reduced-cost maintenance.  Now, when the initial artificial sum is 0,
  the solver goes straight to the basis-repair step: each leftover
  artificial row (rhs 0, so any pivot preserves feasibility) is pivoted
  onto the structural column with the fewest tableau nonzeros
  (Markowitz-style fill control), processing sparse rows first.
- **Pricing.**  Both improving rules use a *partial-pricing candidate
  list*: a full scan of the reduced-cost row happens only when the
  current shortlist is exhausted, and optimality is only ever declared
  on a full scan.  ``"devex"`` (default) — Devex reference weights
  (Forrest & Goldfarb); dramatically fewer pivots on degenerate faces
  (the ``complete7`` tier thrashes for thousands of pivots under
  Dantzig), at a small per-pivot bookkeeping cost.  Weight arithmetic is
  float-approximate, which is safe: pricing only picks the pivot *path*,
  never the arithmetic.  ``"dantzig"`` — most negative reduced cost.
  Both fall back to Bland's anti-cycling rule after
  :data:`DEGENERACY_LIMIT` consecutive degenerate pivots, until the next
  nondegenerate pivot, so termination is still guaranteed.  ``"bland"``
  — pure Bland (slow, debugging only).
- **Artificials are physically dropped** after Phase 1 (dict keys deleted
  and the column index rebuilt), instead of zeroed columns that every
  later pivot would still scan.
- **Warm starts.**  ``solve(lp, warm_basis=labels)`` crash-pivots a
  previously optimal basis (identified by stable variable/constraint-name
  labels, so it transfers across growing LP families) into the tableau; if
  the resulting basis is primal feasible Phase 1 is skipped entirely and
  Phase 2 usually needs a handful of pivots.  A *nearly*-feasible crash —
  the incremental re-solve case, where a capacity-tightening perturbation
  invalidates only the touched rows (:mod:`repro.lp.resolve`) — goes
  through a feasibility-restoring repair: each negative-rhs row is negated
  and handed a fresh basic artificial, and phase 1 restarts from that
  near-feasible vertex instead of from scratch.  Only a badly infeasible
  crash (more than ``max(8, rows/4)`` violated rows) falls back to a cold
  start — either way a warm start can never change the optimum, only the
  route to it.
- **Canonical vertex (opt-in).**  ``solve(lp, canonical=True)`` runs a
  lexicographic phase 3 after optimality: over the optimal face it
  minimizes ``x_0``, then ``x_1`` with ``x_0`` held at its minimum, and
  so on.  The returned vertex is the lex-smallest optimal solution — a
  function of the LP alone, independent of pricing rule, warm start, or
  pivot history.  Tests that pin schedule/tree artifacts use this instead
  of depending on a pricing rule's tie-breaking.

Bounds handling is unchanged from the dense solver: lower bounds are
shifted out (``y = x - lb``), upper bounds become rows, Phase 1 minimizes
the sum of artificial variables, and redundant rows are dropped.  Run
:func:`repro.lp.presolve.presolve` first (the dispatch layer does) to
shrink the model before any of this starts.
"""

from __future__ import annotations

import heapq
from fractions import Fraction
from math import gcd
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lp.model import EQ, GE, LE, LinearProgram
from repro.lp.solution import LPSolution, SolveStatus

#: Sentinel column index holding the right-hand side of each sparse row.
RHS = -1

#: Consecutive degenerate pivots tolerated under Dantzig/Devex pricing
#: before switching to Bland's rule (reset on the next nondegenerate pivot).
DEGENERACY_LIMIT = 40

#: Partial-pricing shortlist size: a full reduced-cost scan refreshes up
#: to this many candidate columns, and pivots re-score only the shortlist.
#: Swept over the benchmark tiers: 8 beats 16/32/64 on fig9 and ring48
#: and stays near-best on complete7.
CANDIDATE_LIST_SIZE = 8

#: Devex weights above this trigger a reference-framework reset.
DEVEX_RESET = 1e10

Row = Dict[int, int]
Label = Tuple[str, object]


def _reduce_row(d: Row, den: int) -> Tuple[Row, int]:
    """Divide ``d``/``den`` by their collective gcd (``den`` stays > 0)."""
    if den == 1 or not d:
        return d, (den if d else 1)
    g = gcd(den, *d.values())
    if g > 1:
        den //= g
        for c in d:
            d[c] //= g
    return d, den


def _row_sub(d: Row, den: int, a: int, pd: Row, pden: int) -> Tuple[Row, int]:
    """Return ``(d/den) - (a/den) * (pd/pden)`` as a normalized sparse row.

    This is the fraction-free pivot update for *untracked* rows (the
    reduced-cost rows); tableau rows go through :meth:`_Tableau.sub_into`,
    which additionally maintains the column index.
    """
    if pden == 1:
        nd = dict(d)
    else:
        nd = {c: v * pden for c, v in d.items()}
    for c, pv in pd.items():
        nv = nd.get(c, 0) - a * pv
        if nv:
            nd[c] = nv
        else:
            nd.pop(c, None)
    return _reduce_row(nd, den * pden)


def _fdiv(a: int, b: int) -> float:
    """``a / b`` as a float; a result beyond float range collapses to
    signed infinity (callers only use this for pricing scores, where an
    infinite Devex weight simply forces a reference-framework reset)."""
    try:
        return a / b
    except OverflowError:
        return float("inf") if (a < 0) == (b < 0) else float("-inf")


class _Tableau:
    """Tableau rows plus the exact column -> row-set inverse index.

    ``D[i]`` is a sparse integer row over common denominator ``W[i] > 0``;
    ``basis[i]`` is its basic column.  ``colrows[c]`` is the *exact* set
    of row indices with a nonzero in column ``c`` (RHS excluded),
    maintained through fill-in and cancellation by :meth:`sub_into`.
    """

    __slots__ = ("D", "W", "basis", "colrows")

    def __init__(self, D: List[Row], W: List[int], basis: List[int]) -> None:
        self.D = D
        self.W = W
        self.basis = basis
        self.colrows: Dict[int, Set[int]] = {}
        self.reindex()

    def reindex(self) -> None:
        self.colrows.clear()
        for r, d in enumerate(self.D):
            for c in d:
                if c != RHS:
                    self.colrows.setdefault(c, set()).add(r)

    def rows_with(self, c: int):
        """Exact set of rows with a nonzero in column ``c``."""
        return self.colrows.get(c, ())

    def col_count(self, c: int) -> int:
        s = self.colrows.get(c)
        return len(s) if s else 0

    def sub_into(self, r: int, a: int, pd: Row, pden: int) -> None:
        """``row_r -= (a/W_r) * (pd/pden)`` in place, index-maintained."""
        d = self.D[r]
        if pden != 1:
            for c in d:
                d[c] *= pden
        colrows = self.colrows
        get = d.get
        for c, pv in pd.items():
            before = get(c)
            if before is None:  # zeros are never stored: None == absent
                d[c] = -a * pv  # a, pv nonzero, so this is fill-in
                if c != RHS:
                    s = colrows.get(c)
                    if s is None:
                        colrows[c] = {r}
                    else:
                        s.add(r)
            else:
                nv = before - a * pv
                if nv:
                    d[c] = nv
                else:
                    del d[c]
                    if c != RHS:
                        colrows[c].discard(r)
        _, self.W[r] = _reduce_row(d, self.W[r] * pden)

    def pivot(self, i: int, j: int) -> None:
        """Pivot on entry (i, j): row i gets coefficient 1 at column j."""
        D, W = self.D, self.W
        d = D[i]
        p = d[j]
        if p == 0:
            raise ZeroDivisionError("pivot on zero entry")
        if p < 0:
            for c in d:
                d[c] = -d[c]
            p = -p
        d, p = _reduce_row(d, p)  # re-labelled denominator: row_i / pivot
        D[i], W[i] = d, p
        for r in list(self.colrows.get(j, ())):
            if r != i:
                a = D[r].get(j)
                if a:
                    self.sub_into(r, a, d, p)
        self.basis[i] = j

    def drop_rows(self, idxs: List[int]) -> None:
        """Delete rows (ascending ``idxs``) and rebuild the index."""
        for i in reversed(idxs):
            del self.D[i], self.W[i], self.basis[i]
        self.reindex()

    def drop_cols_from(self, first: int) -> None:
        """Physically delete every column ``>= first`` (the artificials)."""
        for c in [c for c in self.colrows if c >= first]:
            for r in self.colrows[c]:
                del self.D[r][c]
            del self.colrows[c]


class ExactSimplexSolver:
    """Exact rational simplex solver for :class:`LinearProgram` instances.

    Parameters
    ----------
    max_iterations:
        Hard pivot budget over both phases; overruns return a
        :class:`LPSolution` with ``status == SolveStatus.ERROR`` and a
        diagnostic ``message`` (they do not raise).
    pricing:
        ``"devex"`` (default) — Devex reference weights over a
        partial-pricing candidate list (fewest pivots on the highly
        degenerate collective LPs); ``"dantzig"`` — most negative
        reduced cost; both fall back to Bland's anti-cycling rule on
        degeneracy streaks.  ``"bland"`` — pure Bland's rule (slow,
        only useful for debugging).
    """

    def __init__(self, max_iterations: int = 200_000,
                 pricing: str = "devex") -> None:
        if pricing not in ("devex", "dantzig", "bland"):
            raise ValueError(f"unknown pricing rule {pricing!r}")
        self.max_iterations = max_iterations
        self.pricing = pricing

    # ------------------------------------------------------------------
    def solve(self, lp: LinearProgram,
              warm_basis: Optional[Sequence[Label]] = None,
              canonical: bool = False) -> LPSolution:
        if not lp.is_rational():
            raise ValueError(
                "exact simplex requires int/Fraction data; convert the LP or "
                "use the HiGHS backend")
        n = lp.num_vars()
        lbs = [Fraction(v.lb) for v in lp.variables]

        # Raw rows:  sum_j a_ij * y_j  (sense)  b_i   with y = x - lb >= 0.
        raw: List[Tuple[Dict[int, Fraction], str, Fraction, Label]] = []
        for ci, con in enumerate(lp.constraints):
            b = -Fraction(con.expr.constant)
            coefs: Dict[int, Fraction] = {}
            for j, c in con.expr.coefs.items():
                c = Fraction(c)
                if c:
                    coefs[j] = c
                    b -= c * lbs[j]
            raw.append((coefs, con.sense, b, ("s", con.name or f"#c{ci}")))
        for v in lp.variables:
            if v.ub is not None:
                raw.append(({v.index: Fraction(1)}, LE,
                            Fraction(v.ub) - lbs[v.index],
                            ("s", f"#ub:{v.name}")))

        m = len(raw)
        # Integerize each row over its lcm-of-denominators; normalize b >= 0.
        int_rows: List[Row] = []
        dens: List[int] = []
        senses: List[str] = []
        tags: List[Label] = []
        for coefs, sense, b, tag in raw:
            den = b.denominator
            for c in coefs.values():
                den = den // gcd(den, c.denominator) * c.denominator
            d: Row = {j: int(c * den) for j, c in coefs.items()}
            bi = int(b * den)
            if bi < 0:
                d = {j: -v for j, v in d.items()}
                bi = -bi
                sense = {LE: GE, GE: LE, EQ: EQ}[sense]
            if bi:
                d[RHS] = bi
            int_rows.append(d)
            dens.append(den)
            senses.append(sense)
            tags.append(tag)

        # Column layout: [structural 0..n) | slacks/surplus | artificials].
        slack_col: Dict[int, int] = {}
        art_col: Dict[int, int] = {}
        col = n
        for i, s in enumerate(senses):
            if s in (LE, GE):
                slack_col[i] = col
                col += 1
        n_struct_slack = col
        for i, s in enumerate(senses):
            if s in (GE, EQ):
                art_col[i] = col
                col += 1
        art_set = set(art_col.values())

        # Stable labels for warm starts: structural cols by variable name,
        # slack cols by constraint name.  Artificials never end up in an
        # optimal basis, so they need no label.
        labels: Dict[int, Label] = {v.index: ("v", v.name)
                                    for v in lp.variables}
        for i, c in slack_col.items():
            labels[c] = tags[i]

        def build() -> _Tableau:
            D: List[Row] = []
            W: List[int] = []
            basis: List[int] = []
            for i in range(m):
                d = dict(int_rows[i])
                den = dens[i]
                if senses[i] == LE:
                    d[slack_col[i]] = den
                    basis.append(slack_col[i])
                elif senses[i] == GE:
                    d[slack_col[i]] = -den
                    d[art_col[i]] = den
                    basis.append(art_col[i])
                else:
                    d[art_col[i]] = den
                    basis.append(art_col[i])
                D.append(d)
                W.append(den)
            return _Tableau(D, W, basis)

        T = build()
        iterations = 0
        warm_ok = False
        repair_arts: List[int] = []  # fresh artificials from a warm repair

        # ---------------- Warm start (crash basis) ----------------
        if warm_basis:
            col_of = {lab: c for c, lab in labels.items()}
            want = [col_of[lab] for lab in warm_basis if lab in col_of]
            want_set = set(want)
            basic = set(T.basis)
            for j in want:
                if j in basic:
                    continue
                pick = -1
                for i in T.rows_with(j):
                    if T.basis[i] in want_set:
                        continue
                    pick = i
                    if T.basis[i] in art_set:
                        break  # kicking an artificial out is ideal
                if pick >= 0:
                    basic.discard(T.basis[pick])
                    T.pivot(pick, j)
                    basic.add(j)
                    iterations += 1
            bad = [i for i, d in enumerate(T.D)
                   if d.get(RHS, 0) < 0
                   or (T.basis[i] in art_set and d.get(RHS, 0) != 0)]
            warm_ok = not bad
            if not warm_ok:
                # Feasibility-restoring repair: a capacity-tightening delta
                # (see repro.platform.perturb) leaves the old optimal basis
                # violating only the touched rows.  Rebuilding cold would
                # forfeit the whole crash; instead, negate each negative-rhs
                # row (rhs >= 0 again) and install a *fresh* artificial as
                # its basic variable — the old basic column had its only
                # nonzero in that row, so the basis invariant survives —
                # then run phase 1 from this nearly-feasible basis.  With
                # few violated rows phase 1 needs a handful of pivots
                # instead of a from-scratch pass.  A badly infeasible crash
                # (many violated rows) still restarts cold: driving a far
                # vertex to feasibility can cost more than phase 1 itself.
                if len(bad) <= max(8, len(T.D) // 4):
                    nxt = col
                    for i in bad:
                        d = T.D[i]
                        if d.get(RHS, 0) >= 0:
                            continue  # basic artificial at positive value:
                            # already covered by the phase-1 objective
                        for c in list(d):
                            d[c] = -d[c]
                        d[nxt] = T.W[i]
                        T.basis[i] = nxt
                        art_set.add(nxt)
                        repair_arts.append(nxt)
                        nxt += 1
                    T.reindex()
                else:
                    T = build()  # crash unrepairable — cold start
                    repair_arts = []

        # ---------------- Phase 1 ----------------
        if (art_col or repair_arts) and not warm_ok:
            od: Row = {c: 1 for c in art_set}
            oden = 1
            for i, bvar in enumerate(T.basis):
                if bvar in art_set:
                    od, oden = _row_sub(od, oden, od.get(bvar, 0),
                                        T.D[i], T.W[i])
            if od.get(RHS, 0) == 0:
                # Sum of artificials already 0 at the crash basis (every
                # artificial row has rhs 0) — the basis-repair step below
                # replaces them without any priced phase-1 pivots.
                status = "optimal"
            else:
                status, it, od, oden = self._iterate(
                    T, od, oden, limit=n_struct_slack + len(art_col))
                iterations += it
            if status != "optimal":  # unbounded impossible; iterlimit real
                return LPSolution(
                    SolveStatus.ERROR, backend="exact-simplex", lp=lp,
                    iterations=iterations,
                    message=f"phase 1 stopped with {status!r} after "
                            f"{iterations} pivots on {lp.name!r} "
                            f"({n} vars, {m} rows)")
            if od.get(RHS, 0) < 0:  # min sum of artificials > 0
                return LPSolution(SolveStatus.INFEASIBLE,
                                  backend="exact-simplex", lp=lp,
                                  iterations=iterations)

        # Pivot leftover artificials out of the basis.  Their rows sit at
        # rhs 0, so *any* nonzero entry preserves feasibility — pick the
        # structural/slack column with the fewest tableau nonzeros
        # (Markowitz fill control), repairing sparse rows first; rows with
        # no structural entry are redundant and dropped.  Artificial
        # columns are then physically deleted.
        if art_col or repair_arts:
            iterations += self._repair_artificials(T, art_set, n_struct_slack)

        # ---------------- Phase 2 ----------------
        # Minimize sign * objective over y; the objective constant and the
        # lb shift are re-applied at extraction time.
        sign = -1 if lp.sense_max else 1
        oden = 1
        ocoefs: Dict[int, Fraction] = {}
        for j, c in lp.objective.coefs.items():
            c = sign * Fraction(c)
            if c:
                ocoefs[j] = c
                oden = oden // gcd(oden, c.denominator) * c.denominator
        od = {j: int(c * oden) for j, c in ocoefs.items()}
        for i, bvar in enumerate(T.basis):
            a = od.get(bvar)
            if a:
                od, oden = _row_sub(od, oden, a, T.D[i], T.W[i])
        status, it, od, oden = self._iterate(T, od, oden,
                                             limit=n_struct_slack)
        iterations += it
        if status == "unbounded":
            return LPSolution(SolveStatus.UNBOUNDED, backend="exact-simplex",
                              lp=lp, iterations=iterations)
        if status != "optimal":
            return LPSolution(
                SolveStatus.ERROR, backend="exact-simplex", lp=lp,
                iterations=iterations,
                message=f"phase 2 stopped with {status!r} after "
                        f"{iterations} pivots on {lp.name!r} "
                        f"({n} vars, {len(T.D)} rows)")

        # ---------------- Phase 3 (opt-in): lexicographic tie-breaking --
        if canonical:
            cpivots, cdone = self._canonicalize(
                T, od, oden, limit=n_struct_slack, n=n,
                budget=self.max_iterations - iterations)
            iterations += cpivots
            if not cdone:
                # returning a half-canonicalized vertex as if it were
                # canonical would get cached (memory and disk) under the
                # canonical key and silently break the stability guarantee
                return LPSolution(
                    SolveStatus.ERROR, backend="exact-simplex", lp=lp,
                    iterations=iterations,
                    message=f"canonicalization hit the pivot budget after "
                            f"{iterations} pivots on {lp.name!r}; raise "
                            f"max_iterations or drop canonical=True")

        values: Dict[int, Fraction] = {}
        basic_structural = set()
        for i, bvar in enumerate(T.basis):
            if bvar < n:
                basic_structural.add(bvar)
                x = Fraction(T.D[i].get(RHS, 0), T.W[i]) + lbs[bvar]
                if x:
                    values[bvar] = x
        for j in range(n):
            # nonbasic structural variables sit at their lower bound (y = 0)
            if j not in basic_structural and lbs[j]:
                values[j] = lbs[j]
        objective = lp.objective.evaluate(values)
        return LPSolution(SolveStatus.OPTIMAL, objective=objective,
                          values=values, backend="exact-simplex", exact=True,
                          lp=lp, iterations=iterations,
                          basis_labels=tuple(labels[b] for b in T.basis))

    # ------------------------------------------------------------------
    @staticmethod
    def _repair_artificials(T: _Tableau, art_set: Set[int],
                            n_struct_slack: int) -> int:
        """Pivot leftover zero-valued artificials out of the basis.

        Every remaining artificial row sits at rhs 0, so *any* nonzero
        entry preserves primal feasibility; pick the structural/slack
        column with the fewest tableau nonzeros (Markowitz fill control),
        always repairing the *currently* sparsest row first — a lazy heap
        re-keys rows as pivots fill them in, which keeps the repaired
        tableau far sparser than any static order (measured ~2.7x on the
        fig9 tier).  Rows with no structural entry are redundant and
        dropped, then the artificial columns are physically deleted.
        Returns the number of pivots performed.
        """
        pivots = 0
        drop: List[int] = []
        heap = [(len(T.D[i]), i)
                for i in range(len(T.D)) if T.basis[i] in art_set]
        heapq.heapify(heap)
        while heap:
            size, i = heapq.heappop(heap)
            if T.basis[i] not in art_set:
                continue
            if len(T.D[i]) != size:  # stale key: re-queue at current size
                heapq.heappush(heap, (len(T.D[i]), i))
                continue
            best = -1
            best_count = 0
            for c in T.D[i]:
                if 0 <= c < n_struct_slack:
                    cnt = T.col_count(c)
                    if best < 0 or cnt < best_count:
                        best, best_count = c, cnt
            if best < 0:
                drop.append(i)  # redundant row
            else:
                T.pivot(i, best)
                pivots += 1
        drop.sort()
        T.drop_rows(drop)
        T.drop_cols_from(n_struct_slack)
        return pivots

    # ------------------------------------------------------------------
    def _canonicalize(self, T: _Tableau, od: Row, oden: int, limit: int,
                      n: int, budget: int) -> Tuple[int, bool]:
        """Lexicographic phase 3: walk to the lex-smallest optimal vertex.

        For ``j = 0 .. n-1``, minimize ``x_j`` over the current face,
        then freeze it.  An entering column is eligible only when its
        reduced cost is zero in the phase-2 objective row *and* every
        frozen ``x_i`` row — such pivots change neither the optimum nor
        any earlier minimum (their reduced-cost rows are literally
        invariant: the entering column's coefficient in them is zero).
        Bland's entering rule plus the smallest-basis-index ratio
        tie-break guarantees termination on the (typically degenerate)
        optimal face.  ``budget`` is the pivot allowance left from the
        solver-wide ``max_iterations`` after phases 1-2.  Returns
        ``(pivots performed, completed)``.
        """
        D, W, basis = T.D, T.W, T.basis
        frozen: List[Row] = [od]
        pivots = 0
        for j in range(n):
            # reduced-cost row of "minimize x_j" w.r.t. the current basis
            rj: Row = {j: 1}
            rden = 1
            for i, bvar in enumerate(basis):
                a = rj.get(bvar)
                if a:
                    rj, rden = _row_sub(rj, rden, a, D[i], W[i])
            while True:
                enter = -1
                for c, v in rj.items():
                    if (v < 0 and 0 <= c < limit
                            and (enter < 0 or c < enter)
                            and all(f.get(c, 0) == 0 for f in frozen)):
                        enter = c
                if enter < 0:
                    break  # x_j at its lex minimum
                if pivots >= budget:
                    return pivots, False  # more work needed, none allowed
                leave = -1
                ln = ld = 1
                for i in T.rows_with(enter):
                    a = D[i].get(enter, 0)
                    if a > 0:
                        r = D[i].get(RHS, 0)
                        if leave < 0:
                            leave, ln, ld = i, r, a
                        else:
                            diff = r * ld - ln * a
                            if diff < 0 or (diff == 0
                                            and basis[i] < basis[leave]):
                                leave, ln, ld = i, r, a
                if leave < 0:
                    break  # cannot happen (y_j >= 0 bounds the descent)
                T.pivot(leave, enter)
                a = rj.get(enter)
                if a:
                    rj, rden = _row_sub(rj, rden, a, D[leave], W[leave])
                pivots += 1
            frozen.append(rj)
        return pivots, True

    # ------------------------------------------------------------------
    def _refresh_candidates(self, od: Row, oden: int, limit: int,
                            weights: Optional[Dict[int, float]]) -> List[int]:
        """Full pricing scan -> shortlist of the best improving columns."""
        if weights is None:
            neg = [(v, c) for c, v in od.items() if v < 0 and 0 <= c < limit]
            return [c for _v, c in heapq.nsmallest(CANDIDATE_LIST_SIZE, neg)]
        # r * r (not r ** 2): multiplying huge finite floats yields inf,
        # while float.__pow__ raises OverflowError
        neg2 = []
        for c, v in od.items():
            if v < 0 and 0 <= c < limit:
                r = _fdiv(v, oden)
                neg2.append((-(r * r) / weights.get(c, 1.0), c))
        return [c for _s, c in heapq.nsmallest(CANDIDATE_LIST_SIZE, neg2)]

    def _iterate(self, T: _Tableau, od: Row, oden: int,
                 limit: int) -> Tuple[str, int, Row, int]:
        """Run simplex pivots (min form) until optimal/unbounded/iterlimit.

        ``od``/``oden`` is the reduced-cost row; columns ``0 <= c < limit``
        are eligible to enter.  Returns ``(status, pivots, od, oden)``.
        """
        D, W, basis = T.D, T.W, T.basis
        it = 0
        bland = self.pricing == "bland"
        devex = self.pricing == "devex"
        weights: Optional[Dict[int, float]] = {} if devex else None
        degen_streak = 0
        cands: List[int] = []
        while True:
            if it >= self.max_iterations:
                return "iterlimit", it, od, oden
            enter = -1
            if bland:
                for c, v in od.items():
                    if v < 0 and 0 <= c < limit and (enter < 0 or c < enter):
                        enter = c
            else:
                # partial pricing: re-score the shortlist; full rescan
                # only when it is exhausted (and optimality is only ever
                # declared by a full rescan coming up empty)
                for attempt in (0, 1):
                    best_v = 0
                    best_s = 0.0
                    live: List[int] = []
                    for c in cands:
                        v = od.get(c, 0)
                        if v >= 0:
                            continue
                        live.append(c)
                        if devex:
                            r = _fdiv(v, oden)
                            s = (r * r) / weights.get(c, 1.0)
                            if s > best_s or (s == best_s and
                                              (enter < 0 or c < enter)):
                                best_s = s
                                enter = c
                        elif v < best_v or (v == best_v and v < 0 and
                                            (enter < 0 or c < enter)):
                            best_v = v
                            enter = c
                    cands = live
                    if enter >= 0 or attempt == 1:
                        break
                    cands = self._refresh_candidates(od, oden, limit, weights)
            if enter < 0:
                return "optimal", it, od, oden
            # Ratio test: min rhs_i / a_i over rows with a_i > 0 in the
            # entering column (walked via the exact column index).  Within
            # a row both carry the same denominator, so the ratio is the
            # pure integer quotient d[RHS]/d[enter]; ties break on the
            # smallest basis index under Bland (required for termination)
            # and on the sparsest row otherwise (less fill-in).
            leave = -1
            ln = ld = 1
            leave_sz = 0
            for i in T.rows_with(enter):
                a = D[i].get(enter, 0)
                if a > 0:
                    r = D[i].get(RHS, 0)
                    if leave < 0:
                        take = True
                    else:
                        diff = r * ld - ln * a
                        if diff < 0:
                            take = True
                        elif diff:
                            take = False
                        elif bland:
                            take = basis[i] < basis[leave]
                        else:
                            sz = len(D[i])
                            take = sz < leave_sz or (sz == leave_sz
                                                     and basis[i] < basis[leave])
                    if take:
                        leave, ln, ld, leave_sz = i, r, a, len(D[i])
            if leave < 0:
                return "unbounded", it, od, oden
            degenerate = ln == 0
            if devex:
                wq = weights.get(enter, 1.0)
                alpha = _fdiv(ld, W[leave])
                leaving = basis[leave]
            T.pivot(leave, enter)
            a = od.get(enter)
            if a:
                od, oden = _row_sub(od, oden, a, D[leave], W[leave])
            if devex:
                # Forrest-Goldfarb Devex update from the (normalized)
                # pivot row; approximate floats are fine — weights only
                # steer the pivot path, never the arithmetic.
                w_leave = wq / (alpha * alpha) if alpha else 1.0
                if not w_leave <= DEVEX_RESET:  # catches inf and NaN too
                    weights.clear()  # new reference framework
                    w_leave = 1.0
                weights[leaving] = w_leave if w_leave > 1.0 else 1.0
                d = D[leave]
                wden = W[leave]
                big = False
                for c, v in d.items():
                    if c != enter and c != RHS and 0 <= c < limit:
                        r = _fdiv(v, wden)
                        nw = r * r * wq
                        if nw > weights.get(c, 1.0):
                            weights[c] = nw
                            big = big or nw > DEVEX_RESET
                if big:
                    weights.clear()  # new reference framework
            it += 1
            if self.pricing != "bland":
                if degenerate:
                    degen_streak += 1
                    if degen_streak >= DEGENERACY_LIMIT:
                        bland = True  # anti-cycling fallback
                else:
                    degen_streak = 0
                    bland = False
        # not reached
