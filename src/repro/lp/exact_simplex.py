"""Sparse fraction-free two-phase primal simplex over exact rationals.

This is the stand-in for the paper's use of ``lpsolve``/Maple: it returns
the *exact rational* optimum of the steady-state LPs, so that the period
``T`` (lcm of the denominators of all variables, Section 3.1) and the
integer per-period message counts are well defined.

This module replaces the original dense ``Fraction`` tableau (kept as
:class:`repro.lp.dense_simplex.DenseSimplexSolver` for differential
testing).  Design choices, in order of measured impact:

- **Sparse rows.**  Each tableau row is a dict ``{column: int numerator}``;
  pivots touch only the rows with a nonzero in the entering column and only
  the nonzero entries of those rows.  The steady-state LPs are very sparse
  (a ``send`` variable appears in ~5 constraints), so this alone removes
  most of the work.
- **Fraction-free integer arithmetic.**  A row stores integer numerators
  over one positive common denominator, so a pivot update is pure integer
  multiply/subtract:

      row' = (row * p_den - a * pivot_row) / (den * p_den)

  followed by a *single* gcd pass per row (``math.gcd`` is C-level and
  variadic).  :class:`fractions.Fraction` pays ~3 gcds per arithmetic op;
  here the per-op cost is an integer multiply.  Normalizing the pivot row
  costs nothing: dividing ``row_i`` by its pivot entry ``p`` is just
  re-labelling the denominator to ``p``.
- **Pricing.**  Dantzig (most negative reduced cost) by default — on these
  LPs it needs far fewer pivots than Bland — with an automatic fallback to
  Bland's anti-cycling rule after :data:`DEGENERACY_LIMIT` consecutive
  degenerate pivots.  Bland mode persists until a nondegenerate pivot
  occurs, so termination is still guaranteed: every return to Dantzig is
  preceded by a strict objective improvement, and Bland phases are finite.
- **Artificials are physically dropped** after Phase 1 (dict keys deleted),
  instead of zeroed columns that every later pivot would still scan.
- **Warm starts.**  ``solve(lp, warm_basis=labels)`` crash-pivots a
  previously optimal basis (identified by stable variable/constraint-name
  labels, so it transfers across growing LP families) into the tableau; if
  the resulting basis is primal feasible Phase 1 is skipped entirely and
  Phase 2 usually needs a handful of pivots.  Infeasible crashes fall back
  to a cold start — a warm start can never change the optimum, only the
  route to it.
- **Canonical vertex (opt-in).**  ``solve(lp, canonical=True)`` runs a
  lexicographic phase 3 after optimality: over the optimal face it
  minimizes ``x_0``, then ``x_1`` with ``x_0`` held at its minimum, and
  so on.  The returned vertex is the lex-smallest optimal solution — a
  function of the LP alone, independent of pricing rule, warm start, or
  pivot history.  Tests that pin schedule/tree artifacts use this instead
  of depending on Dantzig's tie-breaking.

Bounds handling is unchanged from the dense solver: lower bounds are
shifted out (``y = x - lb``), upper bounds become rows, Phase 1 minimizes
the sum of artificial variables, and redundant rows are dropped.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lp.model import EQ, GE, LE, LinearProgram
from repro.lp.solution import LPSolution, SolveStatus

#: Sentinel column index holding the right-hand side of each sparse row.
RHS = -1

#: Consecutive degenerate pivots tolerated under Dantzig pricing before
#: switching to Bland's rule (reset on the next nondegenerate pivot).
DEGENERACY_LIMIT = 40

Row = Dict[int, int]
Label = Tuple[str, object]


def _reduce_row(d: Row, den: int) -> Tuple[Row, int]:
    """Divide ``d``/``den`` by their collective gcd (``den`` stays > 0)."""
    if den == 1 or not d:
        return d, (den if d else 1)
    g = gcd(den, *d.values())
    if g > 1:
        den //= g
        for c in d:
            d[c] //= g
    return d, den


def _row_sub(d: Row, den: int, a: int, pd: Row, pden: int) -> Tuple[Row, int]:
    """Return ``(d/den) - (a/den) * (pd/pden)`` as a normalized sparse row.

    This is the fraction-free pivot update: with ``a = d[j]`` and ``pd``
    normalized so that ``pd[j] == pden``, the entry at the pivot column
    cancels exactly and every other entry is one integer multiply-subtract.
    """
    if pden == 1:
        nd = dict(d)
    else:
        nd = {c: v * pden for c, v in d.items()}
    for c, pv in pd.items():
        nv = nd.get(c, 0) - a * pv
        if nv:
            nd[c] = nv
        else:
            nd.pop(c, None)
    return _reduce_row(nd, den * pden)


class ExactSimplexSolver:
    """Exact rational simplex solver for :class:`LinearProgram` instances.

    Parameters
    ----------
    max_iterations:
        Hard pivot budget over both phases; overruns return a
        :class:`LPSolution` with ``status == SolveStatus.ERROR`` and a
        diagnostic ``message`` (they do not raise).
    pricing:
        ``"dantzig"`` (default) — most negative reduced cost, with an
        automatic Bland fallback on degeneracy cycles; ``"bland"`` — pure
        Bland's rule (slow, only useful for debugging).
    """

    def __init__(self, max_iterations: int = 200_000,
                 pricing: str = "dantzig") -> None:
        if pricing not in ("dantzig", "bland"):
            raise ValueError(f"unknown pricing rule {pricing!r}")
        self.max_iterations = max_iterations
        self.pricing = pricing

    # ------------------------------------------------------------------
    def solve(self, lp: LinearProgram,
              warm_basis: Optional[Sequence[Label]] = None,
              canonical: bool = False) -> LPSolution:
        if not lp.is_rational():
            raise ValueError(
                "exact simplex requires int/Fraction data; convert the LP or "
                "use the HiGHS backend")
        n = lp.num_vars()
        lbs = [Fraction(v.lb) for v in lp.variables]

        # Raw rows:  sum_j a_ij * y_j  (sense)  b_i   with y = x - lb >= 0.
        raw: List[Tuple[Dict[int, Fraction], str, Fraction, Label]] = []
        for ci, con in enumerate(lp.constraints):
            b = -Fraction(con.expr.constant)
            coefs: Dict[int, Fraction] = {}
            for j, c in con.expr.coefs.items():
                c = Fraction(c)
                if c:
                    coefs[j] = c
                    b -= c * lbs[j]
            raw.append((coefs, con.sense, b, ("s", con.name or f"#c{ci}")))
        for v in lp.variables:
            if v.ub is not None:
                raw.append(({v.index: Fraction(1)}, LE,
                            Fraction(v.ub) - lbs[v.index],
                            ("s", f"#ub:{v.name}")))

        m = len(raw)
        # Integerize each row over its lcm-of-denominators; normalize b >= 0.
        int_rows: List[Row] = []
        dens: List[int] = []
        senses: List[str] = []
        tags: List[Label] = []
        for coefs, sense, b, tag in raw:
            den = b.denominator
            for c in coefs.values():
                den = den // gcd(den, c.denominator) * c.denominator
            d: Row = {j: int(c * den) for j, c in coefs.items()}
            bi = int(b * den)
            if bi < 0:
                d = {j: -v for j, v in d.items()}
                bi = -bi
                sense = {LE: GE, GE: LE, EQ: EQ}[sense]
            if bi:
                d[RHS] = bi
            int_rows.append(d)
            dens.append(den)
            senses.append(sense)
            tags.append(tag)

        # Column layout: [structural 0..n) | slacks/surplus | artificials].
        slack_col: Dict[int, int] = {}
        art_col: Dict[int, int] = {}
        col = n
        for i, s in enumerate(senses):
            if s in (LE, GE):
                slack_col[i] = col
                col += 1
        n_struct_slack = col
        for i, s in enumerate(senses):
            if s in (GE, EQ):
                art_col[i] = col
                col += 1
        art_set = set(art_col.values())

        # Stable labels for warm starts: structural cols by variable name,
        # slack cols by constraint name.  Artificials never end up in an
        # optimal basis, so they need no label.
        labels: Dict[int, Label] = {v.index: ("v", v.name)
                                    for v in lp.variables}
        for i, c in slack_col.items():
            labels[c] = tags[i]

        def build() -> Tuple[List[Row], List[int], List[int]]:
            D: List[Row] = []
            W: List[int] = []
            basis: List[int] = []
            for i in range(m):
                d = dict(int_rows[i])
                den = dens[i]
                if senses[i] == LE:
                    d[slack_col[i]] = den
                    basis.append(slack_col[i])
                elif senses[i] == GE:
                    d[slack_col[i]] = -den
                    d[art_col[i]] = den
                    basis.append(art_col[i])
                else:
                    d[art_col[i]] = den
                    basis.append(art_col[i])
                D.append(d)
                W.append(den)
            return D, W, basis

        D, W, basis = build()
        iterations = 0
        warm_ok = False

        # ---------------- Warm start (crash basis) ----------------
        if warm_basis:
            col_of = {lab: c for c, lab in labels.items()}
            want = [col_of[lab] for lab in warm_basis if lab in col_of]
            want_set = set(want)
            basic = set(basis)
            for j in want:
                if j in basic:
                    continue
                pick = -1
                for i in range(len(D)):
                    if basis[i] in want_set:
                        continue
                    if D[i].get(j):
                        pick = i
                        if basis[i] in art_set:
                            break  # kicking an artificial out is ideal
                if pick >= 0:
                    basic.discard(basis[pick])
                    self._pivot(D, W, basis, pick, j)
                    basic.add(j)
                    iterations += 1
            warm_ok = all(d.get(RHS, 0) >= 0 for d in D) and all(
                D[i].get(RHS, 0) == 0
                for i in range(len(D)) if basis[i] in art_set)
            if not warm_ok:
                D, W, basis = build()  # crash failed — cold start

        # ---------------- Phase 1 ----------------
        if art_col and not warm_ok:
            od: Row = {c: 1 for c in art_set}
            oden = 1
            for i, bvar in enumerate(basis):
                if bvar in art_set:
                    od, oden = _row_sub(od, oden, od.get(bvar, 0), D[i], W[i])
            status, it, od, oden = self._iterate(
                D, W, basis, od, oden, limit=n + len(slack_col) + len(art_col))
            iterations += it
            if status != "optimal":  # unbounded impossible; iterlimit real
                return LPSolution(
                    SolveStatus.ERROR, backend="exact-simplex", lp=lp,
                    iterations=iterations,
                    message=f"phase 1 stopped with {status!r} after "
                            f"{iterations} pivots on {lp.name!r} "
                            f"({n} vars, {m} rows)")
            if od.get(RHS, 0) < 0:  # min sum of artificials > 0
                return LPSolution(SolveStatus.INFEASIBLE,
                                  backend="exact-simplex", lp=lp,
                                  iterations=iterations)

        # Pivot leftover artificials out of the basis (degenerate at 0);
        # drop redundant rows; physically delete artificial columns.
        if art_col:
            drop: List[int] = []
            for i in range(len(D)):
                if basis[i] in art_set:
                    pivot_j = min((c for c in D[i]
                                   if 0 <= c < n_struct_slack), default=None)
                    if pivot_j is None:
                        drop.append(i)  # redundant row
                    else:
                        self._pivot(D, W, basis, i, pivot_j)
                        iterations += 1
            for i in reversed(drop):
                del D[i], W[i], basis[i]
            for d in D:
                for c in [c for c in d if c >= n_struct_slack]:
                    del d[c]

        # ---------------- Phase 2 ----------------
        # Minimize sign * objective over y; the objective constant and the
        # lb shift are re-applied at extraction time.
        sign = -1 if lp.sense_max else 1
        oden = 1
        ocoefs: Dict[int, Fraction] = {}
        for j, c in lp.objective.coefs.items():
            c = sign * Fraction(c)
            if c:
                ocoefs[j] = c
                oden = oden // gcd(oden, c.denominator) * c.denominator
        od = {j: int(c * oden) for j, c in ocoefs.items()}
        for i, bvar in enumerate(basis):
            a = od.get(bvar)
            if a:
                od, oden = _row_sub(od, oden, a, D[i], W[i])
        status, it, od, oden = self._iterate(D, W, basis, od, oden,
                                             limit=n_struct_slack)
        iterations += it
        if status == "unbounded":
            return LPSolution(SolveStatus.UNBOUNDED, backend="exact-simplex",
                              lp=lp, iterations=iterations)
        if status != "optimal":
            return LPSolution(
                SolveStatus.ERROR, backend="exact-simplex", lp=lp,
                iterations=iterations,
                message=f"phase 2 stopped with {status!r} after "
                        f"{iterations} pivots on {lp.name!r} "
                        f"({n} vars, {len(D)} rows)")

        # ---------------- Phase 3 (opt-in): lexicographic tie-breaking --
        if canonical:
            cpivots, cdone = self._canonicalize(
                D, W, basis, od, oden, limit=n_struct_slack, n=n,
                budget=self.max_iterations - iterations)
            iterations += cpivots
            if not cdone:
                # returning a half-canonicalized vertex as if it were
                # canonical would get cached (memory and disk) under the
                # canonical key and silently break the stability guarantee
                return LPSolution(
                    SolveStatus.ERROR, backend="exact-simplex", lp=lp,
                    iterations=iterations,
                    message=f"canonicalization hit the pivot budget after "
                            f"{iterations} pivots on {lp.name!r}; raise "
                            f"max_iterations or drop canonical=True")

        values: Dict[int, Fraction] = {}
        basic_structural = set()
        for i, bvar in enumerate(basis):
            if bvar < n:
                basic_structural.add(bvar)
                x = Fraction(D[i].get(RHS, 0), W[i]) + lbs[bvar]
                if x:
                    values[bvar] = x
        for j in range(n):
            # nonbasic structural variables sit at their lower bound (y = 0)
            if j not in basic_structural and lbs[j]:
                values[j] = lbs[j]
        objective = lp.objective.evaluate(values)
        return LPSolution(SolveStatus.OPTIMAL, objective=objective,
                          values=values, backend="exact-simplex", exact=True,
                          lp=lp, iterations=iterations,
                          basis_labels=tuple(labels[b] for b in basis))

    # ------------------------------------------------------------------
    def _canonicalize(self, D: List[Row], W: List[int], basis: List[int],
                      od: Row, oden: int, limit: int, n: int,
                      budget: int) -> Tuple[int, bool]:
        """Lexicographic phase 3: walk to the lex-smallest optimal vertex.

        For ``j = 0 .. n-1``, minimize ``x_j`` over the current face,
        then freeze it.  An entering column is eligible only when its
        reduced cost is zero in the phase-2 objective row *and* every
        frozen ``x_i`` row — such pivots change neither the optimum nor
        any earlier minimum (their reduced-cost rows are literally
        invariant: the entering column's coefficient in them is zero).
        Bland's entering rule plus the smallest-basis-index ratio
        tie-break guarantees termination on the (typically degenerate)
        optimal face.  ``budget`` is the pivot allowance left from the
        solver-wide ``max_iterations`` after phases 1-2.  Returns
        ``(pivots performed, completed)``.
        """
        frozen: List[Row] = [od]
        pivots = 0
        for j in range(n):
            # reduced-cost row of "minimize x_j" w.r.t. the current basis
            rj: Row = {j: 1}
            rden = 1
            for i, bvar in enumerate(basis):
                a = rj.get(bvar)
                if a:
                    rj, rden = _row_sub(rj, rden, a, D[i], W[i])
            while True:
                enter = -1
                for c, v in rj.items():
                    if (v < 0 and 0 <= c < limit
                            and (enter < 0 or c < enter)
                            and all(f.get(c, 0) == 0 for f in frozen)):
                        enter = c
                if enter < 0:
                    break  # x_j at its lex minimum
                if pivots >= budget:
                    return pivots, False  # more work needed, none allowed
                leave = -1
                ln = ld = 1
                for i in range(len(D)):
                    a = D[i].get(enter, 0)
                    if a > 0:
                        r = D[i].get(RHS, 0)
                        if leave < 0:
                            leave, ln, ld = i, r, a
                        else:
                            diff = r * ld - ln * a
                            if diff < 0 or (diff == 0
                                            and basis[i] < basis[leave]):
                                leave, ln, ld = i, r, a
                if leave < 0:
                    break  # cannot happen (y_j >= 0 bounds the descent)
                self._pivot(D, W, basis, leave, enter)
                a = rj.get(enter)
                if a:
                    rj, rden = _row_sub(rj, rden, a, D[leave], W[leave])
                pivots += 1
            frozen.append(rj)
        return pivots, True

    # ------------------------------------------------------------------
    def _iterate(self, D: List[Row], W: List[int], basis: List[int],
                 od: Row, oden: int,
                 limit: int) -> Tuple[str, int, Row, int]:
        """Run simplex pivots (min form) until optimal/unbounded/iterlimit.

        ``od``/``oden`` is the reduced-cost row; columns ``0 <= c < limit``
        are eligible to enter.  Returns ``(status, pivots, od, oden)``.
        """
        it = 0
        bland = self.pricing == "bland"
        degen_streak = 0
        while True:
            if it >= self.max_iterations:
                return "iterlimit", it, od, oden
            enter = -1
            if bland:
                for c, v in od.items():
                    if v < 0 and 0 <= c < limit and (enter < 0 or c < enter):
                        enter = c
            else:
                best = 0
                for c, v in od.items():
                    if 0 <= c < limit and (v < best or
                                           (v == best and v < 0 and c < enter)):
                        best = v
                        enter = c
            if enter < 0:
                return "optimal", it, od, oden
            # Ratio test: min rhs_i / a_i over rows with a_i > 0.  Within a
            # row both carry the same denominator, so the ratio is the pure
            # integer quotient d[RHS]/d[enter]; ties break on the smallest
            # basis index (required for Bland's rule).
            leave = -1
            ln = ld = 1
            for i in range(len(D)):
                a = D[i].get(enter, 0)
                if a > 0:
                    r = D[i].get(RHS, 0)
                    if leave < 0:
                        leave, ln, ld = i, r, a
                    else:
                        diff = r * ld - ln * a
                        if diff < 0 or (diff == 0 and basis[i] < basis[leave]):
                            leave, ln, ld = i, r, a
            if leave < 0:
                return "unbounded", it, od, oden
            degenerate = ln == 0
            self._pivot(D, W, basis, leave, enter)
            a = od.get(enter)
            if a:
                od, oden = _row_sub(od, oden, a, D[leave], W[leave])
            it += 1
            if self.pricing == "dantzig":
                if degenerate:
                    degen_streak += 1
                    if degen_streak >= DEGENERACY_LIMIT:
                        bland = True  # anti-cycling fallback
                else:
                    degen_streak = 0
                    bland = False
        # not reached

    @staticmethod
    def _pivot(D: List[Row], W: List[int], basis: List[int],
               i: int, j: int) -> None:
        """Pivot on entry (i, j): row i gets coefficient 1 at column j."""
        d = D[i]
        p = d[j]
        if p == 0:
            raise ZeroDivisionError("pivot on zero entry")
        if p < 0:
            d = {c: -v for c, v in d.items()}
            p = -p
        d, p = _reduce_row(d, p)  # re-labelled denominator: row_i / pivot
        D[i], W[i] = d, p
        for r in range(len(D)):
            if r != i:
                a = D[r].get(j)
                if a:
                    D[r], W[r] = _row_sub(D[r], W[r], a, d, p)
        basis[i] = j
