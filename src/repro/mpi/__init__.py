"""A simulated MPI-flavoured communicator over the platform model.

Stands in for the paper's deployment context (grid applications issuing
collective operations through an MPI-like library, Section 5).  The
semantics mirror mpi4py's lowercase object API; execution happens in the
one-port simulator, with the steady-state schedules behind the series
variants.
"""

from repro.mpi.comm import SimComm

__all__ = ["SimComm"]
