"""``SimComm`` — an mpi4py-flavoured façade over the simulated platform.

Ranks map to compute nodes of a :class:`~repro.platform.graph.PlatformGraph`.
Single-shot collectives (``scatter``, ``reduce``) run through the greedy
one-port network and return both the results and the makespan — the
quantity classical collective algorithms optimize.  The ``*_series``
variants build the paper's steady-state schedules and return measured
throughput — the quantity this paper optimizes.  Having both on one object
makes the makespan-vs-throughput contrast of the introduction tangible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.reduce_op import ReduceProblem, solve_reduce
from repro.core.scatter import ScatterProblem, solve_scatter, build_scatter_schedule
from repro.core.schedule import build_reduce_schedule
from repro.platform.graph import NodeId, PlatformGraph
from repro.platform.routing import shortest_path
from repro.sim.executor import simulate_reduce, simulate_scatter
from repro.sim.network import OnePortNetwork
from repro.sim.operators import SeqConcat, noncommutative_reduce


@dataclass
class SeriesReport:
    """Result of a pipelined series of collectives."""

    kind: str
    lp_throughput: object
    measured_throughput: float
    completed_ops: int
    horizon: object
    correct: bool


class SimComm:
    """A communicator whose ranks live on platform compute nodes.

    Parameters
    ----------
    platform:
        The platform graph.
    ranks:
        Compute nodes in rank order; defaults to ``platform.compute_nodes()``.
    """

    def __init__(self, platform: PlatformGraph,
                 ranks: Optional[Sequence[NodeId]] = None) -> None:
        self.platform = platform
        self.ranks: List[NodeId] = list(ranks if ranks is not None
                                        else platform.compute_nodes())
        if len(self.ranks) < 2:
            raise ValueError("a communicator needs at least 2 ranks")
        for r in self.ranks:
            if r not in platform:
                raise ValueError(f"rank node {r!r} not in platform")

    # ------------------------------------------------------------------
    def size(self) -> int:
        return len(self.ranks)

    def node_of(self, rank: int) -> NodeId:
        return self.ranks[rank]

    # ------------------------------------------------------------------
    # single-shot collectives (makespan semantics, greedy execution)
    # ------------------------------------------------------------------
    def scatter(self, values: Sequence, root: int = 0) -> Tuple[List, object]:
        """One scatter from ``root``; returns (per-rank values, makespan)."""
        if len(values) != self.size():
            raise ValueError("need exactly one value per rank")
        src = self.node_of(root)
        net = OnePortNetwork(self.platform, record_trace=False)
        out: List = [None] * self.size()
        makespan = 0
        for rank, value in enumerate(values):
            out[rank] = value
            if rank == root:
                continue
            path = shortest_path(self.platform, src, self.node_of(rank))
            if path is None:
                raise ValueError(f"rank {rank} unreachable from root")
            makespan = max(makespan, net.route_transfer(path, 1, 0))
        return out, makespan

    def reduce(self, values: Sequence, root: int = 0,
               op=SeqConcat) -> Tuple[object, object]:
        """One reduce to ``root`` (flat strategy); returns (result, makespan)."""
        if len(values) != self.size():
            raise ValueError("need exactly one value per rank")
        dst = self.node_of(root)
        net = OnePortNetwork(self.platform, record_trace=False)
        ready = 0
        for rank in range(self.size()):
            if rank == root:
                continue
            path = shortest_path(self.platform, self.node_of(rank), dst)
            if path is None:
                raise ValueError(f"rank {rank} cannot reach root")
            ready = max(ready, net.route_transfer(path, 1, 0))
        result = noncommutative_reduce(list(values), op=op)
        speed = self.platform.speed(dst)
        if speed:
            for j in range(1, self.size()):
                ready = net.compute(dst, 1 / speed, ready)
        return result, ready

    # ------------------------------------------------------------------
    # pipelined series (steady-state semantics, LP schedules)
    # ------------------------------------------------------------------
    def scatter_series(self, root: int = 0, n_periods: int = 50,
                       backend: str = "auto") -> SeriesReport:
        """Run a pipelined series of scatters at the LP-optimal rate."""
        src = self.node_of(root)
        targets = [n for n in self.ranks if n != src]
        problem = ScatterProblem(self.platform, src, targets)
        sol = solve_scatter(problem, backend=backend)
        if not sol.exact:
            raise RuntimeError("series execution needs an exact LP solution")
        sched = build_scatter_schedule(sol)
        res = simulate_scatter(sched, problem, n_periods=n_periods)
        return SeriesReport(kind="scatter", lp_throughput=sol.throughput,
                            measured_throughput=float(res.measured_throughput()),
                            completed_ops=res.completed_ops(),
                            horizon=res.horizon, correct=res.correct)

    def reduce_series(self, root: int = 0, n_periods: int = 50,
                      op=SeqConcat, backend: str = "auto",
                      msg_size: object = 1, task_work: object = 1) -> SeriesReport:
        """Run a pipelined series of reduces at the LP-optimal rate."""
        problem = ReduceProblem(self.platform, participants=self.ranks,
                                target=self.node_of(root), msg_size=msg_size,
                                task_work=task_work)
        sol = solve_reduce(problem, backend=backend)
        if not sol.exact:
            raise RuntimeError("series execution needs an exact LP solution")
        sched = build_reduce_schedule(sol)
        res = simulate_reduce(sched, problem, n_periods=n_periods, op=op)
        return SeriesReport(kind="reduce", lp_throughput=sol.throughput,
                            measured_throughput=float(res.measured_throughput()),
                            completed_ops=res.completed_ops(),
                            horizon=res.horizon, correct=res.correct)
