"""Asymptotic-optimality bookkeeping (Sections 3.4 and 4.5).

Lemma 1 gives the universal upper bound ``opt(G, K) <= TP(G) * K``: *no*
schedule — periodic or not — can complete more operations in a horizon of
``K`` time-units than the steady-state rate allows.  The steady-state
algorithm completes at least ``r * T * TP`` with
``r = floor((K - 2I - T) / T)`` periods, hence ``steady/opt -> 1``
(Propositions 1-3).

These helpers compute both sides so benchmarks can print the ratio curve;
the *measured* side comes from the simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence


def upper_bound_ops(throughput, horizon) -> float:
    """Lemma 1: ``opt(G, K) <= TP * K``."""
    return float(throughput) * float(horizon)


def steady_state_lower_bound(throughput, period, init_latency, horizon) -> float:
    """Operations guaranteed by the Section 3.4 construction.

    ``init_latency`` is ``I``: the maximal source-to-node latency (graph
    width) times the period — any upper bound works, the ratio still tends
    to 1.
    """
    k, t, i = float(horizon), float(period), float(init_latency)
    r = math.floor((k - 2 * i - t) / t)
    if r < 0:
        r = 0
    return r * t * float(throughput)


@dataclass
class OptimalityPoint:
    """One horizon sample of the steady/opt ratio."""

    horizon: float
    achieved_ops: float
    upper_bound: float

    @property
    def ratio(self) -> float:
        return self.achieved_ops / self.upper_bound if self.upper_bound else 0.0


def ratio_curve(throughput, horizons: Sequence[float],
                achieved: Sequence[float]) -> List[OptimalityPoint]:
    """Pair measured operation counts with the Lemma 1 bound per horizon."""
    if len(horizons) != len(achieved):
        raise ValueError("horizons and achieved counts must align")
    return [OptimalityPoint(horizon=k, achieved_ops=a,
                            upper_bound=upper_bound_ops(throughput, k))
            for k, a in zip(horizons, achieved)]


def is_monotone_nondecreasing(values: Sequence[float], slack: float = 1e-9) -> bool:
    """True when the ratio curve does not regress (up to float slack)."""
    return all(b >= a - slack for a, b in zip(values, values[1:]))
