"""Weighted arborescence packing for content-divisible flows.

The broadcast LP (paper Section 5 discussion; Beaumont-Legrand-Marchal-
Robert's series-of-broadcasts) bounds the per-edge *content* rate ``x`` by
the maximum — not the sum — of the per-target flows, because every target
receives the same bytes.  Turning such a content assignment into an actual
schedule means splitting the message stream into slices and routing slice
``r`` along an *arborescence* ``A_r`` (a directed tree rooted at the
source that covers every target): edge ``(i, j)`` then carries slice ``r``
at rate ``w_r``, and ``sum_r w_r [e in A_r] <= x(e)`` keeps the one-port
occupation at or below the LP's.

:func:`pack_arborescences` performs that decomposition with exact rational
arithmetic, following the constructive proof of Edmonds' branching theorem:
repeatedly pick an arborescence inside the support of the remaining
capacities and give it the largest weight ``w`` that keeps every target's
max-flow from the source at ``remaining - w`` — the invariant that the rest
of the demand stays routable.  The weight bound for a violated cut ``S``
(capacity ``C``, crossed by ``k`` tree edges) is ``w <= (C - remaining) /
(k - 1)``; cuts found this way are remembered, and later arborescences are
grown crossing each known tight cut at most once (the Lovász growth rule).

Spanning packings (every node a target) always succeed by Edmonds'
theorem.  With relay-only nodes (the Steiner/multicast case) the LP bound
is not always achievable — known to be NP-hard in general — so the packing
raises :class:`ArborescencePackingError` if it stalls; every platform tier
shipped in this repository packs completely.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

NodeId = Hashable
EdgeKey = Tuple[NodeId, NodeId]

#: Bound on consecutive zero-weight retries before giving up.
_MAX_STALLS = 32


class ArborescencePackingError(RuntimeError):
    """The greedy packing could not exhaust the demanded weight."""


@dataclass
class Arborescence:
    """A weighted directed tree rooted at the source, covering the targets."""

    weight: object
    edges: Tuple[EdgeKey, ...]

    def children(self) -> Dict[NodeId, Tuple[NodeId, ...]]:
        """``node -> ordered children`` map of the tree."""
        out: Dict[NodeId, List[NodeId]] = {}
        for (i, j) in self.edges:
            out.setdefault(i, []).append(j)
        return {n: tuple(cs) for n, cs in out.items()}

    def nodes(self) -> Set[NodeId]:
        return {n for e in self.edges for n in e}

    def describe(self) -> str:
        lines = [f"arborescence (weight {self.weight}):"]
        lines.extend(f"  {i!r} -> {j!r}" for (i, j) in self.edges)
        return "\n".join(lines)


def max_flow(cap: Dict[EdgeKey, object], source: NodeId, sink: NodeId,
             need: object = None) -> Tuple[object, Optional[Set[NodeId]]]:
    """Exact max-flow value from ``source`` to ``sink`` under ``cap``.

    Edmonds-Karp over rational capacities.  When ``need`` is given,
    augmentation stops as soon as the flow reaches it (the caller only
    wants a feasibility answer) and the returned cut is ``None``; otherwise
    the second component is the source side of a minimum cut.
    """
    residual: Dict[NodeId, Dict[NodeId, object]] = {}
    for (i, j), c in cap.items():
        if c > 0:
            residual.setdefault(i, {})[j] = residual.get(i, {}).get(j, 0) + c
            residual.setdefault(j, {}).setdefault(i, 0)
    value = 0
    while need is None or value < need:
        parent: Dict[NodeId, NodeId] = {source: source}
        queue = deque([source])
        while queue and sink not in parent:
            u = queue.popleft()
            for v, c in residual.get(u, {}).items():
                if c > 0 and v not in parent:
                    parent[v] = u
                    queue.append(v)
        if sink not in parent:
            break
        path = [sink]
        while path[-1] != source:
            path.append(parent[path[-1]])
        path.reverse()
        theta = min(residual[u][v] for u, v in zip(path, path[1:]))
        if need is not None:
            room = need - value
            if theta > room:
                theta = room
        for u, v in zip(path, path[1:]):
            residual[u][v] -= theta
            residual[v][u] = residual[v].get(u, 0) + theta
        value = value + theta
    if need is not None and value >= need:
        return value, None
    reach: Set[NodeId] = {source}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v, c in residual.get(u, {}).items():
            if c > 0 and v not in reach:
                reach.add(v)
                queue.append(v)
    return value, reach


def _find_arborescence(cap: Dict[EdgeKey, object], source: NodeId,
                       targets: Sequence[NodeId],
                       tight_cuts: Sequence[Set[NodeId]] = ()) -> Tuple[EdgeKey, ...]:
    """A directed tree rooted at ``source`` covering ``targets`` inside the
    support of ``cap``, pruned of target-free branches.

    Growth prefers high-capacity edges and crosses each known tight cut at
    most once; if that restriction makes a target unreachable the search
    falls back to the unrestricted tree.
    """
    adj: Dict[NodeId, List[Tuple[NodeId, object]]] = {}
    for (i, j), c in cap.items():
        if c > 0:
            adj.setdefault(i, []).append((j, c))
    for lst in adj.values():
        lst.sort(key=lambda vc: (str(vc[0]),))
        lst.sort(key=lambda vc: vc[1], reverse=True)

    def grow(restrict: bool) -> Optional[Dict[NodeId, NodeId]]:
        parent: Dict[NodeId, NodeId] = {source: source}
        crossings = [0] * len(tight_cuts)
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for v, _c in adj.get(u, ()):
                if v in parent:
                    continue
                if restrict:
                    crossed = [idx for idx, cut in enumerate(tight_cuts)
                               if u in cut and v not in cut]
                    if any(crossings[idx] >= 1 for idx in crossed):
                        continue
                    for idx in crossed:
                        crossings[idx] += 1
                parent[v] = u
                queue.append(v)
        if all(t in parent for t in targets):
            return parent
        return None

    parent = grow(restrict=True) if tight_cuts else None
    if parent is None:
        parent = grow(restrict=False)
    if parent is None:
        missing = [t for t in targets if t != source]
        raise ArborescencePackingError(
            f"no arborescence from {source!r} reaches all of {missing!r} in "
            "the remaining capacity support")

    # prune branches that serve no target: keep exactly the union of
    # root->target parent chains
    keep: Set[NodeId] = {source}
    for t in targets:
        n = t
        while n not in keep:
            keep.add(n)
            n = parent[n]
    edges = tuple((parent[v], v) for v in parent
                  if v != source and v in keep)
    return edges


def _max_weight(cap: Dict[EdgeKey, object], edges: Tuple[EdgeKey, ...],
                source: NodeId, targets: Sequence[NodeId],
                remaining: object) -> Tuple[object, Optional[Set[NodeId]]]:
    """Largest ``w`` such that removing ``w`` along ``edges`` keeps every
    target's max-flow at ``remaining - w``.

    Returns ``(w, None)`` on success, or ``(0, tight cut)`` when the
    arborescence double-crosses a cut that is already tight at capacity
    ``remaining`` (the caller should re-grow avoiding that cut).
    """
    tree = set(edges)
    w = min([remaining] + [cap[e] for e in edges])
    for _ in range(256):  # each round pins one more violated cut
        reduced = {e: (c - w if e in tree else c) for e, c in cap.items()}
        for t in targets:
            if t == source:
                continue
            val, cut = max_flow(reduced, source, t, need=remaining - w)
            if cut is None:
                continue
            # cut capacity decreases by k*w while the demand side only
            # decreases by w: feasibility needs C - k*w >= remaining - w
            k = sum(1 for (i, j) in tree if i in cut and j not in cut)
            c0 = sum(c for (i, j), c in cap.items()
                     if i in cut and j not in cut)
            if k <= 1:
                raise ArborescencePackingError(
                    f"cut {sorted(map(str, cut))!r} infeasible before any "
                    "weight was removed — content capacities do not carry "
                    "the demanded flow")
            bound = Fraction(c0 - remaining) / (k - 1)
            if bound <= 0:
                return 0, cut
            if bound >= w:
                raise ArborescencePackingError(
                    "parametric cut bound failed to shrink — inconsistent "
                    "capacities")
            w = bound
            break
        else:
            return w, None
    raise ArborescencePackingError("cut tightening did not converge")


def pack_arborescences(cap: Dict[EdgeKey, object], source: NodeId,
                       targets: Sequence[NodeId],
                       total: object) -> List[Arborescence]:
    """Decompose content capacities into weighted arborescences.

    ``cap`` maps edges to content rates (exact rationals) supporting a
    ``total``-valued flow from ``source`` to every target; the result is a
    list of weighted arborescences of total weight exactly ``total`` whose
    per-edge usage never exceeds ``cap``.
    """
    targets = [t for t in targets if t != source]
    if total <= 0 or not targets:
        return []
    residual = {e: c for e, c in cap.items() if c > 0}
    for t in targets:
        val, _cut = max_flow(residual, source, t)
        if val < total:
            raise ArborescencePackingError(
                f"content capacities carry only {val} of {total} from "
                f"{source!r} to {t!r}")
    remaining = total
    tight_cuts: List[Set[NodeId]] = []
    out: List[Arborescence] = []
    stalls = 0
    while remaining > 0:
        edges = _find_arborescence(residual, source, targets, tight_cuts)
        w, cut = _max_weight(residual, edges, source, targets, remaining)
        if w <= 0:
            tight_cuts.append(cut)
            stalls += 1
            if stalls > _MAX_STALLS:
                raise ArborescencePackingError(
                    f"packing stalled with {remaining} of {total} left — "
                    "the content LP bound is not arborescence-achievable "
                    "on this platform (Steiner gap)")
            continue
        stalls = 0
        out.append(Arborescence(weight=w, edges=edges))
        for e in edges:
            residual[e] = residual[e] - w
            if residual[e] <= 0:
                del residual[e]
        remaining = remaining - w
    return out
