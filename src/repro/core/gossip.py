"""Series of Gossips — personalized all-to-all (Section 3.5).

The ``SSPA2A(G)`` linear program: every source ``P_k`` streams a distinct
message ``m_{k,l}`` to every target ``P_l``.  Constraints are the one-port
bounds, per-type conservation, and a *common* throughput ``TP`` for every
(source, target) pair — one gossip operation is complete when every pair has
been served once.

The same fidelity notes as :mod:`repro.core.scatter` apply, per type
``(k, l)``: conservation is imposed at ``i not in {k, l}`` and the target
``l`` never re-emits ``m_{k,l}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.flowclean import clean_commodity
from repro.lp import LinearProgram, LinExpr, LPSolution, lin_sum, solve as lp_solve
from repro.platform.graph import NodeId, PlatformGraph

TypeKey = Tuple[NodeId, NodeId]  # (emitting source k, destination l)


@dataclass(frozen=True)
class GossipProblem:
    """A Series-of-Gossips instance.

    ``sources`` and ``targets`` may overlap (the usual all-to-all has them
    equal); the pair ``(k, k)`` is skipped — a node keeps its own message.
    """

    platform: PlatformGraph
    sources: Tuple[NodeId, ...]
    targets: Tuple[NodeId, ...]

    def __init__(self, platform: PlatformGraph, sources: Sequence[NodeId],
                 targets: Sequence[NodeId]) -> None:
        object.__setattr__(self, "platform", platform)
        object.__setattr__(self, "sources", tuple(sources))
        object.__setattr__(self, "targets", tuple(targets))
        for n in list(self.sources) + list(self.targets):
            if n not in platform:
                raise ValueError(f"node {n!r} not in platform")
        if len(set(self.sources)) != len(self.sources):
            raise ValueError("duplicate source")
        if len(set(self.targets)) != len(self.targets):
            raise ValueError("duplicate target")
        if not self.pairs():
            raise ValueError("no (source, target) pair with source != target")

    def pairs(self) -> List[TypeKey]:
        return [(k, l) for k in self.sources for l in self.targets if k != l]


def _gvar(i: NodeId, j: NodeId, k: NodeId, l: NodeId) -> str:
    return f"send[{i}->{j},m({k},{l})]"


def build_gossip_lp(problem: GossipProblem) -> LinearProgram:
    """Construct ``SSPA2A(G)`` (not yet solved)."""
    g = problem.platform
    lp = LinearProgram(f"SSPA2A({g.name})")
    tp = lp.var("TP")
    pairs = problem.pairs()

    gvars: Dict[Tuple[NodeId, NodeId, NodeId, NodeId], object] = {}
    for e in g.edges():
        for (k, l) in pairs:
            if e.src == l:  # destination never re-emits its type
                continue
            gvars[(e.src, e.dst, k, l)] = lp.var(_gvar(e.src, e.dst, k, l))

    def s_expr(i: NodeId, j: NodeId):
        c = g.cost(i, j)
        e = LinExpr()
        for (k, l) in pairs:
            v = gvars.get((i, j, k, l))
            if v is not None:
                e.add_term(v, c)
        return e

    for e in g.edges():
        lp.add(s_expr(e.src, e.dst) <= 1, name=f"edge[{e.src}->{e.dst}]")
    for p in g.nodes():
        if g.successors(p):
            lp.add(lin_sum(s_expr(p, q) for q in g.successors(p)) <= 1,
                   name=f"out[{p}]")
        if g.predecessors(p):
            lp.add(lin_sum(s_expr(q, p) for q in g.predecessors(p)) <= 1,
                   name=f"in[{p}]")
    for p in g.nodes():
        for (k, l) in pairs:
            if p == k or p == l:
                continue
            inflow = lin_sum(gvars[(q, p, k, l)] for q in g.predecessors(p)
                             if (q, p, k, l) in gvars)
            outflow = lin_sum(gvars[(p, q, k, l)] for q in g.successors(p)
                              if (p, q, k, l) in gvars)
            lp.add(inflow == outflow, name=f"conserve[{p},m({k},{l})]")
    for (k, l) in pairs:
        inflow = lin_sum(gvars[(q, l, k, l)] for q in g.predecessors(l)
                         if (q, l, k, l) in gvars)
        lp.add(inflow == tp, name=f"throughput[m({k},{l})]")
    lp.maximize(tp)
    return lp


@dataclass
class GossipSolution:
    """Solved ``SSPA2A(G)`` with cleaned per-pair flows."""

    problem: GossipProblem
    throughput: object
    send: Dict[Tuple[NodeId, NodeId, NodeId, NodeId], object]
    paths: Dict[TypeKey, List[Tuple[List[NodeId], object]]]
    lp_solution: LPSolution
    exact: bool

    def edge_occupation(self) -> Dict[Tuple[NodeId, NodeId], object]:
        g = self.problem.platform
        s: Dict[Tuple[NodeId, NodeId], object] = {}
        for (i, j, _k, _l), f in self.send.items():
            s[(i, j)] = s.get((i, j), 0) + f * g.cost(i, j)
        return s

    def verify(self, tol=0) -> List[str]:
        """Exact invariant re-check on the cleaned rates."""
        bad: List[str] = []
        occ = self.edge_occupation()
        out_t: Dict[NodeId, object] = {}
        in_t: Dict[NodeId, object] = {}
        for (i, j), o in occ.items():
            out_t[i] = out_t.get(i, 0) + o
            in_t[j] = in_t.get(j, 0) + o
        for p, o in list(out_t.items()) + list(in_t.items()):
            if o > 1 + tol:
                bad.append(f"port[{p}] {o} > 1")
        for (k, l) in self.problem.pairs():
            delivered = sum(f for (i, j, kk, ll), f in self.send.items()
                            if j == l and (kk, ll) == (k, l))
            if abs(delivered - self.throughput) > tol:
                bad.append(f"throughput[m({k},{l})] {delivered} != {self.throughput}")
        return bad


def solve_gossip(problem: GossipProblem, backend: str = "auto",
                 eps: float = 1e-9) -> GossipSolution:
    """Solve ``SSPA2A(G)`` and clean each commodity's flow."""
    lp = build_gossip_lp(problem)
    sol = lp_solve(lp, backend=backend)
    if not sol.optimal:
        raise RuntimeError(f"LP solve failed: {sol.status}")
    tp = sol.by_name("TP")
    tol = 0 if sol.exact else eps

    send: Dict[Tuple[NodeId, NodeId, NodeId, NodeId], object] = {}
    paths: Dict[TypeKey, List[Tuple[List[NodeId], object]]] = {}
    for (k, l) in problem.pairs():
        flow = {}
        for e in problem.platform.edges():
            name = _gvar(e.src, e.dst, k, l)
            try:
                var = lp.get(name)
            except KeyError:
                continue
            f = sol.value(var)
            if f > tol:
                flow[(e.src, e.dst)] = f
        cleaned, pths = clean_commodity(flow, k, l, demand=tp, eps=tol)
        paths[(k, l)] = pths
        for (i, j), f in cleaned.items():
            send[(i, j, k, l)] = f
    return GossipSolution(problem=problem, throughput=tp, send=send,
                          paths=paths, lp_solution=sol, exact=sol.exact)


def build_gossip_schedule(solution: GossipSolution):
    """Periodic one-port schedule for the gossip (same machinery as scatter)."""
    from repro.core.schedule import schedule_from_rates

    if not solution.exact:
        raise ValueError("schedule construction needs exact rational rates")
    g = solution.problem.platform
    rates = {}
    for (i, j, k, l), f in solution.send.items():
        rates[(i, j, ("msg", k, l))] = (f, g.cost(i, j))
    deliveries = {("msg", k, l): l for (k, l) in solution.problem.pairs()}
    return schedule_from_rates(rates, throughput=solution.throughput,
                               deliveries=deliveries,
                               name=f"gossip({g.name})")
