"""Series of Gossips — personalized all-to-all (Section 3.5).

The ``SSPA2A(G)`` linear program: every source ``P_k`` streams a distinct
message ``m_{k,l}`` to every target ``P_l``.  Constraints are the one-port
bounds, per-type conservation, and a *common* throughput ``TP`` for every
(source, target) pair — one gossip operation is complete when every pair has
been served once.

The same fidelity notes as :mod:`repro.core.scatter` apply, per type
``(k, l)``: conservation is imposed at ``i not in {k, l}`` and the target
``l`` never re-emits ``m_{k,l}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.collectives.base import CollectiveSolution
from repro.lp import LinearProgram, LinExpr, lin_sum
from repro.platform.graph import NodeId, PlatformGraph

TypeKey = Tuple[NodeId, NodeId]  # (emitting source k, destination l)


@dataclass(frozen=True)
class GossipProblem:
    """A Series-of-Gossips instance.

    ``sources`` and ``targets`` may overlap (the usual all-to-all has them
    equal); the pair ``(k, k)`` is skipped — a node keeps its own message.
    """

    platform: PlatformGraph
    sources: Tuple[NodeId, ...]
    targets: Tuple[NodeId, ...]

    def __init__(self, platform: PlatformGraph, sources: Sequence[NodeId],
                 targets: Sequence[NodeId]) -> None:
        object.__setattr__(self, "platform", platform)
        object.__setattr__(self, "sources", tuple(sources))
        object.__setattr__(self, "targets", tuple(targets))
        for n in list(self.sources) + list(self.targets):
            if n not in platform:
                raise ValueError(f"node {n!r} not in platform")
        if len(set(self.sources)) != len(self.sources):
            raise ValueError("duplicate source")
        if len(set(self.targets)) != len(self.targets):
            raise ValueError("duplicate target")
        if not self.pairs():
            raise ValueError("no (source, target) pair with source != target")

    def pairs(self) -> List[TypeKey]:
        return [(k, l) for k in self.sources for l in self.targets if k != l]


def _gvar(i: NodeId, j: NodeId, k: NodeId, l: NodeId) -> str:
    return f"send[{i}->{j},m({k},{l})]"


def build_gossip_lp(problem: GossipProblem) -> LinearProgram:
    """Construct ``SSPA2A(G)`` (not yet solved)."""
    g = problem.platform
    lp = LinearProgram(f"SSPA2A({g.name})")
    tp = lp.var("TP")
    pairs = problem.pairs()

    gvars: Dict[Tuple[NodeId, NodeId, NodeId, NodeId], object] = {}
    for e in g.edges():
        for (k, l) in pairs:
            if e.src == l:  # destination never re-emits its type
                continue
            gvars[(e.src, e.dst, k, l)] = lp.var(_gvar(e.src, e.dst, k, l))

    def s_expr(i: NodeId, j: NodeId):
        c = g.cost(i, j)
        e = LinExpr()
        for (k, l) in pairs:
            v = gvars.get((i, j, k, l))
            if v is not None:
                e.add_term(v, c)
        return e

    for e in g.edges():
        lp.add(s_expr(e.src, e.dst) <= 1, name=f"edge[{e.src}->{e.dst}]")
    for p in g.nodes():
        if g.successors(p):
            lp.add(lin_sum(s_expr(p, q) for q in g.successors(p)) <= 1,
                   name=f"out[{p}]")
        if g.predecessors(p):
            lp.add(lin_sum(s_expr(q, p) for q in g.predecessors(p)) <= 1,
                   name=f"in[{p}]")
    for p in g.nodes():
        for (k, l) in pairs:
            if p == k or p == l:
                continue
            inflow = lin_sum(gvars[(q, p, k, l)] for q in g.predecessors(p)
                             if (q, p, k, l) in gvars)
            outflow = lin_sum(gvars[(p, q, k, l)] for q in g.successors(p)
                              if (p, q, k, l) in gvars)
            lp.add(inflow == outflow, name=f"conserve[{p},m({k},{l})]")
    for (k, l) in pairs:
        inflow = lin_sum(gvars[(q, l, k, l)] for q in g.predecessors(l)
                         if (q, l, k, l) in gvars)
        lp.add(inflow == tp, name=f"throughput[m({k},{l})]")
    lp.maximize(tp)
    return lp


@dataclass
class GossipSolution(CollectiveSolution):
    """Solved ``SSPA2A(G)`` with cleaned per-pair flows.

    ``send[(i, j, k, l)]`` is the rate of ``m_{k,l}`` on edge ``(i, j)``;
    ``paths[(k, l)]`` the pair's weighted path decomposition.  Shared
    behavior comes from the registered ``"gossip"`` spec.
    """

    collective: str = "gossip"


def solve_gossip(problem: GossipProblem, backend: str = "auto",
                 eps: float = 1e-9, **solve_kwargs) -> GossipSolution:
    """Solve ``SSPA2A(G)`` and clean each commodity's flow (registry-backed
    wrapper over :func:`repro.collectives.solve_collective`; extra
    keywords reach :func:`repro.lp.solve`)."""
    from repro.collectives import solve_collective

    return solve_collective(problem, collective="gossip", backend=backend,
                            eps=eps, **solve_kwargs)


def build_gossip_schedule(solution: GossipSolution):
    """Periodic one-port schedule for the gossip (same machinery as scatter)."""
    from repro.collectives import schedule_collective

    return schedule_collective(solution)
