"""Flow cleaning: cycle removal, path decomposition, and the pass pipeline.

An optimal vertex of the steady-state LPs may carry *useless circulation*:
per-message-type flow cycles, or flow that leaves a destination again.  Such
circulation satisfies every constraint but wastes port capacity and — worse —
would make the naive ``FIND_TREE`` walk of Section 4.4 loop forever.  This
module provides:

- :func:`remove_cycles` — cancel directed cycles in a single-commodity flow,
- :func:`decompose_paths` — full flow decomposition of a source→sink
  commodity into weighted simple paths (dropping cycles and junk),
- :func:`clean_commodity` — the composition used by the scatter/gossip
  pipelines,

and the **pass framework** the collective orchestrator composes them
through: a :class:`FlowPass` transforms one commodity's
:class:`FlowContext` in place, and :func:`run_passes` chains passes
(``prune -> clean`` for routed commodities, ``prune -> decycle`` for
reduce-style intervals).  Collectives declare their default pipeline via
``CollectiveSpec.default_passes`` and callers may override it per solve
(``solve_collective(..., passes=[...])``).

All functions accept exact (Fraction/int) or float flows; for floats an
``eps`` threshold treats tiny values as zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

NodeId = Hashable
EdgeFlow = Dict[Tuple[NodeId, NodeId], object]


def _support(flow: EdgeFlow, eps) -> Dict[NodeId, Dict[NodeId, object]]:
    adj: Dict[NodeId, Dict[NodeId, object]] = {}
    for (u, v), f in flow.items():
        if f > eps:
            adj.setdefault(u, {})[v] = f
    return adj


def _find_cycle(adj: Dict[NodeId, Dict[NodeId, object]]) -> Optional[List[NodeId]]:
    """A directed cycle in the support, as a node list (first == last)."""
    color: Dict[NodeId, int] = {}
    parent: Dict[NodeId, NodeId] = {}

    for start in list(adj):
        if color.get(start):
            continue
        stack: List[Tuple[NodeId, Optional[object]]] = [(start, None)]
        while stack:
            node, it = stack[-1]
            if it is None:
                color[node] = 1
                it = iter(list(adj.get(node, {})))
                stack[-1] = (node, it)
            advanced = False
            for nxt in it:
                if color.get(nxt, 0) == 1:
                    # found a back edge node -> nxt; reconstruct cycle
                    cycle = [node]
                    cur = node
                    while cur != nxt:
                        cur = parent[cur]
                        cycle.append(cur)
                    cycle.reverse()
                    cycle.append(cycle[0])
                    return cycle
                if color.get(nxt, 0) == 0:
                    parent[nxt] = node
                    stack.append((nxt, None))
                    advanced = True
                    break
            if not advanced:
                color[node] = 2
                stack.pop()
    return None


def remove_cycles(flow: EdgeFlow, eps=0) -> EdgeFlow:
    """Cancel every directed cycle: returns an acyclic flow with the same
    divergence (out minus in) at every node.
    """
    out = {e: f for e, f in flow.items() if f > eps}
    while True:
        adj = _support(out, eps)
        cycle = _find_cycle(adj)
        if cycle is None:
            return out
        edges = list(zip(cycle, cycle[1:]))
        theta = min(out[e] for e in edges)
        for e in edges:
            out[e] = out[e] - theta
            if out[e] <= eps:
                del out[e]


def decompose_paths(flow: EdgeFlow, source: NodeId, sink: NodeId,
                    demand=None, eps=0) -> List[Tuple[List[NodeId], object]]:
    """Decompose a commodity into weighted simple paths ``source -> sink``.

    Repeatedly finds a path in the flow support and peels off its bottleneck.
    Stops when ``demand`` worth of path flow has been extracted (or no path
    remains).  Cycles and flow not on a source→sink path are ignored — that
    is exactly the junk we want dropped.
    """
    residual = {e: f for e, f in flow.items() if f > eps}
    paths: List[Tuple[List[NodeId], object]] = []
    extracted = 0
    while demand is None or extracted < demand:
        adj = _support(residual, eps)
        # BFS for a source -> sink path (BFS keeps paths short/simple)
        parent: Dict[NodeId, NodeId] = {source: source}
        queue = [source]
        while queue and sink not in parent:
            u = queue.pop(0)
            for v in adj.get(u, {}):
                if v not in parent:
                    parent[v] = u
                    queue.append(v)
        if sink not in parent:
            break
        path = [sink]
        while path[-1] != source:
            path.append(parent[path[-1]])
        path.reverse()
        edges = list(zip(path, path[1:]))
        theta = min(residual[e] for e in edges)
        if demand is not None:
            remaining = demand - extracted
            if theta > remaining:
                theta = remaining
        for e in edges:
            residual[e] = residual[e] - theta
            if residual[e] <= eps:
                del residual[e]
        paths.append((path, theta))
        extracted = extracted + theta
    return paths


def paths_to_flow(paths: List[Tuple[List[NodeId], object]]) -> EdgeFlow:
    """Superpose weighted paths back into an edge-flow map."""
    flow: EdgeFlow = {}
    for path, w in paths:
        for e in zip(path, path[1:]):
            flow[e] = flow.get(e, 0) + w
    return flow


def clean_commodity(flow: EdgeFlow, source: NodeId, sink: NodeId,
                    demand, eps=0) -> Tuple[EdgeFlow, List[Tuple[List[NodeId], object]]]:
    """Keep exactly ``demand`` worth of source→sink path flow; drop the rest.

    Returns ``(cleaned flow, path decomposition)``.  Raises ``ValueError``
    if the flow cannot deliver ``demand`` (which would mean the LP solution
    is invalid — e.g. inflated by phantom circulation; the LP builders in
    this package forbid destination re-emission precisely to prevent that,
    so hitting the error indicates a bug or an over-loose float tolerance).
    """
    paths = decompose_paths(flow, source, sink, demand=demand, eps=eps)
    total = sum(w for _, w in paths)
    if demand is not None:
        short = demand - total
        if short > (eps if eps else 0):
            raise ValueError(
                f"flow delivers only {total} of demanded {demand} from "
                f"{source!r} to {sink!r}")
    return paths_to_flow(paths), paths


def divergence(flow: EdgeFlow) -> Dict[NodeId, object]:
    """Per-node divergence (outflow minus inflow) of a flow."""
    div: Dict[NodeId, object] = {}
    for (u, v), f in flow.items():
        div[u] = div.get(u, 0) + f
        div[v] = div.get(v, 0) - f
    return div


def prune_epsilon_rates(flow: EdgeFlow, eps=0) -> EdgeFlow:
    """Drop rates at or below ``eps`` (and any negative float noise).

    For exact solutions ``eps == 0`` and this only removes explicit zeros;
    for float solves it is the numeric zero threshold applied before any
    structural cleaning, so cycle cancellation and path decomposition never
    chase solver noise.
    """
    return {e: f for e, f in flow.items() if f > eps}


# ----------------------------------------------------------------------
# pass framework
# ----------------------------------------------------------------------

@dataclass
class FlowContext:
    """One commodity's flow as it moves through the cleaning pipeline.

    ``source``/``sink`` are set for routed commodities (scatter messages,
    gossip pairs) and ``None`` for interval commodities (reduce partial
    results, which have many producers/consumers).  ``demand`` is the
    steady-state rate the commodity must deliver (the LP's ``TP``); passes
    that decompose the flow record the result in ``paths``.
    """

    commodity: object
    flow: EdgeFlow
    source: Optional[NodeId] = None
    sink: Optional[NodeId] = None
    demand: object = None
    eps: object = 0
    paths: Optional[List[Tuple[List[NodeId], object]]] = field(default=None)


class FlowPass:
    """A composable post-processing step over one commodity's flow.

    Subclasses override :meth:`run` and mutate the context in place.
    ``requires_endpoints`` marks passes that only make sense for routed
    (source→sink) commodities; :func:`run_passes` skips them when the
    context has no endpoints, so one pipeline can serve mixed collectives.
    """

    name: str = "pass"
    requires_endpoints: bool = False

    def run(self, ctx: FlowContext) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class PruneEpsilonRatesPass(FlowPass):
    """Threshold pass: drop rates ``<= eps`` before structural cleaning."""

    name = "prune-epsilon"

    def run(self, ctx: FlowContext) -> None:
        ctx.flow = prune_epsilon_rates(ctx.flow, eps=ctx.eps)


class RemoveCyclesPass(FlowPass):
    """Cancel directed cycles; keeps divergence intact at every node."""

    name = "remove-cycles"

    def run(self, ctx: FlowContext) -> None:
        ctx.flow = remove_cycles(ctx.flow, eps=ctx.eps)


class CleanCommodityPass(FlowPass):
    """Keep exactly ``demand`` worth of source→sink path flow; record the
    weighted path decomposition in ``ctx.paths``."""

    name = "clean-commodity"
    requires_endpoints = True

    def run(self, ctx: FlowContext) -> None:
        ctx.flow, ctx.paths = clean_commodity(
            ctx.flow, ctx.source, ctx.sink, demand=ctx.demand, eps=ctx.eps)


def run_passes(passes: Sequence[FlowPass], ctx: FlowContext) -> FlowContext:
    """Run ``passes`` over ``ctx`` in order; returns the same context.

    Passes with ``requires_endpoints`` are skipped when the commodity has
    no ``source``/``sink`` (interval commodities).
    """
    for p in passes:
        if p.requires_endpoints and (ctx.source is None or ctx.sink is None):
            continue
        p.run(ctx)
    return ctx
