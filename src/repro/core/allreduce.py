"""Series of All-reduces: reduce-scatter composed with all-gather.

All-reduce — every participant ends with the full reduction ``v[0] ⊕ ...
⊕ v[n-1]`` — decomposes canonically (Träff, arXiv:2410.14234) into a
reduce-scatter (participant ``b`` computes reduced block ``b``) followed
by an all-gather (the reduced blocks are redistributed to everyone).  In
the steady-state framework the two stages pipeline: while operation ``s``
is being all-gathered, operation ``s + 1`` is already being
reduce-scattered, so the composed throughput is the harmonic combination

    TP  =  1 / (1 / TP_reduce-scatter  +  1 / TP_all-gather)

and the composed period is the two stage periods back to back — exactly
what :class:`repro.collectives.base.CompositeCollectiveSpec` in
``"sequential"`` mode computes generically.

The harmonic value is a *bound*, not the optimum: both phases are priced
against the same one-port/alpha capacities, so nothing forces them to
alternate.  ``solve_all_reduce(problem, mode="pipelined")`` instead
solves ONE joint LP in which both phases run concurrently at a single
common ``TP`` — the all-gather broadcasts sourcing from the
reduce-scatter block sinks through explicit ``chain[..]`` precedence
rows — and always satisfies ``TP_pipelined >= TP_sequential`` (the
phase-scaled sequential point is feasible), strictly beating the
harmonic bound whenever the phases stress different links or CPUs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

from repro.platform.graph import NodeId, PlatformGraph


@dataclass(frozen=True)
class AllReduceProblem:
    """A Series-of-All-reduces instance.

    ``participants[j]`` owns fragment ``v[j]``; every participant must end
    with the full reduction.  ``msg_size``/``task_work``/``task_time_fn``
    follow :class:`repro.core.reduce_op.ReduceProblem` (the reduce-scatter
    stage inherits them; the all-gather stage redistributes blocks of size
    ``msg_size``).
    """

    platform: PlatformGraph
    participants: Tuple[NodeId, ...]
    msg_size: object = 1
    task_work: object = 1
    task_time_fn: Optional[Callable] = None

    def __init__(self, platform: PlatformGraph,
                 participants: Sequence[NodeId], msg_size: object = 1,
                 task_work: object = 1,
                 task_time_fn: Optional[Callable] = None) -> None:
        object.__setattr__(self, "platform", platform)
        object.__setattr__(self, "participants", tuple(participants))
        object.__setattr__(self, "msg_size", msg_size)
        object.__setattr__(self, "task_work", task_work)
        object.__setattr__(self, "task_time_fn", task_time_fn)
        if len(self.participants) < 2:
            raise ValueError("need at least two participants")
        # stage problems re-validate platform membership / duplicates

    @property
    def n_values(self) -> int:
        return len(self.participants)

    def owner(self, j: int) -> NodeId:
        return self.participants[j]


def solve_all_reduce(problem: AllReduceProblem, backend: str = "auto",
                     eps: float = 1e-9, **solve_kwargs):
    """Solve and compose (registry-backed wrapper).

    ``mode="sequential"`` (default) solves both stage LPs and composes
    harmonically; ``mode="pipelined"`` solves the chained joint LP that
    overlaps the phases (never below the harmonic value).
    """
    from repro.collectives import solve_collective

    return solve_collective(problem, collective="all-reduce",
                            backend=backend, eps=eps, **solve_kwargs)


def build_all_reduce_schedule(solution):
    """Concatenated two-phase periodic schedule (registry-backed wrapper)."""
    from repro.collectives import schedule_collective

    return schedule_collective(solution)
