"""Series of Reduce-scatters: the ``SSRS(G)`` linear program.

Reduce-scatter (Träff 2024, *Optimal, Non-pipelined Reduce-scatter and
Allreduce Algorithms*) is the collective where every participant
contributes one fragment per *block* and each participant ends up with one
fully reduced block: block ``b`` is ``v_b[0] ⊕ ... ⊕ v_b[n-1]`` and must
reach participant ``b``.  In the steady-state framework of the paper this
is ``n`` Series-of-Reduces instances — one per block, block ``b``
targeting ``participants[b]`` — *coupled through the shared one-port and
computation capacities* and driven at a single common throughput ``TP``
(one reduce-scatter operation is complete when every block has been
delivered once).

The LP is the reduce LP replicated per block:

- transfer variables ``send(Pi -> Pj, b: v[k,m])`` and task variables
  ``cons(Pi, b: T_{k,l,m})`` for every block ``b``,
- edge occupation / one-port / alpha constraints sum over **all** blocks,
- the conservation law (equation 10) holds per ``(block, interval)``, with
  fresh leaves ``v_b[j,j]`` appearing at ``participants[j]`` for every
  block (each participant owns one fragment of every block),
- per-block throughput: ``v_b[0, n-1]`` is absorbed at ``participants[b]``
  at rate ``TP`` (the same fidelity rule as reduce applies per block: the
  block's target never re-emits its complete result).

Downstream machinery is reused through per-block *projections*: block
``b``'s rates form a valid ``ReduceSolution`` for the reduce problem
targeting ``participants[b]``, so tree extraction (Section 4.4) and the
periodic schedule reconstruction run unchanged per block and are then
superposed into one schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.collectives.base import CollectiveSolution
from repro.core import intervals as iv
from repro.core.reduce_op import ReduceProblem
from repro.lp import LinearProgram, LinExpr, lin_sum
from repro.platform.graph import NodeId, PlatformGraph

Interval = Tuple[int, int]
Task = Tuple[int, int, int]


@dataclass(frozen=True)
class ReduceScatterProblem:
    """A Series-of-Reduce-scatters instance.

    ``participants[j]`` owns fragment ``v_b[j]`` of every block ``b``;
    block ``b``'s reduced result must reach ``participants[b]``.
    ``msg_size``/``task_work``/``task_time_fn`` follow
    :class:`repro.core.reduce_op.ReduceProblem` (all blocks share them).
    """

    platform: PlatformGraph
    participants: Tuple[NodeId, ...]
    msg_size: object = 1
    task_work: object = 1
    task_time_fn: Optional[Callable[[NodeId, Task], object]] = None

    def __init__(self, platform: PlatformGraph, participants: Sequence[NodeId],
                 msg_size: object = 1, task_work: object = 1,
                 task_time_fn: Optional[Callable[[NodeId, Task], object]] = None) -> None:
        object.__setattr__(self, "platform", platform)
        object.__setattr__(self, "participants", tuple(participants))
        object.__setattr__(self, "msg_size", msg_size)
        object.__setattr__(self, "task_work", task_work)
        object.__setattr__(self, "task_time_fn", task_time_fn)
        # participant/platform validation is exactly the reduce problem's;
        # the prototype is kept because size/task_time delegate to it from
        # O(n^4)-iteration LP-build and verify loops
        object.__setattr__(self, "_proto", self.block_problem(0))

    # ------------------------------------------------------------------
    @property
    def n_values(self) -> int:
        return len(self.participants)

    @property
    def blocks(self) -> range:
        return range(self.n_values)

    def owner(self, j: int) -> NodeId:
        return self.participants[j]

    def block_target(self, b: int) -> NodeId:
        """Destination of block ``b``'s reduced result."""
        return self.participants[b]

    def block_problem(self, b: int) -> ReduceProblem:
        """Block ``b`` as a standalone Series-of-Reduces problem."""
        return ReduceProblem(self.platform, self.participants,
                             self.block_target(b), msg_size=self.msg_size,
                             task_work=self.task_work,
                             task_time_fn=self.task_time_fn)

    def size(self, interval: Interval) -> object:
        if callable(self.msg_size):
            return self.msg_size(*interval)
        return self.msg_size

    def task_time(self, node: NodeId, task: Task) -> object:
        return self._proto.task_time(node, task)

    def compute_hosts(self) -> List[NodeId]:
        return self.platform.compute_nodes()


def _send_name(i: NodeId, j: NodeId, b: int, interval: Interval) -> str:
    return f"send[{i}->{j},b{b}:v[{interval[0]},{interval[1]}]]"


def _cons_name(i: NodeId, b: int, task: Task) -> str:
    return f"cons[{i},b{b}:T({task[0]},{task[1]},{task[2]})]"


def build_reduce_scatter_lp(problem: ReduceScatterProblem) -> LinearProgram:
    """Construct ``SSRS(G)`` (not yet solved)."""
    g = problem.platform
    n = problem.n_values
    lp = LinearProgram(f"SSRS({g.name})")
    tp = lp.var("TP")
    ivals = iv.all_intervals(n)
    tasks = iv.all_tasks(n)
    full = iv.full_interval(n)
    hosts = problem.compute_hosts()

    svars: Dict[Tuple[NodeId, NodeId, int, Interval], object] = {}
    for e in g.edges():
        for b in problem.blocks:
            for interval in ivals:
                if e.src == problem.block_target(b) and interval == full:
                    continue  # a block's target never re-emits its result
                svars[(e.src, e.dst, b, interval)] = \
                    lp.var(_send_name(e.src, e.dst, b, interval))

    cvars: Dict[Tuple[NodeId, int, Task], object] = {}
    for h in hosts:
        for b in problem.blocks:
            for t in tasks:
                cvars[(h, b, t)] = lp.var(_cons_name(h, b, t))

    # edge occupation and one-port, summed over every block's traffic
    def s_expr(i: NodeId, j: NodeId):
        c = g.cost(i, j)
        e = LinExpr()
        for b in problem.blocks:
            for interval in ivals:
                v = svars.get((i, j, b, interval))
                if v is not None:
                    e.add_term(v, problem.size(interval) * c)
        return e

    for e in g.edges():
        lp.add(s_expr(e.src, e.dst) <= 1, name=f"edge[{e.src}->{e.dst}]")
    for p in g.nodes():
        if g.successors(p):
            lp.add(lin_sum(s_expr(p, q) for q in g.successors(p)) <= 1,
                   name=f"out[{p}]")
        if g.predecessors(p):
            lp.add(lin_sum(s_expr(q, p) for q in g.predecessors(p)) <= 1,
                   name=f"in[{p}]")

    # computation time: alpha(Pi) <= 1 over every block's tasks
    for h in hosts:
        alpha = LinExpr()
        for b in problem.blocks:
            for t in tasks:
                alpha.add_term(cvars[(h, b, t)], problem.task_time(h, t))
        lp.add(alpha <= 1, name=f"alpha[{h}]")

    # conservation law per (block, interval)
    for p in g.nodes():
        for b in problem.blocks:
            for interval in ivals:
                if iv.is_leaf(interval) and problem.owner(interval[0]) == p:
                    continue  # fresh fragment of every block appears here
                if p == problem.block_target(b) and interval == full:
                    continue  # absorbed — handled by the throughput equation
                inflow = lin_sum(svars[(q, p, b, interval)]
                                 for q in g.predecessors(p)
                                 if (q, p, b, interval) in svars)
                produced = lin_sum(cvars[(p, b, t)]
                                   for t in iv.tasks_producing(interval)
                                   if (p, b, t) in cvars)
                outflow = lin_sum(svars[(p, q, b, interval)]
                                  for q in g.successors(p)
                                  if (p, q, b, interval) in svars)
                consumed = lin_sum(cvars[(p, b, t)]
                                   for t in iv.tasks_consuming(interval, n)
                                   if (p, b, t) in cvars)
                lp.add(inflow + produced == outflow + consumed,
                       name=f"conserve[{p},b{b}:v[{interval[0]},{interval[1]}]]")

    # common throughput: every block delivered at rate TP
    for b in problem.blocks:
        tgt = problem.block_target(b)
        arrival = lin_sum(svars[(q, tgt, b, full)] for q in g.predecessors(tgt)
                          if (q, tgt, b, full) in svars)
        local = lin_sum(cvars[(tgt, b, t)] for t in iv.tasks_producing(full)
                        if (tgt, b, t) in cvars)
        lp.add(arrival + local == tp, name=f"throughput[b{b}]")

    lp.maximize(tp)
    return lp


@dataclass
class ReduceScatterSolution(CollectiveSolution):
    """Solved ``SSRS(G)``.

    ``send[(i, j, b, (k, m))]`` are per-block transfer rates (cycles
    cancelled per block/interval); ``cons[(i, b, (k, l, m))]`` are
    per-block task rates.  ``trees`` maps block -> weighted reduction
    trees once :meth:`extract` has run.
    """

    collective: str = "reduce-scatter"

    def block_solution(self, b: int):
        """Block ``b``'s rates projected onto a :class:`ReduceSolution`.

        The projection is a genuine solution of the block's reduce problem
        (same platform capacities, throughput ``TP``), so tree extraction
        and scheduling reuse the reduce machinery unchanged.
        """
        from repro.core.reduce_op import ReduceSolution

        send = {(i, j, interval): f
                for (i, j, bb, interval), f in self.send.items() if bb == b}
        cons = {(h, t): r
                for (h, bb, t), r in (self.cons or {}).items() if bb == b}
        return ReduceSolution(problem=self.problem.block_problem(b),
                              throughput=self.throughput, send=send,
                              cons=cons, lp_solution=self.lp_solution,
                              exact=self.exact)

    def extract(self, eps: Optional[float] = None) -> Dict[int, list]:
        """Per-block weighted reduction trees (Section 4.4); caches."""
        if self.trees is None:
            self.trees = {b: self.block_solution(b).extract(eps=eps)
                          for b in self.problem.blocks}
        return self.trees


def solve_reduce_scatter(problem: ReduceScatterProblem, backend: str = "auto",
                         eps: float = 1e-9,
                         **solve_kwargs) -> ReduceScatterSolution:
    """Solve ``SSRS(G)`` (registry-backed wrapper; extra keywords reach
    :func:`repro.lp.solve`)."""
    from repro.collectives import solve_collective

    return solve_collective(problem, collective="reduce-scatter",
                            backend=backend, eps=eps, **solve_kwargs)


def build_reduce_scatter_schedule(solution: ReduceScatterSolution,
                                  trees: Optional[Dict[int, list]] = None):
    """Periodic schedule superposing every block's reduction trees.

    Each block contributes the rate bundle of its reduction trees
    (:func:`repro.core.schedule.tree_rate_bundle`, stream ids ``(b, r)`` so
    per-block streams stay distinct in the simulator), and the shared
    :func:`repro.core.schedule.superpose_schedules` merges them into one
    period — the same machinery every joint composite rides.  The schedule
    throughput is ``TP`` (one operation == one delivery of *every* block).
    """
    from repro.core.schedule import superpose_schedules, tree_rate_bundle

    if not solution.exact:
        raise ValueError("schedule construction needs exact rational rates")
    if trees is None:
        trees = solution.extract()
    problem = solution.problem
    bundles = [tree_rate_bundle(problem, block_trees,
                                target=problem.block_target(b),
                                stream=lambda r, b=b: (b, r))
               for b, block_trees in trees.items()]
    return superpose_schedules(bundles, throughput=solution.throughput,
                               name=f"reduce-scatter({problem.platform.name})")
