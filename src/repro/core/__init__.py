"""The paper's primary contribution: steady-state collective scheduling.

Pipelines, one per collective:

- **Series of Scatters** (Section 3): :func:`repro.core.scatter.solve_scatter`
  builds and solves ``SSSP(G)``, :func:`repro.core.scatter.build_scatter_schedule`
  turns the rational optimum into a periodic one-port schedule via bipartite
  matching decomposition.
- **Series of Gossips** (Section 3.5): :mod:`repro.core.gossip` — the
  personalized all-to-all generalization ``SSPA2A(G)``.
- **Series of Reduces** (Section 4): :mod:`repro.core.reduce_op` builds
  ``SSR(G)``; :mod:`repro.core.trees` extracts weighted reduction trees
  (Section 4.4); :mod:`repro.core.schedule` assembles the periodic schedule;
  :mod:`repro.core.fixed_period` implements the Section 4.6 approximation.
- **Parallel prefix** (Section 6 outlook): :mod:`repro.core.prefix`.
- **Series of Reduce-scatters**: :mod:`repro.core.reduce_scatter` — every
  participant ends with one reduced block; built as reduce-per-block over
  the shared capacities and scheduled by superposing per-block trees.

All five run through the one registry-driven pipeline in
:mod:`repro.collectives`; the ``solve_*`` functions here are thin
registry-backed wrappers kept for compatibility.
"""

from repro.core.scatter import (
    ScatterProblem,
    ScatterSolution,
    build_scatter_lp,
    build_scatter_schedule,
    solve_scatter,
)
from repro.core.gossip import (
    GossipProblem,
    GossipSolution,
    build_gossip_lp,
    build_gossip_schedule,
    solve_gossip,
)
from repro.core.reduce_op import (
    ReduceProblem,
    ReduceSolution,
    build_reduce_lp,
    solve_reduce,
)
from repro.core.prefix import PrefixSolution, build_prefix_lp, solve_prefix
from repro.core.reduce_scatter import (
    ReduceScatterProblem,
    ReduceScatterSolution,
    build_reduce_scatter_lp,
    build_reduce_scatter_schedule,
    solve_reduce_scatter,
)
from repro.core.trees import ReductionTree, extract_trees
from repro.core.schedule import PeriodicSchedule, build_reduce_schedule
from repro.core.fixed_period import fixed_period_approximation

__all__ = [
    "ScatterProblem",
    "ScatterSolution",
    "build_scatter_lp",
    "build_scatter_schedule",
    "solve_scatter",
    "GossipProblem",
    "GossipSolution",
    "build_gossip_lp",
    "build_gossip_schedule",
    "solve_gossip",
    "ReduceProblem",
    "ReduceSolution",
    "build_reduce_lp",
    "solve_reduce",
    "PrefixSolution",
    "build_prefix_lp",
    "solve_prefix",
    "ReduceScatterProblem",
    "ReduceScatterSolution",
    "build_reduce_scatter_lp",
    "build_reduce_scatter_schedule",
    "solve_reduce_scatter",
    "ReductionTree",
    "extract_trees",
    "PeriodicSchedule",
    "build_reduce_schedule",
    "fixed_period_approximation",
]
