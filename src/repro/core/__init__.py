"""The paper's primary contribution: steady-state collective scheduling.

Pipelines, one per collective:

- **Series of Scatters** (Section 3): :func:`repro.core.scatter.solve_scatter`
  builds and solves ``SSSP(G)``, :func:`repro.core.scatter.build_scatter_schedule`
  turns the rational optimum into a periodic one-port schedule via bipartite
  matching decomposition.
- **Series of Gossips** (Section 3.5): :mod:`repro.core.gossip` — the
  personalized all-to-all generalization ``SSPA2A(G)``.
- **Series of Reduces** (Section 4): :mod:`repro.core.reduce_op` builds
  ``SSR(G)``; :mod:`repro.core.trees` extracts weighted reduction trees
  (Section 4.4); :mod:`repro.core.schedule` assembles the periodic schedule;
  :mod:`repro.core.fixed_period` implements the Section 4.6 approximation.
- **Parallel prefix** (Section 6 outlook): :mod:`repro.core.prefix`.
- **Series of Reduce-scatters**: :mod:`repro.core.reduce_scatter` — every
  participant ends with one reduced block; built as reduce-per-block over
  the shared capacities and scheduled by superposing per-block trees.
- **Series of Broadcasts** (Section 5 outlook): :mod:`repro.core.broadcast`
  — content-divisible flows, scheduled by packing weighted arborescences
  (:mod:`repro.core.arborescence`).
- **Series of All-gathers**: :mod:`repro.core.allgather` — a *joint*
  composite of per-block broadcasts over shared capacities.
- **Series of All-reduces**: :mod:`repro.core.allreduce` — a *sequential*
  composite, reduce-scatter then all-gather, harmonic throughput.

All of them run through the one registry-driven pipeline in
:mod:`repro.collectives`; the ``solve_*`` functions here are thin
registry-backed wrappers kept for compatibility.  Composed collectives
share the schedule superposition/concatenation machinery of
:mod:`repro.core.schedule`.
"""

from repro.core.scatter import (
    ScatterProblem,
    ScatterSolution,
    build_scatter_lp,
    build_scatter_schedule,
    solve_scatter,
)
from repro.core.gossip import (
    GossipProblem,
    GossipSolution,
    build_gossip_lp,
    build_gossip_schedule,
    solve_gossip,
)
from repro.core.reduce_op import (
    ReduceProblem,
    ReduceSolution,
    build_reduce_lp,
    solve_reduce,
)
from repro.core.prefix import PrefixSolution, build_prefix_lp, solve_prefix
from repro.core.reduce_scatter import (
    ReduceScatterProblem,
    ReduceScatterSolution,
    build_reduce_scatter_lp,
    build_reduce_scatter_schedule,
    solve_reduce_scatter,
)
from repro.core.broadcast import (
    BroadcastProblem,
    BroadcastSolution,
    build_broadcast_lp,
    build_broadcast_schedule,
    solve_broadcast,
)
from repro.core.allgather import (
    AllGatherProblem,
    build_all_gather_schedule,
    solve_all_gather,
)
from repro.core.allreduce import (
    AllReduceProblem,
    build_all_reduce_schedule,
    solve_all_reduce,
)
from repro.core.arborescence import Arborescence, pack_arborescences
from repro.core.trees import ReductionTree, extract_trees
from repro.core.schedule import (
    PeriodicSchedule,
    RateBundle,
    build_reduce_schedule,
    concatenate_schedules,
    superpose_schedules,
)
from repro.core.fixed_period import fixed_period_approximation

__all__ = [
    "ScatterProblem",
    "ScatterSolution",
    "build_scatter_lp",
    "build_scatter_schedule",
    "solve_scatter",
    "GossipProblem",
    "GossipSolution",
    "build_gossip_lp",
    "build_gossip_schedule",
    "solve_gossip",
    "ReduceProblem",
    "ReduceSolution",
    "build_reduce_lp",
    "solve_reduce",
    "PrefixSolution",
    "build_prefix_lp",
    "solve_prefix",
    "ReduceScatterProblem",
    "ReduceScatterSolution",
    "build_reduce_scatter_lp",
    "build_reduce_scatter_schedule",
    "solve_reduce_scatter",
    "BroadcastProblem",
    "BroadcastSolution",
    "build_broadcast_lp",
    "build_broadcast_schedule",
    "solve_broadcast",
    "AllGatherProblem",
    "build_all_gather_schedule",
    "solve_all_gather",
    "AllReduceProblem",
    "build_all_reduce_schedule",
    "solve_all_reduce",
    "Arborescence",
    "pack_arborescences",
    "ReductionTree",
    "extract_trees",
    "PeriodicSchedule",
    "RateBundle",
    "build_reduce_schedule",
    "concatenate_schedules",
    "superpose_schedules",
    "fixed_period_approximation",
]
