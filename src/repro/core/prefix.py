"""Parallel-prefix extension (Section 6, concluding remarks).

The paper suggests extending the reduce machinery to *parallel prefix*: each
participant ``P_i`` must obtain the prefix ``v[0, i]`` of the reduction
limited to ranks at most its own.  The LP is ``SSR(G)`` with one delivery
constraint per rank instead of a single target:

- explicit non-negative *delivery* variables ``deliver_i`` absorb copies of
  ``v[0, i]`` at the owner of rank ``i`` — this keeps the conservation law
  intact at delivery nodes (a prefix ``v[0, i]`` may legitimately transit
  through ``P_i`` as an input for larger tasks elsewhere, so forbidding
  re-emission, as the plain reduce does for the final result, would cost
  throughput; an absorption variable is the phantom-safe alternative),
- all deliveries proceed at the common rate ``TP``; note ``deliver_0``
  is trivially satisfiable in place (``v[0,0]`` lives at rank 0), matching
  the convention that the rank-0 prefix needs no work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives.base import CollectiveSolution
from repro.core import intervals as iv
from repro.core.reduce_op import ReduceProblem, _cons_name, _send_name
from repro.lp import LinearProgram, LinExpr, lin_sum


@dataclass
class PrefixSolution(CollectiveSolution):
    """Solved parallel-prefix LP: common delivery throughput and rates.

    Shared behavior (``verify``, ``edge_occupation``, ``alpha``) comes
    from the registered ``"prefix"`` spec.
    """

    collective: str = "prefix"


def build_prefix_lp(problem: ReduceProblem) -> LinearProgram:
    """LP maximizing the common rate of all prefix deliveries.

    ``problem.target`` is ignored — every participant is a target for its
    own prefix.
    """
    g = problem.platform
    n = problem.n_values
    lp = LinearProgram(f"PREFIX({g.name})")
    tp = lp.var("TP")
    ivals = iv.all_intervals(n)
    tasks = iv.all_tasks(n)
    hosts = problem.compute_hosts()

    svars = {}
    for e in g.edges():
        for interval in ivals:
            svars[(e.src, e.dst, interval)] = lp.var(_send_name(e.src, e.dst, interval))
    cvars = {}
    for h in hosts:
        for t in tasks:
            cvars[(h, t)] = lp.var(_cons_name(h, t))
    dvars = {i: lp.var(f"deliver[{i}]") for i in range(1, n)}

    def s_expr(i, j):
        c = g.cost(i, j)
        e = LinExpr()
        for interval in ivals:
            e.add_term(svars[(i, j, interval)], problem.size(interval) * c)
        return e

    for e in g.edges():
        lp.add(s_expr(e.src, e.dst) <= 1, name=f"edge[{e.src}->{e.dst}]")
    for p in g.nodes():
        if g.successors(p):
            lp.add(lin_sum(s_expr(p, q) for q in g.successors(p)) <= 1,
                   name=f"out[{p}]")
        if g.predecessors(p):
            lp.add(lin_sum(s_expr(q, p) for q in g.predecessors(p)) <= 1,
                   name=f"in[{p}]")
    for h in hosts:
        alpha = LinExpr()
        for t in tasks:
            alpha.add_term(cvars[(h, t)], problem.task_time(h, t))
        lp.add(alpha <= 1, name=f"alpha[{h}]")

    for p in g.nodes():
        for interval in ivals:
            if iv.is_leaf(interval) and problem.owner(interval[0]) == p:
                continue
            inflow = lin_sum(svars[(q, p, interval)] for q in g.predecessors(p))
            produced = lin_sum(cvars[(p, t)] for t in iv.tasks_producing(interval)
                               if (p, t) in cvars)
            outflow = lin_sum(svars[(p, q, interval)] for q in g.successors(p))
            consumed = lin_sum(cvars[(p, t)] for t in iv.tasks_consuming(interval, n)
                               if (p, t) in cvars)
            absorbed = 0
            k, m = interval
            if k == 0 and m >= 1 and problem.owner(m) == p:
                absorbed = dvars[m]  # prefix v[0, m] delivered at rank m's owner
            lp.add(inflow + produced == outflow + consumed + absorbed,
                   name=f"conserve[{p},v[{k},{m}]]")

    for i in range(1, n):
        lp.add(dvars[i] == tp, name=f"prefix-throughput[{i}]")
    lp.maximize(tp)
    return lp


def solve_prefix(problem: ReduceProblem, backend: str = "auto",
                 eps: float = 1e-9, **solve_kwargs) -> PrefixSolution:
    """Solve the parallel-prefix LP (registry-backed wrapper; the spec
    name ``"prefix"`` disambiguates from ``"reduce"``, which shares
    :class:`ReduceProblem`; extra keywords reach
    :func:`repro.lp.solve`)."""
    from repro.collectives import solve_collective

    return solve_collective(problem, collective="prefix", backend=backend,
                            eps=eps, **solve_kwargs)
