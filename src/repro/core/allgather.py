"""Series of All-gathers: joint composition of per-block broadcasts.

All-gather is the communication transpose of reduce-scatter: participant
``b`` starts with block ``b`` and every participant must end with *all*
blocks.  In the steady-state framework this is ``n`` series-of-broadcasts
— block ``b`` broadcast from ``participants[b]`` to every other
participant — *coupled through the shared one-port capacities* and driven
at one common throughput ``TP`` (one all-gather completes when every block
reached every participant once).

There is no bespoke LP here: the collective is a
:class:`repro.collectives.base.CompositeCollectiveSpec` in ``"joint"``
mode, so :func:`repro.collectives.base.compose_joint_lp` assembles the
joint LP from the registered broadcast stages and the schedule is the
superposition of the per-block arborescence bundles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.platform.graph import NodeId, PlatformGraph


@dataclass(frozen=True)
class AllGatherProblem:
    """A Series-of-All-gathers instance.

    ``participants[b]`` owns block ``b`` (of size ``msg_size``) and must
    receive every other block; non-participant nodes may relay content.
    """

    platform: PlatformGraph
    participants: Tuple[NodeId, ...]
    msg_size: object = 1

    def __init__(self, platform: PlatformGraph,
                 participants: Sequence[NodeId],
                 msg_size: object = 1) -> None:
        object.__setattr__(self, "platform", platform)
        object.__setattr__(self, "participants", tuple(participants))
        object.__setattr__(self, "msg_size", msg_size)
        seen = set()
        for p in self.participants:
            if p not in platform:
                raise ValueError(f"participant {p!r} not in platform")
            if p in seen:
                raise ValueError(f"duplicate participant {p!r}")
            seen.add(p)
        if len(self.participants) < 2:
            raise ValueError("need at least two participants")

    @property
    def n_values(self) -> int:
        return len(self.participants)

    @property
    def blocks(self) -> range:
        return range(self.n_values)

    def owner(self, b: int) -> NodeId:
        return self.participants[b]

    def block_targets(self, b: int) -> List[NodeId]:
        """Everyone but the owner receives block ``b``."""
        return [p for p in self.participants if p != self.owner(b)]


def solve_all_gather(problem: AllGatherProblem, backend: str = "auto",
                     eps: float = 1e-9, **solve_kwargs):
    """Solve the joint all-gather LP (registry-backed wrapper)."""
    from repro.collectives import solve_collective

    return solve_collective(problem, collective="all-gather",
                            backend=backend, eps=eps, **solve_kwargs)


def build_all_gather_schedule(solution):
    """Superposed periodic schedule (registry-backed wrapper)."""
    from repro.collectives import schedule_collective

    return schedule_collective(solution)
