"""Series of Broadcasts: the content-divisible flow LP (Section 5 outlook).

Broadcast streams the *same* message from one source to every target, so —
unlike scatter, whose per-target messages are distinct — flows to different
targets may share bytes on a common edge.  The paper's Section 5 discussion
points at exactly this relaxation: model a per-target flow ``f_t`` of value
``TP`` for every target plus a per-edge *content* rate ``x`` with

    f_t(i, j) <= x(i, j)           (content is shared, not summed)

and charge the one-port/edge occupation with ``x`` alone.  This is the
series-of-broadcasts LP of Beaumont-Legrand-Marchal-Robert; its optimum
upper-bounds any steady-state broadcast and is achieved by routing message
*slices* along weighted arborescences packed from ``x``
(:mod:`repro.core.arborescence`, Edmonds' branching theorem).

Variables:

- ``send(Pi -> Pj, m_t)``: rate of target ``t``'s flow on edge ``(i, j)``
  (the scatter naming, so the shared codec/cleaning pipeline applies),
- ``content(Pi -> Pj)``: rate of distinct message content on the edge,
- ``TP``: broadcast operations initiated per time-unit.

Constraints: per-target conservation and ``TP`` delivery exactly as in the
scatter LP (a target never re-emits its own flow), ``f_t <= x`` per edge
and target, and edge/one-port occupation of ``x * size * c(i, j)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.collectives.base import CollectiveSolution
from repro.lp import LinearProgram, LinExpr, lin_sum
from repro.platform.graph import NodeId, PlatformGraph

EdgeKey = Tuple[NodeId, NodeId]


@dataclass(frozen=True)
class BroadcastProblem:
    """A Series-of-Broadcasts instance: platform, source, targets.

    Every target must receive the full ``msg_size`` message each
    operation; non-target nodes may relay content.
    """

    platform: PlatformGraph
    source: NodeId
    targets: Tuple[NodeId, ...]
    msg_size: object = 1

    def __init__(self, platform: PlatformGraph, source: NodeId,
                 targets: Sequence[NodeId], msg_size: object = 1) -> None:
        object.__setattr__(self, "platform", platform)
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "targets", tuple(targets))
        object.__setattr__(self, "msg_size", msg_size)
        if source not in platform:
            raise ValueError(f"source {source!r} not in platform")
        seen = set()
        for t in self.targets:
            if t not in platform:
                raise ValueError(f"target {t!r} not in platform")
            if t == source:
                raise ValueError("the source holds the message already; "
                                 "listing it as a target is not meaningful")
            if t in seen:
                raise ValueError(f"duplicate target {t!r}")
            seen.add(t)
        if not self.targets:
            raise ValueError("need at least one target")


def _fvar(i: NodeId, j: NodeId, t: NodeId) -> str:
    return f"send[{i}->{j},m{t}]"


def _xvar(i: NodeId, j: NodeId) -> str:
    return f"content[{i}->{j}]"


def build_broadcast_lp(problem: BroadcastProblem) -> LinearProgram:
    """Construct the content-divisible broadcast LP (not yet solved)."""
    g = problem.platform
    lp = LinearProgram(f"SSB({g.name})")
    tp = lp.var("TP")

    xvars: Dict[EdgeKey, object] = {}
    fvars: Dict[Tuple[NodeId, NodeId, NodeId], object] = {}
    for e in g.edges():
        xvars[(e.src, e.dst)] = lp.var(_xvar(e.src, e.dst))
        for t in problem.targets:
            if e.src == t:
                continue  # a target never re-emits its own flow
            fvars[(e.src, e.dst, t)] = lp.var(_fvar(e.src, e.dst, t))

    # occupation is charged on content, not on the per-target flows
    def x_expr(i: NodeId, j: NodeId):
        e = LinExpr()
        e.add_term(xvars[(i, j)], problem.msg_size * g.cost(i, j))
        return e

    for e in g.edges():
        lp.add(x_expr(e.src, e.dst) <= 1, name=f"edge[{e.src}->{e.dst}]")
    for p in g.nodes():
        if g.successors(p):
            lp.add(lin_sum(x_expr(p, q) for q in g.successors(p)) <= 1,
                   name=f"out[{p}]")
        if g.predecessors(p):
            lp.add(lin_sum(x_expr(q, p) for q in g.predecessors(p)) <= 1,
                   name=f"in[{p}]")

    # content dominates every per-target flow on the edge
    for (i, j, t), f in fvars.items():
        lp.add(f <= xvars[(i, j)], name=f"content[{i}->{j},m{t}]")

    # per-target conservation away from source and target
    for p in g.nodes():
        if p == problem.source:
            continue
        for t in problem.targets:
            if p == t:
                continue
            inflow = lin_sum(v for q in g.predecessors(p)
                             if (v := fvars.get((q, p, t))) is not None)
            outflow = lin_sum(v for q in g.successors(p)
                              if (v := fvars.get((p, q, t))) is not None)
            lp.add(inflow == outflow, name=f"conserve[{p},m{t}]")

    # every target absorbs the message at rate TP
    for t in problem.targets:
        inflow = lin_sum(fvars[(q, t, t)] for q in g.predecessors(t)
                         if (q, t, t) in fvars)
        lp.add(inflow == tp, name=f"throughput[m{t}]")

    lp.maximize(tp)
    return lp


@dataclass
class BroadcastSolution(CollectiveSolution):
    """Solved series of broadcasts.

    ``send[(i, j)]`` is the cleaned *content* rate on the edge (what
    occupies the ports); ``flows[t][(i, j)]`` the per-target flow it
    dominates; ``paths[t]`` the per-target path decomposition.  ``trees``
    caches the weighted arborescences once :meth:`arborescences` has
    packed them.
    """

    collective: str = "broadcast"
    flows: Optional[Dict[NodeId, Dict[EdgeKey, object]]] = None

    def arborescences(self) -> List[object]:
        """Weighted arborescences carrying the content (cached)."""
        from repro.core.arborescence import pack_arborescences

        if self.trees is None:
            self.trees = pack_arborescences(
                dict(self.send), self.problem.source,
                list(self.problem.targets), self.throughput)
        return self.trees


def solve_broadcast(problem: BroadcastProblem, backend: str = "auto",
                    eps: float = 1e-9, **solve_kwargs) -> BroadcastSolution:
    """Solve the broadcast LP (registry-backed wrapper; extra keywords
    reach :func:`repro.lp.solve`)."""
    from repro.collectives import solve_collective

    return solve_collective(problem, collective="broadcast", backend=backend,
                            eps=eps, **solve_kwargs)


def build_broadcast_schedule(solution: BroadcastSolution):
    """Periodic one-port schedule routing slices along packed
    arborescences (registry-backed wrapper; exact solutions only)."""
    from repro.collectives import schedule_collective

    return schedule_collective(solution)
