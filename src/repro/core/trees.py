"""Reduction-tree extraction — the ``EXTRACT_TREES`` algorithm (Section 4.4).

A *reduction tree* is a list of tasks (computations ``cons(T_{k,l,m}, Pi)``
and transfers ``send(Pi -> Pj, v[k,m])``) such that every input of a task is
either the result of another task of the tree or an initial value ``v[j,j]``
at its owner, and the overall result is ``v[0, n-1]`` at the target.

``extract_trees`` greedily peels trees off an LP solution: find a tree among
tasks with positive remaining rate, weight it by the minimum remaining rate
of its tasks, subtract, repeat until the whole throughput ``TP`` is
accounted for.  Theorem 1: at most ``2 n^4`` trees, each extraction in
polynomial time, and the weighted trees sum exactly to the solution used.

Termination safeguard (DESIGN.md decision 3): ``FIND_TREE`` as printed can
chase its own tail on solutions containing per-interval transfer cycles.
:func:`repro.core.reduce_op.solve_reduce` cancels those cycles up front, and
the resolver below prefers in-place production over transfers; under those
two conditions every resolution step either strictly shrinks the interval or
walks an acyclic flow, so the walk terminates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core import intervals as iv
from repro.platform.graph import NodeId

Interval = Tuple[int, int]
Task = Tuple[int, int, int]


@dataclass(frozen=True)
class TreeTransfer:
    """Transfer of ``v[interval]`` from ``src`` to ``dst`` (one per reduce)."""

    src: NodeId
    dst: NodeId
    interval: Interval


@dataclass(frozen=True)
class TreeTask:
    """Execution of ``T_task`` on ``node`` (one per reduce)."""

    node: NodeId
    task: Task


@dataclass
class ReductionTree:
    """A reduction tree with its steady-state weight (rate per time-unit)."""

    weight: object
    transfers: Tuple[TreeTransfer, ...]
    tasks: Tuple[TreeTask, ...]

    def all_ops(self) -> List[object]:
        return list(self.transfers) + list(self.tasks)

    def leaf_intervals(self) -> List[Interval]:
        """Leaves actually consumed: inputs never produced within the tree."""
        produced = {iv.task_output(t.task) for t in self.tasks}
        needed: List[Interval] = []
        for t in self.tasks:
            for inp in iv.task_inputs(t.task):
                if inp not in produced:
                    needed.append(inp)
        if not self.tasks:  # degenerate: pure forwarding of a single value
            needed = [self.transfers[0].interval] if self.transfers else []
        return needed

    def describe(self) -> str:
        lines = [f"tree (weight {self.weight}):"]
        for t in self.tasks:
            lines.append(f"  cons T{t.task} on {t.node!r}")
        for tr in self.transfers:
            lines.append(f"  send v[{tr.interval[0]},{tr.interval[1]}] "
                         f"{tr.src!r} -> {tr.dst!r}")
        return "\n".join(lines)


class TreeExtractionError(RuntimeError):
    """FIND_TREE got stuck before the full throughput was decomposed."""


OpKey = Tuple  # ("send", i, j, interval) | ("cons", node, task)


def solution_op_values(solution) -> Dict[OpKey, object]:
    """Flatten a :class:`ReduceSolution` into the mutable map ``A``."""
    a: Dict[OpKey, object] = {}
    for (i, j, interval), f in solution.send.items():
        a[("send", i, j, interval)] = f
    for (node, task), r in solution.cons.items():
        a[("cons", node, task)] = r
    return a


def find_tree(a: Dict[OpKey, object], problem, eps=0) -> Optional[ReductionTree]:
    """One reduction tree among ops with remaining rate > ``eps``.

    Resolution strategy for an unmet input ``(v[k,m] at node)``:

    1. if it is a fresh value at its owner, it is free;
    2. else, if some task producing ``v[k,m]`` has remaining rate at
       ``node``, compute in place (smallest split point ``l`` first);
    3. else, follow an incoming transfer with remaining rate (deterministic
       neighbor order).

    Returns ``None`` when no complete tree exists (remaining rate exhausted).
    """
    g = problem.platform
    n = problem.n_values
    target = problem.target
    full = iv.full_interval(n)

    transfers: List[TreeTransfer] = []
    tasks: List[TreeTask] = []
    used: Dict[OpKey, int] = {}
    inputs: List[Tuple[Interval, NodeId]] = [(full, target)]

    def available(key: OpKey) -> bool:
        return a.get(key, 0) > eps and used.get(key, 0) == 0

    guard = 0
    max_steps = 4 * (len(a) + 1) * (n + 1)
    while inputs:
        guard += 1
        if guard > max_steps:
            raise TreeExtractionError(
                "FIND_TREE did not terminate — per-interval flows are "
                "probably cyclic (run remove_cycles first)")
        interval, node = inputs.pop()
        if iv.is_leaf(interval) and problem.owner(interval[0]) == node:
            continue
        # 2. in-place production
        produced = False
        if g.is_compute(node):
            for task in iv.tasks_producing(interval):
                key = ("cons", node, task)
                if available(key):
                    used[key] = 1
                    tasks.append(TreeTask(node=node, task=task))
                    left, right = iv.task_inputs(task)
                    inputs.append((left, node))
                    inputs.append((right, node))
                    produced = True
                    break
        if produced:
            continue
        # 3. incoming transfer
        moved = False
        for q in sorted(g.predecessors(node), key=str):
            key = ("send", q, node, interval)
            if available(key):
                used[key] = 1
                transfers.append(TreeTransfer(src=q, dst=node, interval=interval))
                inputs.append((interval, q))
                moved = True
                break
        if not moved:
            return None

    weight = min(a[key] for key in used) if used else None
    if weight is None:
        # degenerate: target owns everything (cannot happen for n >= 2)
        return None
    return ReductionTree(weight=weight, transfers=tuple(transfers),
                         tasks=tuple(tasks))


def extract_trees(solution, eps: Optional[float] = None) -> List[ReductionTree]:
    """``EXTRACT_TREES(A)``: decompose a solution into weighted trees.

    For exact solutions the weights sum to exactly ``TP``; for float
    solutions the loop stops when the remaining throughput is below ``eps``
    (default ``1e-9``) and weights are capped so they never exceed the
    remaining throughput.
    """
    exact = solution.exact
    if eps is None:
        eps = 0 if exact else 1e-9
    a = solution_op_values(solution)
    remaining = solution.throughput
    trees: List[ReductionTree] = []
    limit = 2 * (len(solution.problem.platform.nodes()) ** 4) + 16
    while remaining > (eps if not exact else 0):
        if len(trees) > limit:
            raise TreeExtractionError(
                f"extracted more than the 2n^4 bound ({limit}) — aborting")
        tree = find_tree(a, solution.problem, eps=eps if not exact else 0)
        if tree is None:
            if exact:
                raise TreeExtractionError(
                    f"no tree found with {remaining} throughput unaccounted")
            break  # float residue below tolerance ladder — accept
        w = tree.weight
        if w > remaining:
            w = remaining  # cap (float path only; exact math never overshoots)
            tree = ReductionTree(weight=w, transfers=tree.transfers,
                                 tasks=tree.tasks)
        for op in tree.all_ops():
            if isinstance(op, TreeTransfer):
                key = ("send", op.src, op.dst, op.interval)
            else:
                key = ("cons", op.node, op.task)
            a[key] = a[key] - w
            if not exact and a[key] <= eps:
                a[key] = 0
        remaining = remaining - w
        trees.append(tree)
    return trees


def trees_weight_sum(trees: List[ReductionTree]) -> object:
    return sum((t.weight for t in trees), 0)


def incidence(trees: List[ReductionTree]) -> Dict[OpKey, object]:
    """``sum_T w(T) * chi_T`` — should reproduce the solution map ``A``.

    Used by tests to verify Lemma 2 / Theorem 1: the extracted weighted
    trees decompose the cleaned LP solution exactly.
    """
    total: Dict[OpKey, object] = {}
    for tree in trees:
        for op in tree.all_ops():
            if isinstance(op, TreeTransfer):
                key = ("send", op.src, op.dst, op.interval)
            else:
                key = ("cons", op.node, op.task)
            total[key] = total.get(key, 0) + tree.weight
    return total
