"""Periodic schedule construction (Sections 3.3 and 4.3).

From exact rational steady-state rates we build a
:class:`PeriodicSchedule`: a period ``T`` (the lcm of all rate denominators,
so per-period message counts are integers) divided into *slots*.  Each slot
is one matching of the bipartite communication graph: a set of transfers
that run simultaneously without violating the one-port model, each busy for
the whole slot duration.  Messages may split across slot boundaries
(Figure 4a); :meth:`PeriodicSchedule.without_splits` rescales the period so
every transfer moves an integer number of messages (Figure 4b).

For reduce schedules the per-node computation load (``α(Pi) ≤ 1``) is packed
sequentially inside the period; computations overlap communications freely
(full-overlap assumption of Section 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.matching import decompose_matchings
from repro.platform.graph import NodeId

Item = Hashable  # message-type token, e.g. ("msg", k) or ("val", (k, m), tree)


@dataclass
class Transfer:
    """``units`` messages of ``item`` from ``src`` to ``dst`` taking ``time``."""

    src: NodeId
    dst: NodeId
    item: Item
    units: object  # fractional message count within this slot
    time: object   # occupation time within this slot (= units * unit_time)


@dataclass
class ComputeTask:
    """``count`` executions per period of a task producing ``output`` from
    ``inputs`` on ``node``, each taking ``unit_time``."""

    node: NodeId
    output: Item
    inputs: Tuple[Item, ...]
    count: object
    unit_time: object


@dataclass
class Slot:
    """One matching: simultaneous transfers for ``duration`` time-units."""

    duration: object
    transfers: List[Transfer] = field(default_factory=list)


@dataclass
class PeriodicSchedule:
    """A steady-state periodic schedule.

    Attributes
    ----------
    period:
        ``T`` — slot durations sum to exactly ``T``.
    throughput:
        Operations initiated per time-unit (= ``ops_per_period / period``).
    slots:
        The ordered sequence of matchings.
    per_period:
        Integer number of messages of each item shipped per period
        (summed over all edges).
    compute:
        Per-node compute tasks per period (empty for scatter/gossip).
    deliveries:
        ``item -> destination node`` for items whose arrival completes an
        operation (used by the simulator to count throughput).
    """

    name: str
    period: object
    throughput: object
    slots: List[Slot]
    per_period: Dict[Item, int]
    deliveries: Dict[Item, NodeId]
    compute: Dict[NodeId, List[ComputeTask]] = field(default_factory=dict)
    # lazy one-pass caches; never compare/serialize these
    _busy_cache: Optional[Tuple[Dict[NodeId, object], Dict[NodeId, object]]] = \
        field(default=None, init=False, repr=False, compare=False)
    _compute_cache: Optional[Dict[NodeId, object]] = \
        field(default=None, init=False, repr=False, compare=False)

    # ------------------------------------------------------------------
    def ops_per_period(self) -> object:
        return self.throughput * self.period

    def _port_busy(self) -> Tuple[Dict[NodeId, object], Dict[NodeId, object]]:
        """All nodes' (send, recv) busy times in one slots×transfers pass."""
        if self._busy_cache is None:
            snd: Dict[NodeId, object] = {}
            rcv: Dict[NodeId, object] = {}
            for slot in self.slots:
                dur = slot.duration
                # several message types on the same (src, dst) pair
                # serialize inside the slot (see validate()); the port is
                # occupied for the slot duration once, not once per type
                for i, j in {(t.src, t.dst) for t in slot.transfers}:
                    snd[i] = snd.get(i, 0) + dur
                    rcv[j] = rcv.get(j, 0) + dur
            self._busy_cache = (snd, rcv)
        return self._busy_cache

    def busy_time(self, node: NodeId) -> Tuple[object, object]:
        """(send-port, recv-port) busy time of ``node`` per period."""
        snd, rcv = self._port_busy()
        return snd.get(node, 0), rcv.get(node, 0)

    def compute_time(self, node: NodeId) -> object:
        if self._compute_cache is None:
            self._compute_cache = {
                n: sum((ct.count * ct.unit_time for ct in tasks), 0)
                for n, tasks in self.compute.items()}
        return self._compute_cache.get(node, 0)

    def validate(self) -> List[str]:
        """One-port / period invariants; empty list == valid."""
        bad: List[str] = []
        total = sum((s.duration for s in self.slots), 0)
        if total > self.period:
            bad.append(f"slot durations {total} exceed period {self.period}")
        for slot in self.slots:
            # a slot is a matching over (sender, receiver) pairs; several
            # message types on the SAME pair serialize inside the slot
            partner_of_src: Dict[object, object] = {}
            partner_of_dst: Dict[object, object] = {}
            pair_time: Dict[Tuple[object, object], object] = {}
            for t in slot.transfers:
                if partner_of_src.setdefault(t.src, t.dst) != t.dst:
                    bad.append(f"{t.src!r} sends to two receivers in one slot")
                if partner_of_dst.setdefault(t.dst, t.src) != t.src:
                    bad.append(f"{t.dst!r} receives from two senders in one slot")
                pair_time[(t.src, t.dst)] = pair_time.get((t.src, t.dst), 0) + t.time
            for (i, j), tt in pair_time.items():
                if tt > slot.duration:
                    bad.append(f"pair ({i!r},{j!r}) time {tt} exceeds slot "
                               f"{slot.duration}")
        for node, tasks in self.compute.items():
            ct = self.compute_time(node)
            if ct > self.period:
                bad.append(f"compute time {ct} at {node!r} exceeds period")
        return bad

    # ------------------------------------------------------------------
    def without_splits(self) -> "PeriodicSchedule":
        """Rescale so no message is split across slots (Figure 4b).

        Multiplies the period by the lcm of the denominators of all per-slot
        unit counts; every transfer then carries an integer message count.
        """
        den = 1
        for slot in self.slots:
            for t in slot.transfers:
                den = _lcm(den, _denominator(t.units))
        if den == 1:
            return self
        return self.scaled(den)

    def scaled(self, factor: int) -> "PeriodicSchedule":
        """Schedule with every duration/count multiplied by ``factor``."""
        slots = [Slot(duration=s.duration * factor,
                      transfers=[Transfer(t.src, t.dst, t.item,
                                          t.units * factor, t.time * factor)
                                 for t in s.transfers])
                 for s in self.slots]
        compute = {n: [ComputeTask(ct.node, ct.output, ct.inputs,
                                   ct.count * factor, ct.unit_time)
                       for ct in tasks]
                   for n, tasks in self.compute.items()}
        return PeriodicSchedule(
            name=self.name, period=self.period * factor,
            throughput=self.throughput, slots=slots,
            per_period={k: v * factor for k, v in self.per_period.items()},
            deliveries=dict(self.deliveries), compute=compute)


def _denominator(x) -> int:
    if isinstance(x, int):
        return 1
    if isinstance(x, Fraction):
        return x.denominator
    raise TypeError(f"need exact rational, got {type(x).__name__}")


def _lcm(a: int, b: int) -> int:
    return a // math.gcd(a, b) * b


def lcm_period(rates: Sequence[object]) -> int:
    """Smallest integer ``T`` making every ``rate * T`` an integer."""
    den = 1
    for r in rates:
        den = _lcm(den, _denominator(r))
    return den


def schedule_from_rates(
        rates: Dict[Tuple[NodeId, NodeId, Item], Tuple[object, object]],
        throughput: object,
        deliveries: Dict[Item, NodeId],
        name: str = "schedule",
        compute_rates: Optional[Dict[Tuple[NodeId, Item], Tuple[object, Tuple[Item, ...], object]]] = None,
        period: Optional[int] = None,
        integral_times: str = "auto",
) -> PeriodicSchedule:
    """Build a periodic schedule from steady-state rates.

    Parameters
    ----------
    rates:
        ``(src, dst, item) -> (rate, unit_time)``: ``rate`` messages of
        ``item`` per time-unit on edge ``(src, dst)``, each occupying the
        edge for ``unit_time``.  All values must be exact rationals.
    throughput:
        Operations per time-unit (defines ``ops_per_period``).
    deliveries:
        ``item -> node`` completing an operation on arrival.
    compute_rates:
        ``(node, output item) -> (rate, input items, unit_time)`` for reduce
        schedules.
    period:
        Override the period (must make all counts integral); defaults to the
        lcm of rate denominators (including compute and throughput).
    integral_times:
        The paper picks ``T`` so that "every communication time is an
        integer" — i.e. the per-period occupation times ``rate * unit_time
        * T`` are integral too, not just the message counts.  That is
        cosmetic for the exact pipeline (Fractions carry through) and can
        explode ``T`` on platforms with many coprime link costs, so:
        ``"always"`` — require it; ``"never"`` — only counts integral;
        ``"auto"`` (default) — require it unless the resulting period
        exceeds ``10**6`` times the counts-only period.
    """
    count_rates = [r for (r, _t) in rates.values()] + [throughput]
    time_rates = [r * t for (r, t) in rates.values()]
    if compute_rates:
        count_rates += [r for (r, _i, _t) in compute_rates.values()]
        time_rates += [r * t for (r, _i, t) in compute_rates.values()]
    T_counts = lcm_period(count_rates)
    if integral_times == "never":
        T = T_counts
    else:
        T_full = lcm_period(count_rates + time_rates)
        if integral_times == "always":
            T = T_full
        else:  # auto
            T = T_full if T_full <= 10**6 * T_counts else T_counts
    if period is not None:
        if any((r * period) != int(r * period) for r in count_rates):
            raise ValueError(f"period {period} does not make counts integral")
        T = period

    # integer per-period message counts and edge occupation times
    counts: Dict[Tuple[NodeId, NodeId, Item], int] = {}
    edge_time: Dict[Tuple[NodeId, NodeId], object] = {}
    per_period: Dict[Item, int] = {}
    for (i, j, item), (rate, unit_time) in rates.items():
        n = rate * T
        n_int = int(n)
        if n != n_int:
            raise ValueError(f"rate {rate} not integral over period {T}")
        if n_int == 0:
            continue
        counts[(i, j, item)] = n_int
        edge_time[(i, j)] = edge_time.get((i, j), 0) + n_int * unit_time
        per_period[item] = per_period.get(item, 0) + n_int

    # one-port sanity: port loads must fit in the period
    for (i, j), w in edge_time.items():
        if w > T:
            raise ValueError(f"edge ({i!r},{j!r}) load {w} exceeds period {T}")
    send_load: Dict[NodeId, object] = {}
    recv_load: Dict[NodeId, object] = {}
    for (i, j), w in edge_time.items():
        send_load[i] = send_load.get(i, 0) + w
        recv_load[j] = recv_load.get(j, 0) + w
    for n_, w in list(send_load.items()) + list(recv_load.items()):
        if w > T:
            raise ValueError(f"port load {w} at {n_!r} exceeds period {T}")

    # matching decomposition over send/recv ports
    port_edges = [(("S", i), ("R", j), w) for (i, j), w in edge_time.items()]
    matchings = decompose_matchings(port_edges, cap=Fraction(T))

    # allocate item message counts to this edge's slots, in slot order
    remaining: Dict[Tuple[NodeId, NodeId], List] = {}
    for (i, j, item), n in sorted(counts.items(), key=lambda kv: str(kv[0])):
        unit_time = rates[(i, j, item)][1]
        remaining.setdefault((i, j), []).append([item, n * unit_time, unit_time])

    slots: List[Slot] = []
    for m in matchings:
        slot = Slot(duration=m.duration)
        for (su, rv) in m.pairs:
            i, j = su[1], rv[1]
            queue = remaining.get((i, j), [])
            room = m.duration
            while room > 0 and queue:
                item, time_left, unit_time = queue[0]
                take = time_left if time_left <= room else room
                slot.transfers.append(Transfer(
                    src=i, dst=j, item=item,
                    units=Fraction(take) / Fraction(unit_time), time=take))
                room = room - take
                if take == time_left:
                    queue.pop(0)
                else:
                    queue[0][1] = time_left - take
        slots.append(slot)
    leftovers = {k: q for k, q in remaining.items() if q}
    if leftovers:
        raise AssertionError(f"unallocated transfer time: {leftovers}")

    compute: Dict[NodeId, List[ComputeTask]] = {}
    if compute_rates:
        for (node, output), (rate, inputs, unit_time) in compute_rates.items():
            n = rate * T
            n_int = int(n)
            if n != n_int:
                raise ValueError(f"compute rate {rate} not integral over {T}")
            if n_int == 0:
                continue
            compute.setdefault(node, []).append(
                ComputeTask(node=node, output=output, inputs=tuple(inputs),
                            count=n_int, unit_time=unit_time))
        for node, tasks in compute.items():
            load = sum((ct.count * ct.unit_time for ct in tasks), 0)
            if load > T:
                raise ValueError(f"compute load {load} at {node!r} exceeds period {T}")

    return PeriodicSchedule(name=name, period=Fraction(T),
                            throughput=throughput, slots=slots,
                            per_period=per_period, deliveries=dict(deliveries),
                            compute=compute)


def build_reduce_schedule(solution, trees=None):
    """Periodic schedule for a Series of Reduces from extracted trees.

    ``solution`` is a :class:`repro.core.reduce_op.ReduceSolution`; ``trees``
    (weighted reduction trees) default to ``solution.trees`` (extracting them
    if needed).  Requires exact rational tree weights; float solutions go
    through :func:`repro.core.fixed_period.fixed_period_approximation`.
    """
    if trees is None:
        trees = solution.trees if solution.trees is not None else solution.extract()
    problem = solution.problem
    g = problem.platform
    rates: Dict[Tuple[NodeId, NodeId, Item], Tuple[object, object]] = {}
    compute_rates: Dict[Tuple[NodeId, Item], Tuple[object, Tuple[Item, ...], object]] = {}
    tp = 0
    for r, tree in enumerate(trees):
        w = tree.weight
        tp = tp + w
        for tr in tree.transfers:
            i, j, (k, m) = tr.src, tr.dst, tr.interval
            item = ("val", (k, m), r)
            unit_time = problem.size((k, m)) * g.cost(i, j)
            old = rates.get((i, j, item), (0, unit_time))
            rates[(i, j, item)] = (old[0] + w, unit_time)
        for tk in tree.tasks:
            node, (k, l, m) = tk.node, tk.task
            out_item = ("val", (k, m), r)
            in_items = (("val", (k, l), r), ("val", (l + 1, m), r))
            unit_time = problem.task_time(node, (k, l, m))
            key = (node, out_item)
            old = compute_rates.get(key)
            if old is None:
                compute_rates[key] = (w, in_items, unit_time)
            else:
                compute_rates[key] = (old[0] + w, in_items, unit_time)
    deliveries = {("val", (0, problem.n_values - 1), r): problem.target
                  for r in range(len(trees))}
    return schedule_from_rates(rates, throughput=tp, deliveries=deliveries,
                               name=f"reduce({g.name})",
                               compute_rates=compute_rates)
