"""Periodic schedule construction (Sections 3.3 and 4.3).

From exact rational steady-state rates we build a
:class:`PeriodicSchedule`: a period ``T`` (the lcm of all rate denominators,
so per-period message counts are integers) divided into *slots*.  Each slot
is one matching of the bipartite communication graph: a set of transfers
that run simultaneously without violating the one-port model, each busy for
the whole slot duration.  Messages may split across slot boundaries
(Figure 4a); :meth:`PeriodicSchedule.without_splits` rescales the period so
every transfer moves an integer number of messages (Figure 4b).

For reduce schedules the per-node computation load (``α(Pi) ≤ 1``) is packed
sequentially inside the period; computations overlap communications freely
(full-overlap assumption of Section 2).

Schedule **superposition** is the shared machinery behind composed
collectives: every collective (or every stage of a composite) describes its
steady-state traffic as a :class:`RateBundle` — rates, deliveries, compute
rates, and item replications — and

- :func:`superpose_schedules` merges several bundles that share one
  period/one-port budget (a *joint* composition: reduce-scatter's
  per-block reduces, all-gather's per-block broadcasts) into a single
  matching decomposition, while
- :func:`concatenate_schedules` chains fully built stage schedules
  back-to-back (a *sequential* composition: all-reduce as reduce-scatter
  followed by all-gather), rescaling each stage so all stages perform the
  same number of operations per super-period.

``replicas`` extend the item model for content-divisible flows (broadcast,
Section 5 discussion): when an instance of a replicated item lands at a
node it is immediately re-materialized as the mapped items there — this is
how one received message slice fans out to several children of a broadcast
arborescence (and to the node's own delivery) without violating one-port.

``chain_links`` extend the model for *pipelined* compositions (the joint
all-reduce that overlaps reduce-scatter with all-gather): a
:class:`ChainLink` declares that a group of delivery items *produces* the
value that a group of supply items at one node *consumes*, so the
simulator can enforce that no chained value departs before one has
landed (:func:`repro.sim.executor.simulate_schedule` spends one credit
per consumed operation, minted by each produced delivery).
:func:`retime_for_chaining` additionally reorders the period's slots —
producing slots first, consuming slots last — so in the steady state a
chained value lands in the same period it is re-emitted, keeping the
standing buffer at one period's worth of operations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.matching import decompose_matchings
from repro.platform.graph import NodeId

Item = Hashable  # message-type token, e.g. ("msg", k) or ("val", (k, m), tree)


@dataclass
class Transfer:
    """``units`` messages of ``item`` from ``src`` to ``dst`` taking ``time``."""

    src: NodeId
    dst: NodeId
    item: Item
    units: object  # fractional message count within this slot
    time: object   # occupation time within this slot (= units * unit_time)


@dataclass
class ComputeTask:
    """``count`` executions per period of a task producing ``output`` from
    ``inputs`` on ``node``, each taking ``unit_time``."""

    node: NodeId
    output: Item
    inputs: Tuple[Item, ...]
    count: object
    unit_time: object


@dataclass
class Slot:
    """One matching: simultaneous transfers for ``duration`` time-units."""

    duration: object
    transfers: List[Transfer] = field(default_factory=list)


@dataclass(frozen=True)
class ChainLink:
    """A producer/consumer precedence contract between composition stages.

    ``produced`` lists delivery items each of whose completions makes one
    more chained operation available (mints one credit); ``consumed``
    lists ``(supply item, operation-stream id)`` pairs drawn at
    ``consumer`` — the first draw of a new operation index on a stream
    spends one credit (further draws of the same index, e.g. the other
    root edges of one broadcast arborescence, are free).  The simulator
    refuses a supply draw with no credit, so a chained item can never
    depart before one has landed; schedules whose production and
    consumption rates match (a joint LP at one common ``TP`` guarantees
    it) sustain full throughput after the pipeline fills.
    """

    label: str
    produced: Tuple[Item, ...]
    consumer: NodeId
    consumed: Tuple[Tuple[Item, Hashable], ...]


@dataclass
class PeriodicSchedule:
    """A steady-state periodic schedule.

    Attributes
    ----------
    period:
        ``T`` — slot durations sum to exactly ``T``.
    throughput:
        Operations initiated per time-unit (= ``ops_per_period / period``).
    slots:
        The ordered sequence of matchings.
    per_period:
        Integer number of messages of each item shipped per period
        (summed over all edges).
    compute:
        Per-node compute tasks per period (empty for scatter/gossip).
    deliveries:
        ``item -> destination node`` for items whose arrival completes an
        operation (used by the simulator to count throughput).
    replicas:
        ``(node, item) -> replacement items``: an instance of the item
        *landing at that node* is re-materialized as the mapped items
        (same payload/stamp) — content-divisible fan-out for broadcast
        arborescences.  Keyed by node so a copy buffered elsewhere (e.g.
        awaiting its own hop) is left alone.  An empty tuple absorbs the
        instance.
    delivery_mode:
        How the simulator counts completed operations: ``"min"`` (every
        delivery stream per op — scatter/gossip), ``"sum"`` (independent
        TP-rate streams are summed — reduce trees, broadcast slices), or
        ``None`` for the legacy inference (``"sum"`` iff compute tasks
        exist).
    chain_links:
        Cross-stage precedence contracts (:class:`ChainLink`) the
        simulator enforces: a chained supply item may only be drawn after
        a matching delivery has landed.  Empty for non-pipelined
        schedules.
    """

    name: str
    period: object
    throughput: object
    slots: List[Slot]
    per_period: Dict[Item, int]
    deliveries: Dict[Item, NodeId]
    compute: Dict[NodeId, List[ComputeTask]] = field(default_factory=dict)
    replicas: Dict[Tuple[NodeId, Item], Tuple[Item, ...]] = field(default_factory=dict)
    delivery_mode: Optional[str] = None
    chain_links: Tuple[ChainLink, ...] = ()
    # lazy one-pass caches; never compare/serialize these
    _busy_cache: Optional[Tuple[Dict[NodeId, object], Dict[NodeId, object]]] = \
        field(default=None, init=False, repr=False, compare=False)
    _compute_cache: Optional[Dict[NodeId, object]] = \
        field(default=None, init=False, repr=False, compare=False)

    # ------------------------------------------------------------------
    def ops_per_period(self) -> object:
        return self.throughput * self.period

    def _port_busy(self) -> Tuple[Dict[NodeId, object], Dict[NodeId, object]]:
        """All nodes' (send, recv) busy times in one slots×transfers pass."""
        if self._busy_cache is None:
            snd: Dict[NodeId, object] = {}
            rcv: Dict[NodeId, object] = {}
            for slot in self.slots:
                dur = slot.duration
                # several message types on the same (src, dst) pair
                # serialize inside the slot (see validate()); the port is
                # occupied for the slot duration once, not once per type
                for i, j in {(t.src, t.dst) for t in slot.transfers}:
                    snd[i] = snd.get(i, 0) + dur
                    rcv[j] = rcv.get(j, 0) + dur
            self._busy_cache = (snd, rcv)
        return self._busy_cache

    def busy_time(self, node: NodeId) -> Tuple[object, object]:
        """(send-port, recv-port) busy time of ``node`` per period."""
        snd, rcv = self._port_busy()
        return snd.get(node, 0), rcv.get(node, 0)

    def compute_time(self, node: NodeId) -> object:
        if self._compute_cache is None:
            self._compute_cache = {
                n: sum((ct.count * ct.unit_time for ct in tasks), 0)
                for n, tasks in self.compute.items()}
        return self._compute_cache.get(node, 0)

    def validate(self) -> List[str]:
        """One-port / period invariants; empty list == valid."""
        bad: List[str] = []
        total = sum((s.duration for s in self.slots), 0)
        if total > self.period:
            bad.append(f"slot durations {total} exceed period {self.period}")
        for slot in self.slots:
            # a slot is a matching over (sender, receiver) pairs; several
            # message types on the SAME pair serialize inside the slot
            partner_of_src: Dict[object, object] = {}
            partner_of_dst: Dict[object, object] = {}
            pair_time: Dict[Tuple[object, object], object] = {}
            for t in slot.transfers:
                if partner_of_src.setdefault(t.src, t.dst) != t.dst:
                    bad.append(f"{t.src!r} sends to two receivers in one slot")
                if partner_of_dst.setdefault(t.dst, t.src) != t.src:
                    bad.append(f"{t.dst!r} receives from two senders in one slot")
                pair_time[(t.src, t.dst)] = pair_time.get((t.src, t.dst), 0) + t.time
            for (i, j), tt in pair_time.items():
                if tt > slot.duration:
                    bad.append(f"pair ({i!r},{j!r}) time {tt} exceeds slot "
                               f"{slot.duration}")
        for node, tasks in self.compute.items():
            ct = self.compute_time(node)
            if ct > self.period:
                bad.append(f"compute time {ct} at {node!r} exceeds period")
        return bad

    # ------------------------------------------------------------------
    def without_splits(self) -> "PeriodicSchedule":
        """Rescale so no message is split across slots (Figure 4b).

        Multiplies the period by the lcm of the denominators of all per-slot
        unit counts; every transfer then carries an integer message count.
        """
        den = 1
        for slot in self.slots:
            for t in slot.transfers:
                den = _lcm(den, _denominator(t.units))
        if den == 1:
            return self
        return self.scaled(den)

    def scaled(self, factor: int) -> "PeriodicSchedule":
        """Schedule with every duration/count multiplied by ``factor``."""
        slots = [Slot(duration=s.duration * factor,
                      transfers=[Transfer(t.src, t.dst, t.item,
                                          t.units * factor, t.time * factor)
                                 for t in s.transfers])
                 for s in self.slots]
        compute = {n: [ComputeTask(ct.node, ct.output, ct.inputs,
                                   ct.count * factor, ct.unit_time)
                       for ct in tasks]
                   for n, tasks in self.compute.items()}
        return PeriodicSchedule(
            name=self.name, period=self.period * factor,
            throughput=self.throughput, slots=slots,
            per_period={k: v * factor for k, v in self.per_period.items()},
            deliveries=dict(self.deliveries), compute=compute,
            replicas=dict(self.replicas), delivery_mode=self.delivery_mode,
            chain_links=self.chain_links)

    # ------------------------------------------------- simulator exports
    def slot_starts(self) -> List[object]:
        """Start offset of each slot within the period (prefix durations)."""
        starts, off = [], 0
        for slot in self.slots:
            starts.append(off)
            off = off + slot.duration
        return starts

    def chain_maps(self) -> Tuple[Dict[Item, int],
                                  Dict[Tuple[NodeId, Item], Tuple[int, Hashable]]]:
        """Chain-link lookup tables for executors.

        Returns ``(produced_link, consumed_link)``: ``produced_link`` maps a
        delivery item to the index of the link whose credit its landing
        mints; ``consumed_link`` maps a gated ``(consumer, supply item)``
        key to its ``(link index, operation-stream id)``.
        """
        produced: Dict[Item, int] = {}
        consumed: Dict[Tuple[NodeId, Item], Tuple[int, Hashable]] = {}
        for li, ln in enumerate(self.chain_links or ()):
            for it in ln.produced:
                produced[it] = li
            for it, stream in ln.consumed:
                consumed[(ln.consumer, it)] = (li, stream)
        return produced, consumed

    def resolve_landing(self, node: NodeId, item: Item) \
            -> Tuple[Tuple[Item, ...], Tuple[Tuple[NodeId, Item], ...]]:
        """Static effect of an instance of ``item`` landing at ``node``.

        Expands replica fan-out transitively and splits the result into
        ``(delivered items, buffered (node, item) keys)`` — the landing
        re-materializes as one delivery count per listed item plus one
        buffered instance per listed key.  This is the compile-time view of
        :meth:`repro.sim.executor.ScheduleExecutor.land`, used by the
        vectorized engine to turn landings into pure count updates.
        """
        delivered: List[Item] = []
        buffered: List[Tuple[NodeId, Item]] = []
        stack = [item]
        guard = 0
        while stack:
            it = stack.pop()
            guard += 1
            if guard > 10000:
                raise ValueError(
                    f"replica fan-out at ({node!r}, {item!r}) does not "
                    f"terminate")
            reps = self.replicas.get((node, it)) if self.replicas else None
            if reps is not None:
                stack.extend(reversed(reps))  # left-to-right DFS like land()
            elif self.deliveries.get(it) == node:
                delivered.append(it)
            else:
                buffered.append((node, it))
        return tuple(delivered), tuple(buffered)


def _denominator(x) -> int:
    if isinstance(x, int):
        return 1
    if isinstance(x, Fraction):
        return x.denominator
    raise TypeError(f"need exact rational, got {type(x).__name__}")


def _lcm(a: int, b: int) -> int:
    return a // math.gcd(a, b) * b


def lcm_period(rates: Sequence[object]) -> int:
    """Smallest integer ``T`` making every ``rate * T`` an integer."""
    den = 1
    for r in rates:
        den = _lcm(den, _denominator(r))
    return den


def schedule_from_rates(
        rates: Dict[Tuple[NodeId, NodeId, Item], Tuple[object, object]],
        throughput: object,
        deliveries: Dict[Item, NodeId],
        name: str = "schedule",
        compute_rates: Optional[Dict[Tuple[NodeId, Item], Tuple[object, Tuple[Item, ...], object]]] = None,
        period: Optional[int] = None,
        integral_times: str = "auto",
        replicas: Optional[Dict[Item, Tuple[Item, ...]]] = None,
        delivery_mode: Optional[str] = None,
) -> PeriodicSchedule:
    """Build a periodic schedule from steady-state rates.

    Parameters
    ----------
    rates:
        ``(src, dst, item) -> (rate, unit_time)``: ``rate`` messages of
        ``item`` per time-unit on edge ``(src, dst)``, each occupying the
        edge for ``unit_time``.  All values must be exact rationals.
    throughput:
        Operations per time-unit (defines ``ops_per_period``).
    deliveries:
        ``item -> node`` completing an operation on arrival.
    compute_rates:
        ``(node, output item) -> (rate, input items, unit_time)`` for reduce
        schedules.
    replicas / delivery_mode:
        Forwarded to :class:`PeriodicSchedule` (item fan-out on landing and
        the simulator's op-counting mode).
    period:
        Override the period (must make all counts integral); defaults to the
        lcm of rate denominators (including compute and throughput).
    integral_times:
        The paper picks ``T`` so that "every communication time is an
        integer" — i.e. the per-period occupation times ``rate * unit_time
        * T`` are integral too, not just the message counts.  That is
        cosmetic for the exact pipeline (Fractions carry through) and can
        explode ``T`` on platforms with many coprime link costs, so:
        ``"always"`` — require it; ``"never"`` — only counts integral;
        ``"auto"`` (default) — require it unless the resulting period
        exceeds ``10**6`` times the counts-only period.
    """
    count_rates = [r for (r, _t) in rates.values()] + [throughput]
    time_rates = [r * t for (r, t) in rates.values()]
    if compute_rates:
        count_rates += [r for (r, _i, _t) in compute_rates.values()]
        time_rates += [r * t for (r, _i, t) in compute_rates.values()]
    T_counts = lcm_period(count_rates)
    if integral_times == "never":
        T = T_counts
    else:
        T_full = lcm_period(count_rates + time_rates)
        if integral_times == "always":
            T = T_full
        else:  # auto
            T = T_full if T_full <= 10**6 * T_counts else T_counts
    if period is not None:
        if any((r * period) != int(r * period) for r in count_rates):
            raise ValueError(f"period {period} does not make counts integral")
        T = period

    # integer per-period message counts and edge occupation times
    counts: Dict[Tuple[NodeId, NodeId, Item], int] = {}
    edge_time: Dict[Tuple[NodeId, NodeId], object] = {}
    per_period: Dict[Item, int] = {}
    for (i, j, item), (rate, unit_time) in rates.items():
        n = rate * T
        n_int = int(n)
        if n != n_int:
            raise ValueError(f"rate {rate} not integral over period {T}")
        if n_int == 0:
            continue
        counts[(i, j, item)] = n_int
        edge_time[(i, j)] = edge_time.get((i, j), 0) + n_int * unit_time
        per_period[item] = per_period.get(item, 0) + n_int

    # one-port sanity: port loads must fit in the period
    for (i, j), w in edge_time.items():
        if w > T:
            raise ValueError(f"edge ({i!r},{j!r}) load {w} exceeds period {T}")
    send_load: Dict[NodeId, object] = {}
    recv_load: Dict[NodeId, object] = {}
    for (i, j), w in edge_time.items():
        send_load[i] = send_load.get(i, 0) + w
        recv_load[j] = recv_load.get(j, 0) + w
    for n_, w in list(send_load.items()) + list(recv_load.items()):
        if w > T:
            raise ValueError(f"port load {w} at {n_!r} exceeds period {T}")

    # matching decomposition over send/recv ports
    port_edges = [(("S", i), ("R", j), w) for (i, j), w in edge_time.items()]
    matchings = decompose_matchings(port_edges, cap=Fraction(T))

    # allocate item message counts to this edge's slots, in slot order
    remaining: Dict[Tuple[NodeId, NodeId], List] = {}
    for (i, j, item), n in sorted(counts.items(), key=lambda kv: str(kv[0])):
        unit_time = rates[(i, j, item)][1]
        remaining.setdefault((i, j), []).append([item, n * unit_time, unit_time])

    slots: List[Slot] = []
    for m in matchings:
        slot = Slot(duration=m.duration)
        for (su, rv) in m.pairs:
            i, j = su[1], rv[1]
            queue = remaining.get((i, j), [])
            room = m.duration
            while room > 0 and queue:
                item, time_left, unit_time = queue[0]
                take = time_left if time_left <= room else room
                slot.transfers.append(Transfer(
                    src=i, dst=j, item=item,
                    units=Fraction(take) / Fraction(unit_time), time=take))
                room = room - take
                if take == time_left:
                    queue.pop(0)
                else:
                    queue[0][1] = time_left - take
        slots.append(slot)
    leftovers = {k: q for k, q in remaining.items() if q}
    if leftovers:
        raise AssertionError(f"unallocated transfer time: {leftovers}")

    compute: Dict[NodeId, List[ComputeTask]] = {}
    if compute_rates:
        for (node, output), (rate, inputs, unit_time) in compute_rates.items():
            n = rate * T
            n_int = int(n)
            if n != n_int:
                raise ValueError(f"compute rate {rate} not integral over {T}")
            if n_int == 0:
                continue
            compute.setdefault(node, []).append(
                ComputeTask(node=node, output=output, inputs=tuple(inputs),
                            count=n_int, unit_time=unit_time))
        for node, tasks in compute.items():
            load = sum((ct.count * ct.unit_time for ct in tasks), 0)
            if load > T:
                raise ValueError(f"compute load {load} at {node!r} exceeds period {T}")

    return PeriodicSchedule(name=name, period=Fraction(T),
                            throughput=throughput, slots=slots,
                            per_period=per_period, deliveries=dict(deliveries),
                            compute=compute, replicas=dict(replicas or {}),
                            delivery_mode=delivery_mode)


# ----------------------------------------------------------------------
# rate bundles and schedule superposition (shared by composed collectives)
# ----------------------------------------------------------------------

#: Wrapper tag for per-stage item namespacing in composed schedules.
STAGE_TAG = "stg"


def tag_item(stage: object, item: Item) -> Item:
    """Namespace ``item`` under a composition stage."""
    return (STAGE_TAG, stage, item)


def untag_item(item: Item) -> Optional[Tuple[object, Item]]:
    """``(stage, inner item)`` if ``item`` is stage-tagged, else ``None``."""
    if isinstance(item, tuple) and len(item) == 3 and item[0] == STAGE_TAG:
        return item[1], item[2]
    return None


@dataclass
class RateBundle:
    """One schedule layer's steady-state description, pre-decomposition.

    The inputs of :func:`schedule_from_rates` as data: transfer ``rates``
    (``(src, dst, item) -> (rate, unit_time)``), ``deliveries``
    (``item -> completing node``), optional ``compute_rates`` and
    ``replicas``.  Bundles are what composed collectives superpose: each
    stage contributes one bundle, items namespaced via :meth:`tagged`.
    """

    rates: Dict[Tuple[NodeId, NodeId, Item], Tuple[object, object]]
    deliveries: Dict[Item, NodeId]
    compute_rates: Dict[Tuple[NodeId, Item], Tuple[object, Tuple[Item, ...], object]] = \
        field(default_factory=dict)
    replicas: Dict[Tuple[NodeId, Item], Tuple[Item, ...]] = field(default_factory=dict)

    def tagged(self, stage: object) -> "RateBundle":
        """The same bundle with every item namespaced under ``stage``."""
        t = lambda it: tag_item(stage, it)  # noqa: E731
        return RateBundle(
            rates={(i, j, t(it)): rt for (i, j, it), rt in self.rates.items()},
            deliveries={t(it): n for it, n in self.deliveries.items()},
            compute_rates={(n, t(out)): (r, tuple(t(x) for x in ins), u)
                           for (n, out), (r, ins, u) in self.compute_rates.items()},
            replicas={(n, t(it)): tuple(t(x) for x in reps)
                      for (n, it), reps in self.replicas.items()})

    @staticmethod
    def merge(bundles: Sequence["RateBundle"]) -> "RateBundle":
        """One bundle superposing several; item keys must be disjoint
        (raises otherwise — namespace stage items via :meth:`tagged`)."""
        return RateBundle(
            rates=_merge_disjoint((b.rates for b in bundles), "rate"),
            deliveries=_merge_disjoint((b.deliveries for b in bundles),
                                       "delivery"),
            compute_rates=_merge_disjoint((b.compute_rates for b in bundles),
                                          "compute"),
            replicas=_merge_disjoint((b.replicas for b in bundles),
                                     "replica"))


def _merge_disjoint(dicts, what: str) -> dict:
    out: dict = {}
    for d in dicts:
        for k, v in d.items():
            if k in out:
                raise ValueError(f"superposition: duplicate {what} key {k!r}; "
                                 "namespace stage items via RateBundle.tagged")
            out[k] = v
    return out


def superpose_schedules(bundles: Sequence[RateBundle], throughput: object,
                        name: str = "superposed",
                        delivery_mode: Optional[str] = None,
                        chain: Sequence[ChainLink] = (),
                        **kwargs) -> PeriodicSchedule:
    """One periodic schedule for several rate bundles sharing the period.

    This is the *joint* composition: every bundle's traffic runs
    concurrently inside one period, so the merged rates must jointly
    respect the one-port capacities (which is exactly what a joint LP over
    shared capacities guarantees).  Item keys must be disjoint across
    bundles — stages of a composite tag theirs via
    :meth:`RateBundle.tagged`; reduce-scatter's per-block bundles carry the
    block id inside the item already.

    ``chain`` declares cross-stage precedence (*pipelined* composition):
    the links are recorded on the schedule for the simulator's credit
    enforcement, and the slots are retimed via
    :func:`retime_for_chaining` so chained items land before they depart
    within each steady-state period.

    Extra keyword arguments reach :func:`schedule_from_rates`.
    """
    merged = RateBundle.merge(bundles)
    sched = schedule_from_rates(merged.rates, throughput=throughput,
                                deliveries=merged.deliveries, name=name,
                                compute_rates=merged.compute_rates or None,
                                replicas=merged.replicas or None,
                                delivery_mode=delivery_mode, **kwargs)
    if chain:
        sched = retime_for_chaining(sched, chain)
    return sched


def retime_for_chaining(schedule: PeriodicSchedule,
                        chain: Sequence[ChainLink]) -> PeriodicSchedule:
    """Stage-offset retiming: producing slots early, consuming slots late.

    Slot order within a period is free — every slot is an independent
    matching — so reordering never changes the period, the per-port busy
    times or the per-period message counts.  This pass stably partitions
    the slots into three classes:

    1. slots that complete a chained *production* (a transfer whose item
       is a ``produced`` delivery of some link) and start no consumption,
    2. neutral slots,
    3. slots that *depart* a chained value (a transfer leaving a link's
       ``consumer`` with a ``consumed`` item) — these run last, so by the
       time they depart, this period's productions have already landed.

    A slot that both produces and consumes is conservatively placed in
    the consuming class; the simulator's credit gate (not this ordering)
    is what guarantees correctness — retiming only keeps the steady-state
    chain latency at one period instead of two.

    The returned schedule carries ``chain`` in
    :attr:`PeriodicSchedule.chain_links`.
    """
    produced = {it for ln in chain for it in ln.produced}
    departs = {(ln.consumer, it) for ln in chain for (it, _stream) in ln.consumed}

    def klass(slot: Slot) -> int:
        consume = any((t.src, t.item) in departs for t in slot.transfers)
        if consume:
            return 2
        produce = any(t.item in produced for t in slot.transfers)
        return 0 if produce else 1

    slots = sorted(schedule.slots, key=klass)  # stable: ties keep order
    # dataclasses.replace so a future PeriodicSchedule field can never be
    # silently dropped by the retiming copy
    return replace(schedule, slots=slots, chain_links=tuple(chain))


def concatenate_schedules(schedules: Sequence[PeriodicSchedule],
                          name: str = "sequential",
                          delivery_mode: Optional[str] = "sum") -> PeriodicSchedule:
    """Chain stage schedules back-to-back into one super-period.

    This is the *sequential* composition: stage ``k+1``'s phase starts when
    stage ``k``'s phase ends, so the one-port constraints hold per phase
    with no joint capacity coupling.  Each stage is rescaled so all stages
    perform the same number ``N`` of operations per super-period (``N`` =
    lcm of the per-period op counts); the composed throughput is therefore
    ``N / sum(T_k)  ==  1 / sum(1 / TP_k)`` — the harmonic composition of
    the stage throughputs.

    Stage item sets must be disjoint (tag them via :func:`retag_schedule`).
    """
    if not schedules:
        raise ValueError("need at least one schedule to concatenate")
    ops: List[int] = []
    for s in schedules:
        o = s.ops_per_period()
        if o != int(o) or o <= 0:
            raise ValueError(f"{s.name}: ops per period {o} not a positive "
                             "integer")
        ops.append(int(o))
    n_ops = 1
    for o in ops:
        n_ops = _lcm(n_ops, o)
    scaled = [s if n_ops == o else s.scaled(n_ops // o)
              for s, o in zip(schedules, ops)]
    period = sum((s.period for s in scaled), Fraction(0))
    slots = [slot for s in scaled for slot in s.slots]
    per_period = _merge_disjoint((s.per_period for s in scaled), "per-period")
    deliveries = _merge_disjoint((s.deliveries for s in scaled), "delivery")
    replicas = _merge_disjoint((s.replicas for s in scaled), "replica")
    compute: Dict[NodeId, List[ComputeTask]] = {}
    for s in scaled:
        for node, tasks in s.compute.items():
            compute.setdefault(node, []).extend(tasks)
    return PeriodicSchedule(name=name, period=period,
                            throughput=Fraction(n_ops) / period, slots=slots,
                            per_period=per_period, deliveries=deliveries,
                            compute=compute, replicas=replicas,
                            delivery_mode=delivery_mode)


def retag_schedule(schedule: PeriodicSchedule, stage: object) -> PeriodicSchedule:
    """A copy of ``schedule`` with every item namespaced under ``stage``."""
    t = lambda it: tag_item(stage, it)  # noqa: E731
    slots = [Slot(duration=s.duration,
                  transfers=[Transfer(tr.src, tr.dst, t(tr.item), tr.units,
                                      tr.time)
                             for tr in s.transfers])
             for s in schedule.slots]
    compute = {n: [ComputeTask(ct.node, t(ct.output),
                               tuple(t(x) for x in ct.inputs), ct.count,
                               ct.unit_time)
                   for ct in tasks]
               for n, tasks in schedule.compute.items()}
    return PeriodicSchedule(
        name=schedule.name, period=schedule.period,
        throughput=schedule.throughput, slots=slots,
        per_period={t(it): v for it, v in schedule.per_period.items()},
        deliveries={t(it): n for it, n in schedule.deliveries.items()},
        compute=compute,
        replicas={(n, t(it)): tuple(t(x) for x in reps)
                  for (n, it), reps in schedule.replicas.items()},
        delivery_mode=schedule.delivery_mode)


def stage_view(schedule: PeriodicSchedule, stage: object) -> PeriodicSchedule:
    """One stage's slice of a composed schedule, with items un-tagged.

    The inverse of :func:`retag_schedule` restricted to ``stage``: slots
    keep their durations but only carry the stage's transfers.  Collective
    specs use the view to derive per-stage simulator semantics from the
    composite schedule alone.
    """
    def keep(item):
        tagged = untag_item(item)
        return tagged[1] if tagged is not None and tagged[0] == stage else None

    slots = []
    for s in schedule.slots:
        transfers = []
        for tr in s.transfers:
            inner = keep(tr.item)
            if inner is not None:
                transfers.append(Transfer(tr.src, tr.dst, inner, tr.units,
                                          tr.time))
        slots.append(Slot(duration=s.duration, transfers=transfers))
    compute: Dict[NodeId, List[ComputeTask]] = {}
    for n, tasks in schedule.compute.items():
        kept = [ComputeTask(ct.node, keep(ct.output),
                            tuple(keep(x) for x in ct.inputs), ct.count,
                            ct.unit_time)
                for ct in tasks if keep(ct.output) is not None]
        if kept:
            compute[n] = kept
    return PeriodicSchedule(
        name=f"{schedule.name}#{stage}", period=schedule.period,
        throughput=schedule.throughput, slots=slots,
        per_period={inner: v for it, v in schedule.per_period.items()
                    if (inner := keep(it)) is not None},
        deliveries={inner: n for it, n in schedule.deliveries.items()
                    if (inner := keep(it)) is not None},
        compute=compute,
        replicas={(n, inner): tuple(keep(x) for x in reps)
                  for (n, it), reps in schedule.replicas.items()
                  if (inner := keep(it)) is not None},
        delivery_mode=schedule.delivery_mode)


def tree_rate_bundle(problem, trees, target: NodeId,
                     stream=lambda r: r) -> RateBundle:
    """Rate bundle of a family of weighted reduction trees.

    ``stream(r)`` is the item namespace of tree ``r`` (plain reduce uses
    the tree index; reduce-scatter wraps it as ``(block, r)``), ``target``
    receives the full interval.  ``problem`` provides ``size``,
    ``task_time``, ``platform`` and ``n_values`` — both
    :class:`~repro.core.reduce_op.ReduceProblem` and
    :class:`~repro.core.reduce_scatter.ReduceScatterProblem` qualify.
    """
    g = problem.platform
    rates: Dict[Tuple[NodeId, NodeId, Item], Tuple[object, object]] = {}
    compute_rates: Dict[Tuple[NodeId, Item], Tuple[object, Tuple[Item, ...], object]] = {}
    deliveries: Dict[Item, NodeId] = {}
    full = (0, problem.n_values - 1)
    for r, tree in enumerate(trees):
        w = tree.weight
        sid = stream(r)
        for tr in tree.transfers:
            i, j, (k, m) = tr.src, tr.dst, tr.interval
            item = ("val", (k, m), sid)
            unit_time = problem.size((k, m)) * g.cost(i, j)
            old = rates.get((i, j, item), (0, unit_time))
            rates[(i, j, item)] = (old[0] + w, unit_time)
        for tk in tree.tasks:
            node, (k, l, m) = tk.node, tk.task
            out_item = ("val", (k, m), sid)
            in_items = (("val", (k, l), sid), ("val", (l + 1, m), sid))
            unit_time = problem.task_time(node, (k, l, m))
            old = compute_rates.get((node, out_item))
            if old is None:
                compute_rates[(node, out_item)] = (w, in_items, unit_time)
            else:
                compute_rates[(node, out_item)] = \
                    (old[0] + w, in_items, unit_time)
        deliveries[("val", full, sid)] = target
    return RateBundle(rates=rates, deliveries=deliveries,
                      compute_rates=compute_rates)


def build_reduce_schedule(solution, trees=None):
    """Periodic schedule for a Series of Reduces from extracted trees.

    ``solution`` is a :class:`repro.core.reduce_op.ReduceSolution`; ``trees``
    (weighted reduction trees) default to ``solution.trees`` (extracting them
    if needed).  Requires exact rational tree weights; float solutions go
    through :func:`repro.core.fixed_period.fixed_period_approximation`.
    """
    if trees is None:
        trees = solution.trees if solution.trees is not None else solution.extract()
    problem = solution.problem
    bundle = tree_rate_bundle(problem, trees, target=problem.target)
    tp = sum((t.weight for t in trees), 0)
    return schedule_from_rates(bundle.rates, throughput=tp,
                               deliveries=bundle.deliveries,
                               name=f"reduce({problem.platform.name})",
                               compute_rates=bundle.compute_rates)
