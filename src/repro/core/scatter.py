"""Series of Scatters: the ``SSSP(G)`` linear program (Section 3).

One source processor streams distinct same-size messages to every target;
we maximize the common throughput ``TP`` — the (rational) number of scatter
operations initiated per time-unit — subject to the one-port constraints
and a per-message-type conservation law.

Variables (per Section 3.1):

- ``send(Pi -> Pj, m_k)``: fractional number of messages of type ``m_k``
  (destination ``P_k``) crossing edge ``(i, j)`` per time-unit,
- ``s(Pi -> Pj) = sum_k send(Pi->Pj, m_k) * c(i, j)``: fraction of time the
  edge is busy (an *expression* here, not a MILP variable),
- ``TP``: the throughput, identical at every target (equation 6).

Fidelity notes (documented deviations from the literal text):

1. Equation (5) — the conservation law — is imposed for every node *except
   the source and the destination of the type* (``i != source``, ``i != k``).
   The paper states only ``k != i``; applying it at the source would force
   the source's net emission to zero.
2. A destination never re-emits its own type: variables
   ``send(P_k -> *, m_k)`` are not created.  Without this, the LP could
   inflate ``TP`` with phantom circulation through the target (a cycle
   ``k -> a -> k`` adds to the left side of equation (6) without any message
   ever leaving the source).  The paper implicitly assumes messages are
   genuine; this restriction makes that explicit and costs no throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Sequence, Tuple

Item = Hashable

from repro.collectives.base import CollectiveSolution
from repro.lp import LinearProgram, LinExpr, lin_sum
from repro.platform.graph import NodeId, PlatformGraph

EdgeKey = Tuple[NodeId, NodeId]


@dataclass(frozen=True)
class ScatterProblem:
    """A Series-of-Scatters instance: platform, source, targets.

    Messages are unit-size (the paper's setting); heterogeneous message
    sizes can be emulated by scaling edge costs.
    """

    platform: PlatformGraph
    source: NodeId
    targets: Tuple[NodeId, ...]

    def __init__(self, platform: PlatformGraph, source: NodeId,
                 targets: Sequence[NodeId]) -> None:
        object.__setattr__(self, "platform", platform)
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "targets", tuple(targets))
        if source not in platform:
            raise ValueError(f"source {source!r} not in platform")
        seen = set()
        for t in self.targets:
            if t not in platform:
                raise ValueError(f"target {t!r} not in platform")
            if t == source:
                raise ValueError(
                    "the source keeps its own message locally; listing it as "
                    "a target is not meaningful — remove it")
            if t in seen:
                raise ValueError(f"duplicate target {t!r}")
            seen.add(t)
        if not self.targets:
            raise ValueError("need at least one target")


def _svar(i: NodeId, j: NodeId, k: NodeId) -> str:
    return f"send[{i}->{j},m{k}]"


def build_scatter_lp(problem: ScatterProblem) -> LinearProgram:
    """Construct ``SSSP(G)`` for ``problem`` (not yet solved)."""
    g = problem.platform
    lp = LinearProgram(f"SSSP({g.name})")
    tp = lp.var("TP")

    edges = [(e.src, e.dst, e.cost) for e in g.edges()]
    # send variables, skipping re-emission by the type's destination
    svars: Dict[Tuple[NodeId, NodeId, NodeId], object] = {}
    for (i, j, _c) in edges:
        for k in problem.targets:
            if i == k:
                continue
            svars[(i, j, k)] = lp.var(_svar(i, j, k))

    def s_expr(i: NodeId, j: NodeId):
        c = g.cost(i, j)
        e = LinExpr()
        for k in problem.targets:
            v = svars.get((i, j, k))
            if v is not None:
                e.add_term(v, c)
        return e

    # edge occupation in [0, 1]  (equations 1 and 4)
    for (i, j, _c) in edges:
        lp.add(s_expr(i, j) <= 1, name=f"edge[{i}->{j}]")
    # one-port: outgoing (2) and incoming (3)
    for p in g.nodes():
        out = lin_sum(s_expr(p, q) for q in g.successors(p))
        if g.successors(p):
            lp.add(out <= 1, name=f"out[{p}]")
        inc = lin_sum(s_expr(q, p) for q in g.predecessors(p))
        if g.predecessors(p):
            lp.add(inc <= 1, name=f"in[{p}]")
    # conservation law (5), at i not in {source, k}
    for p in g.nodes():
        if p == problem.source:
            continue
        for k in problem.targets:
            if p == k:
                continue
            inflow = lin_sum(v for q in g.predecessors(p)
                             if (v := svars.get((q, p, k))) is not None)
            outflow = lin_sum(v for q in g.successors(p)
                              if (v := svars.get((p, q, k))) is not None)
            lp.add(inflow == outflow, name=f"conserve[{p},m{k}]")
    # same throughput at every target (6)
    for k in problem.targets:
        inflow = lin_sum(svars[(q, k, k)] for q in g.predecessors(k)
                         if (q, k, k) in svars)
        lp.add(inflow == tp, name=f"throughput[m{k}]")

    lp.maximize(tp)
    return lp


@dataclass
class ScatterSolution(CollectiveSolution):
    """Solved ``SSSP(G)``: throughput and per-edge, per-type rates.

    ``send[(i, j, k)]`` is the rate of type-``k`` messages on edge ``(i,j)``
    per time-unit, after flow cleaning (cycles and junk dropped, so each
    type is exactly a ``TP``-valued source→k path flow).  ``paths[k]`` is
    the corresponding weighted path decomposition.  Shared behavior
    (``verify``, ``edge_occupation``) comes from
    :class:`repro.collectives.base.CollectiveSolution` via the registered
    ``"scatter"`` spec.
    """

    collective: str = "scatter"


def solve_scatter(problem: ScatterProblem, backend: str = "auto",
                  eps: float = 1e-9, **solve_kwargs) -> ScatterSolution:
    """Solve ``SSSP(G)`` and return cleaned per-type flows.

    Thin registry-backed wrapper over
    :func:`repro.collectives.solve_collective`; ``eps`` is the zero
    threshold used when the LP came back in floats; extra keywords
    (``canonical``, ``warm_start``, ...) reach :func:`repro.lp.solve`.
    """
    from repro.collectives import solve_collective

    return solve_collective(problem, collective="scatter", backend=backend,
                            eps=eps, **solve_kwargs)


def build_scatter_schedule(solution: ScatterSolution):
    """Periodic one-port schedule achieving ``TP`` (Section 3.3).

    Registry-backed wrapper; requires an exact (rational) solution.
    """
    from repro.collectives import schedule_collective

    return schedule_collective(solution)


def build_scatter_schedule_fixed_period(solution: ScatterSolution,
                                        period: int):
    """Exact schedule from a *float* scatter solution via Section 4.6.

    The per-target path flows are rounded down to multiples of
    ``1/period`` (:func:`repro.core.fixed_period.fixed_period_paths`), which
    keeps every conservation law intact, restores exact rational rates, and
    loses at most ``card(paths)/period`` throughput (Proposition 4 applied
    to paths).  The platform costs must be rational.

    Returns ``(schedule, FixedPeriodResult)``.
    """
    from repro.core.fixed_period import fixed_period_paths
    from repro.core.schedule import schedule_from_rates

    fp = fixed_period_paths(solution.paths, period=period,
                            original_throughput=solution.throughput)
    g = solution.problem.platform
    rates: Dict[Tuple[NodeId, NodeId, Item], Tuple[object, object]] = {}
    for (k, path, w) in fp.items:
        for (i, j) in zip(path, path[1:]):
            key = (i, j, ("msg", k))
            old = rates.get(key)
            rates[key] = ((old[0] if old else 0) + w, g.cost(i, j))
    deliveries = {("msg", k): k for k in solution.problem.targets
                  if any(kk == k for (kk, _p, _w) in fp.items)}
    sched = schedule_from_rates(rates, throughput=fp.throughput,
                                deliveries=deliveries,
                                name=f"scatter-fp{period}({g.name})")
    return sched, fp
