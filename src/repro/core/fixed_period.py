"""Fixed-period approximation (Section 4.6).

The lcm-of-denominators period can be impractically large (it is not even
polynomially bounded in the input size).  The paper's remedy: pick any
period ``T_fixed`` and ship, for each extracted reduction tree ``T``,

    ``r(T) = floor( w(T) * T_fixed )``            (weights here are rates)

tree instances per period.  One-port feasibility is inherited (rounding only
ever decreases loads) and the throughput loss is bounded by

    ``TP - sum r(T)/T_fixed  <=  card(Trees) / T_fixed``

so the approximation converges to the optimum as ``T_fixed`` grows
(Proposition 4).  The same rounding applies to scatter/gossip path flows.

This module is also the bridge from *float* LP solutions to *exact*
schedules: rounded rates are exact rationals ``r / T_fixed`` by
construction, so the downstream matching machinery runs exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Sequence, Tuple

from repro.core.trees import ReductionTree, trees_weight_sum


@dataclass
class FixedPeriodResult:
    """Rounded trees/paths plus the Proposition 4 bookkeeping."""

    period: int
    items: list                 # rounded trees (or (target, path, weight) rows)
    throughput: Fraction        # achieved: sum of rounded rates
    original_throughput: object # the LP optimum TP
    bound: Fraction             # card(items before rounding) / period

    @property
    def loss(self):
        return self.original_throughput - self.throughput

    def loss_within_bound(self) -> bool:
        return self.loss <= self.bound or math.isclose(
            float(self.loss), float(self.bound), rel_tol=1e-9, abs_tol=1e-12)


def fixed_period_approximation(trees: Sequence[ReductionTree],
                               period: int,
                               original_throughput=None) -> FixedPeriodResult:
    """Round reduction-tree rates to multiples of ``1/period``.

    Trees whose rounded count is zero are dropped (their contribution is the
    throughput loss Proposition 4 bounds).
    """
    if period < 1:
        raise ValueError("period must be a positive integer")
    if original_throughput is None:
        original_throughput = trees_weight_sum(list(trees))
    rounded: List[ReductionTree] = []
    total = Fraction(0)
    for tree in trees:
        r = math.floor(Fraction(tree.weight) * period) if isinstance(tree.weight, (int, Fraction)) \
            else math.floor(tree.weight * period)
        if r <= 0:
            continue
        w = Fraction(r, period)
        total += w
        rounded.append(ReductionTree(weight=w, transfers=tree.transfers,
                                     tasks=tree.tasks))
    return FixedPeriodResult(period=period, items=rounded, throughput=total,
                             original_throughput=original_throughput,
                             bound=Fraction(len(list(trees)), period))


def fixed_period_paths(paths_by_type: Dict[object, List[Tuple[list, object]]],
                       period: int,
                       original_throughput=None) -> FixedPeriodResult:
    """Scatter/gossip variant: round each commodity's *path* flows.

    Rounding per path (not per edge) keeps every conservation law intact.
    The common throughput of the rounded solution is the minimum over
    commodities; surplus paths of faster commodities are trimmed so every
    destination receives exactly the same number of messages per period —
    a scatter operation only completes once *all* targets are served.
    """
    if period < 1:
        raise ValueError("period must be a positive integer")
    rounded: Dict[object, List[Tuple[list, Fraction]]] = {}
    per_type_total: Dict[object, Fraction] = {}
    n_paths = 0
    for key, paths in paths_by_type.items():
        n_paths += len(paths)
        out: List[Tuple[list, Fraction]] = []
        total = Fraction(0)
        for path, w in paths:
            r = math.floor(Fraction(w) * period) if isinstance(w, (int, Fraction)) \
                else math.floor(w * period)
            if r <= 0:
                continue
            out.append((path, Fraction(r, period)))
            total += Fraction(r, period)
        rounded[key] = out
        per_type_total[key] = total
    common = min(per_type_total.values()) if per_type_total else Fraction(0)
    # trim surplus so every commodity ships exactly `common`
    for key, paths in rounded.items():
        surplus = per_type_total[key] - common
        trimmed: List[Tuple[list, Fraction]] = []
        for path, w in sorted(paths, key=lambda pw: pw[1]):
            if surplus > 0:
                cut = min(w, surplus)
                # keep rates multiples of 1/period
                cut = Fraction(math.ceil(cut * period), period)
                cut = min(cut, w)
                w = w - cut
                surplus -= cut
            if w > 0:
                trimmed.append((path, w))
        rounded[key] = trimmed
    if original_throughput is None:
        original_throughput = common
    return FixedPeriodResult(period=period,
                             items=[(k, p, w) for k, ps in rounded.items()
                                    for (p, w) in ps],
                             throughput=common,
                             original_throughput=original_throughput,
                             bound=Fraction(n_paths, period))
