"""Series of Reduces: the ``SSR(G)`` linear program (Section 4.2).

Values ``v_0 .. v_{n-1}`` live on *participant* nodes (logical order is the
``⊕`` order — the operator is associative but **not** commutative); the
result ``v[0, n-1]`` must reach ``P_target``.  Unlike scatter, computation
enters the picture: merge tasks ``T_{k,l,m}`` may run on any compute node,
so the LP has both transfer variables and task-count variables, coupled by
the conservation law (equation 10):

   (received) + (produced in place)
        = (sent away) + (consumed as left input) + (consumed as right input)

imposed for every node ``i`` and every interval ``[k,m]`` *except*:

- ``[j,j]`` at the owner of ``v_j`` (fresh values appear there), and
- ``[0,n-1]`` at the target (the result is absorbed there — equation 11
  turns that absorption into the throughput ``TP``).

Fidelity note: as in :mod:`repro.core.scatter`, the target never re-emits
the complete result (no ``send(target -> *, v[0,n-1])`` variables), which
closes the phantom-circulation loophole in the literal text.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.collectives.base import CollectiveSolution
from repro.core import intervals as iv
from repro.lp import LinearProgram, LinExpr, lin_sum
from repro.platform.graph import NodeId, PlatformGraph

Interval = Tuple[int, int]
Task = Tuple[int, int, int]


@dataclass(frozen=True)
class ReduceProblem:
    """A Series-of-Reduces instance.

    Parameters
    ----------
    platform:
        The platform graph.
    participants:
        Node ids in *logical order*: ``participants[j]`` owns ``v_j``.
        Must be compute nodes (they at least produce their own value).
    target:
        Node receiving every ``v[0, n-1]``.
    msg_size:
        Size of a ``v[k,m]`` message; either a number (all equal — the
        paper's experiments use 10) or a callable ``(k, m) -> size``.
    task_work:
        Work of one merge task; ``task_time(node) = task_work / speed``.
        The paper's Section 4.7 uses ``10 / s_i`` i.e. ``task_work = 10``.
    task_time_fn:
        Optional full override ``(node, (k, l, m)) -> time``.
    """

    platform: PlatformGraph
    participants: Tuple[NodeId, ...]
    target: NodeId
    msg_size: object = 1
    task_work: object = 1
    task_time_fn: Optional[Callable[[NodeId, Task], object]] = None

    def __init__(self, platform: PlatformGraph, participants: Sequence[NodeId],
                 target: NodeId, msg_size: object = 1, task_work: object = 1,
                 task_time_fn: Optional[Callable[[NodeId, Task], object]] = None) -> None:
        object.__setattr__(self, "platform", platform)
        object.__setattr__(self, "participants", tuple(participants))
        object.__setattr__(self, "target", target)
        object.__setattr__(self, "msg_size", msg_size)
        object.__setattr__(self, "task_work", task_work)
        object.__setattr__(self, "task_time_fn", task_time_fn)
        if len(self.participants) < 2:
            raise ValueError("a reduction needs at least two participants")
        if len(set(self.participants)) != len(self.participants):
            raise ValueError("duplicate participant")
        for p in self.participants:
            if p not in platform:
                raise ValueError(f"participant {p!r} not in platform")
            if not platform.is_compute(p):
                raise ValueError(f"participant {p!r} is a router (no speed)")
        if target not in platform:
            raise ValueError(f"target {target!r} not in platform")

    # ------------------------------------------------------------------
    @property
    def n_values(self) -> int:
        return len(self.participants)

    def owner(self, j: int) -> NodeId:
        """Physical node owning logical value ``v_j``."""
        return self.participants[j]

    def logical_index(self, node: NodeId) -> Optional[int]:
        try:
            return self.participants.index(node)
        except ValueError:
            return None

    def size(self, interval: Interval) -> object:
        if callable(self.msg_size):
            return self.msg_size(*interval)
        return self.msg_size

    def task_time(self, node: NodeId, task: Task) -> object:
        if self.task_time_fn is not None:
            return self.task_time_fn(node, task)
        speed = self.platform.speed(node)
        if speed is None or speed <= 0:
            raise ValueError(f"node {node!r} cannot compute")
        if isinstance(self.task_work, Fraction) or isinstance(speed, Fraction) \
                or (isinstance(self.task_work, int) and isinstance(speed, int)):
            return Fraction(self.task_work) / Fraction(speed)
        return self.task_work / speed

    def compute_hosts(self) -> List[NodeId]:
        """Nodes allowed to run merge tasks (all compute nodes)."""
        return self.platform.compute_nodes()


def _send_name(i: NodeId, j: NodeId, interval: Interval) -> str:
    return f"send[{i}->{j},v[{interval[0]},{interval[1]}]]"


def _cons_name(i: NodeId, task: Task) -> str:
    return f"cons[{i},T({task[0]},{task[1]},{task[2]})]"


def build_reduce_lp(problem: ReduceProblem) -> LinearProgram:
    """Construct ``SSR(G)`` (not yet solved)."""
    g = problem.platform
    n = problem.n_values
    lp = LinearProgram(f"SSR({g.name})")
    tp = lp.var("TP")
    ivals = iv.all_intervals(n)
    tasks = iv.all_tasks(n)
    full = iv.full_interval(n)
    hosts = problem.compute_hosts()

    svars: Dict[Tuple[NodeId, NodeId, Interval], object] = {}
    for e in g.edges():
        for interval in ivals:
            if e.src == problem.target and interval == full:
                continue  # the target never re-emits the final result
            svars[(e.src, e.dst, interval)] = lp.var(_send_name(e.src, e.dst, interval))

    cvars: Dict[Tuple[NodeId, Task], object] = {}
    for h in hosts:
        for t in tasks:
            cvars[(h, t)] = lp.var(_cons_name(h, t))

    # edge occupation and one-port (equations 1-3, 8)
    def s_expr(i: NodeId, j: NodeId):
        c = g.cost(i, j)
        e = LinExpr()
        for interval in ivals:
            v = svars.get((i, j, interval))
            if v is not None:
                e.add_term(v, problem.size(interval) * c)
        return e

    for e in g.edges():
        lp.add(s_expr(e.src, e.dst) <= 1, name=f"edge[{e.src}->{e.dst}]")
    for p in g.nodes():
        if g.successors(p):
            lp.add(lin_sum(s_expr(p, q) for q in g.successors(p)) <= 1,
                   name=f"out[{p}]")
        if g.predecessors(p):
            lp.add(lin_sum(s_expr(q, p) for q in g.predecessors(p)) <= 1,
                   name=f"in[{p}]")

    # computation time (equations 7, 9): alpha(Pi) <= 1
    for h in hosts:
        alpha = LinExpr()
        for t in tasks:
            alpha.add_term(cvars[(h, t)], problem.task_time(h, t))
        lp.add(alpha <= 1, name=f"alpha[{h}]")

    # conservation law (equation 10)
    for p in g.nodes():
        for interval in ivals:
            if iv.is_leaf(interval) and problem.owner(interval[0]) == p:
                continue  # fresh values appear here
            if p == problem.target and interval == full:
                continue  # absorbed here — handled by the throughput equation
            inflow = lin_sum(svars[(q, p, interval)] for q in g.predecessors(p)
                             if (q, p, interval) in svars)
            produced = lin_sum(cvars[(p, t)] for t in iv.tasks_producing(interval)
                               if (p, t) in cvars)
            outflow = lin_sum(svars[(p, q, interval)] for q in g.successors(p)
                              if (p, q, interval) in svars)
            consumed = lin_sum(cvars[(p, t)] for t in
                               iv.tasks_consuming(interval, n) if (p, t) in cvars)
            lp.add(inflow + produced == outflow + consumed,
                   name=f"conserve[{p},v[{interval[0]},{interval[1]}]]")

    # throughput (equation 11)
    arrival = lin_sum(svars[(q, problem.target, full)]
                      for q in g.predecessors(problem.target)
                      if (q, problem.target, full) in svars)
    local = lin_sum(cvars[(problem.target, t)] for t in iv.tasks_producing(full)
                    if (problem.target, t) in cvars)
    lp.add(arrival + local == tp, name="throughput")

    lp.maximize(tp)
    return lp


@dataclass
class ReduceSolution(CollectiveSolution):
    """Solved ``SSR(G)``.

    ``send[(i, j, (k, m))]`` are transfer rates (cycles per interval type
    already cancelled); ``cons[(i, (k, l, m))]`` are task rates.  ``trees``
    is filled by :meth:`extract` (Section 4.4).  Shared behavior
    (``verify``, ``edge_occupation``, ``alpha``) comes from the registered
    ``"reduce"`` spec.
    """

    collective: str = "reduce"

    def extract(self, eps: Optional[float] = None) -> list:
        """Extract weighted reduction trees (Section 4.4); caches result."""
        from repro.core.trees import extract_trees

        if self.trees is None:
            self.trees = extract_trees(self, eps=eps)
        return self.trees


def solve_reduce(problem: ReduceProblem, backend: str = "auto",
                 eps: float = 1e-9, **solve_kwargs) -> ReduceSolution:
    """Solve ``SSR(G)``; per-interval transfer cycles are cancelled so tree
    extraction terminates (see DESIGN.md decision 3).  Registry-backed
    wrapper over :func:`repro.collectives.solve_collective`; extra
    keywords (``canonical``, ``warm_start``, ...) reach
    :func:`repro.lp.solve`."""
    from repro.collectives import solve_collective

    return solve_collective(problem, collective="reduce", backend=backend,
                            eps=eps, **solve_kwargs)
