"""Bipartite weighted matching decomposition (Section 3.3).

The paper builds, from the LP solution, a bipartite graph with one *send
port* and one *receive port* per processor and one weighted edge per
transfer; the one-port constraints say every port's weighted degree is at
most the period ``T``.  The weighted edge-coloring algorithm of Schrijver
[23, vol. A ch. 20] then splits the graph into weighted matchings with total
weight at most ``T`` — each matching is a set of transfers that may run
simultaneously, and the sequence of matchings is the periodic schedule.

We implement the classical Birkhoff–von-Neumann-style constructive proof:

1. pad with dummy nodes/edges until every port's weighted degree is exactly
   ``T`` (possible because total sender weight equals total receiver weight),
2. the padded multigraph is weighted-regular, so by Hall's theorem its
   support contains a perfect matching; find one (Kuhn's augmenting paths),
3. peel off the minimum weight ``θ`` along that matching — regularity is
   preserved and at least one edge disappears, so at most ``|E| + |U| + |V|``
   matchings are produced (polynomially many, as Theorem 1 requires),
4. report each matching restricted to its real (non-dummy) edges with its
   duration ``θ``; durations sum to exactly ``T``.

Everything is exact when fed Fractions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence, Tuple

PortId = Hashable


@dataclass
class _MEdge:
    u: PortId
    v: PortId
    weight: object
    real: bool


@dataclass
class Matching:
    """One color class: transfers that run simultaneously for ``duration``."""

    duration: object
    pairs: List[Tuple[PortId, PortId]]

    def __iter__(self):
        return iter(self.pairs)


def weighted_degrees(edges: Sequence[Tuple[PortId, PortId, object]]):
    """(sender degree map, receiver degree map) of a weighted edge list."""
    du: Dict[PortId, object] = {}
    dv: Dict[PortId, object] = {}
    for u, v, w in edges:
        du[u] = du.get(u, 0) + w
        dv[v] = dv.get(v, 0) + w
    return du, dv


def decompose_matchings(edges: Sequence[Tuple[PortId, PortId, object]],
                        cap=None) -> List[Matching]:
    """Decompose ``{(sender, receiver): weight}`` into weighted matchings.

    ``cap`` is the period ``T``; it must dominate every port's weighted
    degree.  Defaults to the maximum weighted degree.  Returned durations sum
    to ``cap`` (idle time shows up as matchings with an empty ``pairs`` list
    when every remaining edge is a dummy).
    """
    edges = [(u, v, w) for (u, v, w) in edges if w > 0]
    if not edges:
        return []
    du, dv = weighted_degrees(edges)
    maxdeg = max(list(du.values()) + list(dv.values()))
    if cap is None:
        cap = maxdeg
    elif maxdeg > cap:
        raise ValueError(f"port degree {maxdeg} exceeds cap {cap}")

    work: List[_MEdge] = [_MEdge(u, v, w, True) for (u, v, w) in edges]

    # --- pad to a weighted-regular bipartite multigraph of degree `cap` ---
    senders = list(du)
    receivers = list(dv)
    # equalize side sizes with dummy ports
    n = max(len(senders), len(receivers))
    for i in range(n - len(senders)):
        senders.append(("__dummy_sender__", i))
        du[senders[-1]] = 0
    for i in range(n - len(receivers)):
        receivers.append(("__dummy_receiver__", i))
        dv[receivers[-1]] = 0
    deficit_u = {u: cap - du[u] for u in senders}
    deficit_v = {v: cap - dv[v] for v in receivers}
    su = [u for u in senders if deficit_u[u] > 0]
    sv = [v for v in receivers if deficit_v[v] > 0]
    iu = iv = 0
    while iu < len(su) and iv < len(sv):
        u, v = su[iu], sv[iv]
        w = min(deficit_u[u], deficit_v[v])
        work.append(_MEdge(u, v, w, False))
        deficit_u[u] -= w
        deficit_v[v] -= w
        if deficit_u[u] == 0:
            iu += 1
        if deficit_v[v] == 0:
            iv += 1
    if any(deficit_u[u] != 0 for u in senders) or any(deficit_v[v] != 0 for v in receivers):
        raise AssertionError("padding failed — unbalanced deficits")

    # --- peel perfect matchings ---
    out: List[Matching] = []
    while work:
        match = _perfect_matching(work, senders, receivers)
        theta = min(e.weight for e in match)
        pairs = [(e.u, e.v) for e in match if e.real]
        out.append(Matching(duration=theta, pairs=pairs))
        nxt: List[_MEdge] = []
        matched = set(id(e) for e in match)
        for e in work:
            if id(e) in matched:
                e.weight = e.weight - theta
            if e.weight > 0:
                nxt.append(e)
        work = nxt
    return out


def _perfect_matching(edges: List[_MEdge], senders: List[PortId],
                      receivers: List[PortId]) -> List[_MEdge]:
    """Perfect matching on the support of a regular bipartite multigraph.

    Kuhn's augmenting-path algorithm over edge objects.  Existence is
    guaranteed by regularity (Hall's condition); failure raises.
    """
    adj: Dict[PortId, List[_MEdge]] = {u: [] for u in senders}
    for e in edges:
        adj[e.u].append(e)
    match_v: Dict[PortId, _MEdge] = {}

    def try_augment(u: PortId, visited: set) -> bool:
        for e in adj[u]:
            if e.v in visited:
                continue
            visited.add(e.v)
            cur = match_v.get(e.v)
            if cur is None or try_augment(cur.u, visited):
                match_v[e.v] = e
                return True
        return False

    import sys
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 4 * (len(senders) + len(receivers)) + 100))
    try:
        for u in senders:
            if not try_augment(u, set()):
                raise AssertionError(
                    f"no perfect matching — graph not regular? stuck at {u!r}")
    finally:
        sys.setrecursionlimit(old_limit)
    return list(match_v.values())
