"""Interval algebra for reduction scheduling (Section 4).

A Series-of-Reduces instance combines values ``v_0 .. v_{n-1}`` with an
associative, **non-commutative** operator.  Partial results are therefore
always *contiguous intervals*: ``v[k,m] = v_k ⊕ ... ⊕ v_m``.  A computation
task ``T_{k,l,m}`` (``k <= l < m``) merges ``v[k,l] ⊕ v[l+1,m] -> v[k,m]``.

This module enumerates intervals/tasks and answers the incidence questions
the conservation law (equation 10) asks:

- which tasks *produce* ``v[k,m]``:   ``T_{k,l,m}`` for ``k <= l < m``,
- which tasks consume it *as left input*:  ``T_{k,m,m'}`` for ``m' > m``,
- which tasks consume it *as right input*: ``T_{k',k-1,m}`` for ``k' < k``.

Counts: ``n(n+1)/2`` intervals and ``C(n+1, 3)`` tasks — the polynomial
bounds behind Theorem 1's ``2n^4`` tree limit.
"""

from __future__ import annotations

from typing import List, Tuple

Interval = Tuple[int, int]       # (k, m) with 0 <= k <= m <= n-1
Task = Tuple[int, int, int]      # (k, l, m) with 0 <= k <= l < m <= n-1


def all_intervals(n: int) -> List[Interval]:
    """Every contiguous interval over logical indices ``0 .. n-1``."""
    if n < 1:
        raise ValueError("need at least one value")
    return [(k, m) for k in range(n) for m in range(k, n)]


def all_tasks(n: int) -> List[Task]:
    """Every merge task ``T_{k,l,m}`` over ``0 .. n-1``."""
    return [(k, l, m)
            for k in range(n)
            for l in range(k, n)
            for m in range(l + 1, n)]


def is_leaf(interval: Interval) -> bool:
    """True for a single initial value ``v[j,j]``."""
    return interval[0] == interval[1]


def full_interval(n: int) -> Interval:
    """The complete reduction result ``v[0, n-1]``."""
    return (0, n - 1)


def task_output(task: Task) -> Interval:
    k, _l, m = task
    return (k, m)


def task_inputs(task: Task) -> Tuple[Interval, Interval]:
    """(left, right) input intervals of ``T_{k,l,m}``."""
    k, l, m = task
    return (k, l), (l + 1, m)


def tasks_producing(interval: Interval) -> List[Task]:
    """Tasks whose output is ``interval`` (empty for leaves)."""
    k, m = interval
    return [(k, l, m) for l in range(k, m)]


def tasks_consuming_left(interval: Interval, n: int) -> List[Task]:
    """Tasks using ``interval`` as their left input: ``T_{k,m,m'}``."""
    k, m = interval
    return [(k, m, mp) for mp in range(m + 1, n)]


def tasks_consuming_right(interval: Interval) -> List[Task]:
    """Tasks using ``interval`` as their right input: ``T_{k',k-1,m}``."""
    k, m = interval
    return [(kp, k - 1, m) for kp in range(0, k)]


def tasks_consuming(interval: Interval, n: int) -> List[Task]:
    return tasks_consuming_left(interval, n) + tasks_consuming_right(interval)


def subdivides(outer: Interval, inner: Interval) -> bool:
    """True when ``inner`` is contained in ``outer``."""
    return outer[0] <= inner[0] and inner[1] <= outer[1]


def interval_count(n: int) -> int:
    return n * (n + 1) // 2


def task_count(n: int) -> int:
    return n * (n + 1) * (n - 1) // 6 if n >= 2 else 0


def validate_tree_intervals(intervals: List[Interval], n: int) -> bool:
    """Check that a multiset of leaf intervals exactly tiles ``[0, n-1]``.

    Used by tests: the leaves of any reduction tree partition the full
    interval, which is why every reduce consumes each initial value exactly
    once (see the discussion around Theorem 1).
    """
    marks = [0] * n
    for (k, m) in intervals:
        for i in range(k, m + 1):
            marks[i] += 1
    return all(c == 1 for c in marks)
