"""Shortest-path routing on platform graphs.

Used by the store-and-forward baselines (which fix one route per message,
unlike the LP which is free to split traffic across routes — that freedom is
precisely what the paper's Figure 2 exploits) and by the schedule
initialization bound of Section 3.4 (graph "width" I).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.platform.graph import NodeId, PlatformGraph


def dijkstra(g: PlatformGraph, source: NodeId) -> Tuple[Dict[NodeId, object], Dict[NodeId, Optional[NodeId]]]:
    """Single-source shortest path by edge cost.

    Returns ``(dist, parent)`` where ``dist[v]`` is the minimal total cost of
    a path ``source -> v`` and ``parent[v]`` the predecessor of ``v`` on one
    such path (``None`` for the source and unreachable nodes).

    Costs may be ints, Fractions or floats; they only need to support ``+``
    and ``<`` (which all three do, including mixed int/Fraction).

    Equal-cost ties are broken canonically: among all shortest-path
    predecessors of ``v``, the one with the smallest ``str()`` wins, so
    the returned tree (and every route the baselines fix from it) is a
    pure function of the platform — independent of edge insertion order.
    """
    if source not in g:
        raise KeyError(f"unknown source {source!r}")
    dist: Dict[NodeId, object] = {source: 0}
    parent: Dict[NodeId, Optional[NodeId]] = {source: None}
    # heap entries carry an insertion counter so unorderable node ids are fine
    counter = 0
    heap: List[Tuple[object, int, NodeId]] = [(0, counter, source)]
    done = set()
    while heap:
        d, _, u = heapq.heappop(heap)
        if u in done:
            continue
        done.add(u)
        for e in sorted(g.out_edges(u), key=lambda e: str(e.dst)):
            nd = d + e.cost
            if e.dst not in dist or nd < dist[e.dst]:
                dist[e.dst] = nd
                parent[e.dst] = u
                counter += 1
                heapq.heappush(heap, (nd, counter, e.dst))
            elif nd == dist[e.dst] and parent[e.dst] is not None \
                    and str(u) < str(parent[e.dst]):
                # same distance, canonically smaller predecessor: keep the
                # distance (no re-push needed) but repoint the parent, so
                # the tie never falls back to relaxation order
                parent[e.dst] = u
    return dist, parent


def shortest_path(g: PlatformGraph, source: NodeId, target: NodeId) -> Optional[List[NodeId]]:
    """Minimum-cost node path ``source -> ... -> target``; ``None`` if unreachable."""
    dist, parent = dijkstra(g, source)
    if target not in dist:
        return None
    path = [target]
    while parent[path[-1]] is not None:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def path_cost(g: PlatformGraph, path: List[NodeId]) -> object:
    """Total cost of a node path (sum of its edge costs)."""
    total = 0
    for u, v in zip(path, path[1:]):
        total = total + g.cost(u, v)
    return total


def shortest_path_tree(g: PlatformGraph, source: NodeId) -> PlatformGraph:
    """Subgraph keeping, for every reachable node, only its shortest-path
    parent edge.  This is the single-route topology the tree baselines use.
    """
    dist, parent = dijkstra(g, source)
    t = PlatformGraph(f"{g.name}-spt")
    for n in g.nodes():
        if n in dist:
            t.add_node(n, g.speed(n))
    for v, u in parent.items():
        if u is not None:
            t.add_edge(u, v, g.cost(u, v))
    return t


def graph_width(g: PlatformGraph, source: NodeId) -> object:
    """Maximal shortest-path latency from ``source`` to any reachable node.

    Section 3.4 calls this the maximal "width" of the graph; it bounds the
    duration of the initialization phase of the periodic schedule.
    """
    dist, _ = dijkstra(g, source)
    return max(dist.values())


def eccentricity_bound(g: PlatformGraph) -> object:
    """Upper bound on the width over all sources (max over compute nodes)."""
    best = 0
    for n in g.nodes():
        dist, _ = dijkstra(g, n)
        m = max(dist.values())
        if m > best:
            best = m
    return best
