"""Typed platform perturbations with exact LP row-edit deltas.

The steady-state LPs assume a fixed platform; this module makes the
platform *dynamic*.  A perturbation is a sequence of typed, composable
events — :class:`LinkFailure`, :class:`LinkDegradation`,
:class:`NodeFailure`, :class:`NodeJoin` — and :func:`perturb` maps
``(platform, events)`` to a perturbed platform **plus** an exact
description of how the collective LPs change: a
:class:`PerturbationDelta` listing the capacity rows
(``edge[..]``/``out[..]``/``in[..]``/``alpha[..]`` — the
``CAPACITY_PREFIXES`` contract of :mod:`repro.collectives.base`) that
are dropped, added, or rescaled.

The delta is what makes degraded planning *incremental* rather than
from-scratch:

- its :attr:`~PerturbationDelta.fingerprint` keys the solve caches, so a
  perturbed-platform solve can never collide with (or poison) the
  pristine platform's cached solution (see ``cache_tag`` in
  :func:`repro.lp.dispatch.solve`);
- its :attr:`~PerturbationDelta.tightened` bit drives the warm-vs-cold
  decision rule in :mod:`repro.lp.resolve`: capacity tightening keeps
  the old basis *structurally* valid but possibly primal-infeasible
  (repaired by the exact solver's feasibility-restoring phase), pure
  loosening keeps it feasible and only re-prices.

:func:`failure_trace` is the seeded scenario generator behind the
degraded conformance axis (``tests/conformance/test_degraded.py``): it
draws events that keep the platform strongly connected, so every
registered collective's ``conformance_problem`` stays solvable on the
perturbed platform.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Hashable, Iterable, List, Optional, Tuple

from repro.platform.graph import PlatformGraph

NodeId = Hashable


class PerturbationError(ValueError):
    """An event does not apply to the platform (missing edge/node, ...)."""


# ----------------------------------------------------------------------
# events
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class LinkFailure:
    """The directed link ``src -> dst`` disappears.

    A physically bidirectional link failing is two events, one per
    direction — the LPs treat the directions as independent resources.
    """

    src: NodeId
    dst: NodeId

    def describe(self) -> str:
        return f"fail link {self.src!r}->{self.dst!r}"


@dataclass(frozen=True)
class LinkDegradation:
    """The link ``src -> dst`` slows down: cost is multiplied by ``factor``.

    ``factor > 1`` tightens the capacity rows (the usual degradation);
    ``0 < factor < 1`` models a link speed-up (capacity loosening).
    Integer or :class:`~fractions.Fraction` factors keep the exact
    pipeline exact.
    """

    src: NodeId
    dst: NodeId
    factor: object = 2

    def describe(self) -> str:
        return f"degrade link {self.src!r}->{self.dst!r} by {self.factor}x"


@dataclass(frozen=True)
class NodeFailure:
    """``node`` leaves: every incident link dies with it."""

    node: NodeId

    def describe(self) -> str:
        return f"fail node {self.node!r}"


@dataclass(frozen=True)
class NodeJoin:
    """A new node joins with symmetric links to existing peers.

    ``links`` is a tuple of ``(peer, cost)`` pairs; each adds both
    directed edges at that cost.  ``speed=None`` joins a pure router.
    """

    node: NodeId
    speed: Optional[object] = None
    links: Tuple[Tuple[NodeId, object], ...] = ()

    def describe(self) -> str:
        peers = ", ".join(repr(p) for p, _c in self.links)
        kind = "compute node" if self.speed else "router"
        return f"join {kind} {self.node!r} (links: {peers or 'none'})"


Event = object  # LinkFailure | LinkDegradation | NodeFailure | NodeJoin


# ----------------------------------------------------------------------
# the row-edit delta
# ----------------------------------------------------------------------

#: ``RowEdit.kind`` values, in the order they are emitted.
ROW_EDIT_KINDS = ("drop", "add", "scale")


@dataclass(frozen=True)
class RowEdit:
    """One capacity row's change under a perturbation.

    ``kind``:

    - ``"drop"`` — with ``edge`` set, the terms belonging to that link
      leave the row (for the ``edge[..]`` row itself that is the whole
      row plus its variables); without ``edge``, the row disappears
      entirely (node failure);
    - ``"add"`` — the symmetric appearance (node join);
    - ``"scale"`` — the coefficients of the terms belonging to ``edge``
      are multiplied by ``factor`` (link degradation: the ``edge[..]``
      row scales entirely, the shared ``out[..]``/``in[..]`` rows scale
      only that link's terms).
    """

    row: str
    kind: str
    edge: Optional[Tuple[NodeId, NodeId]] = None
    factor: object = None


@dataclass(frozen=True)
class PerturbationDelta:
    """Exact LP-level description of a platform perturbation."""

    events: Tuple[Event, ...]
    row_edits: Tuple[RowEdit, ...]
    #: True when any event can only shrink the feasible region (link or
    #: node loss, slowdown factor > 1).  Tightening may leave a warm
    #: basis primal-infeasible — the exact solver repairs it; pure
    #: loosening keeps the old vertex feasible and only re-prices.
    tightened: bool = False

    @property
    def fingerprint(self) -> str:
        """Stable short hash of the event sequence, for cache keys."""
        h = hashlib.blake2b(digest_size=8)
        for ev in self.events:
            h.update(repr(ev).encode())
        return h.hexdigest()

    def describe(self) -> str:
        return "; ".join(ev.describe() for ev in self.events) or "no events"


def _edge_rows(src: NodeId, dst: NodeId, kind: str,
               factor: object = None) -> List[RowEdit]:
    """The three capacity rows a single directed link participates in."""
    e = (src, dst)
    return [RowEdit(f"edge[{src}->{dst}]", kind, edge=e, factor=factor),
            RowEdit(f"out[{src}]", kind, edge=e, factor=factor),
            RowEdit(f"in[{dst}]", kind, edge=e, factor=factor)]


def _apply(g: PlatformGraph, ev: Event) -> List[RowEdit]:
    """Apply one event to ``g`` in place; return its row edits."""
    if isinstance(ev, LinkFailure):
        if not g.has_edge(ev.src, ev.dst):
            raise PerturbationError(
                f"cannot fail missing link {ev.src!r}->{ev.dst!r}")
        g.remove_edge(ev.src, ev.dst)
        return _edge_rows(ev.src, ev.dst, "drop")
    if isinstance(ev, LinkDegradation):
        if not g.has_edge(ev.src, ev.dst):
            raise PerturbationError(
                f"cannot degrade missing link {ev.src!r}->{ev.dst!r}")
        f = ev.factor
        try:
            positive = f > 0
        except TypeError:
            positive = False
        if not positive:
            raise PerturbationError(f"degradation factor must be > 0, "
                                    f"got {f!r}")
        # overwrite in place: re-adding an existing edge keeps its position
        # in the adjacency order, so LPs rebuilt from the perturbed platform
        # index their variables exactly like the original (the canonical-key
        # equivalence apply_delta's tests pin relies on this)
        g.add_edge(ev.src, ev.dst, g.cost(ev.src, ev.dst) * f)
        return _edge_rows(ev.src, ev.dst, "scale", factor=f)
    if isinstance(ev, NodeFailure):
        if ev.node not in g:
            raise PerturbationError(f"cannot fail missing node {ev.node!r}")
        edits: List[RowEdit] = []
        for dst in g.successors(ev.node):
            edits.extend(_edge_rows(ev.node, dst, "drop"))
        for src in g.predecessors(ev.node):
            edits.extend(_edge_rows(src, ev.node, "drop"))
        edits.append(RowEdit(f"out[{ev.node}]", "drop"))
        edits.append(RowEdit(f"in[{ev.node}]", "drop"))
        if g.is_compute(ev.node):
            edits.append(RowEdit(f"alpha[{ev.node}]", "drop"))
        g.remove_node(ev.node)
        return edits
    if isinstance(ev, NodeJoin):
        if ev.node in g:
            raise PerturbationError(f"node {ev.node!r} already exists")
        g.add_node(ev.node, ev.speed)
        edits = [RowEdit(f"out[{ev.node}]", "add"),
                 RowEdit(f"in[{ev.node}]", "add")]
        if ev.speed:
            edits.append(RowEdit(f"alpha[{ev.node}]", "add"))
        for peer, cost in ev.links:
            if peer not in g:
                raise PerturbationError(
                    f"join peer {peer!r} is not in the platform")
            g.add_link(ev.node, peer, cost)
            edits.extend(_edge_rows(ev.node, peer, "add"))
            edits.extend(_edge_rows(peer, ev.node, "add"))
        return edits
    raise PerturbationError(f"unknown perturbation event {ev!r}")


def _tightens(ev: Event) -> bool:
    if isinstance(ev, (LinkFailure, NodeFailure)):
        return True
    if isinstance(ev, LinkDegradation):
        try:
            return ev.factor > 1
        except TypeError:
            return True
    return False


def perturb(platform: PlatformGraph, events: Iterable[Event],
            ) -> Tuple[PlatformGraph, PerturbationDelta]:
    """Apply ``events`` in order; return the new platform and its delta.

    The input platform is never mutated.  Events compose left to right:
    a later event sees the platform as shaped by the earlier ones (so a
    ``NodeJoin`` followed by a ``LinkFailure`` on one of its fresh links
    is legal).
    """
    events = tuple(events)
    g = platform.copy()
    g.name = f"{platform.name}~{'+'.join(type(e).__name__ for e in events)}" \
        if events else platform.name
    edits: List[RowEdit] = []
    for ev in events:
        edits.extend(_apply(g, ev))
    return g, PerturbationDelta(events=events, row_edits=tuple(edits),
                                tightened=any(_tightens(e) for e in events))


# ----------------------------------------------------------------------
# seeded scenario generation
# ----------------------------------------------------------------------

#: Integer slowdown factors drawn by :func:`failure_trace` — integers keep
#: perturbed costs exactly rational whatever the original costs are.
TRACE_FACTORS = (2, 3, 4)


def failure_trace(platform: PlatformGraph, seed: int, n_events: int = 1,
                  allow_failures: bool = True) -> Tuple[Event, ...]:
    """Draw a deterministic degradation scenario for ``platform``.

    Events are link-level only (``LinkFailure``/``LinkDegradation``) so
    the collective's participant set survives.  A link failure is only
    drawn when removing the edge keeps the platform strongly connected —
    otherwise the trace degrades that link instead of cutting it — so
    every ``conformance_problem`` stays solvable on the perturbed
    platform.  Same ``(platform, seed)`` -> same trace, always.
    """
    rng = random.Random(seed)
    g = platform.copy()
    events: List[Event] = []
    for _ in range(n_events):
        edges = [(e.src, e.dst) for e in g.edges()]
        if not edges:
            break
        src, dst = rng.choice(edges)
        cut_ok = False
        if allow_failures and rng.random() < 0.5:
            trial = g.copy()
            trial.remove_edge(src, dst)
            cut_ok = trial.is_strongly_connected()
        if cut_ok:
            ev: Event = LinkFailure(src, dst)
        else:
            ev = LinkDegradation(src, dst, factor=rng.choice(TRACE_FACTORS))
        _apply(g, ev)
        events.append(ev)
    return tuple(events)


# ----------------------------------------------------------------------
# CLI event-spec parsing
# ----------------------------------------------------------------------

def _parse_id(token: str) -> NodeId:
    try:
        return int(token)
    except ValueError:
        return token


def parse_event(spec: str) -> Event:
    """Parse one CLI event spec.

    - ``fail:SRC:DST`` — :class:`LinkFailure`
    - ``slow:SRC:DST:FACTOR`` — :class:`LinkDegradation` (factor may be
      an integer or ``p/q``)
    - ``down:NODE`` — :class:`NodeFailure`
    """
    parts = spec.split(":")
    kind = parts[0]
    if kind == "fail" and len(parts) == 3:
        return LinkFailure(_parse_id(parts[1]), _parse_id(parts[2]))
    if kind == "slow" and len(parts) == 4:
        return LinkDegradation(_parse_id(parts[1]), _parse_id(parts[2]),
                               factor=Fraction(parts[3]))
    if kind == "down" and len(parts) == 2:
        return NodeFailure(_parse_id(parts[1]))
    raise PerturbationError(
        f"bad event spec {spec!r} (want fail:SRC:DST, slow:SRC:DST:FACTOR "
        f"or down:NODE)")


def parse_events(text: str) -> Tuple[Event, ...]:
    """Parse a comma-separated CLI event list."""
    return tuple(parse_event(t) for t in text.split(",") if t)
