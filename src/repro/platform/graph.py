"""Directed edge-weighted platform graph (Section 2 of the paper).

The graph may include cycles and multiple routes between node pairs.  Each
directed edge ``(i, j)`` carries ``c(i, j)``: the time needed to transfer a
unit-size message from ``Pi`` to ``Pj``.  The graph is *directed*: the
existence of ``(i, j)`` does not imply the existence of ``(j, i)``, and when
both exist their costs may differ.

Nodes carry an optional compute ``speed``.  A node with ``speed is None`` (or
``0``) is a pure *router*: it forwards messages but cannot execute reduction
tasks and owns no value.  This matches the white router nodes of Figure 9.

Costs and speeds are kept as the numeric type the caller provides.  The exact
scheduling pipeline feeds :class:`fractions.Fraction` (or ``int``) costs so
that periods, message counts and matchings stay bit-exact; float costs are
accepted for the HiGHS/approximation path.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from numbers import Rational
from typing import Dict, Hashable, Iterable, Iterator, List, Optional

NodeId = Hashable
Num = object  # int | Fraction | float — deliberately duck-typed


@dataclass(frozen=True)
class Edge:
    """A directed communication link ``src -> dst`` with unit-message cost."""

    src: NodeId
    dst: NodeId
    cost: Num

    def reversed(self) -> "Edge":
        """The same link in the opposite direction (same cost)."""
        return Edge(self.dst, self.src, self.cost)


class PlatformGraph:
    """A directed, edge-weighted heterogeneous platform.

    Parameters
    ----------
    name:
        Optional human-readable platform name (used in reports).

    Examples
    --------
    >>> g = PlatformGraph("toy")
    >>> g.add_node("s")
    >>> g.add_node("a", speed=2)
    >>> g.add_edge("s", "a", 1)
    >>> g.cost("s", "a")
    1
    """

    def __init__(self, name: str = "platform") -> None:
        self.name = name
        self._speed: Dict[NodeId, Optional[Num]] = {}
        self._succ: Dict[NodeId, Dict[NodeId, Num]] = {}
        self._pred: Dict[NodeId, Dict[NodeId, Num]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId, speed: Optional[Num] = None) -> None:
        """Add ``node``.  ``speed`` > 0 marks a compute node; ``None``/0 a router.

        Re-adding an existing node updates its speed but keeps its edges.
        """
        if node not in self._speed:
            self._succ[node] = {}
            self._pred[node] = {}
        self._speed[node] = speed

    def add_edge(self, src: NodeId, dst: NodeId, cost: Num) -> None:
        """Add the directed edge ``src -> dst`` with unit-message time ``cost``.

        Endpoints are created (as routers) if absent.  ``cost`` must be
        positive: a zero-cost link would allow infinite throughput and breaks
        the one-port accounting.
        """
        if src == dst:
            raise ValueError(f"self-loop {src!r} -> {dst!r} is not allowed")
        if not _is_positive(cost):
            raise ValueError(f"edge cost must be > 0, got {cost!r}")
        if src not in self._speed:
            self.add_node(src)
        if dst not in self._speed:
            self.add_node(dst)
        self._succ[src][dst] = cost
        self._pred[dst][src] = cost

    def add_link(self, a: NodeId, b: NodeId, cost: Num,
                 cost_back: Optional[Num] = None) -> None:
        """Add a bidirectional link: edges ``a -> b`` and ``b -> a``.

        ``cost_back`` defaults to ``cost`` (symmetric link).
        """
        self.add_edge(a, b, cost)
        self.add_edge(b, a, cost if cost_back is None else cost_back)

    def remove_edge(self, src: NodeId, dst: NodeId) -> None:
        """Remove the directed edge ``src -> dst`` (KeyError if absent)."""
        del self._succ[src][dst]
        del self._pred[dst][src]

    def remove_node(self, node: NodeId) -> None:
        """Remove ``node`` and every incident edge."""
        for dst in list(self._succ[node]):
            self.remove_edge(node, dst)
        for src in list(self._pred[node]):
            self.remove_edge(src, node)
        del self._succ[node]
        del self._pred[node]
        del self._speed[node]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def nodes(self) -> List[NodeId]:
        """All node ids, in insertion order."""
        return list(self._speed)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._speed

    def __len__(self) -> int:
        return len(self._speed)

    def num_edges(self) -> int:
        """Number of directed edges."""
        return sum(len(s) for s in self._succ.values())

    def edges(self) -> Iterator[Edge]:
        """Iterate over all directed edges."""
        for src, succ in self._succ.items():
            for dst, cost in succ.items():
                yield Edge(src, dst, cost)

    def has_edge(self, src: NodeId, dst: NodeId) -> bool:
        return dst in self._succ.get(src, {})

    def cost(self, src: NodeId, dst: NodeId) -> Num:
        """Unit-message transfer time of edge ``src -> dst``."""
        try:
            return self._succ[src][dst]
        except KeyError:
            raise KeyError(f"no edge {src!r} -> {dst!r}") from None

    def successors(self, node: NodeId) -> List[NodeId]:
        """Nodes reachable from ``node`` through one outgoing edge."""
        return list(self._succ[node])

    def predecessors(self, node: NodeId) -> List[NodeId]:
        """Nodes with an edge into ``node``."""
        return list(self._pred[node])

    def out_edges(self, node: NodeId) -> Iterator[Edge]:
        for dst, cost in self._succ[node].items():
            yield Edge(node, dst, cost)

    def in_edges(self, node: NodeId) -> Iterator[Edge]:
        for src, cost in self._pred[node].items():
            yield Edge(src, node, cost)

    def speed(self, node: NodeId) -> Optional[Num]:
        """Compute speed of ``node`` (``None`` for routers)."""
        return self._speed[node]

    def is_compute(self, node: NodeId) -> bool:
        """True if ``node`` can execute reduction tasks."""
        s = self._speed[node]
        return s is not None and _is_positive(s)

    def compute_nodes(self) -> List[NodeId]:
        """All compute nodes, in insertion order."""
        return [n for n in self._speed if self.is_compute(n)]

    def routers(self) -> List[NodeId]:
        """All pure-router nodes."""
        return [n for n in self._speed if not self.is_compute(n)]

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def copy(self) -> "PlatformGraph":
        g = PlatformGraph(self.name)
        for n, s in self._speed.items():
            g.add_node(n, s)
        for e in self.edges():
            g.add_edge(e.src, e.dst, e.cost)
        return g

    def subgraph(self, keep: Iterable[NodeId]) -> "PlatformGraph":
        """Induced subgraph on ``keep`` (edges with both endpoints kept)."""
        keep_set = set(keep)
        g = PlatformGraph(f"{self.name}-sub")
        for n in self._speed:
            if n in keep_set:
                g.add_node(n, self._speed[n])
        for e in self.edges():
            if e.src in keep_set and e.dst in keep_set:
                g.add_edge(e.src, e.dst, e.cost)
        return g

    def reversed(self) -> "PlatformGraph":
        """Graph with every edge direction flipped (costs preserved)."""
        g = PlatformGraph(f"{self.name}-rev")
        for n, s in self._speed.items():
            g.add_node(n, s)
        for e in self.edges():
            g.add_edge(e.dst, e.src, e.cost)
        return g

    def is_strongly_connected(self) -> bool:
        """True if every node reaches every other following edge directions."""
        nodes = self.nodes()
        if len(nodes) <= 1:
            return True
        return (len(self.reachable_from(nodes[0])) == len(nodes)
                and len(self.reversed().reachable_from(nodes[0])) == len(nodes))

    def reachable_from(self, start: NodeId) -> set:
        """Set of nodes reachable from ``start`` (including ``start``)."""
        seen = {start}
        stack = [start]
        while stack:
            u = stack.pop()
            for v in self._succ[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return seen

    def validate(self) -> None:
        """Raise ``ValueError`` on structurally invalid platforms."""
        for e in self.edges():
            if not _is_positive(e.cost):
                raise ValueError(f"edge {e.src!r}->{e.dst!r} has cost {e.cost!r}")
        for n in self._speed:
            s = self._speed[n]
            if s is not None and _is_negative(s):
                raise ValueError(f"node {n!r} has negative speed {s!r}")

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def as_fraction_costs(self) -> "PlatformGraph":
        """Copy with every cost converted to :class:`fractions.Fraction`.

        Float costs are converted via ``Fraction(str(x))`` — i.e. the decimal
        literal the user most plausibly meant — so that ``0.1`` becomes
        ``1/10`` and not the binary expansion.
        """
        g = PlatformGraph(self.name)
        for n, s in self._speed.items():
            g.add_node(n, _to_fraction(s) if s is not None else None)
        for e in self.edges():
            g.add_edge(e.src, e.dst, _to_fraction(e.cost))
        return g

    def to_networkx(self):
        """Export as a ``networkx.DiGraph`` with ``cost`` edge attributes."""
        import networkx as nx

        g = nx.DiGraph(name=self.name)
        for n, s in self._speed.items():
            g.add_node(n, speed=s)
        for e in self.edges():
            g.add_edge(e.src, e.dst, cost=e.cost)
        return g

    @classmethod
    def from_networkx(cls, nxg, name: Optional[str] = None) -> "PlatformGraph":
        """Build from a networkx (Di)Graph with ``cost`` edge attributes.

        Undirected input graphs produce one edge per direction.
        """
        g = cls(name or str(nxg.name or "platform"))
        for n, data in nxg.nodes(data=True):
            g.add_node(n, data.get("speed"))
        directed = nxg.is_directed()
        for u, v, data in nxg.edges(data=True):
            c = data.get("cost", 1)
            g.add_edge(u, v, c)
            if not directed:
                g.add_edge(v, u, c)
        return g

    def __repr__(self) -> str:
        return (f"PlatformGraph({self.name!r}, nodes={len(self)}, "
                f"edges={self.num_edges()}, compute={len(self.compute_nodes())})")


def _is_positive(x: Num) -> bool:
    try:
        return x > 0
    except TypeError:
        return False


def _is_negative(x: Num) -> bool:
    try:
        return x < 0
    except TypeError:
        return False


def _to_fraction(x: Num) -> Fraction:
    """Convert a number to Fraction, decoding floats via their str() literal."""
    if isinstance(x, Fraction):
        return x
    if isinstance(x, int):
        return Fraction(x)
    if isinstance(x, Rational):
        return Fraction(x.numerator, x.denominator)
    if isinstance(x, float):
        return Fraction(str(x))
    return Fraction(x)
