"""The exact platforms used in the paper's figures.

- :func:`figure2_platform` — the 5-node toy scatter platform of Figure 2,
  for which the optimal steady-state throughput is ``TP = 1/2`` (6 messages
  per target every 12 time-units).
- :func:`figure6_platform` — the 3-processor triangle of Figure 6 (all link
  costs 1, node 0 twice as fast), for which ``TP = 1`` reduce per time-unit
  with period ``T = 3``.
- :func:`figure9_platform` — a reconstruction of the Tiers-generated
  14-node platform of Figure 9 (8 compute hosts with speeds 15..92 behind
  6 routers, 17 bidirectional links).

Figure 9 reconstruction notes
-----------------------------
The link *structure* is recovered exactly from the transfer paths printed in
Figures 10-12 (every hop of every path is listed there).  The link bandwidth
labels in Figure 9 are partially garbled by PDF text extraction; the set of
legible labels is ``{10, 8, 14, 182, 295, 266, 208, 240, 144, 146, 187, 286,
125}`` for the 13 router links plus ``1000`` for each of the 4 LAN links.
We assign them to links following the extraction order (which tracks drawing
position).  Edge costs are ``c(e) = 1/bandwidth`` and the reduce workload
uses ``size(v[k,m]) = 10`` and ``w(Pi, T) = 10 / speed_i``, as stated in
Section 4.7.  Absolute throughput therefore need not equal the paper's
``2/9``; the structural results (LP feasibility, tree extraction, tree count
and throughput split) are what the Figure 9-12 benchmarks reproduce.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Tuple

from repro.platform.graph import PlatformGraph

#: Logical reduction index of each Figure 9 compute node (``index i`` labels).
FIGURE9_INDEX: Dict[int, int] = {
    11: 0,  # speed 15
    8: 1,   # speed 55
    13: 2,  # speed 79
    9: 3,   # speed 75
    6: 4,   # speed 92  (target node)
    12: 5,  # speed 38
    7: 6,   # speed 64
    10: 7,  # speed 17
}

#: Compute speeds of the Figure 9 hosts, keyed by node id.
FIGURE9_SPEEDS: Dict[int, int] = {
    6: 92, 7: 64, 8: 55, 9: 75, 10: 17, 11: 15, 12: 38, 13: 79,
}

#: Figure 9 links as (node, node, bandwidth); see module docstring.
FIGURE9_LINKS: List[Tuple[int, int, int]] = [
    (0, 1, 10),
    (0, 5, 8),
    (1, 2, 14),
    (2, 3, 240),
    (2, 6, 144),
    (2, 8, 146),
    (3, 6, 286),
    (3, 8, 187),
    (4, 5, 182),
    (4, 10, 295),
    (4, 12, 266),
    (5, 10, 125),
    (5, 12, 208),
    (6, 7, 1000),
    (8, 9, 1000),
    (10, 11, 1000),
    (12, 13, 1000),
]


def figure2_platform() -> PlatformGraph:
    """The toy Series-of-Scatters platform of Figure 2.

    Source ``Ps`` scatters to targets ``P0`` and ``P1`` through relays ``Pa``
    and ``Pb``.  Only the downward edges drawn in the figure exist.  Messages
    for ``P0`` may use two routes (via ``Pa`` or via ``Pb``); messages for
    ``P1`` must go through ``Pb``.

    The optimal throughput is ``TP = 1/2`` and the LP solution of Figure 2(b)
    ships, per period of 12: 3 ``m0`` via ``Pa``, 3 ``m0`` and 6 ``m1`` via
    ``Pb``.
    """
    g = PlatformGraph("figure2")
    g.add_node("Ps", 1)
    g.add_node("Pa", 1)
    g.add_node("Pb", 1)
    g.add_node("P0", 1)
    g.add_node("P1", 1)
    g.add_edge("Ps", "Pa", Fraction(1))
    g.add_edge("Ps", "Pb", Fraction(1))
    g.add_edge("Pa", "P0", Fraction(2, 3))
    g.add_edge("Pb", "P0", Fraction(4, 3))
    g.add_edge("Pb", "P1", Fraction(4, 3))
    return g


def figure2_targets() -> List[str]:
    """Scatter targets of the Figure 2 instance."""
    return ["P0", "P1"]


def figure6_platform() -> PlatformGraph:
    """The 3-processor reduce platform of Figure 6.

    A fully connected triangle with every link cost 1.  "Every processor can
    process any task in one time-unit, except node 0 which can process any
    two tasks in one time-unit" — i.e. speeds (2, 1, 1).  Message sizes are
    1 and the target node is node 0.  The LP optimum is ``TP = 1`` with
    period ``T = 3`` (three reductions every three time-units).
    """
    g = PlatformGraph("figure6")
    g.add_node(0, 2)
    g.add_node(1, 1)
    g.add_node(2, 1)
    g.add_link(0, 1, 1)
    g.add_link(0, 2, 1)
    g.add_link(1, 2, 1)
    return g


def triangle_platform(speeds: Tuple[int, int, int] = (2, 1, 1),
                      cost: object = 1) -> PlatformGraph:
    """Parametric fully connected triangle (generalizes Figure 6)."""
    g = PlatformGraph("triangle")
    for i, s in enumerate(speeds):
        g.add_node(i, s)
    g.add_link(0, 1, cost)
    g.add_link(0, 2, cost)
    g.add_link(1, 2, cost)
    return g


def figure9_platform() -> PlatformGraph:
    """Reconstruction of the Figure 9 Tiers platform (see module docstring).

    Nodes 0-5 are routers (white); nodes 6-13 are compute hosts (gray) with
    the speeds printed in the figure.  Every link is bidirectional with cost
    ``1/bandwidth`` in each direction.
    """
    g = PlatformGraph("figure9")
    for n in range(6):
        g.add_node(n, None)
    for n, s in FIGURE9_SPEEDS.items():
        g.add_node(n, s)
    for a, b, bw in FIGURE9_LINKS:
        g.add_link(a, b, Fraction(1, bw))
    return g


def figure9_participants() -> List[int]:
    """Figure 9 compute nodes ordered by logical reduction index 0..7."""
    by_index = sorted(FIGURE9_INDEX.items(), key=lambda kv: kv[1])
    return [node for node, _ in by_index]


def figure9_target() -> int:
    """The Figure 9 target node: node 6 (logical index 4)."""
    return 6
