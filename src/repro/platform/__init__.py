"""Heterogeneous platform model.

The target computing platform of the paper is a directed edge-weighted graph
``G = (V, E, c)`` where each edge ``e`` carries ``c(e)``, the time needed to
transfer one unit of message across that edge, and each node may additionally
carry a compute speed (Section 2 of RR-4872).  This package provides:

- :class:`~repro.platform.graph.PlatformGraph` — the graph data structure,
- :mod:`~repro.platform.generators` — synthetic topology generators, including
  a Tiers-like hierarchical generator standing in for the Tiers tool [9],
- :mod:`~repro.platform.routing` — shortest-path routing helpers,
- :mod:`~repro.platform.io` — JSON (de)serialization,
- :mod:`~repro.platform.examples` — the exact platforms used in the paper's
  figures (Fig. 2 toy scatter, Fig. 6 triangle reduce, Fig. 9 Tiers graph).
"""

from repro.platform.graph import Edge, PlatformGraph
from repro.platform.generators import (
    chain,
    clustered,
    complete,
    grid2d,
    random_connected,
    ring,
    star,
    tiers,
    tree,
)
from repro.platform.examples import (
    figure2_platform,
    figure6_platform,
    figure9_platform,
    triangle_platform,
)
from repro.platform.io import platform_from_json, platform_to_json
from repro.platform.routing import (
    dijkstra,
    path_cost,
    shortest_path,
    shortest_path_tree,
)

__all__ = [
    "Edge",
    "PlatformGraph",
    "chain",
    "clustered",
    "complete",
    "grid2d",
    "random_connected",
    "ring",
    "star",
    "tiers",
    "tree",
    "figure2_platform",
    "figure6_platform",
    "figure9_platform",
    "triangle_platform",
    "platform_from_json",
    "platform_to_json",
    "dijkstra",
    "path_cost",
    "shortest_path",
    "shortest_path_tree",
]
