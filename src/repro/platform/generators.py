"""Synthetic platform topology generators.

The paper's experiments use a random topology produced by Tiers [9] — a
hierarchical WAN / MAN / LAN internet-topology generator — with randomly
chosen link bandwidths and node speeds.  Tiers itself (1997 C code) is not
available offline, so :func:`tiers` reproduces its statistical shape: a WAN
core of routers, MAN rings hanging off WAN nodes, and LAN stars of compute
hosts hanging off MAN nodes, with fast (low-cost) LAN links and slower
WAN/MAN links.  All generators are deterministic given ``seed``.

All generators return costs as ``int`` or :class:`fractions.Fraction` so the
exact scheduling pipeline applies directly.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Optional, Sequence

from repro.platform.graph import PlatformGraph


def _rng(seed: Optional[int]) -> random.Random:
    return random.Random(seed)


def star(n_leaves: int, center_speed: int = 1, leaf_speed: int = 1,
         cost: object = 1) -> PlatformGraph:
    """A center node ``c`` linked bidirectionally to leaves ``l0 .. l{n-1}``."""
    if n_leaves < 1:
        raise ValueError("star needs at least one leaf")
    g = PlatformGraph(f"star{n_leaves}")
    g.add_node("c", center_speed)
    for i in range(n_leaves):
        g.add_node(f"l{i}", leaf_speed)
        g.add_link("c", f"l{i}", cost)
    return g


def chain(n: int, cost: object = 1, speed: int = 1) -> PlatformGraph:
    """Bidirectional path ``p0 - p1 - ... - p{n-1}``."""
    if n < 2:
        raise ValueError("chain needs at least 2 nodes")
    g = PlatformGraph(f"chain{n}")
    for i in range(n):
        g.add_node(f"p{i}", speed)
    for i in range(n - 1):
        g.add_link(f"p{i}", f"p{i+1}", cost)
    return g


def ring(n: int, cost: object = 1, speed: int = 1) -> PlatformGraph:
    """Bidirectional cycle of ``n`` compute nodes."""
    if n < 3:
        raise ValueError("ring needs at least 3 nodes")
    g = PlatformGraph(f"ring{n}")
    for i in range(n):
        g.add_node(f"p{i}", speed)
    for i in range(n):
        g.add_link(f"p{i}", f"p{(i+1) % n}", cost)
    return g


def complete(n: int, cost: object = 1, speeds: Optional[Sequence[int]] = None) -> PlatformGraph:
    """Fully connected graph on ``n`` compute nodes (the model of [1])."""
    if n < 2:
        raise ValueError("complete needs at least 2 nodes")
    g = PlatformGraph(f"complete{n}")
    for i in range(n):
        g.add_node(f"p{i}", speeds[i] if speeds else 1)
    for i in range(n):
        for j in range(i + 1, n):
            g.add_link(f"p{i}", f"p{j}", cost)
    return g


def grid2d(rows: int, cols: int, cost: object = 1, speed: int = 1) -> PlatformGraph:
    """2-D mesh of compute nodes (the wormhole-mesh setting of [3, 25])."""
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise ValueError("grid needs at least 2 nodes")
    g = PlatformGraph(f"grid{rows}x{cols}")
    for r in range(rows):
        for c in range(cols):
            g.add_node(f"p{r}_{c}", speed)
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                g.add_link(f"p{r}_{c}", f"p{r}_{c+1}", cost)
            if r + 1 < rows:
                g.add_link(f"p{r}_{c}", f"p{r+1}_{c}", cost)
    return g


def tree(n: int, seed: Optional[int] = 0, max_children: int = 3,
         cost_choices: Sequence[object] = (1, 2, 3),
         speed_choices: Sequence[int] = (1, 2, 4)) -> PlatformGraph:
    """Random rooted tree of ``n`` compute nodes with random costs/speeds."""
    if n < 2:
        raise ValueError("tree needs at least 2 nodes")
    rng = _rng(seed)
    g = PlatformGraph(f"tree{n}")
    g.add_node("p0", rng.choice(list(speed_choices)))
    children = {0: 0}
    for i in range(1, n):
        candidates = [j for j, k in children.items() if k < max_children]
        parent = rng.choice(candidates)
        children[parent] += 1
        children[i] = 0
        g.add_node(f"p{i}", rng.choice(list(speed_choices)))
        g.add_link(f"p{parent}", f"p{i}", rng.choice(list(cost_choices)))
    return g


def random_connected(n: int, extra_edges: int = 0, seed: Optional[int] = 0,
                     cost_choices: Sequence[object] = (1, 2, 3, 4),
                     speed_choices: Sequence[int] = (1, 2, 4, 8)) -> PlatformGraph:
    """Random connected graph: a random spanning tree plus ``extra_edges``
    uniformly random additional bidirectional links.

    Extra edges create the multiple routes the steady-state LP exploits.
    """
    if n < 2:
        raise ValueError("need at least 2 nodes")
    rng = _rng(seed)
    g = PlatformGraph(f"rand{n}+{extra_edges}")
    for i in range(n):
        g.add_node(f"p{i}", rng.choice(list(speed_choices)))
    order = list(range(n))
    rng.shuffle(order)
    for idx in range(1, n):
        a = order[idx]
        b = order[rng.randrange(idx)]
        g.add_link(f"p{a}", f"p{b}", rng.choice(list(cost_choices)))
    added = 0
    attempts = 0
    while added < extra_edges and attempts < 50 * (extra_edges + 1):
        attempts += 1
        a, b = rng.sample(range(n), 2)
        if not g.has_edge(f"p{a}", f"p{b}"):
            g.add_link(f"p{a}", f"p{b}", rng.choice(list(cost_choices)))
            added += 1
    return g


def clustered(n_clusters: int, hosts_per_cluster: int, seed: Optional[int] = 0,
              intra_cost: object = 1, inter_cost_choices: Sequence[object] = (5, 8, 10),
              speed_choices: Sequence[int] = (1, 2, 4, 8)) -> PlatformGraph:
    """Clusters of compute hosts behind router gateways, routers in a ring.

    This is the two-layer structure that grid communication libraries such as
    ECO and MagPIe (Section 5 of the paper) assume: cheap intra-cluster
    links, expensive inter-cluster links.
    """
    if n_clusters < 1 or hosts_per_cluster < 1:
        raise ValueError("need at least one cluster with one host")
    rng = _rng(seed)
    g = PlatformGraph(f"clustered{n_clusters}x{hosts_per_cluster}")
    for c in range(n_clusters):
        g.add_node(f"r{c}", None)  # gateway router
        for h in range(hosts_per_cluster):
            g.add_node(f"c{c}h{h}", rng.choice(list(speed_choices)))
            g.add_link(f"r{c}", f"c{c}h{h}", intra_cost)
    if n_clusters > 1:
        for c in range(n_clusters):
            g.add_link(f"r{c}", f"r{(c+1) % n_clusters}",
                       rng.choice(list(inter_cost_choices)))
    return g


def tiers(seed: Optional[int] = 0, wan_nodes: int = 4, mans_per_wan: int = 1,
          lans_per_man: int = 2, hosts_per_lan: int = 2,
          wan_redundancy: int = 1,
          speed_range: tuple = (10, 100),
          lan_cost: Fraction = Fraction(1, 100),
          man_cost_range: tuple = (2, 8),
          wan_cost_range: tuple = (4, 15)) -> PlatformGraph:
    """Tiers-like hierarchical random topology (stands in for Tiers [9]).

    Structure (mirroring Calvert/Doar/Zegura's three-level hierarchy):

    - a WAN core: ``wan_nodes`` routers on a random spanning tree plus
      ``wan_redundancy`` extra links (redundancy creates multi-route
      opportunities, as in the paper's Figure 9 where e.g. nodes 4/5 form a
      cycle with 10/12),
    - per WAN node, ``mans_per_wan`` MAN routers,
    - per MAN router, ``lans_per_man`` LAN gateways,
    - per LAN gateway, ``hosts_per_lan`` compute hosts on fast links.

    Compute hosts get uniform random integer speeds in ``speed_range`` —
    Figure 9's speeds (15, 17, 38, 55, 64, 75, 79, 92) were drawn similarly.
    Costs are Fractions/ints so exact scheduling applies.
    """
    rng = _rng(seed)
    g = PlatformGraph(f"tiers-seed{seed}")
    # WAN core
    wan = [f"w{i}" for i in range(wan_nodes)]
    for w in wan:
        g.add_node(w, None)
    order = list(range(wan_nodes))
    rng.shuffle(order)
    for idx in range(1, wan_nodes):
        a, b = order[idx], order[rng.randrange(idx)]
        g.add_link(wan[a], wan[b], rng.randint(*wan_cost_range))
    added = 0
    attempts = 0
    while added < wan_redundancy and attempts < 50 * (wan_redundancy + 1) and wan_nodes > 2:
        attempts += 1
        a, b = rng.sample(range(wan_nodes), 2)
        if not g.has_edge(wan[a], wan[b]):
            g.add_link(wan[a], wan[b], rng.randint(*wan_cost_range))
            added += 1
    # MAN layer
    host_idx = 0
    for wi, w in enumerate(wan):
        for mi in range(mans_per_wan):
            m = f"m{wi}_{mi}"
            g.add_node(m, None)
            g.add_link(w, m, rng.randint(*man_cost_range))
            # LAN layer
            for li in range(lans_per_man):
                lan_gw = f"g{wi}_{mi}_{li}"
                g.add_node(lan_gw, None)
                g.add_link(m, lan_gw, rng.randint(*man_cost_range))
                for _ in range(hosts_per_lan):
                    h = f"h{host_idx}"
                    host_idx += 1
                    g.add_node(h, rng.randint(*speed_range))
                    g.add_link(lan_gw, h, lan_cost)
    return g


def fat_tree(k: int, seed: Optional[int] = 0, cost: object = 1,
             speed_range: tuple = (10, 100)) -> PlatformGraph:
    """k-ary fat-tree datacenter topology (Al-Fares et al.) with ``k`` even.

    Three switch layers — ``(k/2)^2`` core switches, and ``k`` pods of
    ``k/2`` aggregation plus ``k/2`` edge switches — with ``k/2`` compute
    hosts per edge switch, so ``k^3/4`` hosts total.  Switches are
    non-compute routers (``speed=None``); hosts get uniform random integer
    speeds in ``speed_range`` (heterogeneous nodes on a regular fabric,
    the datacenter analogue of the paper's Tiers platforms).  Every link
    has the same ``cost``: fat-trees are rearrangeably non-blocking, so
    all the LP's freedom is in route multiplicity, not link heterogeneity.
    """
    if k < 2 or k % 2:
        raise ValueError("fat_tree needs an even k >= 2")
    rng = _rng(seed)
    half = k // 2
    g = PlatformGraph(f"fattree{k}")
    core = [f"c{i}_{j}" for i in range(half) for j in range(half)]
    for c in core:
        g.add_node(c, None)
    host_idx = 0
    for p in range(k):
        for a in range(half):
            g.add_node(f"a{p}_{a}", None)
            # aggregation switch ``a`` uplinks to core group ``a``
            for j in range(half):
                g.add_link(f"a{p}_{a}", f"c{a}_{j}", cost)
        for e in range(half):
            edge = f"e{p}_{e}"
            g.add_node(edge, None)
            for a in range(half):
                g.add_link(edge, f"a{p}_{a}", cost)
            for _ in range(half):
                h = f"h{host_idx}"
                host_idx += 1
                g.add_node(h, rng.randint(*speed_range))
                g.add_link(edge, h, cost)
    return g


def heterogenize(g: PlatformGraph, seed: Optional[int] = 0,
                 cost_choices: Sequence[object] = (1, 2, 3, 5),
                 speed_choices: Sequence[int] = (1, 2, 4, 8)) -> PlatformGraph:
    """Copy of ``g`` with costs and speeds re-drawn at random.

    Handy for turning a regular topology (ring, grid) into a heterogeneous
    instance while keeping its structure.  Bidirectional links (edge pairs
    ``(u,v)/(v,u)`` with equal costs) stay symmetric.
    """
    rng = _rng(seed)
    out = PlatformGraph(f"{g.name}-het")
    for n in g.nodes():
        out.add_node(n, rng.choice(list(speed_choices)) if g.is_compute(n) else None)
    done = set()
    for e in g.edges():
        if (e.src, e.dst) in done:
            continue
        c = rng.choice(list(cost_choices))
        symmetric = g.has_edge(e.dst, e.src) and g.cost(e.dst, e.src) == e.cost
        out.add_edge(e.src, e.dst, c)
        done.add((e.src, e.dst))
        if symmetric:
            out.add_edge(e.dst, e.src, c)
            done.add((e.dst, e.src))
    return out
