"""Platform (de)serialization.

The JSON schema is deliberately simple and lossless for int/Fraction costs:

.. code-block:: json

    {
      "name": "figure2",
      "nodes": [{"id": "Ps", "speed": 1}, {"id": "Pa", "speed": null}],
      "edges": [{"src": "Ps", "dst": "Pa", "cost": "2/3"}]
    }

Numbers are stored as ints when integral, as ``"num/den"`` strings for
Fractions, and as floats otherwise.  Node ids may be strings or ints.
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Any, Dict

from repro.platform.graph import PlatformGraph


def _num_to_json(x: Any) -> Any:
    if x is None:
        return None
    if isinstance(x, bool):
        raise TypeError("bool is not a valid cost/speed")
    if isinstance(x, int):
        return x
    if isinstance(x, Fraction):
        if x.denominator == 1:
            return int(x)
        return f"{x.numerator}/{x.denominator}"
    if isinstance(x, float):
        return x
    raise TypeError(f"cannot serialize number {x!r}")


def _num_from_json(x: Any) -> Any:
    if x is None or isinstance(x, (int, float)):
        return x
    if isinstance(x, str):
        if "/" in x:
            num, den = x.split("/", 1)
            return Fraction(int(num), int(den))
        return Fraction(x)
    raise TypeError(f"cannot parse number {x!r}")


def platform_to_json(g: PlatformGraph) -> str:
    """Serialize ``g`` to a JSON string."""
    doc: Dict[str, Any] = {
        "name": g.name,
        "nodes": [{"id": n, "speed": _num_to_json(g.speed(n))} for n in g.nodes()],
        "edges": [{"src": e.src, "dst": e.dst, "cost": _num_to_json(e.cost)}
                  for e in g.edges()],
    }
    return json.dumps(doc, indent=2)


def platform_from_json(text: str) -> PlatformGraph:
    """Parse a platform from the JSON produced by :func:`platform_to_json`."""
    doc = json.loads(text)
    g = PlatformGraph(doc.get("name", "platform"))
    for nd in doc["nodes"]:
        g.add_node(nd["id"], _num_from_json(nd.get("speed")))
    for ed in doc["edges"]:
        g.add_edge(ed["src"], ed["dst"], _num_from_json(ed["cost"]))
    return g


def save_platform(g: PlatformGraph, path: str) -> None:
    """Write ``g`` to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(platform_to_json(g))


def load_platform(path: str) -> PlatformGraph:
    """Read a platform from a JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        return platform_from_json(fh.read())
