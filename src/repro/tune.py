"""Optimality-gap auto-tuner: LP optimum vs every classical baseline.

For a ``(topology, collective)`` instance the tuner solves the exact LP
optimum through the orchestrator, then replays every *applicable*
classical baseline spec (:mod:`repro.baselines.algorithms`) on the
simulation engine: each baseline is solved analytically, verified through
the shared invariant path, turned into a real periodic schedule, and
simulated long enough for the multi-hop pipeline to reach steady state —
the measured steady-window rate must equal the analytic rate *bit
exactly*, or the row is flagged.  The result is an exact-rational gap
table: ``gap = TP_LP / TP_baseline >= 1`` (every baseline plan is a
feasible point of its LP, so LP dominance is a theorem the table
re-checks empirically).

``tune_zoo`` runs the standing topology zoo (the paper's fig2/fig6/fig9
platforms plus ring / complete / fat-tree generators) and is what
``repro tune``, ``benchmarks/perf_report.py --tune`` (→ ``BENCH_PR10.json``)
and the perf-smoke guards share.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.collectives import (
    available_collectives, resolve_collective, schedule_collective,
    solve_collective,
)

#: steady-window width (periods) used for the bit-exact rate check
WINDOW = 3
#: periods simulated beyond the pipeline-fill depth
SETTLE = 2


@dataclass(frozen=True)
class GapRow:
    """One (instance, baseline) line of the gap table."""

    topology: str
    collective: str        # LP spec name (the optimum's collective)
    baseline: str          # baseline spec name
    algorithm: str         # human label of the classical algorithm
    n_rounds: int
    baseline_tp: object
    lp_tp: object
    gap: object            # lp_tp / baseline_tp, exact Fraction
    sim_tp: object         # steady-window rate measured on the sim engine
    sim_matches: bool      # sim_tp == baseline_tp, bit-exact
    engine: str            # engine that actually replayed the schedule


@dataclass
class TuneReport:
    rows: List[GapRow] = field(default_factory=list)
    instance_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def lp_dominates(self) -> bool:
        return all(row.gap >= 1 for row in self.rows)

    @property
    def sim_exact(self) -> bool:
        return all(row.sim_matches for row in self.rows)


def applicable_baselines(problem) -> List[object]:
    """Registered classical-algorithm specs that can run this instance."""
    from repro.baselines.algorithms import AlgorithmSpec

    return [spec for spec in available_collectives()
            if isinstance(spec, AlgorithmSpec)
            and isinstance(problem, spec.problem_type)
            and spec.applicable(problem)]


def tune(problem, topology: Optional[str] = None, backend: str = "exact",
         mode: Optional[str] = None, engine: str = "auto",
         window: int = WINDOW) -> List[GapRow]:
    """Gap rows for one instance: exact LP optimum vs every applicable
    baseline, each baseline round-tripped through schedule + simulator."""
    from repro.sim.executor import simulate_collective

    lp_spec = resolve_collective(problem)
    solve_kwargs = {"mode": mode} if mode is not None else {}
    lp = solve_collective(problem, backend=backend, **solve_kwargs)
    rows = []
    for spec in applicable_baselines(problem):
        base = solve_collective(problem, collective=spec.name)
        errors = base.verify()
        if errors:
            raise RuntimeError(
                f"{spec.name} fails shared verification on "
                f"{problem.platform.name}: {errors[:3]}")
        plan = spec.plan(problem)
        schedule = schedule_collective(base)
        # each hop of a route can slip one period, so replay past the
        # pipeline-fill depth before measuring the steady window
        periods = plan.max_hops + window + SETTLE
        result = simulate_collective(schedule, problem, n_periods=periods,
                                     collective=spec.name,
                                     record_trace=False, engine=engine)
        sim_tp = result.steady_window_throughput(periods=window)
        rows.append(GapRow(
            topology=topology or problem.platform.name,
            collective=lp_spec.name, baseline=spec.name,
            algorithm=spec.algorithm, n_rounds=plan.n_rounds,
            baseline_tp=base.throughput, lp_tp=lp.throughput,
            gap=Fraction(lp.throughput) / Fraction(base.throughput),
            sim_tp=sim_tp, sim_matches=(sim_tp == base.throughput),
            engine=result.engine))
    return rows


def zoo_instances() -> List[Tuple[str, object, Optional[str]]]:
    """The standing gap-table zoo: ``(label, problem, lp mode)``.

    Spans the paper's example platforms (fig2/fig6/fig9) and the
    generator families (complete, ring, fat-tree).  All-reduce instances
    compare against the *pipelined* composite LP — the strongest optimum,
    and the fair one since the classical all-reduce plans overlap their
    phases across operations.  Reduce-scatter LP instances stay small
    (the SSRS LP grows ~n^4); larger participant counts are exercised by
    the LP-free round-trip tests instead.
    """
    from repro.core.allgather import AllGatherProblem
    from repro.core.allreduce import AllReduceProblem
    from repro.core.reduce_scatter import ReduceScatterProblem
    from repro.core.scatter import ScatterProblem
    from repro.platform.examples import (
        figure2_platform, figure2_targets, figure6_platform,
        figure9_platform, figure9_participants, figure9_target,
    )
    from repro.platform.generators import complete, fat_tree, heterogenize, ring

    fig2 = figure2_platform()
    fig6 = figure6_platform()
    fig9 = figure9_platform()
    fig9_hosts = figure9_participants()
    c4 = complete(4)
    c4_hosts = [f"p{i}" for i in range(4)]
    r8 = ring(8)
    hr8 = heterogenize(ring(8), seed=20260728)
    ft4 = fat_tree(4)
    return [
        ("fig2", ScatterProblem(fig2, "Ps", figure2_targets()), None),
        ("fig6", ReduceScatterProblem(fig6, [0, 1, 2]), None),
        ("fig6", AllGatherProblem(fig6, [0, 1, 2]), None),
        ("complete4", ReduceScatterProblem(c4, c4_hosts), None),
        ("complete4", AllReduceProblem(c4, c4_hosts), "pipelined"),
        ("ring8", AllGatherProblem(r8, [f"p{i}" for i in range(8)]), None),
        # heterogeneous link costs make the fixed single-route discipline
        # pay: the LP splits traffic across both ring directions
        ("hetero-ring8", ScatterProblem(hr8, "p0",
                                        [f"p{i}" for i in range(1, 8)]), None),
        ("fattree4", ScatterProblem(ft4, "h0", [f"h{i}" for i in range(1, 7)]),
         None),
        ("fig9", ScatterProblem(fig9, figure9_target(),
                                [h for h in fig9_hosts
                                 if h != figure9_target()]), None),
    ]


def tune_zoo(backend: str = "exact", engine: str = "auto",
             window: int = WINDOW) -> TuneReport:
    """Run the whole zoo; one report, timed per instance."""
    report = TuneReport()
    for label, problem, mode in zoo_instances():
        t0 = time.perf_counter()
        rows = tune(problem, topology=label, backend=backend, mode=mode,
                    engine=engine, window=window)
        key = f"{label}:{rows[0].collective}" if rows else label
        report.instance_seconds[key] = time.perf_counter() - t0
        report.rows.extend(rows)
    return report
