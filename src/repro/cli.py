"""Command-line interface.

Examples::

    repro scatter --platform plat.json --source Ps --targets P0,P1
    repro reduce  --platform plat.json --participants 1,2,3 --target 1
    repro demo fig2          # the paper's Figure 2 instance end-to-end
    repro demo fig6
    repro demo fig9
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.gossip import GossipProblem, build_gossip_schedule, solve_gossip
from repro.core.reduce_op import ReduceProblem, solve_reduce
from repro.core.scatter import ScatterProblem, solve_scatter, build_scatter_schedule
from repro.core.schedule import build_reduce_schedule
from repro.platform.io import load_platform
from repro.sim.executor import simulate_gossip, simulate_reduce, simulate_scatter
from repro.viz.gantt import ascii_gantt
from repro.viz.tables import format_table


def _parse_node(token: str):
    """Node ids in files may be ints or strings; try int first."""
    try:
        return int(token)
    except ValueError:
        return token


def _cmd_scatter(args) -> int:
    g = load_platform(args.platform)
    targets = [_parse_node(t) for t in args.targets.split(",")]
    problem = ScatterProblem(g, _parse_node(args.source), targets)
    sol = solve_scatter(problem, backend=args.backend)
    print(f"platform {g.name}: TP = {sol.throughput}")
    rows = [(f"{i} -> {j}", f"m[{k}]", v) for (i, j, k), v in
            sorted(sol.send.items(), key=str)]
    print(format_table(["edge", "type", "rate"], rows, title="send rates"))
    if sol.exact and args.schedule:
        sched = build_scatter_schedule(sol)
        print(ascii_gantt(sched))
        if args.simulate:
            res = simulate_scatter(sched, problem, n_periods=args.periods)
            print(f"simulated {res.completed_ops()} ops over {res.horizon} "
                  f"time-units (bound {float(sol.throughput) * float(res.horizon):.1f}); "
                  f"correct={res.correct}")
    return 0


def _cmd_reduce(args) -> int:
    g = load_platform(args.platform)
    participants = [_parse_node(t) for t in args.participants.split(",")]
    problem = ReduceProblem(g, participants, _parse_node(args.target),
                            msg_size=args.msg_size, task_work=args.task_work)
    sol = solve_reduce(problem, backend=args.backend)
    print(f"platform {g.name}: TP = {sol.throughput}")
    trees = sol.extract()
    print(f"{len(trees)} reduction tree(s):")
    for t in trees:
        print(t.describe())
    if sol.exact and args.schedule:
        sched = build_reduce_schedule(sol)
        print(ascii_gantt(sched))
        if args.simulate:
            res = simulate_reduce(sched, problem, n_periods=args.periods)
            print(f"simulated {res.completed_ops()} ops over {res.horizon} "
                  f"time-units (bound {float(sol.throughput) * float(res.horizon):.1f}); "
                  f"correct={res.correct}")
    return 0


def _cmd_gossip(args) -> int:
    g = load_platform(args.platform)
    sources = [_parse_node(t) for t in args.sources.split(",")]
    targets = [_parse_node(t) for t in args.targets.split(",")]
    problem = GossipProblem(g, sources, targets)
    sol = solve_gossip(problem, backend=args.backend)
    print(f"platform {g.name}: TP = {sol.throughput} "
          f"({len(problem.pairs())} message types)")
    rows = [(f"{i} -> {j}", f"m({k},{l})", v) for (i, j, k, l), v in
            sorted(sol.send.items(), key=str)]
    print(format_table(["edge", "type", "rate"], rows, title="send rates"))
    if sol.exact and args.schedule:
        sched = build_gossip_schedule(sol)
        print(ascii_gantt(sched))
        if args.simulate:
            res = simulate_gossip(sched, problem, n_periods=args.periods)
            print(f"simulated {res.completed_ops()} ops over {res.horizon} "
                  f"time-units; correct={res.correct}")
    return 0


def _cmd_demo(args) -> int:
    from repro.platform.examples import (figure2_platform, figure2_targets,
                                         figure6_platform, figure9_platform,
                                         figure9_participants, figure9_target)
    if args.which == "fig2":
        problem = ScatterProblem(figure2_platform(), "Ps", figure2_targets())
        sol = solve_scatter(problem, backend="exact")
        print(f"Figure 2 — Series of Scatters: TP = {sol.throughput} "
              f"(paper: 1/2)")
        sched = build_scatter_schedule(sol)
        print(ascii_gantt(sched))
    elif args.which == "fig6":
        problem = ReduceProblem(figure6_platform(), [0, 1, 2], target=0)
        sol = solve_reduce(problem, backend="exact")
        print(f"Figure 6 — Series of Reduces: TP = {sol.throughput} (paper: 1)")
        for t in sol.extract():
            print(t.describe())
        print(ascii_gantt(build_reduce_schedule(sol)))
    elif args.which == "fig9":
        problem = ReduceProblem(figure9_platform(), figure9_participants(),
                                target=figure9_target(), msg_size=10,
                                task_work=10)
        sol = solve_reduce(problem)
        print(f"Figure 9/10 — Tiers platform reduce: TP = {sol.throughput} "
              f"(paper: 2/9)")
        for t in sol.extract():
            print(t.describe())
    else:
        print(f"unknown demo {args.which!r}", file=sys.stderr)
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Steady-state scatter/reduce scheduling on heterogeneous "
                    "platforms (Legrand-Marchal-Robert, RR-4872).")
    sub = p.add_subparsers(dest="command", required=True)

    sc = sub.add_parser("scatter", help="solve a Series of Scatters instance")
    sc.add_argument("--platform", required=True, help="platform JSON file")
    sc.add_argument("--source", required=True)
    sc.add_argument("--targets", required=True, help="comma-separated node ids")
    sc.add_argument("--backend", default="auto",
                    choices=["auto", "exact", "highs"])
    sc.add_argument("--schedule", action="store_true",
                    help="build and display the periodic schedule")
    sc.add_argument("--simulate", action="store_true")
    sc.add_argument("--periods", type=int, default=50)
    sc.set_defaults(func=_cmd_scatter)

    rd = sub.add_parser("reduce", help="solve a Series of Reduces instance")
    rd.add_argument("--platform", required=True)
    rd.add_argument("--participants", required=True,
                    help="comma-separated node ids in logical (⊕) order")
    rd.add_argument("--target", required=True)
    rd.add_argument("--msg-size", type=int, default=1, dest="msg_size")
    rd.add_argument("--task-work", type=int, default=1, dest="task_work")
    rd.add_argument("--backend", default="auto",
                    choices=["auto", "exact", "highs"])
    rd.add_argument("--schedule", action="store_true")
    rd.add_argument("--simulate", action="store_true")
    rd.add_argument("--periods", type=int, default=50)
    rd.set_defaults(func=_cmd_reduce)

    go = sub.add_parser("gossip", help="solve a Series of Gossips instance")
    go.add_argument("--platform", required=True)
    go.add_argument("--sources", required=True, help="comma-separated node ids")
    go.add_argument("--targets", required=True, help="comma-separated node ids")
    go.add_argument("--backend", default="auto",
                    choices=["auto", "exact", "highs"])
    go.add_argument("--schedule", action="store_true")
    go.add_argument("--simulate", action="store_true")
    go.add_argument("--periods", type=int, default=50)
    go.set_defaults(func=_cmd_gossip)

    dm = sub.add_parser("demo", help="run a paper-figure demo")
    dm.add_argument("which", choices=["fig2", "fig6", "fig9"])
    dm.set_defaults(func=_cmd_demo)
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
