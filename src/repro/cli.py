"""Command-line interface.

Solve subcommands are generated from the collective registry — one per
registered spec, sharing the platform/backend/schedule/simulate options —
so adding a collective automatically adds its CLI.  Examples::

    repro scatter --platform plat.json --source Ps --targets P0,P1
    repro reduce  --platform plat.json --participants 1,2,3 --target 1
    repro reduce-scatter --platform plat.json --participants 1,2,3
    repro broadcast --platform plat.json --source Ps --targets P0,P1
    repro all-gather --platform plat.json --participants 1,2,3
    repro all-reduce --platform plat.json --participants 1,2,3
    repro all-reduce --platform plat.json --participants 1,2,3 --mode pipelined
    repro collectives        # list every registered collective
    repro demo fig2          # the paper's Figure 2 instance end-to-end
    repro demo fig6
    repro demo fig9
    repro demo reduce-scatter
    repro demo broadcast
    repro demo all-gather
    repro demo all-reduce    # the composition layer end-to-end
    repro scatter --platform plat.json --source Ps --targets P0,P1 \\
        --backend revised --lp-stats   # pivot/LU counters from the solver
    repro perturb --platform plat.json --events fail:p0:p1
    repro scatter --platform plat.json --source Ps --targets P0,P1 \\
        --simulate --faults 4:fail:P0:P1   # mid-run failure + replan
    repro cache info         # inspect the persistent LP solve cache
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.collectives import (
    available_collectives,
    schedule_collective,
    solve_collective,
)
from repro.platform.io import load_platform
from repro.sim.executor import simulate_collective
from repro.viz.gantt import ascii_gantt


def parse_node(token: str):
    """Node ids in files may be ints or strings; try int first."""
    try:
        return int(token)
    except ValueError:
        return token


def parse_nodes(tokens: str) -> List[object]:
    """Comma-separated node-id list."""
    return [parse_node(t) for t in tokens.split(",")]


# backward-compatible alias (pre-registry name)
_parse_node = parse_node


# ----------------------------------------------------------------------
# registry-generated solve subcommands
# ----------------------------------------------------------------------

def _add_solve_subcommand(sub, spec) -> None:
    """One solve subcommand per registered collective, with the shared
    platform/backend/schedule/simulate wiring added exactly once."""
    from repro.collectives import COMPOSITION_MODES, CompositeCollectiveSpec

    sp = sub.add_parser(spec.name, help=spec.title)
    sp.add_argument("--platform", required=True, help="platform JSON file")
    spec.add_arguments(sp)
    sp.add_argument("--backend", default="auto",
                    choices=["auto", "exact", "tableau", "revised", "highs",
                             "colgen"])
    sp.add_argument("--jobs", type=int, default=None, metavar="N",
                    help="pricing worker processes for the colgen backend "
                         "(default: REPRO_JOBS or the CPU count; results "
                         "are identical for any value)")
    sp.add_argument("--lp-stats", action="store_true",
                    help="print solver statistics (pivot counts, LU "
                         "refactorizations, crash path, per-phase timings) "
                         "after solving; the revised backend records them, "
                         "tableau/HiGHS solves report none")
    if isinstance(spec, CompositeCollectiveSpec):
        sp.add_argument("--mode", default=None, choices=COMPOSITION_MODES,
                        help=f"composition mode (default: {spec.mode})")
    if spec.has_schedule:
        sp.add_argument("--schedule", action="store_true",
                        help="build and display the periodic schedule")
        sp.add_argument("--simulate", action="store_true")
        sp.add_argument("--periods", type=int, default=50)
        sp.add_argument("--sim-engine", default="auto",
                        choices=["auto", "compiled", "reference"],
                        help="simulation engine: 'compiled' replays on "
                             "the vectorized engine (pure-communication "
                             "schedules only), 'reference' forces the "
                             "per-instance executor, 'auto' picks "
                             "(default)")
        sp.add_argument("--faults", default=None, metavar="SPEC",
                        help="inject faults while simulating: comma-"
                             "separated PERIOD:EVENT entries, e.g. "
                             "'4:fail:p0:p1,6:down:p2' (implies --simulate; "
                             "the schedule is re-solved and swapped in "
                             "mid-run)")
    sp.add_argument("--on-infeasible", default=None,
                    choices=["error", "degrade"],
                    help="what to do when the platform cannot serve the "
                         "full collective: 'degrade' shrinks to the "
                         "surviving reachable set")
    sp.set_defaults(func=lambda args, spec=spec: _cmd_solve(spec, args))


def _cmd_solve(spec, args) -> int:
    g = load_platform(args.platform)
    problem = spec.problem_from_args(g, args)
    sol = solve_collective(problem, collective=spec.name,
                           backend=args.backend,
                           mode=getattr(args, "mode", None),
                           jobs=getattr(args, "jobs", None),
                           on_infeasible=args.on_infeasible)
    print(f"platform {g.name}: TP = {sol.throughput}"
          f"{spec.tp_suffix(problem, sol)}")
    if sol.sacrificed:
        print(f"degraded: sacrificed {', '.join(map(str, sol.sacrificed))}")
    if getattr(args, "lp_stats", False):
        _print_lp_stats(sol)
    body = spec.report(sol)
    if body:
        print(body)
    faults = getattr(args, "faults", None)
    if faults is not None and spec.has_schedule and sol.exact:
        return _run_faulted(spec, sol, args)
    if spec.has_schedule and sol.exact and args.schedule:
        sched = schedule_collective(sol)
        print(ascii_gantt(sched))
        if args.simulate:
            sim_engine = getattr(args, "sim_engine", "auto")
            res = simulate_collective(sched, problem, n_periods=args.periods,
                                      collective=spec.name,
                                      record_trace=sim_engine == "reference",
                                      engine=sim_engine)
            bound = (float(sol.throughput) * float(res.horizon)
                     * spec.ops_bound_factor(problem))
            print(f"simulated {res.completed_ops()} ops over {res.horizon} "
                  f"time-units (bound {bound:.1f}); "
                  f"correct={res.correct} [{res.engine} engine]")
    return 0


def _print_lp_stats(sol) -> None:
    """Solver statistics for one solution (stage-by-stage for sequential
    composites, whose stages each carry their own LP)."""
    stages = [("", sol)]
    if sol.lp_solution is None and getattr(sol, "stage_solutions", None):
        stages = [(f"stage {i} ({s.collective})", s)
                  for i, s in enumerate(sol.stage_solutions)]
    for label, s in stages:
        lead = f"  {label}: " if label else "solver stats: "
        lps = s.lp_solution
        stats = lps.stats if lps is not None else None
        if not stats:
            backend = lps.backend if lps is not None else "?"
            print(f"{lead}none recorded (backend {backend})")
            continue
        if stats.get("engine") == "colgen":
            print(f"{lead}{lps.backend}, {stats['blocks']} block(s) "
                  f"({stats['path_blocks']} path-priced), "
                  f"master {stats['master_rows']} rows")
            print(f"    rounds: {stats['rounds']}, columns "
                  f"{stats['columns']} ({stats['seed_columns']} seeded), "
                  f"priced {stats['columns_priced']}, "
                  f"skipped {stats['pricing_skipped']}")
            print(f"    time: master {stats['master_s']:.3f}s "
                  f"({stats['master_pivots']} pivots), pricing "
                  f"{stats['pricing_s']:.3f}s on {stats['jobs']} job(s) "
                  f"(speedup {stats['parallel_speedup']:.2f}x)")
            continue
        if "path" not in stats:
            # tableau/HiGHS solves carry only the dispatch-stamped
            # variable counts, not revised-engine counters
            print(f"{lead}{lps.backend}, {stats['vars_raw']} vars "
                  f"({stats['vars_presolved']} after presolve); "
                  f"no engine counters recorded")
            continue
        print(f"{lead}{lps.backend}, path {stats['path']}, "
              f"basis {stats['basis_m']} rows")
        print(f"    pivots: {stats['pivots']} "
              f"(phase1 {stats['phase1_pivots']}, "
              f"phase2 {stats['phase2_pivots']}, "
              f"dual {stats['dual_pivots']})")
        print(f"    LU: {stats['refactorizations']} refactorization(s), "
              f"{stats['ftran']} ftran, {stats['btran']} btran")
        print(f"    time: factor {stats['factor_s']:.3f}s, "
              f"phase1 {stats['phase1_s']:.3f}s, "
              f"phase2 {stats['phase2_s']:.3f}s, "
              f"dual {stats['dual_s']:.3f}s")


def _run_faulted(spec, sol, args) -> int:
    from repro.sim.faults import (FaultPlan, run_with_faults,
                                  steady_window_throughput)
    from repro.viz.tables import degradation_table

    plan = FaultPlan.from_spec(args.faults)
    sim_engine = getattr(args, "sim_engine", "auto")
    run = run_with_faults(sol, plan, args.periods, backend=args.backend,
                          on_infeasible=args.on_infeasible or "degrade",
                          record_trace=sim_engine == "reference",
                          engine=sim_engine, compare=True)
    print(f"injected: {plan.describe()}")
    if not run.replanned:
        print("no replan was triggered (faults beyond the horizon, or "
              "nothing broke)")
        return 0
    for rep in run.reports:
        print(degradation_table(rep, run=run))
    res = run.result
    print(f"simulated {res.periods} periods; correct={res.correct}; "
          f"steady TP after replan = {steady_window_throughput(run)} "
          f"(LP optimum {run.reports[-1].throughput})")
    return 0


def _cmd_collectives(args) -> int:
    from repro.viz.tables import format_table

    rows = [(spec.name, spec.problem_type.__name__,
             "yes" if spec.has_schedule else "no", spec.title)
            for spec in available_collectives()]
    print(format_table(["name", "problem", "schedule", "description"], rows,
                       title="registered collectives"))
    return 0


def _cmd_tune(args) -> int:
    """Optimality-gap auto-tuner: LP optimum vs every applicable classical
    baseline, simulated bit-exactly (see :mod:`repro.tune`)."""
    from repro.tune import tune, tune_zoo
    from repro.viz.tables import gap_table

    if args.platform is None:
        report = tune_zoo(backend=args.backend, engine=args.sim_engine)
        rows = report.rows
    else:
        if args.collective is None:
            raise SystemExit("--collective is required with --platform")
        g = load_platform(args.platform)
        problem = _tune_problem(g, args)
        rows = tune(problem, backend=args.backend, mode=args.mode,
                    engine=args.sim_engine)
    print(gap_table(rows))
    dominated = [r for r in rows if r.gap < 1]
    mismatched = [r for r in rows if not r.sim_matches]
    worst = max(rows, key=lambda r: r.gap) if rows else None
    if worst is not None:
        print(f"{len(rows)} baseline runs; largest gap "
              f"{worst.gap} ({float(worst.gap):.2f}x) — "
              f"{worst.baseline} on {worst.topology}")
    if dominated or mismatched:
        for r in dominated:
            print(f"ERROR: LP beaten by {r.baseline} on {r.topology} "
                  f"({r.lp_tp} < {r.baseline_tp})")
        for r in mismatched:
            print(f"ERROR: sim rate {r.sim_tp} != analytic "
                  f"{r.baseline_tp} for {r.baseline} on {r.topology}")
        return 1
    return 0


def _tune_problem(g, args):
    """Build the LP-side problem for a single-instance ``repro tune``."""
    from repro.core.allgather import AllGatherProblem
    from repro.core.allreduce import AllReduceProblem
    from repro.core.reduce_scatter import ReduceScatterProblem
    from repro.core.scatter import ScatterProblem

    if args.collective == "scatter":
        if args.source is None or args.targets is None:
            raise SystemExit("scatter tuning needs --source and --targets")
        return ScatterProblem(g, parse_node(args.source),
                              parse_nodes(args.targets))
    if args.participants is None:
        raise SystemExit(f"{args.collective} tuning needs --participants")
    participants = parse_nodes(args.participants)
    if args.collective == "reduce-scatter":
        return ReduceScatterProblem(g, participants, msg_size=args.msg_size,
                                    task_work=args.task_work)
    if args.collective == "all-gather":
        return AllGatherProblem(g, participants, msg_size=args.msg_size)
    return AllReduceProblem(g, participants, msg_size=args.msg_size,
                            task_work=args.task_work)


# ----------------------------------------------------------------------
# paper-figure demos
# ----------------------------------------------------------------------

DEMOS = ["fig2", "fig6", "fig9", "reduce-scatter", "broadcast",
         "all-gather", "all-reduce"]


def _cmd_demo(args) -> int:
    from repro.core.reduce_op import ReduceProblem, solve_reduce
    from repro.core.reduce_scatter import (ReduceScatterProblem,
                                           build_reduce_scatter_schedule,
                                           solve_reduce_scatter)
    from repro.core.scatter import ScatterProblem, build_scatter_schedule, \
        solve_scatter
    from repro.core.schedule import build_reduce_schedule
    from repro.platform.examples import (figure2_platform, figure2_targets,
                                         figure6_platform, figure9_platform,
                                         figure9_participants, figure9_target)
    if args.which == "fig2":
        problem = ScatterProblem(figure2_platform(), "Ps", figure2_targets())
        sol = solve_scatter(problem, backend="exact")
        print(f"Figure 2 — Series of Scatters: TP = {sol.throughput} "
              f"(paper: 1/2)")
        sched = build_scatter_schedule(sol)
        print(ascii_gantt(sched))
    elif args.which == "fig6":
        problem = ReduceProblem(figure6_platform(), [0, 1, 2], target=0)
        sol = solve_reduce(problem, backend="exact")
        print(f"Figure 6 — Series of Reduces: TP = {sol.throughput} (paper: 1)")
        for t in sol.extract():
            print(t.describe())
        print(ascii_gantt(build_reduce_schedule(sol)))
    elif args.which == "fig9":
        problem = ReduceProblem(figure9_platform(), figure9_participants(),
                                target=figure9_target(), msg_size=10,
                                task_work=10)
        sol = solve_reduce(problem)
        print(f"Figure 9/10 — Tiers platform reduce: TP = {sol.throughput} "
              f"(paper: 2/9)")
        for t in sol.extract():
            print(t.describe())
    elif args.which == "reduce-scatter":
        problem = ReduceScatterProblem(figure6_platform(), [0, 1, 2])
        sol = solve_reduce_scatter(problem, backend="exact")
        print(f"Reduce-scatter on the Figure 6 triangle: TP = {sol.throughput}")
        for b, trees in sorted(sol.extract().items()):
            print(f"block {b} -> node {problem.block_target(b)}: "
                  f"{len(trees)} reduction tree(s)")
            for t in trees:
                print(t.describe())
        print(ascii_gantt(build_reduce_scatter_schedule(sol)))
    elif args.which == "broadcast":
        from repro.core.broadcast import (BroadcastProblem,
                                          build_broadcast_schedule,
                                          solve_broadcast)
        problem = BroadcastProblem(figure2_platform(), "Ps",
                                   figure2_targets())
        sol = solve_broadcast(problem, backend="exact")
        print(f"Broadcast on the Figure 2 platform: TP = {sol.throughput} "
              f"(every target gets the full message; scatter managed 1/2)")
        for tree in sol.arborescences():
            print(tree.describe())
        print(ascii_gantt(build_broadcast_schedule(sol)))
    elif args.which == "all-gather":
        from repro.core.allgather import (AllGatherProblem,
                                          build_all_gather_schedule,
                                          solve_all_gather)
        problem = AllGatherProblem(figure6_platform(), [0, 1, 2])
        sol = solve_all_gather(problem, backend="exact")
        print(f"All-gather on the Figure 6 triangle: TP = {sol.throughput} "
              f"(joint LP over {len(sol.stage_solutions or ())} broadcasts "
              f"sharing the port budgets)")
        print(ascii_gantt(build_all_gather_schedule(sol)))
    elif args.which == "all-reduce":
        from repro.core.allreduce import (AllReduceProblem,
                                          build_all_reduce_schedule,
                                          solve_all_reduce)
        problem = AllReduceProblem(figure6_platform(), [0, 1, 2])
        sol = solve_all_reduce(problem, backend="exact")
        rs, ag = sol.stage_solutions
        print(f"All-reduce on the Figure 6 triangle: TP = {sol.throughput} "
              f"= 1/(1/({rs.throughput}) + 1/({ag.throughput}))")
        print(f"  stage 0 reduce-scatter: TP = {rs.throughput}")
        print(f"  stage 1 all-gather:     TP = {ag.throughput} "
              f"(joint LP over 3 broadcasts)")
        piped = solve_all_reduce(problem, backend="exact", mode="pipelined")
        print(f"  pipelined (overlapped phases): TP = {piped.throughput} "
              f">= sequential {sol.throughput}")
        print(ascii_gantt(build_all_reduce_schedule(sol)))
    else:
        print(f"unknown demo {args.which!r}", file=sys.stderr)
        return 2
    return 0


# ----------------------------------------------------------------------
# platform perturbation inspection
# ----------------------------------------------------------------------

def _cmd_perturb(args) -> int:
    from repro.platform.perturb import failure_trace, parse_events, perturb

    g = load_platform(args.platform)
    if args.events:
        events = parse_events(args.events)
    elif args.trace:
        events = failure_trace(g, args.seed, n_events=args.trace)
    else:
        print("need --events or --trace N", file=sys.stderr)
        return 2
    g2, delta = perturb(g, events)
    print(f"{g.name}: {len(g.nodes())} nodes, "
          f"{sum(1 for _ in g.edges())} links")
    print(f"events: {delta.describe()}")
    print(f"perturbed: {g2.name}: {len(g2.nodes())} nodes, "
          f"{sum(1 for _ in g2.edges())} links "
          f"({'tightening' if delta.tightened else 'loosening'}, "
          f"fingerprint {delta.fingerprint})")
    if delta.row_edits:
        print("LP row edits (incremental re-solve path):")
        for ed in delta.row_edits:
            what = (f"scale x{ed.factor}" if ed.kind == "scale" else ed.kind)
            print(f"  {ed.row:<24} {what}")
    else:
        print("LP row edits: none expressible -- full rebuild required "
              "(node-level event)")
    return 0


# ----------------------------------------------------------------------
# persistent LP cache management
# ----------------------------------------------------------------------

def _cmd_cache(args) -> int:
    from repro.lp import diskcache

    root = args.dir if args.dir else diskcache.get_cache_dir()
    if args.action == "info":
        st = diskcache.stats(root)
        if not st["enabled"]:
            print("LP disk cache disabled (set REPRO_LP_CACHE_DIR or pass "
                  "--dir)")
        else:
            limit = ("unbounded" if not st["max_bytes"]
                     else f"{st['max_bytes']} bytes "
                          f"(LRU eviction, REPRO_LP_CACHE_MAX_BYTES)")
            print(f"LP disk cache at {st['dir']}: {st['entries']} entries, "
                  f"{st['bytes']} bytes; limit {limit}")
    elif args.action == "clear":
        removed = diskcache.clear(root)
        print(f"removed {removed} cached solution(s)")
    return 0


# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Steady-state collective scheduling on heterogeneous "
                    "platforms (Legrand-Marchal-Robert, RR-4872).")
    sub = p.add_subparsers(dest="command", required=True)

    for spec in available_collectives():
        _add_solve_subcommand(sub, spec)

    co = sub.add_parser("collectives",
                        help="list every registered collective")
    co.set_defaults(func=_cmd_collectives)

    dm = sub.add_parser("demo", help="run a paper-figure demo")
    dm.add_argument("which", choices=DEMOS)
    dm.set_defaults(func=_cmd_demo)

    tu = sub.add_parser(
        "tune",
        help="optimality-gap auto-tuner: exact LP optimum vs every "
             "applicable classical baseline, replayed on the sim engine "
             "(no arguments: run the standing topology zoo)")
    tu.add_argument("--platform", default=None,
                    help="platform JSON file (omit to run the zoo)")
    tu.add_argument("--collective", default=None,
                    choices=["scatter", "reduce-scatter", "all-gather",
                             "all-reduce"],
                    help="LP collective of the instance (with --platform)")
    tu.add_argument("--source", default=None)
    tu.add_argument("--targets", default=None,
                    help="comma-separated node ids (scatter)")
    tu.add_argument("--participants", default=None,
                    help="comma-separated node ids (rank order)")
    tu.add_argument("--msg-size", dest="msg_size", type=int, default=1)
    tu.add_argument("--task-work", dest="task_work", type=int, default=1)
    tu.add_argument("--mode", default=None,
                    choices=["sequential", "pipelined"],
                    help="composition mode of the all-reduce LP optimum")
    tu.add_argument("--backend", default="exact",
                    help="LP backend for the optimum (default exact)")
    tu.add_argument("--sim-engine", dest="sim_engine", default="auto",
                    choices=["auto", "compiled", "reference"])
    tu.set_defaults(func=_cmd_tune)

    pe = sub.add_parser("perturb",
                        help="apply perturbation events to a platform and "
                             "show the exact LP row-edit delta")
    pe.add_argument("--platform", required=True, help="platform JSON file")
    pe.add_argument("--events", default=None,
                    help="comma-separated events: fail:SRC:DST, "
                         "slow:SRC:DST:FACTOR, down:NODE")
    pe.add_argument("--trace", type=int, default=0, metavar="N",
                    help="draw N seeded failure-trace events instead")
    pe.add_argument("--seed", type=int, default=0,
                    help="failure-trace seed (with --trace)")
    pe.set_defaults(func=_cmd_perturb)

    ca = sub.add_parser("cache", help="inspect/clear the persistent LP "
                                      "solve cache")
    ca.add_argument("action", choices=["info", "clear"])
    ca.add_argument("--dir", default=None,
                    help="cache directory (default: REPRO_LP_CACHE_DIR)")
    ca.set_defaults(func=_cmd_cache)
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
