"""Registry spec for the Series of Reduces (``SSR(G)``, Section 4)."""

from __future__ import annotations

from typing import List

from repro.collectives.base import CollectiveSolution, CollectiveSpec, SimSemantics
from repro.collectives.registry import register_collective
from repro.core import intervals as iv
from repro.core.flowclean import PruneEpsilonRatesPass, RemoveCyclesPass
from repro.core.reduce_op import (
    ReduceProblem,
    ReduceSolution,
    build_reduce_lp,
    _cons_name,
    _send_name,
)
from repro.sim.operators import SeqConcat


class ReduceSpec(CollectiveSpec):
    name = "reduce"
    title = "Series of Reduces — non-commutative reduction to one target (SSR)"
    problem_type = ReduceProblem
    solution_type = ReduceSolution

    def build_lp(self, problem):
        return build_reduce_lp(problem)

    # ---------------------------------------------------------- codec
    def commodities(self, problem):
        return iv.all_intervals(problem.n_values)

    def commodity_var(self, problem, commodity, i, j):
        return _send_name(i, j, commodity)

    def send_key(self, commodity, i, j):
        return (i, j, commodity)

    def send_unit_time(self, problem, key):
        i, j, interval = key
        return problem.size(interval) * problem.platform.cost(i, j)

    def cons_unit_time(self, problem, key):
        node, task = key
        return problem.task_time(node, task)

    def format_commodity(self, send_key):
        k, m = send_key[2]
        return f"v[{k},{m}]"

    # ----------------------------------------------------- extraction
    def default_passes(self):
        # Per-interval transfer cycles are cancelled so tree extraction
        # terminates (DESIGN.md decision 3); intervals have many
        # producers/consumers, so no source→sink path cleaning applies.
        return (PruneEpsilonRatesPass(), RemoveCyclesPass())

    def finalize(self, problem, throughput, send, paths, lp, sol, tol):
        cons = {}
        for h in problem.compute_hosts():
            for t in iv.all_tasks(problem.n_values):
                r = sol.value(lp.get(_cons_name(h, t)))
                if r > tol:
                    cons[(h, t)] = r
        return self.solution_type(problem=problem, throughput=throughput,
                                  send=send, cons=cons, lp_solution=sol,
                                  exact=sol.exact, collective=self.name)

    # ----------------------------------------------------- invariants
    def verify(self, solution: CollectiveSolution, tol=0) -> List[str]:
        bad = self._port_violations(solution, tol)
        p_ = solution.problem
        g = p_.platform
        n = p_.n_values
        for h in p_.compute_hosts():
            a = solution.alpha(h)
            if a > 1 + tol:
                bad.append(f"alpha[{h}] {a} > 1")
        full = iv.full_interval(n)
        for node in g.nodes():
            for interval in iv.all_intervals(n):
                if iv.is_leaf(interval) and p_.owner(interval[0]) == node:
                    continue
                if node == p_.target and interval == full:
                    continue
                inflow = sum(f for (i, j, vv), f in solution.send.items()
                             if j == node and vv == interval)
                outflow = sum(f for (i, j, vv), f in solution.send.items()
                              if i == node and vv == interval)
                produced = sum(r for (h, t), r in solution.cons.items()
                               if h == node and iv.task_output(t) == interval)
                consumed = sum(r for (h, t), r in solution.cons.items()
                               if h == node and interval in iv.task_inputs(t))
                lhs, rhs = inflow + produced, outflow + consumed
                if abs(lhs - rhs) > tol:
                    bad.append(f"conserve[{node},v{interval}] {lhs} != {rhs}")
        arrived = sum(f for (i, j, vv), f in solution.send.items()
                      if j == p_.target and vv == full)
        local = sum(r for (h, t), r in solution.cons.items()
                    if h == p_.target and iv.task_output(t) == full)
        if abs(arrived + local - solution.throughput) > tol:
            bad.append(f"throughput {arrived + local} != {solution.throughput}")
        return bad

    # ------------------------------------------------------- schedule
    def rate_bundle(self, solution: CollectiveSolution):
        from repro.core.schedule import tree_rate_bundle

        trees = solution.trees if solution.trees is not None \
            else solution.extract()
        return tree_rate_bundle(solution.problem, trees,
                                target=solution.problem.target)

    def build_schedule(self, solution: CollectiveSolution):
        from repro.core.schedule import build_reduce_schedule

        return build_reduce_schedule(solution)

    # ------------------------------------------------------ simulator
    def simulation(self, schedule, problem, op=None) -> SimSemantics:
        op = op or SeqConcat
        n = problem.n_values
        return SimSemantics(
            supplies=self._leaf_value_supplies(schedule, problem, op),
            expected=lambda item, seq: op.expected(n, seq),
            combine=op.combine)

    # ------------------------------------------------------------ CLI
    def add_arguments(self, parser) -> None:
        parser.add_argument("--participants", required=True,
                            help="comma-separated node ids in logical (⊕) order")
        parser.add_argument("--target", required=True)
        parser.add_argument("--msg-size", type=int, default=1, dest="msg_size")
        parser.add_argument("--task-work", type=int, default=1,
                            dest="task_work")

    def problem_from_args(self, platform, args):
        from repro.cli import parse_node, parse_nodes

        return ReduceProblem(platform, parse_nodes(args.participants),
                             parse_node(args.target), msg_size=args.msg_size,
                             task_work=args.task_work)

    def report(self, solution: CollectiveSolution) -> str:
        trees = solution.extract()
        lines = [f"{len(trees)} reduction tree(s):"]
        lines.extend(t.describe() for t in trees)
        return "\n".join(lines)

    def conformance_problem(self, platform, hosts, rng):
        if len(hosts) < 2:
            return None
        parts = hosts[:4]
        return ReduceProblem(platform, parts, rng.choice(parts))


# priority makes reduce's claim on bare ReduceProblem instances explicit
# (prefix shares the problem type but opts out of type resolution; the
# priority guards the precedence even if that ever changes)
REDUCE = register_collective(ReduceSpec(), priority=1)
