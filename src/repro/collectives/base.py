"""The unified collective pipeline: spec protocol and shared solution.

The paper's method is one pipeline regardless of the collective:

    build the steady-state LP  ->  solve it (exactly when possible)
    ->  post-process the rate flows  ->  reconstruct a periodic schedule
    ->  simulate and validate

A :class:`CollectiveSpec` packages the collective-specific plug-in points
of that pipeline — problem validation, LP builder, variable-name codec,
solution extraction, schedule reconstruction, simulator item semantics —
so the generic orchestrator (:func:`repro.collectives.solve_collective`)
can run any registered collective.  Adding a collective means writing one
spec subclass and registering it; see ``repro/collectives/reduce_scatter.py``
for a complete example and ROADMAP.md for the how-to.

:class:`CollectiveSolution` is the one solution type behind the historical
``ScatterSolution``/``ReduceSolution``/``GossipSolution``/``PrefixSolution``
names: rates (``send``), optional task rates (``cons``), optional path
decompositions (``paths``), exactness metadata, and shared
``edge_occupation()``/``verify()`` that dispatch through the spec.

:class:`CompositeCollectiveSpec` is the composition layer on top: a
collective defined as a list of *registered stages* sharing the one-port /
alpha capacities.  Three composition modes exist:

- ``"joint"`` — all stages run concurrently at one common ``TP``;
  :func:`compose_joint_lp` merges the stage LPs into a single LP whose
  capacity rows (``edge[..]``/``out[..]``/``in[..]``/``alpha[..]`` — the
  naming convention every builder follows) sum over all stages.
  All-gather rides this mode as one broadcast stage per block.
- ``"sequential"`` — stages run as consecutive phases of a pipelined
  steady state; each stage is solved on its own and the composed
  throughput is the harmonic combination ``1 / sum(1 / TP_k)``.
  All-reduce rides this mode as reduce-scatter followed by all-gather.
- ``"pipelined"`` — the joint mode for *chained* stages: all stages run
  concurrently at one common ``TP`` like ``"joint"``, but stage ``k+1``
  consumes what stage ``k`` produces, so the spec's
  :meth:`CompositeCollectiveSpec.chain_constraints` hook emits
  cross-stage precedence rows (:class:`ChainRow`, named ``chain[..]`` —
  a prefix :mod:`repro.lp.presolve` protects) into the joint LP, the
  schedule is retimed so chained items land before they depart
  (:func:`repro.core.schedule.retime_for_chaining`), and the simulator
  credit-gates the chained supplies
  (:meth:`CompositeCollectiveSpec.chain_links`).  Because any sequential
  solution — each stage scaled by its phase fraction — is feasible for
  the joint LP, ``TP_pipelined >= TP_sequential`` always holds, with
  strict improvement whenever the phases stress different links or CPUs.
  All-reduce supports this as its overlapped third mode
  (``solve_collective(problem, mode="pipelined")``).

Either way the composite is an ordinary registered collective: the
orchestrator, schedule superposition/concatenation
(:mod:`repro.core.schedule`), the simulator's stage-semantics chaining
(:func:`repro.sim.executor.chain_semantics`), the rates table and the CLI
all work unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import TYPE_CHECKING, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.lp import LinearProgram, LPSolution
from repro.lp.model import LE, Constraint, LinExpr
from repro.platform.graph import NodeId

if TYPE_CHECKING:  # flowclean sits under repro.core, whose package
    # __init__ imports the problem modules that subclass
    # CollectiveSolution — importing it eagerly here would be circular
    from repro.core.flowclean import FlowPass

Item = Hashable
EdgeKey = Tuple[NodeId, NodeId]


@dataclass
class CollectiveSolution:
    """Solved steady-state collective: throughput plus cleaned rates.

    ``send`` maps spec-defined keys (always starting with the edge
    ``(src, dst)``) to steady-state rates; ``cons`` maps task keys to task
    rates for computing collectives; ``paths`` holds per-commodity weighted
    path decompositions when the cleaning pipeline produced them.
    ``collective`` names the spec that built (and can interpret) this
    solution.
    """

    problem: object
    throughput: object
    send: Dict[tuple, object]
    lp_solution: LPSolution
    exact: bool
    paths: Optional[Dict[object, List[Tuple[List[NodeId], object]]]] = None
    cons: Optional[Dict[tuple, object]] = None
    trees: Optional[object] = None
    collective: str = ""
    #: Nodes dropped by the graceful-degradation policy before solving
    #: (``solve_collective(..., on_infeasible="degrade")``); empty for a
    #: full-strength solve.
    sacrificed: Tuple[NodeId, ...] = ()

    @property
    def spec(self) -> "CollectiveSpec":
        from repro.collectives.registry import get_collective

        return get_collective(self.collective)

    def edge_occupation(self) -> Dict[EdgeKey, object]:
        """Busy fraction of every used edge: ``sum rate * unit_time``."""
        spec = self.spec
        occ: Dict[EdgeKey, object] = {}
        for key, f in self.send.items():
            e = spec.send_edge(key)
            occ[e] = occ.get(e, 0) + f * spec.send_unit_time(self.problem, key)
        return occ

    def verify(self, tol=0) -> List[str]:
        """Exact re-check of the collective's steady-state invariants on
        the cleaned rates; empty list == all hold."""
        return self.spec.verify(self, tol=tol)

    def alpha(self, node: NodeId) -> object:
        """Fraction of time ``node`` spends computing (0 when ``cons`` is
        empty — pure-communication collectives never compute)."""
        if not self.cons:
            return 0
        spec = self.spec
        return sum((r * spec.cons_unit_time(self.problem, key)
                    for key, r in self.cons.items()
                    if spec.cons_node(key) == node), 0)


@dataclass
class SimSemantics:
    """Simulator item semantics of one collective's schedules.

    ``supplies`` maps ``(node, item)`` to a stamped-instance factory,
    ``expected`` checks delivered payloads, ``combine`` is the binary
    operator for compute tasks (``None`` for pure communication).
    """

    supplies: Dict[Tuple[NodeId, Item], object]
    expected: Optional[object] = None
    combine: Optional[object] = None

    @property
    def value_checked(self) -> bool:
        """Whether the replay must flow real payloads through compute
        tasks (a combine operator).  Value-checked semantics pin the
        simulation to the reference executor; pure-communication
        semantics qualify for the compiled engine (payloads are pure
        functions of their sequence stamp, so counting instances loses
        nothing — see :func:`repro.sim.engine.resolve_sim_engine`)."""
        return self.combine is not None


class CollectiveSpec:
    """Plug-in points of the unified pipeline for one collective.

    Subclasses must set :attr:`name`, :attr:`title`, :attr:`problem_type`,
    :attr:`solution_type` and implement the LP/codec/verify hooks.  The
    extraction loop, schedule dispatch and CLI wiring are shared.
    """

    #: Registry key (CLI subcommand name).
    name: str = ""
    #: Human-readable description shown by ``repro collectives``.
    title: str = ""
    #: Problem dataclass this spec solves.
    problem_type: type = object
    #: Solution class :meth:`finalize` instantiates.
    solution_type: type = CollectiveSolution
    #: Whether :meth:`build_schedule` / :meth:`simulation` are implemented.
    has_schedule: bool = True
    #: Eligible for problem-type resolution.  Specs sharing another
    #: collective's problem type (prefix rides ReduceProblem) set this
    #: False and are only reachable by name — keeps resolution
    #: independent of registration/import order.
    resolve_by_type: bool = True
    #: Simulator op-counting mode (see ``PeriodicSchedule.delivery_mode``),
    #: applied to built schedules by ``schedule_collective`` whenever
    #: ``build_schedule`` did not pin one itself; ``None`` keeps the
    #: legacy inference (sum iff compute tasks exist).
    delivery_mode: Optional[str] = None

    # ------------------------------------------------------------------
    # problem / LP
    # ------------------------------------------------------------------
    def validate(self, problem) -> None:
        """Raise ``ValueError`` for ill-formed problems.  The problem
        constructors already validate; this re-checks the type."""
        if not isinstance(problem, self.problem_type):
            raise ValueError(
                f"{self.name} expects a {self.problem_type.__name__}, "
                f"got {type(problem).__name__}")

    def build_lp(self, problem) -> LinearProgram:
        raise NotImplementedError

    def solve(self, problem, backend: str = "auto", eps: float = 1e-9,
              passes=None, **solve_kwargs) -> "CollectiveSolution":
        """The default solve pipeline: build the LP, solve, extract.

        :func:`repro.collectives.solve_collective` dispatches here, so a
        spec whose collective is *not* one LP (sequential composites)
        overrides this hook and still rides the one orchestrator path.
        ``solve_kwargs`` reach :func:`repro.lp.solve`.
        """
        from repro.lp import solve as lp_solve

        lp = self.build_lp(problem)
        solve_kwargs.setdefault("pricing", self.pricing_graphs(problem))
        sol = lp_solve(lp, backend=backend, **solve_kwargs)
        if not sol.optimal:
            raise RuntimeError(f"LP solve failed: {sol.status}")
        tol = 0 if sol.exact else eps
        if passes is None:
            passes = self.default_passes()
        return self.extract(problem, lp, sol, tol, passes)

    # ------------------------------------------------------------------
    # variable-name codec + commodity structure
    # ------------------------------------------------------------------
    def commodities(self, problem) -> Sequence[object]:
        """Commodity keys whose flows are extracted and cleaned."""
        raise NotImplementedError

    def commodity_var(self, problem, commodity, i: NodeId, j: NodeId) -> str:
        """LP variable name of ``commodity``'s rate on edge ``(i, j)``."""
        raise NotImplementedError

    def commodity_endpoints(self, problem, commodity) -> Optional[Tuple[NodeId, NodeId]]:
        """``(source, sink)`` for routed commodities, ``None`` for
        interval-style commodities (many producers/consumers)."""
        return None

    def pricing_graphs(self, problem) -> Optional[tuple]:
        """Per-commodity pricing graphs for Dantzig-Wolfe column
        generation (:mod:`repro.lp.colgen`).

        Each descriptor is ``{"source", "sink", "arcs"}`` with arcs as
        ``(i, j, variable name)``; the colgen pricer runs exact-dual
        shortest paths on them instead of solving a pricing LP.  The
        default covers every *routed* commodity
        (:meth:`commodity_endpoints` not ``None``) with the commodity's
        rate variable on each platform edge — arc names absent from the
        LP are ignored by the matcher, and graphs that do not line up
        with a detected block simply leave it on the LP pricer, so the
        default is safe for any spec.  Returns ``None`` when no
        commodity is routed (colgen then prices all blocks by LP).
        """
        try:
            commodities = self.commodities(problem)
        except NotImplementedError:
            return None
        edges = [(e.src, e.dst) for e in problem.platform.edges()]
        graphs = []
        for c in commodities:
            ep = self.commodity_endpoints(problem, c)
            if ep is None:
                continue
            graphs.append({
                "source": ep[0], "sink": ep[1],
                "arcs": tuple((i, j, self.commodity_var(problem, c, i, j))
                              for (i, j) in edges)})
        return tuple(graphs) if graphs else None

    def send_key(self, commodity, i: NodeId, j: NodeId) -> tuple:
        """Key of this commodity-on-edge rate in ``solution.send``."""
        raise NotImplementedError

    def send_edge(self, key: tuple) -> EdgeKey:
        """Edge of a ``send`` key (default: first two components)."""
        return (key[0], key[1])

    def send_unit_time(self, problem, key: tuple) -> object:
        """Edge occupation time of one unit of this rate."""
        raise NotImplementedError

    # task rates (computing collectives only)
    def cons_node(self, key: tuple) -> NodeId:
        return key[0]

    def cons_unit_time(self, problem, key: tuple) -> object:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # solution extraction
    # ------------------------------------------------------------------
    def default_passes(self) -> Tuple["FlowPass", ...]:
        """Flow post-processing pipeline (override per collective)."""
        from repro.core.flowclean import CleanCommodityPass, PruneEpsilonRatesPass

        return (PruneEpsilonRatesPass(), CleanCommodityPass())

    def extract(self, problem, lp: LinearProgram, sol: LPSolution,
                tol, passes: Sequence["FlowPass"]) -> CollectiveSolution:
        """Generic extraction: per commodity, gather the flow by variable
        name, run the pass pipeline, and assemble ``send``/``paths``."""
        from repro.core.flowclean import FlowContext, run_passes

        tp = sol.by_name("TP")
        g = problem.platform
        send: Dict[tuple, object] = {}
        paths: Dict[object, List[Tuple[List[NodeId], object]]] = {}
        for c in self.commodities(problem):
            flow: Dict[EdgeKey, object] = {}
            for e in g.edges():
                name = self.commodity_var(problem, c, e.src, e.dst)
                try:
                    var = lp.get(name)
                except KeyError:
                    continue
                f = sol.value(var)
                if f:
                    flow[(e.src, e.dst)] = f
            endpoints = self.commodity_endpoints(problem, c)
            src, sink = endpoints if endpoints else (None, None)
            ctx = FlowContext(commodity=c, flow=flow, source=src, sink=sink,
                              demand=tp, eps=tol)
            run_passes(passes, ctx)
            if ctx.paths is not None:
                paths[c] = ctx.paths
            for (i, j), f in ctx.flow.items():
                send[self.send_key(c, i, j)] = f
        return self.finalize(problem, tp, send, paths if paths else None,
                             lp, sol, tol)

    def finalize(self, problem, throughput, send, paths,
                 lp: LinearProgram, sol: LPSolution, tol) -> CollectiveSolution:
        """Build the solution object (override to extract task rates)."""
        return self.solution_type(problem=problem, throughput=throughput,
                                  send=send, paths=paths, lp_solution=sol,
                                  exact=sol.exact, collective=self.name)

    # ------------------------------------------------------------------
    # invariants / schedule / simulation
    # ------------------------------------------------------------------
    def verify(self, solution: CollectiveSolution, tol=0) -> List[str]:
        raise NotImplementedError

    def build_schedule(self, solution: CollectiveSolution):
        raise NotImplementedError(
            f"{self.name} has no schedule reconstruction")

    def rate_bundle(self, solution: CollectiveSolution):
        """The solution's steady-state traffic as a
        :class:`repro.core.schedule.RateBundle` — the currency of schedule
        superposition.  Specs that implement it can serve as stages of a
        *joint* composite (their bundles are merged into one period);
        sequential composites only need :meth:`build_schedule`."""
        raise NotImplementedError(
            f"{self.name} does not expose a rate bundle")

    def simulation(self, schedule, problem, op=None) -> SimSemantics:
        """Item semantics for :func:`repro.sim.executor.simulate_collective`."""
        raise NotImplementedError(
            f"{self.name} has no simulator semantics")

    # ------------------------------------------------------------------
    # reporting / CLI
    # ------------------------------------------------------------------
    def rate_rows(self, solution: CollectiveSolution):
        """``(headers, rows)`` for the send-rates table."""
        rows = [(f"{k[0]} -> {k[1]}", self.format_commodity(k), v)
                for k, v in sorted(solution.send.items(), key=str)]
        return ["edge", "type", "rate"], rows

    def format_commodity(self, send_key: tuple) -> str:
        return str(send_key[2:])

    def add_arguments(self, parser) -> None:
        """Add collective-specific CLI options to a solve subcommand."""
        raise NotImplementedError

    def problem_from_args(self, platform, args):
        """Build the problem from parsed CLI arguments."""
        raise NotImplementedError

    def conformance_problem(self, platform, hosts, rng):
        """A representative problem for the cross-collective conformance
        suite (``tests/conformance/``): given a generated platform, its
        compute ``hosts`` (at least two) and a seeded ``rng``, return a
        problem instance to round-trip on both LP backends — or ``None``
        when the platform does not fit this collective.  Implementing
        this is enough for a newly registered collective to be picked up
        by the suite automatically."""
        return None

    def report(self, solution: CollectiveSolution) -> str:
        """CLI body printed after the throughput line."""
        from repro.viz.tables import rates_table

        return rates_table(solution)

    def tp_suffix(self, problem, solution=None) -> str:
        """Extra text appended to the CLI throughput line."""
        return ""

    def ops_bound_factor(self, problem) -> int:
        """Completed-ops bound multiplier over ``TP * horizon``.

        ``SimulationResult.completed_ops`` sums independent delivery
        streams for computing collectives; specs with several TP-rate
        stream groups (reduce-scatter: one per block) override this so
        reported bounds match that counting."""
        return 1

    # shared simulator plumbing: stamped leaf-value supplies for
    # computing collectives (items tagged ("val", (j, j), <stream>))
    def _leaf_value_supplies(self, schedule, problem, op):
        items = set()
        for slot in schedule.slots:
            for tr in slot.transfers:
                items.add(tr.item)
        for _node, tasks in schedule.compute.items():
            for ct in tasks:
                items.add(ct.output)
                items.update(ct.inputs)
        supplies = {}
        for item in items:
            tag, interval = item[0], item[1]
            if tag == "val" and interval[0] == interval[1]:
                j = interval[0]
                supplies[(problem.owner(j), item)] = \
                    (lambda jj: (lambda seq: op.leaf(jj, seq)))(j)
        return supplies

    # shared port-capacity checks used by most verify() implementations
    def _port_violations(self, solution: CollectiveSolution, tol) -> List[str]:
        bad: List[str] = []
        occ = solution.edge_occupation()
        out_t: Dict[NodeId, object] = {}
        in_t: Dict[NodeId, object] = {}
        for (i, j), o in occ.items():
            out_t[i] = out_t.get(i, 0) + o
            in_t[j] = in_t.get(j, 0) + o
            if o > 1 + tol:
                bad.append(f"edge[{i}->{j}] occupation {o} > 1")
        for p, o in out_t.items():
            if o > 1 + tol:
                bad.append(f"out[{p}] {o} > 1")
        for p, o in in_t.items():
            if o > 1 + tol:
                bad.append(f"in[{p}] {o} > 1")
        return bad

    def __repr__(self) -> str:
        return f"<CollectiveSpec {self.name!r}>"


# ----------------------------------------------------------------------
# the composition layer
# ----------------------------------------------------------------------

#: Constraint-name prefixes every LP builder uses for the shared platform
#: capacities; :func:`compose_joint_lp` merges rows with equal names
#: across stages (summing their occupation expressions).
CAPACITY_PREFIXES = ("edge[", "out[", "in[", "alpha[")

#: Constraint-name prefix of cross-stage coupling rows.  Part of the
#: composition contract: :mod:`repro.lp.presolve` never eliminates a row
#: carrying this prefix (see ``PROTECTED_ROW_PREFIXES`` there), so the
#: chaining structure survives into the reduced model and the postsolved
#: solution demonstrably satisfies every coupling row.
CHAIN_PREFIX = "chain["

#: Modes a :class:`CompositeCollectiveSpec` understands.
COMPOSITION_MODES = ("joint", "sequential", "pipelined")


@dataclass(frozen=True)
class ChainRow:
    """One cross-stage coupling row of a pipelined joint LP.

    ``terms`` are ``(stage index, stage-local variable name, coef)``
    triples (``"TP"`` addresses the shared throughput variable); the row
    reads ``sum(coef * var) <sense> rhs``.  ``name`` must carry
    :data:`CHAIN_PREFIX` so presolve protects it.  The canonical use is a
    precedence row *consumption rate <= production rate*: positive
    coefficients on the consuming stage's source outflow, ``-1`` on the
    producing stage's delivery expression, ``<= 0``.
    """

    name: str
    terms: Tuple[Tuple[int, str, object], ...]
    sense: str = LE
    rhs: object = 0


def compose_joint_lp(name: str, stage_lps: Sequence[LinearProgram],
                     chain_rows: Sequence[ChainRow] = ()) -> LinearProgram:
    """One LP running every stage concurrently at a common throughput.

    Each stage LP's variables are copied under a ``s{k}:`` prefix except
    ``TP``, which all stages share; per-stage structural constraints
    (conservation, throughput, content domination, ...) are copied with
    prefixed names, while the capacity rows named by
    :data:`CAPACITY_PREFIXES` — all of the normalized form
    ``occupation - 1 <= 0`` — are summed across stages, expressing that
    the stages compete for the same ports, edges and CPU time.  Stages
    must therefore be built over the same platform.

    ``chain_rows`` add cross-stage coupling (:class:`ChainRow`) on top of
    the shared capacities — the pipelined composition's inter-stage
    precedence/flow-balance rows.  Every row name must start with
    :data:`CHAIN_PREFIX` and may reference variables of any stage.
    """
    joint = LinearProgram(name)
    tp = joint.var("TP")
    shared: Dict[str, LinExpr] = {}
    shared_order: List[str] = []
    for k, slp in enumerate(stage_lps):
        mapping: Dict[int, object] = {}
        for v in slp.variables:
            if v.name == "TP":
                mapping[v.index] = tp
            else:
                mapping[v.index] = joint.var(f"s{k}:{v.name}", lb=v.lb,
                                             ub=v.ub)
        for con in slp.constraints:
            new = LinExpr()
            for idx, c in con.expr.coefs.items():
                new.add_term(mapping[idx], c)
            if con.name.startswith(CAPACITY_PREFIXES):
                if con.sense != LE or con.expr.constant != -1:
                    raise ValueError(
                        f"stage {k}: capacity row {con.name!r} is not of "
                        "the normalized 'occupation <= 1' form")
                acc = shared.get(con.name)
                if acc is None:
                    shared[con.name] = new
                    shared_order.append(con.name)
                else:
                    acc.add_expr(new)
            else:
                new.constant = con.expr.constant
                joint.add(Constraint(new, con.sense), name=f"s{k}:{con.name}")
    for cname in shared_order:
        expr = shared[cname]
        expr.constant = -1
        joint.add(Constraint(expr, LE), name=cname)
    for row in chain_rows:
        if not row.name.startswith(CHAIN_PREFIX):
            raise ValueError(f"chain row {row.name!r} must be named with "
                             f"the {CHAIN_PREFIX!r} prefix")
        expr = LinExpr()
        for k, vname, coef in row.terms:
            joint_name = "TP" if vname == "TP" else f"s{k}:{vname}"
            expr.add_term(joint.get(joint_name), coef)
        expr.constant = -row.rhs
        joint.add(Constraint(expr, row.sense), name=row.name)
    joint.maximize(tp)
    return joint


class _StageLPView:
    """:class:`~repro.lp.solution.LPSolution` façade exposing one stage's
    slice of a joint solve under the stage's own variable names."""

    def __init__(self, joint_sol: LPSolution, prefix: str,
                 stage_lp: LinearProgram) -> None:
        self._joint = joint_sol
        self._prefix = prefix
        self._lp = stage_lp
        self.exact = joint_sol.exact
        self.status = joint_sol.status
        self.backend = joint_sol.backend

    @property
    def optimal(self) -> bool:
        return self._joint.optimal

    def value(self, var):
        name = "TP" if var.name == "TP" else self._prefix + var.name
        try:
            return self._joint.by_name(name)
        except KeyError:
            return 0

    def by_name(self, name: str):
        return self.value(self._lp.get(name))


@dataclass
class CompositeSolution(CollectiveSolution):
    """Solved composite collective.

    ``stage_solutions[k]`` is stage ``k``'s full solution (its own type,
    verified by its own spec).  ``send[(i, j, k, *rest)]`` holds the
    composite view of stage ``k``'s rate keyed ``(i, j, *rest)`` — in
    sequential mode scaled by the stage's phase fraction ``TP / TP_k``,
    so :meth:`~CollectiveSolution.edge_occupation` is the long-run
    average and stays within the one-port budget in every mode.
    ``lp_solution`` is ``None`` for sequential composites (there is no
    single joint LP).  ``mode`` records which composition mode produced
    this solution (a spec can solve in several); empty means the spec's
    default — schedule reconstruction, reporting and verification all
    dispatch on it.
    """

    stage_solutions: Optional[List[CollectiveSolution]] = None
    mode: str = ""


class CompositeCollectiveSpec(CollectiveSpec):
    """A collective composed of registered stages over shared capacities.

    Subclasses set :attr:`mode` and implement :meth:`stages`; everything
    else — solving (joint LP or per-stage solves), extraction, verify,
    schedule (superposition or concatenation), simulation (chained stage
    semantics), rates table and CLI — is generic.  Any composite can be
    solved in a non-default mode per call
    (``solve_collective(problem, mode=...)``); ``"pipelined"`` behaves
    like ``"joint"`` plus whatever :meth:`chain_constraints` /
    :meth:`chain_links` the subclass declares (without them it degenerates
    to a plain joint solve).
    """

    solution_type = CompositeSolution
    #: Default composition mode: ``"joint"`` (stages share one period),
    #: ``"sequential"`` (stages are consecutive phases) or ``"pipelined"``
    #: (one period, chained stages overlapped).
    mode: str = "joint"
    delivery_mode = "sum"  # stage streams are independent TP-rate groups

    def stages(self, problem) -> Sequence[Tuple[str, object]]:
        """``[(registered stage collective name, stage problem), ...]``."""
        raise NotImplementedError

    def chain_constraints(self, problem,
                          stage_lps: Sequence[LinearProgram]) -> Sequence[ChainRow]:
        """Cross-stage coupling rows for the ``"pipelined"`` joint LP.

        Override to express that a stage's commodities source from
        another stage's sinks (e.g. all-reduce: each all-gather
        broadcast's source outflow is bounded by the reduce-scatter
        stage's delivery rate of that block).  Default: no coupling.
        """
        return ()

    def chain_links(self, solution: "CompositeSolution"):
        """Item-level precedence contracts for the pipelined schedule.

        Override to return :class:`repro.core.schedule.ChainLink`
        entries in the *composite* (stage-tagged) item namespace; the
        schedule is retimed around them and the simulator credit-gates
        the chained supplies.  Default: no links.
        """
        return ()

    def _mode_of(self, solution: CollectiveSolution) -> str:
        """The mode that produced ``solution`` (falls back to the spec
        default for solutions predating per-solve modes)."""
        return getattr(solution, "mode", "") or self.mode

    @staticmethod
    def _check_mode(mode: str) -> str:
        if mode not in COMPOSITION_MODES:
            raise ValueError(f"unknown composition mode {mode!r}; "
                             f"expected one of {COMPOSITION_MODES}")
        return mode

    def stage_specs(self, problem) -> List[Tuple["CollectiveSpec", object]]:
        """Resolved ``(stage spec, stage problem)`` pairs (memoized per
        problem instance — stage problems are rebuilt otherwise)."""
        memo = getattr(self, "_stage_memo", None)
        if memo is not None and memo[0] is problem:
            return memo[1]
        from repro.collectives.registry import get_collective

        resolved = [(get_collective(name), sub)
                    for name, sub in self.stages(problem)]
        self._stage_memo = (problem, resolved)
        return resolved

    def pricing_graphs(self, problem) -> Optional[tuple]:
        """Joint-LP pricing graphs: every stage's own graphs with the
        stage's ``s{k}:`` variable-name prefix applied (``TP`` never
        appears in arc names, so the prefix map is total)."""
        graphs = []
        for k, (spec, sub) in enumerate(self.stage_specs(problem)):
            for g in spec.pricing_graphs(sub) or ():
                graphs.append({
                    "source": g["source"], "sink": g["sink"],
                    "arcs": tuple((i, j, f"s{k}:{vname}")
                                  for (i, j, vname) in g["arcs"])})
        return tuple(graphs) if graphs else None

    def _stage_lps(self, problem) -> List[LinearProgram]:
        """Stage LPs, built once per problem instance — the joint solve
        needs them twice (composition, then per-stage extraction)."""
        memo = getattr(self, "_stage_lp_memo", None)
        if memo is not None and memo[0] is problem:
            return memo[1]
        lps = [spec.build_lp(sub) for spec, sub in self.stage_specs(problem)]
        self._stage_lp_memo = (problem, lps)
        return lps

    # ------------------------------------------------------- solving
    def build_lp(self, problem, mode: Optional[str] = None) -> LinearProgram:
        mode = self._check_mode(mode or self.mode)
        if mode == "sequential":
            raise NotImplementedError(
                f"{self.name} is a sequential composite: no single LP")
        stage_lps = self._stage_lps(problem)
        chain = self.chain_constraints(problem, stage_lps) \
            if mode == "pipelined" else ()
        return compose_joint_lp(f"{self.name}({problem.platform.name})",
                                stage_lps, chain_rows=chain)

    def solve(self, problem, backend: str = "auto", eps: float = 1e-9,
              passes=None, mode: Optional[str] = None,
              **solve_kwargs) -> CompositeSolution:
        mode = self._check_mode(mode or self.mode)
        if mode in ("joint", "pipelined"):
            from repro.lp import solve as lp_solve

            lp = self.build_lp(problem, mode=mode)
            solve_kwargs.setdefault("pricing", self.pricing_graphs(problem))
            sol = lp_solve(lp, backend=backend, **solve_kwargs)
            if not sol.optimal:
                raise RuntimeError(f"LP solve failed: {sol.status}")
            tol = 0 if sol.exact else eps
            # passes stay None by default so each stage applies its own
            out = self.extract(problem, lp, sol, tol, passes)
            out.mode = mode
            return out
        # sequential: each stage is an independent solve; the composed
        # steady state spends the phase fraction TP/TP_k inside stage k
        from repro.collectives.orchestrator import solve_collective

        subs = []
        for spec, sub in self.stage_specs(problem):
            subs.append(solve_collective(sub, collective=spec.name,
                                         backend=backend, eps=eps,
                                         passes=passes, **solve_kwargs))
        inv = sum((Fraction(1) / s.throughput if s.exact
                   else 1.0 / s.throughput for s in subs), 0)
        tp = (Fraction(1) if all(s.exact for s in subs) else 1.0) / inv
        send = {}
        for k, s in enumerate(subs):
            phase = tp / s.throughput
            for key, f in s.send.items():
                send[(key[0], key[1], k) + key[2:]] = f * phase
        return self.solution_type(problem=problem, throughput=tp, send=send,
                                  lp_solution=None,
                                  exact=all(s.exact for s in subs),
                                  collective=self.name, stage_solutions=subs,
                                  mode=mode)

    def extract(self, problem, lp: LinearProgram, sol, tol,
                passes) -> CompositeSolution:
        """Joint-mode extraction: run every stage's own extractor against
        its prefixed slice of the joint optimum."""
        subs = []
        send = {}
        stage_lps = self._stage_lps(problem)
        for k, (spec, sub) in enumerate(self.stage_specs(problem)):
            stage_lp = stage_lps[k]
            view = _StageLPView(sol, f"s{k}:", stage_lp)
            stage_passes = passes if passes is not None \
                else spec.default_passes()
            s = spec.extract(sub, stage_lp, view, tol, stage_passes)
            subs.append(s)
            for key, f in s.send.items():
                send[(key[0], key[1], k) + key[2:]] = f
        return self.solution_type(problem=problem,
                                  throughput=sol.by_name("TP"), send=send,
                                  lp_solution=sol, exact=sol.exact,
                                  collective=self.name, stage_solutions=subs)

    # ---------------------------------------------------------- codec
    def send_edge(self, key: tuple) -> EdgeKey:
        return (key[0], key[1])

    def send_unit_time(self, problem, key: tuple):
        spec, sub = self.stage_specs(problem)[key[2]]
        return spec.send_unit_time(sub, (key[0], key[1]) + key[3:])

    def rate_rows(self, solution: CollectiveSolution):
        specs = self.stage_specs(solution.problem)
        rows = []
        for key, v in sorted(solution.send.items(), key=str):
            spec, _sub = specs[key[2]]
            label = spec.format_commodity((key[0], key[1]) + key[3:])
            rows.append((f"{key[0]} -> {key[1]}",
                         f"s{key[2]}:{spec.name}:{label}", v))
        return ["edge", "type", "rate"], rows

    # ----------------------------------------------------- invariants
    def verify(self, solution: CollectiveSolution, tol=0) -> List[str]:
        """Joint one-port check on the composite occupation (phase-scaled
        in sequential mode) plus every stage's own invariants; pipelined
        solutions additionally re-check every chain row on the cleaned
        joint optimum."""
        bad = self._port_violations(solution, tol)
        for k, sub in enumerate(solution.stage_solutions or ()):
            for msg in sub.verify(tol=tol):
                bad.append(f"s{k}[{sub.collective}]: {msg}")
        if self._mode_of(solution) == "pipelined" \
                and solution.lp_solution is not None:
            values = getattr(solution.lp_solution, "values", None)
            lp = getattr(solution.lp_solution, "lp", None)
            if values is not None and lp is not None:
                for con in lp.constraints:
                    if not con.name.startswith(CHAIN_PREFIX):
                        continue
                    v = con.violation(values)
                    if v > tol:
                        bad.append(f"{con.name} violated by {v}")
        return bad

    # ------------------------------------------------------- schedule
    def build_schedule(self, solution: CollectiveSolution):
        from repro.core.schedule import (
            concatenate_schedules,
            retag_schedule,
            superpose_schedules,
        )

        if not solution.exact:
            raise ValueError("schedule construction needs exact rational "
                             "rates; solve with backend='exact'")
        mode = self._mode_of(solution)
        specs = self.stage_specs(solution.problem)
        subs = solution.stage_solutions
        name = f"{self.name}({solution.problem.platform.name})"
        if mode in ("joint", "pipelined"):
            bundles = [spec.rate_bundle(s).tagged(k)
                       for k, ((spec, _sub), s) in enumerate(zip(specs, subs))]
            chain = self.chain_links(solution) if mode == "pipelined" else ()
            return superpose_schedules(bundles,
                                       throughput=solution.throughput,
                                       name=name,
                                       delivery_mode=self.delivery_mode,
                                       chain=chain)
        scheds = [retag_schedule(spec.build_schedule(s), k)
                  for k, ((spec, _sub), s) in enumerate(zip(specs, subs))]
        return concatenate_schedules(scheds, name=name,
                                     delivery_mode=self.delivery_mode)

    def rate_bundle(self, solution: CollectiveSolution):
        """Joint composites are themselves stageable: the merged bundle of
        their stages (items tagged), ready for further superposition.
        (Pipelined bundles merge too, but their chain links don't travel
        with the bundle — re-declare them on the outer composite.)"""
        if self._mode_of(solution) == "sequential":
            raise NotImplementedError(
                f"{self.name} is sequential: phases cannot merge into one "
                "period")
        from repro.core.schedule import RateBundle

        specs = self.stage_specs(solution.problem)
        return RateBundle.merge(
            [spec.rate_bundle(s).tagged(k)
             for k, ((spec, _sub), s) in
             enumerate(zip(specs, solution.stage_solutions))])

    # ------------------------------------------------------ simulator
    def simulation(self, schedule, problem, op=None) -> SimSemantics:
        """Chained stage semantics: each stage derives its semantics from
        its own (un-tagged) view of the composite schedule, the
        :meth:`chain_stage` hook rewires payloads across the stage
        boundary, and :func:`repro.sim.executor.chain_semantics` merges
        the result back into the composite item namespace."""
        from repro.core.schedule import stage_view
        from repro.sim.executor import chain_semantics

        sems = []
        for k, (spec, sub) in enumerate(self.stage_specs(problem)):
            sem = spec.simulation(stage_view(schedule, k), sub, op=op)
            sems.append((k, self.chain_stage(k, sem, sub, op)))
        return chain_semantics(sems)

    def chain_stage(self, k: int, sem: SimSemantics, stage_problem,
                    op) -> SimSemantics:
        """Hook: rewrite stage ``k``'s semantics for value chaining (e.g.
        all-reduce feeds the reduced values into its all-gather stage).
        Default: stages keep their own payloads."""
        return sem

    def ops_bound_factor(self, problem) -> int:
        return sum(spec.ops_bound_factor(sub)
                   for spec, sub in self.stage_specs(problem))

    def tp_suffix(self, problem, solution: Optional[CollectiveSolution] = None) -> str:
        names = "+".join(name for name, _sub in self.stages(problem))
        mode = self._mode_of(solution) if solution is not None else self.mode
        return f" ({mode} composition: {names})"

    def report(self, solution: CollectiveSolution) -> str:
        from repro.viz.tables import composition_table, rates_table

        return "\n".join([composition_table(solution),
                          rates_table(solution)])
